#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> fault-injection suite (lossy wire, codec fuzz)"
cargo test --release -q -p oe-net
cargo test --release -q -p openembedding --test fault_suite

echo "==> kill-mid-epoch failover smoke"
cargo test --release -q -p openembedding --test failover_e2e

echo "==> crash-point enumeration sweep"
if [[ "${CRASHMC_FULL:-0}" == "1" ]]; then
  # Exhaustive: every persistence event, every optimizer (slow).
  cargo test --release -q -p openembedding --test crashmc
  cargo run --release -p oe-bench --bin crashmc -- --out BENCH_crashmc.json
else
  # Bounded: SGD exhaustive via the test, stride-sampled bench sweep.
  cargo test --release -q -p openembedding --test crashmc -- \
    exhaustive_sweep_sgd_holds_every_invariant \
    crash_during_recovery_is_exhaustively_idempotent \
    standby_promotes_consistently_from_enumerated_crash_points
  cargo run --release -p oe-bench --bin crashmc -- --smoke --out BENCH_crashmc.json
fi

# Perf-trajectory harness: the gated benches append their metrics to
# BENCH_trajectory.json (keyed by git commit) and fail CI when any
# metric drops >30% below BENCH_baseline.json. After an intentional
# perf change, accept the new numbers with:  UPDATE_BASELINE=1 ./ci.sh
GATE_FLAGS=(--record BENCH_trajectory.json --gate BENCH_baseline.json)
if [[ "${UPDATE_BASELINE:-0}" == "1" ]]; then
  GATE_FLAGS+=(--update-baseline)
fi

echo "==> pull/push hot-path bench (smoke, gated)"
cargo run --release -p oe-bench --bin pullpush -- --smoke --out BENCH_pullpush.json "${GATE_FLAGS[@]}"

echo "==> optimizer-kernel & codec microbench (smoke, gated)"
cargo run --release -p oe-bench --bin kernels -- --smoke --out BENCH_kernels.json "${GATE_FLAGS[@]}"

echo "==> failover/retry-overhead bench (smoke)"
cargo run --release -p oe-bench --bin failover -- --smoke --out BENCH_failover.json

echo "==> mid-epoch live-migration smoke"
cargo test --release -q -p openembedding --test rebalance_e2e

echo "==> skew-aware rebalancing bench (smoke, gated)"
cargo run --release -p oe-bench --bin rebalance -- --smoke --out BENCH_rebalance.json "${GATE_FLAGS[@]}"

echo "==> pipelined-training sync-parity smoke"
cargo test --release -q -p openembedding --test pipeline_e2e

echo "==> pipelined-training frontier bench (smoke, gated)"
cargo run --release -p oe-bench --bin pipeline -- --smoke --out BENCH_pipeline.json "${GATE_FLAGS[@]}"

echo "==> serving-plane suite (snapshot-flip torture, ANN recall floor)"
cargo test --release -q -p oe-serve

echo "==> SLO-driven serving bench (smoke, gated)"
cargo run --release -p oe-bench --bin serve -- --smoke --out BENCH_serve.json "${GATE_FLAGS[@]}"

echo "==> disaggregated-pool failover smoke"
cargo test --release -q -p openembedding --test pool_failover_e2e

echo "==> disaggregated-pool storage bench (smoke, gated)"
cargo run --release -p oe-bench --bin pool -- --smoke --out BENCH_pool.json "${GATE_FLAGS[@]}"

echo "CI OK"
