#!/usr/bin/env bash
# Local CI: exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> fault-injection suite (lossy wire, codec fuzz)"
cargo test --release -q -p oe-net
cargo test --release -q -p openembedding --test fault_suite

echo "==> kill-mid-epoch failover smoke"
cargo test --release -q -p openembedding --test failover_e2e

echo "==> pull/push hot-path bench (smoke)"
cargo run --release -p oe-bench --bin pullpush -- --smoke --out BENCH_pullpush.json

echo "==> failover/retry-overhead bench (smoke)"
cargo run --release -p oe-bench --bin failover -- --smoke --out BENCH_failover.json

echo "CI OK"
