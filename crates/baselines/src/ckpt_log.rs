//! Incremental checkpoint log (the paper's "Incremental Checkpoint" from
//! CheckFreq, ref. 11; Table IV).
//!
//! Entries dirtied since the previous checkpoint are appended to a log on
//! a checkpoint device (SSD or PMem); a header records the committed
//! batch id. The dump is *synchronous*: training pauses while it runs —
//! and on PMem the dump's writes additionally contend with training I/O
//! (the effect Fig. 12 quantifies; the contention is modelled by the
//! trainer from the charged `PmemWrite`/`SsdTransfer` time).
//!
//! Replay scans the log and keeps the newest record per key with version
//! ≤ the committed id, which is how `DRAM-PS` recovers in Fig. 14.

use oe_core::Key;
use oe_simdevice::{Cost, Media, MediaConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Which device holds the checkpoint log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptDevice {
    /// Flash SSD (the traditional choice).
    Ssd,
    /// PMem used as a fast checkpoint file device.
    Pmem,
}

const HEADER_BYTES: u64 = 64;
const MAGIC: u64 = 0x4F45_434B_0001;
/// Dump writes are buffered into chunks of this many bytes so the
/// per-write device latency amortizes (checkpoint dumps are sequential).
const CHUNK_BYTES: usize = 256 * 1024;
/// Per-entry CPU bookkeeping of the CheckFreq-style incremental
/// checkpointer: dirty-set tracking, key serialization, offset-map
/// update, and write-ahead metadata logging (~1 µs/entry measured for
/// hash-table checkpointers; this is what makes frequent incremental
/// checkpoints expensive in the paper's Fig. 12).
const CKPT_ENTRY_CPU_NS: u64 = 1_000;

/// Append-only checkpoint log with a committed-batch header.
pub struct CkptLog {
    media: Arc<Media>,
    payload_f32s: usize,
    state: Mutex<LogState>,
}

struct LogState {
    next_off: u64,
    records: u64,
    committed: u64,
}

impl CkptLog {
    /// Record size on media.
    fn record_bytes(&self) -> u64 {
        16 + self.payload_f32s as u64 * 4
    }

    /// Create an empty log on a fresh device.
    pub fn create(device: CkptDevice, payload_f32s: usize, capacity: usize) -> Self {
        let media = match device {
            CkptDevice::Ssd => Media::new(MediaConfig::ssd(capacity)),
            CkptDevice::Pmem => Media::new(MediaConfig::pmem(capacity)),
        };
        let log = Self {
            media: Arc::new(media),
            payload_f32s,
            state: Mutex::new(LogState {
                next_off: HEADER_BYTES,
                records: 0,
                committed: 0,
            }),
        };
        let mut cost = Cost::new();
        log.write_header(0, 0, &mut cost);
        log
    }

    fn write_header(&self, committed: u64, records: u64, cost: &mut Cost) {
        let mut h = [0u8; HEADER_BYTES as usize];
        h[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        h[8..16].copy_from_slice(&committed.to_le_bytes());
        h[16..24].copy_from_slice(&records.to_le_bytes());
        h[24..32].copy_from_slice(&(self.payload_f32s as u64).to_le_bytes());
        self.media.write(0, &h, cost);
        self.media.persist(0, HEADER_BYTES, cost);
    }

    /// The device media (crash/restore in tests).
    pub fn media(&self) -> &Arc<Media> {
        &self.media
    }

    /// Batch id of the last completed dump.
    pub fn committed(&self) -> u64 {
        self.state.lock().committed
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.state.lock().records
    }

    /// Synchronously dump `entries` as the checkpoint for `batch`.
    /// Charges the full transfer to `cost` (training is paused meanwhile).
    pub fn dump<'a, I>(&self, entries: I, batch: u64, cost: &mut Cost) -> u64
    where
        I: Iterator<Item = (Key, &'a [f32])>,
    {
        let mut g = self.state.lock();
        let mut buf: Vec<u8> = Vec::with_capacity(CHUNK_BYTES + self.record_bytes() as usize);
        let mut written = 0u64;
        for (key, payload) in entries {
            assert_eq!(payload.len(), self.payload_f32s, "payload shape");
            cost.charge(oe_simdevice::CostKind::Cpu, CKPT_ENTRY_CPU_NS);
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&batch.to_le_bytes());
            for &v in payload {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            written += 1;
            if buf.len() >= CHUNK_BYTES {
                self.media.write(g.next_off, &buf, cost);
                self.media.persist(g.next_off, buf.len() as u64, cost);
                g.next_off += buf.len() as u64;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.media.write(g.next_off, &buf, cost);
            self.media.persist(g.next_off, buf.len() as u64, cost);
            g.next_off += buf.len() as u64;
        }
        g.records += written;
        g.committed = batch;
        let (c, r) = (g.committed, g.records);
        drop(g);
        self.write_header(c, r, cost);
        written
    }

    /// Open a log from (possibly crash-surviving) media and replay it:
    /// newest record per key with version ≤ the committed header id.
    /// Returns `(committed_batch, entries)`.
    pub fn replay(media: &Arc<Media>, cost: &mut Cost) -> Option<(u64, HashMap<Key, Vec<f32>>)> {
        let mut h = [0u8; HEADER_BYTES as usize];
        if media.len() < HEADER_BYTES as usize {
            return None;
        }
        media.read(0, &mut h, cost);
        if u64::from_le_bytes(h[0..8].try_into().unwrap()) != MAGIC {
            return None;
        }
        let committed = u64::from_le_bytes(h[8..16].try_into().unwrap());
        let records = u64::from_le_bytes(h[16..24].try_into().unwrap());
        let payload_f32s = u64::from_le_bytes(h[24..32].try_into().unwrap()) as usize;
        let rec_bytes = 16 + payload_f32s * 4;

        let mut newest: HashMap<Key, (u64, Vec<f32>)> = HashMap::new();
        // Sequential chunked read: recovery streams the log, it does not
        // random-access records.
        let total_bytes = records as usize * rec_bytes;
        let mut log = vec![0u8; total_bytes];
        let mut read_off = 0usize;
        while read_off < total_bytes {
            let n = (total_bytes - read_off).min(CHUNK_BYTES);
            media.read(
                HEADER_BYTES + read_off as u64,
                &mut log[read_off..read_off + n],
                cost,
            );
            read_off += n;
        }
        let mut off = 0usize;
        for _ in 0..records {
            let rec = &log[off..off + rec_bytes];
            off += rec_bytes;
            let key = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let version = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            if version > committed {
                continue; // torn dump beyond the committed header
            }
            let entry = newest.entry(key).or_insert_with(|| (0, Vec::new()));
            if entry.1.is_empty() || version >= entry.0 {
                let mut payload = vec![0f32; payload_f32s];
                for (i, chunk) in rec[16..].chunks_exact(4).enumerate() {
                    payload[i] = f32::from_le_bytes(chunk.try_into().unwrap());
                }
                *entry = (version, payload);
            }
        }
        Some((
            committed,
            newest.into_iter().map(|(k, (_, p))| (k, p)).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::CostKind;

    #[test]
    fn dump_and_replay_roundtrip() {
        let log = CkptLog::create(CkptDevice::Ssd, 4, 1 << 20);
        let entries: Vec<(Key, Vec<f32>)> = (0..10u64).map(|k| (k, vec![k as f32; 4])).collect();
        let mut cost = Cost::new();
        let n = log.dump(
            entries.iter().map(|(k, p)| (*k, p.as_slice())),
            3,
            &mut cost,
        );
        assert_eq!(n, 10);
        assert_eq!(log.committed(), 3);
        assert!(cost.ns(CostKind::SsdTransfer) > 0);

        let mut rcost = Cost::new();
        let (committed, map) = CkptLog::replay(log.media(), &mut rcost).unwrap();
        assert_eq!(committed, 3);
        assert_eq!(map.len(), 10);
        assert_eq!(map[&7], vec![7.0; 4]);
    }

    #[test]
    fn incremental_dumps_keep_newest() {
        let log = CkptLog::create(CkptDevice::Pmem, 2, 1 << 20);
        let mut cost = Cost::new();
        log.dump([(1u64, [1.0f32, 1.0].as_slice())].into_iter(), 1, &mut cost);
        log.dump(
            [
                (1u64, [2.0f32, 2.0].as_slice()),
                (2u64, [9.0f32, 9.0].as_slice()),
            ]
            .into_iter(),
            2,
            &mut cost,
        );
        let (committed, map) = CkptLog::replay(log.media(), &mut cost).unwrap();
        assert_eq!(committed, 2);
        assert_eq!(map[&1], vec![2.0, 2.0]);
        assert_eq!(map[&2], vec![9.0, 9.0]);
    }

    #[test]
    fn ssd_dump_is_much_slower_than_pmem_dump() {
        // Compare the device-transfer portion (the per-entry CPU
        // bookkeeping is identical for both devices).
        let mk = |dev| {
            let log = CkptLog::create(dev, 64, 1 << 22);
            let payload = vec![0.5f32; 64];
            let mut cost = Cost::new();
            log.dump((0..2000u64).map(|k| (k, payload.as_slice())), 1, &mut cost);
            cost.ns(CostKind::SsdTransfer) + cost.ns(CostKind::PmemWrite)
        };
        let ssd = mk(CkptDevice::Ssd);
        let pmem = mk(CkptDevice::Pmem);
        assert!(ssd > 2 * pmem, "ssd={ssd} pmem={pmem}");
    }

    #[test]
    fn replay_rejects_uninitialized_media() {
        let media = Arc::new(Media::new(MediaConfig::ssd(1024)));
        let mut cost = Cost::new();
        assert!(CkptLog::replay(&media, &mut cost).is_none());
    }

    #[test]
    fn empty_dump_still_commits() {
        let log = CkptLog::create(CkptDevice::Ssd, 4, 1 << 16);
        let mut cost = Cost::new();
        let n = log.dump(std::iter::empty(), 5, &mut cost);
        assert_eq!(n, 0);
        assert_eq!(log.committed(), 5);
    }
}
