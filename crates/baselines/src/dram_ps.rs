//! DRAM-PS: the classic pure-DRAM parameter server (paper Table III),
//! "a pure DRAM version of OpenEmbedding … implemented according to the
//! classic parameter server's standards".
//!
//! All entries live in sharded DRAM hash maps; reads and writes run at
//! DRAM speed with no persistence. Reliability comes from CheckFreq-style
//! incremental checkpointing to a checkpoint device ([`CkptLog`]): dirty
//! entries are dumped synchronously, pausing training — the overhead
//! DRAM-PS pays in Figs. 6/12 and the recovery path measured in Fig. 14.

use crate::ckpt_log::{CkptDevice, CkptLog};
use oe_core::config::{HASH_PROBE_NS, INIT_ENTRY_NS, OPT_FLOP_NS_PER_F32};
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::init::init_payload;
use oe_core::optimizer::Optimizer;
use oe_core::stats::{EngineStats, StatsSnapshot};
use oe_core::{BatchId, Key, NodeConfig};
use oe_simdevice::{Cost, CostKind, DeviceTiming};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// Pure-DRAM parameter server with incremental checkpointing.
pub struct DramPs {
    cfg: NodeConfig,
    opt: Optimizer,
    shards: Vec<RwLock<HashMap<Key, Box<[f32]>>>>,
    dirty: Mutex<HashSet<Key>>,
    log: CkptLog,
    latest_batch: AtomicU64,
    stats: EngineStats,
    dram: DeviceTiming,
}

impl DramPs {
    /// Create a DRAM-PS with its checkpoint log on `device`.
    pub fn new(cfg: NodeConfig, device: CkptDevice) -> Self {
        cfg.validate();
        let log = CkptLog::create(device, cfg.payload_f32s(), 1 << 20);
        Self {
            opt: cfg.optimizer.build(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            dirty: Mutex::new(HashSet::new()),
            log,
            latest_batch: AtomicU64::new(0),
            stats: EngineStats::default(),
            dram: DeviceTiming::dram(),
            cfg,
        }
    }

    /// The checkpoint log (to simulate recovery in tests / Fig. 14).
    pub fn ckpt_log(&self) -> &CkptLog {
        &self.log
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        (oe_core::init::splitmix64(key) % SHARDS as u64) as usize
    }

    /// Rebuild a DRAM-PS from its surviving checkpoint log: replay the
    /// log into DRAM (the transfer + insert cost dominating Fig. 14's
    /// DRAM-PS bars). Returns the node and the batch to resume after.
    pub fn recover(
        media: &std::sync::Arc<oe_simdevice::Media>,
        cfg: NodeConfig,
        device: CkptDevice,
        cost: &mut Cost,
    ) -> Option<(Self, BatchId)> {
        // Per-entry cost of rebuilding the DRAM store: allocation, hash
        // insert, and payload copy (~0.36 µs/entry, the term that
        // dominates the paper's Fig. 14 DRAM-PS recovery bars).
        const RECOVERY_INSERT_NS: u64 = 270;
        let (committed, entries) = CkptLog::replay(media, cost)?;
        let node = Self::new(cfg, device);
        for (key, payload) in entries {
            // Per-entry DRAM insert + copy cost.
            cost.charge(CostKind::Cpu, RECOVERY_INSERT_NS);
            cost.charge(
                CostKind::DramTransfer,
                node.dram.write_ns((payload.len() * 4) as u64),
            );
            let sid = node.shard_of(key);
            node.shards[sid]
                .write()
                .insert(key, payload.into_boxed_slice());
        }
        node.latest_batch.store(committed, Ordering::Release);
        Some((node, committed))
    }
}

impl PsEngine for DramPs {
    fn name(&self) -> &'static str {
        "DRAM-PS"
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        out.reserve(keys.len() * dim);
        for &key in keys {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS);
            cost.charge(CostKind::DramTransfer, self.dram.read_ns((dim * 4) as u64));
            let sid = self.shard_of(key);
            let found = {
                let g = self.shards[sid].read();
                g.get(&key).map(|p| {
                    out.extend_from_slice(&p[..dim]);
                })
            };
            if found.is_none() {
                let mut payload = vec![0f32; self.cfg.payload_f32s()];
                init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, &mut payload);
                out.extend_from_slice(&payload[..dim]);
                cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                self.shards[sid]
                    .write()
                    .insert(key, payload.into_boxed_slice());
                EngineStats::add(&self.stats.new_entries, 1);
                self.dirty.lock().insert(key);
            } else {
                EngineStats::add(&self.stats.hits, 1);
            }
            EngineStats::add(&self.stats.pulls, 1);
        }
        self.latest_batch.fetch_max(batch, Ordering::AcqRel);
    }

    fn end_pull_phase(&self, _batch: BatchId) -> MaintenanceReport {
        MaintenanceReport::default() // nothing deferred: DRAM is the store
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        assert_eq!(grads.len(), keys.len() * self.cfg.dim);
        let dim = self.cfg.dim;
        for (i, &key) in keys.iter().enumerate() {
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
            let sid = self.shard_of(key);
            let mut g = self.shards[sid].write();
            let payload = g.get_mut(&key).expect("pushed key must exist");
            self.opt.apply(dim, payload, &grads[i * dim..(i + 1) * dim]);
            EngineStats::add(&self.stats.pushes, 1);
        }
        {
            let mut d = self.dirty.lock();
            d.extend(keys.iter().copied());
        }
        self.latest_batch.fetch_max(batch, Ordering::AcqRel);
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        // Synchronous incremental checkpoint: dump every dirty entry.
        let mut cost = Cost::new();
        let dirty: Vec<Key> = {
            let mut d = self.dirty.lock();
            d.drain().collect()
        };
        let mut staged: Vec<(Key, Box<[f32]>)> = Vec::with_capacity(dirty.len());
        for key in dirty {
            let sid = self.shard_of(key);
            if let Some(p) = self.shards[sid].read().get(&key) {
                cost.charge(
                    CostKind::DramTransfer,
                    self.dram.read_ns((p.len() * 4) as u64),
                );
                staged.push((key, p.clone()));
            }
        }
        let n = self
            .log
            .dump(staged.iter().map(|(k, p)| (*k, &p[..])), batch, &mut cost);
        EngineStats::add(&self.stats.ckpt_entries_written, n);
        EngineStats::add(&self.stats.ckpt_commits, 1);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.log.committed()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        let sid = self.shard_of(key);
        let g = self.shards[sid].read();
        g.get(&key).map(|p| p[..self.cfg.dim].to_vec())
    }

    fn num_keys(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::OptimizerKind;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    #[test]
    fn pull_push_roundtrip() {
        let ps = DramPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2], 1, &mut out, &mut cost);
        assert_eq!(out.len(), 8);
        ps.push(&[1], &[1.0; 4], 1, &mut cost);
        let w = ps.read_weights(1).unwrap();
        assert!((w[0] - (out[0] - 1.0)).abs() < 1e-6);
        assert_eq!(ps.num_keys(), 2);
    }

    #[test]
    fn init_matches_oe_core() {
        // Same seed → same initial weights as any other engine.
        let ps = DramPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[99], 1, &mut out, &mut cost);
        let expect: Vec<f32> = (0..4)
            .map(|i| oe_core::init::init_weight(42, 99, i, 0.01))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn checkpoint_dumps_only_dirty() {
        let ps = DramPs::new(cfg(), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2, 3], 1, &mut out, &mut cost);
        ps.push(&[1, 2, 3], &[0.1; 12], 1, &mut cost);
        let c1 = ps.request_checkpoint(1);
        assert!(c1.total_ns() > 0);
        assert_eq!(ps.stats().ckpt_entries_written, 3);
        // Nothing dirtied since: next dump writes zero entries.
        ps.request_checkpoint(2);
        assert_eq!(ps.stats().ckpt_entries_written, 3);
        assert_eq!(ps.committed_checkpoint(), 2);
    }

    #[test]
    fn recovery_from_ckpt_log_restores_weights() {
        let ps = DramPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        let keys = [5u64, 6, 7];
        ps.pull(&keys, 1, &mut out, &mut cost);
        ps.push(&keys, &[0.5; 12], 1, &mut cost);
        ps.request_checkpoint(1);
        // Post-checkpoint updates are lost (crash semantics).
        ps.push(&keys, &[9.0; 12], 2, &mut cost);
        let expect: Vec<Vec<f32>> = keys
            .iter()
            .map(|&k| {
                (0..4)
                    .map(|i| oe_core::init::init_weight(42, k, i, 0.01) - 0.5)
                    .collect()
            })
            .collect();
        let media = std::sync::Arc::clone(ps.ckpt_log().media());
        let mut rcost = Cost::new();
        let (r, resume) = DramPs::recover(&media, cfg(), CkptDevice::Ssd, &mut rcost).unwrap();
        assert_eq!(resume, 1);
        for (i, &k) in keys.iter().enumerate() {
            let w = r.read_weights(k).unwrap();
            for d in 0..4 {
                assert!((w[d] - expect[i][d]).abs() < 1e-6);
            }
        }
        assert!(
            rcost.ns(CostKind::SsdTransfer) > 0,
            "recovery reads the log"
        );
    }

    #[test]
    fn dram_engine_charges_no_pmem() {
        let ps = DramPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1], 1, &mut out, &mut cost);
        ps.push(&[1], &[0.1; 4], 1, &mut cost);
        assert_eq!(cost.ns(CostKind::PmemRead), 0);
        assert_eq!(cost.ns(CostKind::PmemWrite), 0);
        assert!(cost.ns(CostKind::DramTransfer) > 0);
    }
}
