//! Generic incremental-checkpoint wrapper: bolts CheckFreq-style dirty-
//! set dumping onto *any* engine, overriding its native checkpointing.
//!
//! Used for the paper's "PMem-OE (Incremental Checkpoint)" configuration
//! (Fig. 12): the OpenEmbedding engine runs normally, but instead of the
//! batch-aware co-designed checkpoint, a synchronous incremental dump to
//! the checkpoint device runs at every interval — whose PMem writes
//! interfere with training I/O and pause the trainer.

use crate::ckpt_log::{CkptDevice, CkptLog};
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::stats::{EngineStats, StatsSnapshot};
use oe_core::{BatchId, Key};
use oe_simdevice::Cost;
use parking_lot::Mutex;
use std::collections::HashSet;

/// Wraps an engine, replacing its checkpoint path with incremental
/// dumps of dirty keys.
pub struct IncrementalCkpt<E: PsEngine> {
    inner: E,
    dirty: Mutex<HashSet<Key>>,
    log: CkptLog,
    stats: EngineStats,
}

impl<E: PsEngine> IncrementalCkpt<E> {
    /// Wrap `inner`; dumps go to `device`.
    pub fn new(inner: E, device: CkptDevice) -> Self {
        let log = CkptLog::create(device, inner.dim(), 1 << 20);
        Self {
            inner,
            dirty: Mutex::new(HashSet::new()),
            log,
            stats: EngineStats::default(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The checkpoint log.
    pub fn ckpt_log(&self) -> &CkptLog {
        &self.log
    }
}

impl<E: PsEngine> PsEngine for IncrementalCkpt<E> {
    fn name(&self) -> &'static str {
        "Incremental"
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        self.inner.pull(keys, batch, out, cost);
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        self.inner.end_pull_phase(batch)
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        self.inner.push(keys, grads, batch, cost);
        self.dirty.lock().extend(keys.iter().copied());
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut cost = Cost::new();
        let dirty: Vec<Key> = {
            let mut d = self.dirty.lock();
            d.drain().collect()
        };
        let mut staged = Vec::with_capacity(dirty.len());
        for key in dirty {
            if let Some(w) = self.inner.read_weights(key) {
                staged.push((key, w));
            }
        }
        let n = self.log.dump(
            staged.iter().map(|(k, w)| (*k, w.as_slice())),
            batch,
            &mut cost,
        );
        EngineStats::add(&self.stats.ckpt_entries_written, n);
        EngineStats::add(&self.stats.ckpt_commits, 1);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.log.committed()
    }

    fn stats(&self) -> StatsSnapshot {
        let mut s = self.inner.stats();
        let own = self.stats.snapshot();
        s.ckpt_entries_written += own.ckpt_entries_written;
        s.ckpt_commits += own.ckpt_commits;
        s
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        self.inner.read_weights(key)
    }

    fn num_keys(&self) -> usize {
        self.inner.num_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};
    use oe_simdevice::CostKind;

    fn wrapped() -> IncrementalCkpt<PsNode> {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        IncrementalCkpt::new(PsNode::new(cfg), CkptDevice::Pmem)
    }

    #[test]
    fn checkpoint_dumps_dirty_and_costs_pmem_writes() {
        let e = wrapped();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        e.pull(&[1, 2, 3], 1, &mut out, &mut cost);
        e.end_pull_phase(1);
        e.push(&[1, 2, 3], &[0.1; 12], 1, &mut cost);
        let c = e.request_checkpoint(1);
        assert!(c.ns(CostKind::PmemWrite) > 0, "dump interferes with PMem");
        assert_eq!(e.committed_checkpoint(), 1);
        assert_eq!(e.stats().ckpt_entries_written, 3);
    }

    #[test]
    fn much_more_expensive_than_batch_aware() {
        let e = wrapped();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        let keys: Vec<u64> = (0..2000).collect();
        e.pull(&keys, 1, &mut out, &mut cost);
        e.end_pull_phase(1);
        e.push(&keys, &vec![0.1; 2000 * 4], 1, &mut cost);
        let incr = e.request_checkpoint(1).total_ns();
        // The batch-aware native request is near-free.
        let native = e.inner().request_checkpoint(1).total_ns();
        assert!(
            incr > native * 10,
            "incremental {incr} vs batch-aware {native}"
        );
    }

    #[test]
    fn training_behaviour_is_unchanged() {
        let e = wrapped();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        e.pull(&[9], 1, &mut out, &mut cost);
        e.push(&[9], &[1.0; 4], 1, &mut cost);
        let w = e.read_weights(9).unwrap();
        assert!((w[0] - (out[0] - 1.0)).abs() < 1e-6);
    }
}
