//! # oe-baselines
//!
//! Every comparison system from the paper's evaluation (Tables III/IV,
//! Figs. 3/6/7/11/12/13/14/15), implemented against the same
//! [`oe_core::PsEngine`] trait as OpenEmbedding so the training simulator
//! and the integration tests treat all engines interchangeably:
//!
//! | Engine | Paper name | Storage | Cache maintenance | Checkpoint |
//! |---|---|---|---|---|
//! | [`DramPs`] | DRAM-PS | DRAM hash | — | incremental (CheckFreq-style) |
//! | [`OriCache`] | Ori-Cache | DRAM cache + PMem | synchronous, global list lock | incremental |
//! | [`PmemHash`] | PMem-Hash | PMem hash (libpmemobj-style) | — | in-place (not batch-atomic) |
//! | [`TfPs`] | Tensorflow | DRAM, single server | — | full dump |
//!
//! All engines initialize weights through `oe_core::init`, so on the same
//! deterministic workload every engine converges to bit-identical
//! weights — the `baseline_parity` integration test asserts exactly that.

pub mod ckpt_log;
pub mod dram_ps;
pub mod incremental;
pub mod ori_cache;
pub mod pmem_hash;
pub mod tf_ps;

pub use ckpt_log::{CkptDevice, CkptLog};
pub use dram_ps::DramPs;
pub use incremental::IncrementalCkpt;
pub use ori_cache::OriCache;
pub use pmem_hash::PmemHash;
pub use tf_ps::TfPs;
