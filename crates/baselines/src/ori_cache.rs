//! Ori-Cache: the fine-grained DRAM-PMem hybrid cache of the paper's
//! Observation 1 (§III-B), built the way a straightforward engineer
//! would: Facebook's concurrent hash map for the index, an STL list for
//! LRU, and *synchronous* cache maintenance — every miss evicts and
//! loads inline on the pull path, every access (pull **and** update)
//! reorders the LRU under the global list lock.
//!
//! This is exactly what the paper measures as `Ori-Cache`: correct, but
//! its serialized list operations and burst-time PMem writes sit on the
//! training critical path, so it degrades super-linearly with GPU count
//! (1.24× / 1.56× / 2.27× of DRAM-PS at 4/8/16 GPUs, Fig. 7).
//! Checkpointing is CheckFreq-style incremental (Table III).

use crate::ckpt_log::{CkptDevice, CkptLog};
use oe_cache::{DramArena, LruList};
use oe_core::config::{HASH_PROBE_NS, INIT_ENTRY_NS, LRU_OP_NS, OPT_FLOP_NS_PER_F32};
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::init::init_payload;
use oe_core::optimizer::Optimizer;
use oe_core::stats::{EngineStats, StatsSnapshot};
use oe_core::{BatchId, Key, NodeConfig};
use oe_pmem::{PmemPool, PoolConfig, SlotId};
use oe_simdevice::{Cost, CostKind, DeviceTiming};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Cost of acquiring and releasing the global list lock (uncontended
/// base; the contention model inflates it with the burst stream count).
const LIST_LOCK_NS: u64 = 200;

struct OriEntry {
    dram: Option<u32>,
    pmem: Option<SlotId>,
    version: BatchId,
}

struct Inner {
    index: HashMap<Key, OriEntry>,
    arena: DramArena,
    lru: LruList,
}

/// The fine-grained hybrid cache baseline.
pub struct OriCache {
    cfg: NodeConfig,
    opt: Optimizer,
    inner: Mutex<Inner>,
    pool: PmemPool,
    dirty: Mutex<HashSet<Key>>,
    log: CkptLog,
    stats: EngineStats,
    dram: DeviceTiming,
}

impl OriCache {
    /// Create an Ori-Cache node; checkpoints go to `device`.
    pub fn new(cfg: NodeConfig, device: CkptDevice) -> Self {
        cfg.validate();
        let mut cost = Cost::new();
        let pool = PmemPool::create(
            PoolConfig {
                payload_bytes: cfg.payload_bytes(),
                capacity: cfg.pmem_capacity,
            },
            &mut cost,
        );
        let entries = cfg.cache_entries();
        let log = CkptLog::create(device, cfg.payload_f32s(), 1 << 20);
        Self {
            opt: cfg.optimizer.build(),
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                arena: DramArena::new(entries, cfg.payload_f32s()),
                lru: LruList::new(entries),
            }),
            pool,
            dirty: Mutex::new(HashSet::new()),
            log,
            stats: EngineStats::default(),
            dram: DeviceTiming::dram(),
            cfg,
        }
    }

    /// The checkpoint log.
    pub fn ckpt_log(&self) -> &CkptLog {
        &self.log
    }

    /// Synchronously evict the LRU victim: unconditional write-back to
    /// the victim's (single, in-place) PMem slot. Inline on the caller's
    /// critical path — the defining difference from PMem-OE.
    fn evict_inline(&self, inner: &mut Inner, cost: &mut Cost) {
        let victim = inner.lru.pop_back().expect("cache not empty");
        let vkey = inner.arena.key(victim);
        let e = inner.index.get_mut(&vkey).expect("indexed");
        let slot = match e.pmem {
            Some(s) => s,
            None => {
                let s = self.pool.alloc(cost);
                e.pmem = Some(s);
                s
            }
        };
        self.pool
            .write_slot(slot, vkey, e.version, inner.arena.payload(victim), cost);
        e.dram = None;
        inner.arena.remove(victim);
        EngineStats::add(&self.stats.evictions, 1);
        EngineStats::add(&self.stats.flushes, 1);
    }

    /// Load `key` into the cache (evicting if needed); returns its slot.
    fn load_inline(&self, inner: &mut Inner, key: Key, batch: BatchId, cost: &mut Cost) -> u32 {
        if inner.arena.is_full() {
            self.evict_inline(inner, cost);
        }
        let slot = inner.arena.insert(key, batch).expect("slot available");
        let e = inner.index.get_mut(&key).expect("indexed");
        let pm = e.pmem.expect("uncached entry must have a PMem slot");
        let Inner { arena, .. } = inner;
        self.pool
            .read_slot(pm, arena.payload_mut(slot), cost)
            .expect("valid slot");
        let e = inner.index.get_mut(&key).expect("indexed");
        e.dram = Some(slot);
        e.version = batch;
        inner.lru.push_front(slot);
        EngineStats::add(&self.stats.loads, 1);
        slot
    }
}

impl PsEngine for OriCache {
    fn name(&self) -> &'static str {
        "Ori-Cache"
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        out.reserve(keys.len() * dim);
        for &key in keys {
            // Global lock for index + list on every access.
            cost.charge(CostKind::Serialized, LIST_LOCK_NS + LRU_OP_NS);
            cost.charge(CostKind::Cpu, HASH_PROBE_NS);
            let mut g = self.inner.lock();
            let state = g.index.get(&key).map(|e| e.dram);
            match state {
                Some(Some(slot)) => {
                    out.extend_from_slice(&g.arena.payload(slot)[..dim]);
                    g.lru.move_to_front(slot);
                    cost.charge(CostKind::DramTransfer, self.dram.read_ns((dim * 4) as u64));
                    EngineStats::add(&self.stats.hits, 1);
                }
                Some(None) => {
                    // Miss: synchronous evict + load, all inline.
                    let slot = self.load_inline(&mut g, key, batch, cost);
                    out.extend_from_slice(&g.arena.payload(slot)[..dim]);
                    EngineStats::add(&self.stats.misses, 1);
                }
                None => {
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                    if g.arena.is_full() {
                        self.evict_inline(&mut g, cost);
                    }
                    let slot = g.arena.insert(key, batch).expect("slot available");
                    init_payload(
                        self.cfg.seed,
                        key,
                        self.cfg.init_scale,
                        dim,
                        g.arena.payload_mut(slot),
                    );
                    g.index.insert(
                        key,
                        OriEntry {
                            dram: Some(slot),
                            pmem: None,
                            version: batch,
                        },
                    );
                    g.lru.push_front(slot);
                    out.extend_from_slice(&g.arena.payload(slot)[..dim]);
                    EngineStats::add(&self.stats.new_entries, 1);
                    self.dirty.lock().insert(key);
                }
            }
            EngineStats::add(&self.stats.pulls, 1);
        }
    }

    fn end_pull_phase(&self, _batch: BatchId) -> MaintenanceReport {
        // No pipeline: everything already happened inline.
        MaintenanceReport::default()
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        assert_eq!(grads.len(), keys.len() * self.cfg.dim);
        let dim = self.cfg.dim;
        for (i, &key) in keys.iter().enumerate() {
            // The cache treats the update as an independent access:
            // another global-lock + list reorder (paper §II-B end).
            cost.charge(CostKind::Serialized, LIST_LOCK_NS + LRU_OP_NS);
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            let mut g = self.inner.lock();
            let slot = match g.index.get(&key).expect("pushed key exists").dram {
                Some(s) => s,
                None => {
                    let s = self.load_inline(&mut g, key, batch, cost);
                    EngineStats::add(&self.stats.misses, 1);
                    s
                }
            };
            self.opt.apply(
                dim,
                g.arena.payload_mut(slot),
                &grads[i * dim..(i + 1) * dim],
            );
            g.arena.set_version(slot, batch);
            if let Some(e) = g.index.get_mut(&key) {
                e.version = batch;
            }
            g.lru.move_to_front(slot);
            cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
            EngineStats::add(&self.stats.pushes, 1);
        }
        self.dirty.lock().extend(keys.iter().copied());
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        // Incremental dump, synchronous: reads payloads from DRAM or
        // PMem (interfering with training I/O) and writes the log.
        let mut cost = Cost::new();
        let dirty: Vec<Key> = {
            let mut d = self.dirty.lock();
            d.drain().collect()
        };
        let mut staged: Vec<(Key, Vec<f32>)> = Vec::with_capacity(dirty.len());
        {
            let g = self.inner.lock();
            let mut scratch = vec![0f32; self.cfg.payload_f32s()];
            for key in dirty {
                let Some(e) = g.index.get(&key) else { continue };
                match e.dram {
                    Some(slot) => {
                        cost.charge(
                            CostKind::DramTransfer,
                            self.dram.read_ns((self.cfg.payload_bytes()) as u64),
                        );
                        staged.push((key, g.arena.payload(slot).to_vec()));
                    }
                    None => {
                        let pm = e.pmem.expect("uncached entry persisted");
                        self.pool
                            .read_slot(pm, &mut scratch, &mut cost)
                            .expect("valid");
                        staged.push((key, scratch.clone()));
                    }
                }
            }
        }
        let n = self.log.dump(
            staged.iter().map(|(k, p)| (*k, p.as_slice())),
            batch,
            &mut cost,
        );
        EngineStats::add(&self.stats.ckpt_entries_written, n);
        EngineStats::add(&self.stats.ckpt_commits, 1);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.log.committed()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        let g = self.inner.lock();
        let e = g.index.get(&key)?;
        let dim = self.cfg.dim;
        match e.dram {
            Some(slot) => Some(g.arena.payload(slot)[..dim].to_vec()),
            None => {
                let mut scratch = vec![0f32; self.cfg.payload_f32s()];
                let mut cost = Cost::new();
                self.pool.read_slot(e.pmem?, &mut scratch, &mut cost)?;
                scratch.truncate(dim);
                Some(scratch)
            }
        }
    }

    fn num_keys(&self) -> usize {
        self.inner.lock().index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::OptimizerKind;

    fn cfg(cache_entries: usize) -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c.cache_bytes = cache_entries * c.bytes_per_cached_entry();
        c
    }

    #[test]
    fn eviction_roundtrip() {
        let ps = OriCache::new(cfg(2), CkptDevice::Pmem);
        let mut cost = Cost::new();
        let mut originals = Vec::new();
        for k in 0..5u64 {
            let mut out = Vec::new();
            ps.pull(&[k], 1, &mut out, &mut cost);
            originals.push(out);
        }
        assert!(ps.stats().evictions > 0);
        for k in 0..5u64 {
            assert_eq!(ps.read_weights(k).unwrap(), originals[k as usize][..4]);
        }
    }

    #[test]
    fn miss_work_is_on_the_pull_path() {
        let ps = OriCache::new(cfg(2), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        // Warm 4 keys through a 2-entry cache → evictions + future misses.
        ps.pull(&[1, 2, 3, 4], 1, &mut out, &mut cost);
        out.clear();
        let mut pull2 = Cost::new();
        ps.pull(&[1, 2], 2, &mut out, &mut pull2);
        // Keys 1,2 were evicted: the pull itself pays PMem reads and the
        // eviction write-backs.
        assert!(pull2.ns(CostKind::PmemRead) > 0, "inline load");
        assert!(pull2.ns(CostKind::Serialized) > 0, "global list lock");
        assert!(ps.end_pull_phase(2).cost.is_empty(), "nothing deferred");
    }

    #[test]
    fn update_reorders_lru_again() {
        let ps = OriCache::new(cfg(4), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1], 1, &mut out, &mut cost);
        let pull_serialized = cost.ns(CostKind::Serialized);
        let mut push_cost = Cost::new();
        ps.push(&[1], &[0.1; 4], 1, &mut push_cost);
        assert!(
            push_cost.ns(CostKind::Serialized) > 0,
            "push pays the list lock too (pull/update treated independently)"
        );
        let _ = pull_serialized;
    }

    #[test]
    fn incremental_checkpoint_and_weights() {
        let ps = OriCache::new(cfg(8), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2], 1, &mut out, &mut cost);
        ps.push(&[1, 2], &[0.5; 8], 1, &mut cost);
        let c = ps.request_checkpoint(1);
        assert!(c.total_ns() > 0);
        assert_eq!(ps.committed_checkpoint(), 1);
        assert_eq!(ps.stats().ckpt_entries_written, 2);
        let w = ps.read_weights(1).unwrap();
        assert!((w[0] - (out[0] - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn same_init_as_other_engines() {
        let ps = OriCache::new(cfg(8), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[123], 1, &mut out, &mut cost);
        let expect: Vec<f32> = (0..4)
            .map(|i| oe_core::init::init_weight(42, 123, i, 0.01))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn push_to_evicted_key_reloads() {
        let ps = OriCache::new(cfg(2), CkptDevice::Pmem);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2, 3], 1, &mut out, &mut cost); // key 1 evicted
        let before = ps.read_weights(1).unwrap();
        ps.push(&[1], &[1.0; 4], 1, &mut cost);
        let after = ps.read_weights(1).unwrap();
        assert!((after[0] - (before[0] - 1.0)).abs() < 1e-6);
    }
}
