//! PMem-Hash: a persistent concurrent hash map used directly as the
//! parameter-server store (paper §III-B / Fig. 3/15, built there from
//! Intel's `libpmemobj-cpp`). Every pull is a PMem read, every push a
//! PMem read-modify-write with full flush — plus the software overhead
//! of a PMem-aware data structure (allocator transactions, fenced
//! metadata). No DRAM cache, no pipeline.
//!
//! This is the configuration the paper uses to show that naively
//! swapping DRAM for PMem costs 1.16×–3.17× at 4–16 GPUs (Fig. 3).

use oe_core::config::{HASH_PROBE_NS, INIT_ENTRY_NS, OPT_FLOP_NS_PER_F32};
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::init::init_payload;
use oe_core::optimizer::Optimizer;
use oe_core::stats::{EngineStats, StatsSnapshot};
use oe_core::{BatchId, Key, NodeConfig};
use oe_pmem::{PmemPool, PoolConfig, SlotId};
use oe_simdevice::{Cost, CostKind};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Extra per-operation CPU cost of the PMem-aware structure (allocator
/// transaction bookkeeping, persistent metadata fences) relative to a
/// plain DRAM hash (ns).
const PMEM_STRUCT_OVERHEAD_NS: u64 = 180;

/// Dependent PMem reads per lookup beyond the slot itself: a
/// `libpmemobj`-style hash walks persistent bucket metadata and chain
/// nodes (pointer chasing in PMem), unlike OpenEmbedding's DRAM index
/// which resolves the exact slot offset in one hop.
const CHAIN_HOPS: u64 = 3;

/// The PMem-native hash-store baseline.
pub struct PmemHash {
    cfg: NodeConfig,
    opt: Optimizer,
    pool: PmemPool,
    index: RwLock<HashMap<Key, SlotId>>,
    committed: AtomicU64,
    stats: EngineStats,
}

impl PmemHash {
    /// Create an empty store.
    pub fn new(cfg: NodeConfig) -> Self {
        cfg.validate();
        let mut cost = Cost::new();
        let pool = PmemPool::create(
            PoolConfig {
                payload_bytes: cfg.payload_bytes(),
                capacity: cfg.pmem_capacity,
            },
            &mut cost,
        );
        Self {
            opt: cfg.optimizer.build(),
            pool,
            index: RwLock::new(HashMap::new()),
            committed: AtomicU64::new(0),
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// The backing pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }
}

impl PsEngine for PmemHash {
    fn name(&self) -> &'static str {
        "PMem-Hash"
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        out.reserve(keys.len() * dim);
        let mut scratch = vec![0f32; self.cfg.payload_f32s()];
        let pmem = oe_simdevice::DeviceTiming::pmem();
        for &key in keys {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS + PMEM_STRUCT_OVERHEAD_NS);
            // Bucket walk: dependent small reads through PMem.
            cost.charge(CostKind::PmemRead, CHAIN_HOPS * pmem.read_ns(64));
            let slot = self.index.read().get(&key).copied();
            match slot {
                Some(slot) => {
                    self.pool
                        .read_slot(slot, &mut scratch, cost)
                        .expect("indexed slot valid");
                    out.extend_from_slice(&scratch[..dim]);
                    EngineStats::add(&self.stats.misses, 1); // every read hits PMem
                }
                None => {
                    init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, &mut scratch);
                    let slot = self.pool.alloc(cost);
                    self.pool.write_slot(slot, key, batch, &scratch, cost);
                    self.index.write().insert(key, slot);
                    out.extend_from_slice(&scratch[..dim]);
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                    EngineStats::add(&self.stats.new_entries, 1);
                }
            }
            EngineStats::add(&self.stats.pulls, 1);
        }
    }

    fn end_pull_phase(&self, _batch: BatchId) -> MaintenanceReport {
        MaintenanceReport::default()
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        assert_eq!(grads.len(), keys.len() * self.cfg.dim);
        let dim = self.cfg.dim;
        let mut scratch = vec![0f32; self.cfg.payload_f32s()];
        let pmem = oe_simdevice::DeviceTiming::pmem();
        for (i, &key) in keys.iter().enumerate() {
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + PMEM_STRUCT_OVERHEAD_NS + dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            cost.charge(CostKind::PmemRead, CHAIN_HOPS * pmem.read_ns(64));
            let slot = *self.index.read().get(&key).expect("pushed key exists");
            self.pool
                .read_slot(slot, &mut scratch, cost)
                .expect("valid slot");
            self.opt
                .apply(dim, &mut scratch, &grads[i * dim..(i + 1) * dim]);
            // Transactional in-place update: the undo log persists the
            // old payload before the new one lands (libpmemobj tx).
            cost.charge(
                CostKind::PmemWrite,
                pmem.write_ns(self.cfg.payload_bytes() as u64),
            );
            self.pool.write_slot(slot, key, batch, &scratch, cost);
            EngineStats::add(&self.stats.pushes, 1);
            EngineStats::add(&self.stats.flushes, 1);
        }
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        // The store is always durable, but *not* batch-atomic: in-place
        // updates mean a crash mid-batch recovers a mixed state. We mark
        // the id for reporting; the checkpoint experiments exclude this
        // engine for exactly this reason (paper Observation 2).
        self.committed.store(batch, Ordering::Release);
        let mut cost = Cost::new();
        cost.charge(CostKind::Cpu, 100);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.committed.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        let slot = *self.index.read().get(&key)?;
        let mut scratch = vec![0f32; self.cfg.payload_f32s()];
        let mut cost = Cost::new();
        self.pool.read_slot(slot, &mut scratch, &mut cost)?;
        scratch.truncate(self.cfg.dim);
        Some(scratch)
    }

    fn num_keys(&self) -> usize {
        self.index.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::OptimizerKind;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    #[test]
    fn roundtrip_and_persistence_cost() {
        let ps = PmemHash::new(cfg());
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1], 1, &mut out, &mut cost);
        assert!(cost.ns(CostKind::PmemWrite) > 0, "init persists");
        let mut push_cost = Cost::new();
        ps.push(&[1], &[1.0; 4], 1, &mut push_cost);
        assert!(push_cost.ns(CostKind::PmemRead) > 0);
        assert!(push_cost.ns(CostKind::PmemWrite) > 0, "in-place RMW");
        let w = ps.read_weights(1).unwrap();
        assert!((w[0] - (out[0] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn every_warm_read_is_a_pmem_read() {
        let ps = PmemHash::new(cfg());
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1], 1, &mut out, &mut cost);
        out.clear();
        let mut c2 = Cost::new();
        ps.pull(&[1], 2, &mut out, &mut c2);
        assert!(c2.ns(CostKind::PmemRead) >= 305);
        assert_eq!(ps.stats().hits, 0, "there is no cache to hit");
    }

    #[test]
    fn init_parity() {
        let ps = PmemHash::new(cfg());
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[77], 1, &mut out, &mut cost);
        let expect: Vec<f32> = (0..4)
            .map(|i| oe_core::init::init_weight(42, 77, i, 0.01))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn state_survives_crash_but_not_batch_atomic() {
        use oe_simdevice::Media;
        use std::sync::Arc;
        let ps = PmemHash::new(cfg());
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2], 1, &mut out, &mut cost);
        ps.push(&[1, 2], &[0.5; 8], 1, &mut cost);
        // All writes are fenced: a crash keeps the latest values (this is
        // durability, not batch-consistency — versions may straddle a
        // batch boundary in a mid-push crash).
        let media = Arc::new(Media::from_crash(ps.pool().media().crash(9)));
        let mut rcost = Cost::new();
        let (_pool, report) = oe_pmem::scan::recover(media, &mut rcost).unwrap();
        // checkpoint id was never durably advanced → scan keeps nothing
        // newer than 0. This documents WHY the paper calls it unsuitable.
        assert_eq!(report.checkpoint_id, 0);
    }
}
