//! TF-PS: the framework-default parameter server used as the sanity-check
//! reference in the paper's Fig. 15 ("Tensorflow").
//!
//! Characteristics modelled from the paper's description:
//! - single-process, DRAM-resident embedding variables;
//! - per-lookup framework op-dispatch overhead much higher than a
//!   purpose-built PS;
//! - a global variable lock serializing sparse updates (no sharding) —
//!   which is why its relative performance degrades as GPUs are added;
//! - no distributed synchronous-training support (the reason the paper
//!   could not run it on the 500 GB model, §VI-F).

use crate::ckpt_log::{CkptDevice, CkptLog};
use oe_core::config::{HASH_PROBE_NS, INIT_ENTRY_NS, OPT_FLOP_NS_PER_F32};
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::init::init_payload;
use oe_core::optimizer::Optimizer;
use oe_core::stats::{EngineStats, StatsSnapshot};
use oe_core::{BatchId, Key, NodeConfig};
use oe_simdevice::{Cost, CostKind, DeviceTiming};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Framework op-dispatch overhead per embedding lookup/update (ns):
/// graph-op scheduling, tensor wrapping, kernel launch bookkeeping.
const FRAMEWORK_OP_NS: u64 = 220;
/// Fixed per-op work inside the global variable lock (ns).
const VARIABLE_LOCK_NS: u64 = 90;
/// Additional lock-held time per payload byte (ns/B): the gather/scatter
/// copies through the framework's tensor buffers happen under the
/// variable lock, so bigger embedding dims hold the lock longer — the
/// reason the paper's TF gap widens from dim 16 to dim 64 (Fig. 15).
const VARIABLE_LOCK_NS_PER_BYTE: f64 = 3.0;

fn lock_held_ns(dim: usize) -> u64 {
    VARIABLE_LOCK_NS + (dim as f64 * 4.0 * VARIABLE_LOCK_NS_PER_BYTE) as u64
}

/// The framework-default single-server baseline.
pub struct TfPs {
    cfg: NodeConfig,
    opt: Optimizer,
    table: Mutex<HashMap<Key, Box<[f32]>>>,
    log: CkptLog,
    stats: EngineStats,
    dram: DeviceTiming,
}

impl TfPs {
    /// Create the server; full-model checkpoints go to `device`.
    pub fn new(cfg: NodeConfig, device: CkptDevice) -> Self {
        cfg.validate();
        let log = CkptLog::create(device, cfg.payload_f32s(), 1 << 20);
        Self {
            opt: cfg.optimizer.build(),
            table: Mutex::new(HashMap::new()),
            log,
            stats: EngineStats::default(),
            dram: DeviceTiming::dram(),
            cfg,
        }
    }
}

impl PsEngine for TfPs {
    fn name(&self) -> &'static str {
        "Tensorflow"
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        out.reserve(keys.len() * dim);
        let mut g = self.table.lock();
        for &key in keys {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS + FRAMEWORK_OP_NS);
            cost.charge(CostKind::Serialized, lock_held_ns(dim));
            cost.charge(CostKind::DramTransfer, self.dram.read_ns((dim * 4) as u64));
            match g.get(&key) {
                Some(p) => {
                    out.extend_from_slice(&p[..dim]);
                    EngineStats::add(&self.stats.hits, 1);
                }
                None => {
                    let mut payload = vec![0f32; self.cfg.payload_f32s()];
                    init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, &mut payload);
                    out.extend_from_slice(&payload[..dim]);
                    g.insert(key, payload.into_boxed_slice());
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                    EngineStats::add(&self.stats.new_entries, 1);
                }
            }
            EngineStats::add(&self.stats.pulls, 1);
        }
        let _ = batch;
    }

    fn end_pull_phase(&self, _batch: BatchId) -> MaintenanceReport {
        MaintenanceReport::default()
    }

    fn push(&self, keys: &[Key], grads: &[f32], _batch: BatchId, cost: &mut Cost) {
        assert_eq!(grads.len(), keys.len() * self.cfg.dim);
        let dim = self.cfg.dim;
        let mut g = self.table.lock();
        for (i, &key) in keys.iter().enumerate() {
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + FRAMEWORK_OP_NS + dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            // Sparse updates serialize on the variable lock.
            cost.charge(CostKind::Serialized, lock_held_ns(dim));
            cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
            let payload = g.get_mut(&key).expect("pushed key exists");
            self.opt.apply(dim, payload, &grads[i * dim..(i + 1) * dim]);
            EngineStats::add(&self.stats.pushes, 1);
        }
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        // TF default: full variable dump (not incremental).
        let mut cost = Cost::new();
        let g = self.table.lock();
        let n = self
            .log
            .dump(g.iter().map(|(k, p)| (*k, &p[..])), batch, &mut cost);
        EngineStats::add(&self.stats.ckpt_entries_written, n);
        EngineStats::add(&self.stats.ckpt_commits, 1);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.log.committed()
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        self.table
            .lock()
            .get(&key)
            .map(|p| p[..self.cfg.dim].to_vec())
    }

    fn num_keys(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::OptimizerKind;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    #[test]
    fn roundtrip_with_framework_overhead() {
        let ps = TfPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1], 1, &mut out, &mut cost);
        assert!(cost.ns(CostKind::Cpu) >= HASH_PROBE_NS + FRAMEWORK_OP_NS);
        assert!(cost.ns(CostKind::Serialized) > 0);
        ps.push(&[1], &[2.0; 4], 1, &mut cost);
        let w = ps.read_weights(1).unwrap();
        assert!((w[0] - (out[0] - 2.0)).abs() < 1e-6);
    }

    #[test]
    fn full_dump_checkpoint_writes_everything() {
        let ps = TfPs::new(cfg(), CkptDevice::Ssd);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        ps.pull(&[1, 2, 3], 1, &mut out, &mut cost);
        ps.request_checkpoint(1);
        ps.request_checkpoint(2);
        // Full (not incremental): 3 entries dumped both times.
        assert_eq!(ps.stats().ckpt_entries_written, 6);
    }

    #[test]
    fn per_op_cost_higher_than_dram_ps() {
        use crate::dram_ps::DramPs;
        let tf = TfPs::new(cfg(), CkptDevice::Ssd);
        let dram = DramPs::new(cfg(), CkptDevice::Ssd);
        let keys: Vec<u64> = (0..100).collect();
        let mut out = Vec::new();
        let (mut ct, mut cd) = (Cost::new(), Cost::new());
        tf.pull(&keys, 1, &mut out, &mut ct);
        out.clear();
        dram.pull(&keys, 1, &mut out, &mut cd);
        assert!(
            ct.total_ns() > cd.total_ns(),
            "tf={} dram={}",
            ct.total_ns(),
            cd.total_ns()
        );
    }
}
