//! Wall-clock benchmarks of Algorithm 2: the pipelined cache-maintenance
//! pass and the two checkpointing schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use oe_baselines::{CkptDevice, IncrementalCkpt};
use oe_core::engine::PsEngine;
use oe_core::{NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::Cost;
use std::hint::black_box;

const DIM: usize = 64;

fn cfg(cache_entries: usize) -> NodeConfig {
    let mut c = NodeConfig::small(DIM);
    c.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    c.cache_bytes = cache_entries * c.bytes_per_cached_entry();
    c.pmem_capacity = 1 << 26;
    c
}

fn bench_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("maintenance");
    g.sample_size(15);

    // Steady-state maintenance: mostly LRU reorders, some evict/load.
    g.bench_function("algorithm2_1k_accesses", |b| {
        let node = PsNode::new(cfg(512));
        let keys: Vec<u64> = (0..1024).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&keys, 1, &mut out, &mut cost);
        node.end_pull_phase(1);
        let mut batch = 2u64;
        b.iter(|| {
            out.clear();
            let mut cost = Cost::new();
            node.pull(&keys, batch, &mut out, &mut cost);
            let mut mcost = Cost::new();
            let r = node.run_maintenance(batch, &mut mcost);
            batch += 1;
            black_box(r)
        })
    });

    g.bench_function("batch_aware_checkpoint_cycle", |b| {
        let node = PsNode::new(cfg(2048));
        let keys: Vec<u64> = (0..1024).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&keys, 1, &mut out, &mut cost);
        node.end_pull_phase(1);
        node.push(&keys, &vec![0.01; 1024 * DIM], 1, &mut cost);
        let mut batch = 2u64;
        b.iter(|| {
            let mut cost = Cost::new();
            out.clear();
            node.pull(&keys, batch, &mut out, &mut cost);
            node.end_pull_phase(batch);
            node.push(&keys, &vec![0.01; 1024 * DIM], batch, &mut cost);
            node.request_checkpoint(batch);
            batch += 1;
            black_box(node.committed_checkpoint())
        })
    });

    g.bench_function("incremental_checkpoint_dump_1k", |b| {
        let node = IncrementalCkpt::new(PsNode::new(cfg(2048)), CkptDevice::Pmem);
        let keys: Vec<u64> = (0..1024).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&keys, 1, &mut out, &mut cost);
        node.end_pull_phase(1);
        let mut batch = 1u64;
        b.iter(|| {
            let mut cost = Cost::new();
            node.push(&keys, &vec![0.01; 1024 * DIM], batch, &mut cost);
            let c = node.request_checkpoint(batch);
            batch += 1;
            black_box(c.total_ns())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
