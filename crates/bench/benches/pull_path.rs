//! Wall-clock pull-path benchmarks: cache hits, PMem misses, and the
//! equivalent paths on the baselines — the code the paper's Algorithm 1
//! puts on the training critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use oe_baselines::{CkptDevice, DramPs, OriCache, PmemHash};
use oe_core::engine::PsEngine;
use oe_core::{NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::Cost;
use std::hint::black_box;

const DIM: usize = 64;
const KEYS: u64 = 4096;

fn cfg(cache_entries: usize) -> NodeConfig {
    let mut c = NodeConfig::small(DIM);
    c.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    c.cache_bytes = cache_entries * c.bytes_per_cached_entry();
    c.pmem_capacity = 1 << 26;
    c
}

fn warm(e: &dyn PsEngine) -> Vec<u64> {
    let keys: Vec<u64> = (0..KEYS).collect();
    let mut out = Vec::new();
    let mut cost = Cost::new();
    e.pull(&keys, 1, &mut out, &mut cost);
    e.end_pull_phase(1);
    keys
}

fn bench_pull(c: &mut Criterion) {
    let mut g = c.benchmark_group("pull_1k_keys");
    g.sample_size(20);

    // All keys cached: the hot path.
    {
        let node = PsNode::new(cfg(KEYS as usize * 2));
        let keys = warm(&node);
        let mut out = Vec::with_capacity(1024 * DIM);
        let mut batch = 2u64;
        g.bench_function("oe_hits", |b| {
            b.iter(|| {
                out.clear();
                let mut cost = Cost::new();
                node.pull(&keys[..1024], batch, &mut out, &mut cost);
                batch += 1;
                black_box(out.len())
            })
        });
    }

    // Tiny cache: mostly PMem misses.
    {
        let node = PsNode::new(cfg(64));
        let keys = warm(&node);
        let mut out = Vec::with_capacity(1024 * DIM);
        let mut batch = 2u64;
        g.bench_function("oe_misses", |b| {
            b.iter(|| {
                out.clear();
                let mut cost = Cost::new();
                node.pull(&keys[..1024], batch, &mut out, &mut cost);
                node.end_pull_phase(batch);
                batch += 1;
                black_box(out.len())
            })
        });
    }

    for (name, engine) in [
        (
            "dram_ps",
            Box::new(DramPs::new(cfg(64), CkptDevice::Ssd)) as Box<dyn PsEngine>,
        ),
        (
            "ori_cache",
            Box::new(OriCache::new(cfg(2048), CkptDevice::Pmem)),
        ),
        ("pmem_hash", Box::new(PmemHash::new(cfg(64)))),
    ] {
        let keys = warm(engine.as_ref());
        let mut out = Vec::with_capacity(1024 * DIM);
        let mut batch = 2u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                out.clear();
                let mut cost = Cost::new();
                engine.pull(&keys[..1024], batch, &mut out, &mut cost);
                batch += 1;
                black_box(out.len())
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_pull);
criterion_main!(benches);
