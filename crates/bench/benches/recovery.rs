//! Wall-clock recovery benchmarks (the functional side of Fig. 14):
//! crash-image construction, pool scan, and index rebuild.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oe_core::engine::PsEngine;
use oe_core::recovery::recover_node;
use oe_core::{NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::{Cost, Media};
use std::hint::black_box;
use std::sync::Arc;

fn cfg() -> NodeConfig {
    let mut c = NodeConfig::small(16);
    c.optimizer = OptimizerKind::Sgd { lr: 0.1 };
    c.cache_bytes = 512 * c.bytes_per_cached_entry();
    c.pmem_capacity = 1 << 25;
    c
}

fn trained_node(keys: u64) -> PsNode {
    let node = PsNode::new(cfg());
    let key_list: Vec<u64> = (0..keys).collect();
    let mut out = Vec::new();
    let mut cost = Cost::new();
    for b in 1..=3 {
        out.clear();
        node.pull(&key_list, b, &mut out, &mut cost);
        node.end_pull_phase(b);
        node.push(&key_list, &vec![0.01; key_list.len() * 16], b, &mut cost);
    }
    node.request_checkpoint(3);
    out.clear();
    node.pull(&key_list, 4, &mut out, &mut cost);
    node.end_pull_phase(4);
    node
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);

    for keys in [1_000u64, 8_000] {
        let node = trained_node(keys);
        g.bench_function(format!("crash_and_recover_{keys}_keys"), |b| {
            b.iter_batched(
                || Arc::new(Media::from_crash(node.pool().media().crash(42))),
                |media| {
                    let mut cost = Cost::new();
                    let (n, report) = recover_node(media, cfg(), &mut cost).expect("recover");
                    black_box((n.num_keys(), report.resume_batch))
                },
                BatchSize::SmallInput,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
