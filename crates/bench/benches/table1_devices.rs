//! Wall-clock microbenchmarks of the simulated devices (Table I's
//! subjects): media write/flush/fence/read paths and the crash snapshot.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oe_simdevice::{Cost, Media, MediaConfig};
use std::hint::black_box;

fn bench_media(c: &mut Criterion) {
    let mut g = c.benchmark_group("media");
    g.sample_size(20);

    g.bench_function("pmem_write_persist_576B", |b| {
        let media = Media::new(MediaConfig::pmem(1 << 22));
        let payload = vec![7u8; 576];
        let mut off = 0u64;
        b.iter(|| {
            let mut cost = Cost::new();
            media.write(off % (1 << 21), &payload, &mut cost);
            media.persist(off % (1 << 21), 576, &mut cost);
            off += 576;
            black_box(cost.total_ns())
        })
    });

    g.bench_function("pmem_read_576B", |b| {
        let media = Media::new(MediaConfig::pmem(1 << 22));
        let payload = vec![7u8; 576];
        let mut cost = Cost::new();
        media.write(0, &payload, &mut cost);
        media.persist(0, 576, &mut cost);
        let mut buf = vec![0u8; 576];
        b.iter(|| {
            let mut cost = Cost::new();
            media.read(0, &mut buf, &mut cost);
            black_box(buf[0])
        })
    });

    g.bench_function("dram_write_576B", |b| {
        let media = Media::new(MediaConfig::dram(1 << 22));
        let payload = vec![7u8; 576];
        b.iter(|| {
            let mut cost = Cost::new();
            media.write(0, &payload, &mut cost);
            black_box(cost.total_ns())
        })
    });

    g.bench_function("crash_snapshot_1MiB_dirty", |b| {
        b.iter_batched(
            || {
                let media = Media::new(MediaConfig::pmem(1 << 21));
                let mut cost = Cost::new();
                let chunk = vec![1u8; 4096];
                for i in 0..256u64 {
                    media.write(i * 4096, &chunk, &mut cost);
                    media.flush(i * 4096, 4096, &mut cost);
                }
                media
            },
            |media| black_box(media.crash(42)),
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_media);
criterion_main!(benches);
