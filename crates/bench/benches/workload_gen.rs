//! Wall-clock benchmarks of workload generation and analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use oe_workload::analyze::che_miss_rate;
use oe_workload::{CriteoSynth, SkewModel, WorkloadGen, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(20);

    g.bench_function("skew_sample_10k", |b| {
        let model = SkewModel::paper_fit();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc ^= model.sample_rank(&mut rng, 1_000_000);
            }
            black_box(acc)
        })
    });

    g.bench_function("worker_batch_2048x8", |b| {
        let gen = WorkloadGen::new(WorkloadSpec {
            num_keys: 1_000_000,
            fields: 8,
            batch_size: 2048,
            workers: 1,
            skew: SkewModel::paper_fit(),
            seed: 3,
            drift_keys_per_batch: 0,
        });
        let mut idx = 0u64;
        b.iter(|| {
            idx += 1;
            black_box(gen.worker_batch(idx, 0).unique_keys.len())
        })
    });

    g.bench_function("criteo_sample_batch_256", |b| {
        let synth = CriteoSynth::new(9);
        let mut start = 0u64;
        b.iter(|| {
            start += 256;
            black_box(synth.batch(start, 256).len())
        })
    });

    g.bench_function("che_miss_rate_100k_keys", |b| {
        let probs: Vec<f64> = (0..100_000)
            .map(|i| (-(i as f64) / 5_000.0).exp() + 1e-9)
            .collect();
        b.iter(|| black_box(che_miss_rate(&probs, 2_000)))
    });

    g.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
