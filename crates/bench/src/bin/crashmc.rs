//! Crash-point enumeration bench: durability coverage JSON artifact.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin crashmc            # exhaustive
//! cargo run --release -p oe-bench --bin crashmc -- --smoke # CI shape
//! cargo run --release -p oe-bench --bin crashmc -- --smoke --out BENCH_crashmc.json
//! ```

use oe_bench::crashmc::{print_report, run, CrashMcBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: crashmc [--smoke] [--out PATH]   (unknown arg: {other})");
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        CrashMcBenchConfig::smoke()
    } else {
        CrashMcBenchConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    if report.violations_found > 0 {
        eprintln!(
            "FAIL: {} durability violations at enumerated crash points",
            report.violations_found
        );
        std::process::exit(1);
    }
}
