//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin figures -- all
//! cargo run --release -p oe-bench --bin figures -- fig7 fig8
//! cargo run --release -p oe-bench --bin figures -- --quick all
//! ```

use oe_bench::{figures, Scenario};
use oe_simdevice::clock::secs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if ids.is_empty() {
        eprintln!(
            "usage: figures [--quick] <id>...\n  ids: all table1 table2 table5 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 latency ablations pullpush kernels failover crashmc rebalance pipeline serve"
        );
        std::process::exit(2);
    }
    let sc = if quick {
        Scenario::quick()
    } else {
        Scenario::default_paper()
    };
    // Default checkpoint interval: a few checkpoints per measured window
    // (the paper's 20-minute default scaled to the simulated epoch).
    let interval = if quick { secs(0.01) } else { secs(0.025) };

    println!(
        "scenario: {} keys, dim {}, {} fields, batch {}, cache {:.3}% of model, {} warm + {} measured batches",
        sc.num_keys,
        sc.dim,
        sc.fields,
        sc.batch_size,
        sc.cache_frac * 100.0,
        sc.warm_batches,
        sc.measure_batches
    );

    for id in ids {
        match id {
            "all" => figures::all(&sc, interval),
            "table1" => figures::table1(&sc),
            "table2" => figures::table2(&sc),
            "table5" => figures::table5(&sc),
            "fig2" => figures::fig2(&sc),
            "fig3" => figures::fig3(&sc),
            "fig6" => figures::fig6(&sc, interval),
            "fig7" => figures::fig7(&sc),
            "fig8" => figures::fig8(&sc),
            "fig9" => figures::fig9(&sc),
            "fig10" => figures::fig10(&sc),
            "fig11" => figures::fig11(&sc),
            "fig12" => figures::fig12(&sc, interval),
            "fig13" => figures::fig13(&sc, interval),
            "fig14" => figures::fig14(&sc),
            "ablations" => figures::ablations(&sc),
            "fig15" => figures::fig15(&sc),
            "latency" => figures::latency(&sc),
            "pullpush" => figures::pullpush(&sc),
            "kernels" => figures::kernels(&sc),
            "failover" => figures::failover(&sc),
            "crashmc" => figures::crashmc(&sc),
            "rebalance" => figures::rebalance(&sc),
            "pipeline" => figures::pipeline(&sc),
            "serve" => figures::serve(&sc),
            other => {
                eprintln!("unknown figure id: {other}");
                std::process::exit(2);
            }
        }
    }
}
