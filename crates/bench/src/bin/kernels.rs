//! Optimizer-kernel and codec wall-clock microbench, JSON artifact
//! emitter, trajectory recorder, and perf-regression gate.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin kernels              # full sweep
//! cargo run --release -p oe-bench --bin kernels -- --smoke \
//!     --out BENCH_kernels.json \
//!     --record BENCH_trajectory.json \
//!     --gate BENCH_baseline.json          # CI: fail on >30% regression
//! cargo run --release -p oe-bench --bin kernels -- --smoke \
//!     --gate BENCH_baseline.json --update-baseline   # accept new numbers
//! ```
//!
//! Only speedup *ratios* (vector/scalar, view/owned) are gated for
//! this bench — absolute Mf32/s and MB/s rates are machine-dependent
//! and recorded for the trajectory only.

use oe_bench::kernels::{metrics, print_report, run, KernelsConfig};
use oe_bench::trajectory::record_and_gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut record: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => p.clone(),
            None => {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(path_arg("--out")),
            "--record" => record = Some(path_arg("--record")),
            "--gate" => gate = Some(path_arg("--gate")),
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "usage: kernels [--smoke] [--out PATH] [--record TRAJECTORY] \
                     [--gate BASELINE] [--update-baseline]   (unknown arg: {other})"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        KernelsConfig::smoke()
    } else {
        KernelsConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    // Record everything; gate only the noise-robust aggregates — the
    // sweep-wide geomean speedups and the codec decode ratio. Per-cell
    // wall-clock ratios swing too much run-to-run to hold to a 30%
    // band, but a vanished fast path still drags every aggregate down.
    let all = metrics(&report);
    let gated: Vec<(String, f64)> = all
        .iter()
        .filter(|(k, _)| k.starts_with("geomean_") || k.as_str() == "codec_speedup_decode")
        .cloned()
        .collect();
    if let Some(p) = &record {
        if !record_and_gate("kernels", &all, Some(p), None, false) {
            std::process::exit(1);
        }
    }
    if !record_and_gate("kernels", &gated, None, gate.as_deref(), update) {
        std::process::exit(1);
    }
}
