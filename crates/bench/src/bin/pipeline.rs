//! Pipelined-training frontier bench, JSON artifact emitter, trajectory
//! recorder, and perf-regression gate.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin pipeline              # paper shape
//! cargo run --release -p oe-bench --bin pipeline -- --smoke \
//!     --out BENCH_pipeline.json \
//!     --record BENCH_trajectory.json \
//!     --gate BENCH_baseline.json          # CI: fail on >30% regression
//! cargo run --release -p oe-bench --bin pipeline -- --smoke \
//!     --gate BENCH_baseline.json --update-baseline   # accept new numbers
//! ```
//!
//! The gate holds the deterministic virtual-time metrics absolutely —
//! `bit_identical` is baselined at 1.0, so any run whose staleness-0
//! arm diverges from the sync trainer fails outright — and the noisy
//! wall-clock ratios only through their geometric mean. Per-arm wall
//! times and held-out accuracies are recorded for the trajectory but
//! never gated.

use oe_bench::pipeline::{gated_metrics, metrics, print_report, run, PipelineBenchConfig};
use oe_bench::trajectory::record_and_gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut record: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => p.clone(),
            None => {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(path_arg("--out")),
            "--record" => record = Some(path_arg("--record")),
            "--gate" => gate = Some(path_arg("--gate")),
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "usage: pipeline [--smoke] [--out PATH] [--record TRAJECTORY] \
                     [--gate BASELINE] [--update-baseline]   (unknown arg: {other})"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        PipelineBenchConfig::smoke()
    } else {
        PipelineBenchConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    let all = metrics(&report);
    if let Some(p) = &record {
        if !record_and_gate("pipeline", &all, Some(p), None, false) {
            std::process::exit(1);
        }
    }
    if !record_and_gate(
        "pipeline",
        &gated_metrics(&report),
        None,
        gate.as_deref(),
        update,
    ) {
        std::process::exit(1);
    }
}
