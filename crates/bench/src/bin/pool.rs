//! Disaggregated-PMem bench: local vs DRAM vs remote-pool storage arms
//! at equal simulated cost, fabric congestion scaling, pool-resident vs
//! crash-image recovery, JSON artifact emitter, trajectory recorder,
//! and perf-regression gate.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin pool            # paper shape
//! cargo run --release -p oe-bench --bin pool -- --smoke # CI shape
//! cargo run --release -p oe-bench --bin pool -- --smoke \
//!     --out BENCH_pool.json \
//!     --record BENCH_trajectory.json \
//!     --gate BENCH_baseline.json          # CI: fail on >30% regression
//! ```
//!
//! Virtual epoch times, the bit-identity bit, and the recovery ratio
//! are deterministic and gated absolutely; wall-clock time enters the
//! gate only as one geomean.

use oe_bench::pool::{metrics, print_report, run, PoolBenchConfig};
use oe_bench::trajectory::record_and_gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut record: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => p.clone(),
            None => {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(path_arg("--out")),
            "--record" => record = Some(path_arg("--record")),
            "--gate" => gate = Some(path_arg("--gate")),
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "usage: pool [--smoke] [--out PATH] [--record TRAJECTORY] \
                     [--gate BASELINE] [--update-baseline]   (unknown arg: {other})"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        PoolBenchConfig::smoke()
    } else {
        PoolBenchConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    let m = metrics(&report);
    if !record_and_gate("pool", &m, record.as_deref(), gate.as_deref(), update) {
        std::process::exit(1);
    }
}
