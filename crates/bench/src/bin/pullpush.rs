//! Shard-plan pull/push throughput bench, JSON artifact emitter,
//! trajectory recorder, and perf-regression gate.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin pullpush            # paper shape
//! cargo run --release -p oe-bench --bin pullpush -- --smoke # CI shape
//! cargo run --release -p oe-bench --bin pullpush -- --smoke \
//!     --out BENCH_pullpush.json \
//!     --record BENCH_trajectory.json \
//!     --gate BENCH_baseline.json          # CI: fail on >30% regression
//! ```
//!
//! All gated pullpush metrics are *virtual-time* throughputs and
//! speedups — deterministic cost-model arithmetic, identical on every
//! machine — so a gate failure here is always a real code change, not
//! noise.

use oe_bench::pullpush::{metrics, print_report, run, PullPushConfig};
use oe_bench::trajectory::record_and_gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut record: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => p.clone(),
            None => {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(path_arg("--out")),
            "--record" => record = Some(path_arg("--record")),
            "--gate" => gate = Some(path_arg("--gate")),
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "usage: pullpush [--smoke] [--out PATH] [--record TRAJECTORY] \
                     [--gate BASELINE] [--update-baseline]   (unknown arg: {other})"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        PullPushConfig::smoke()
    } else {
        PullPushConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    let m = metrics(&report);
    if !record_and_gate("pullpush", &m, record.as_deref(), gate.as_deref(), update) {
        std::process::exit(1);
    }
}
