//! Skew-aware rebalancing bench: hot-key storm vs live shard drain,
//! JSON artifact emitter.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin rebalance            # paper shape
//! cargo run --release -p oe-bench --bin rebalance -- --smoke # CI shape
//! cargo run --release -p oe-bench --bin rebalance -- --smoke --out BENCH_rebalance.json
//! ```

use oe_bench::rebalance::{print_report, run, RebalanceBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: rebalance [--smoke] [--out PATH]   (unknown arg: {other})");
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        RebalanceBenchConfig::smoke()
    } else {
        RebalanceBenchConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
}
