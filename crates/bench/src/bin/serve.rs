//! Serving-plane bench: recall/latency tradeoff sweep plus open-loop
//! QPS replay with a mid-traffic snapshot flip, JSON artifact emitter,
//! trajectory recorder, and perf-regression gate.
//!
//! ```sh
//! cargo run --release -p oe-bench --bin serve            # paper shape
//! cargo run --release -p oe-bench --bin serve -- --smoke # CI shape
//! cargo run --release -p oe-bench --bin serve -- --smoke \
//!     --out BENCH_serve.json \
//!     --record BENCH_trajectory.json \
//!     --gate BENCH_baseline.json          # CI: fail on >30% regression
//! ```
//!
//! Recall, virtual speedups, and the consistency bit are deterministic
//! and gated absolutely; wall-clock latency enters the gate only as one
//! geomean.

use oe_bench::serve::{metrics, print_report, run, ServeBenchConfig};
use oe_bench::trajectory::record_and_gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut record: Option<String> = None;
    let mut gate: Option<String> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut path_arg = |flag: &str| match it.next() {
            Some(p) => p.clone(),
            None => {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(path_arg("--out")),
            "--record" => record = Some(path_arg("--record")),
            "--gate" => gate = Some(path_arg("--gate")),
            "--update-baseline" => update = true,
            other => {
                eprintln!(
                    "usage: serve [--smoke] [--out PATH] [--record TRAJECTORY] \
                     [--gate BASELINE] [--update-baseline]   (unknown arg: {other})"
                );
                std::process::exit(2);
            }
        }
    }
    let cfg = if smoke {
        ServeBenchConfig::smoke()
    } else {
        ServeBenchConfig::paper()
    };
    let report = run(&cfg);
    print_report(&report);
    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n").expect("write bench artifact");
        println!("wrote {path}");
    }
    let m = metrics(&report);
    if !record_and_gate("serve", &m, record.as_deref(), gate.as_deref(), update) {
        std::process::exit(1);
    }
}
