//! Crash-point enumeration bench: sweep every (or every `stride`-th)
//! persistence event of the reference training schedule per optimizer,
//! count invariant checks, and report violations. JSON artifact
//! `BENCH_crashmc.json` — the repo's machine-checkable durability
//! coverage statement.

use oe_core::OptimizerKind;
use oe_train::crashmc::{recovery_crash_sweep, reference, sweep, CrashMcConfig};
use serde::Serialize;

/// Sweep shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct CrashMcBenchConfig {
    /// Event-index stride (1 = exhaustive).
    pub stride: u64,
    /// Torn-write seeds per index.
    pub seeds_per_index: u64,
    /// Sweep one arm per optimizer.
    pub optimizers: Vec<OptimizerKind>,
    /// Source crash points (as fractions ×100 of the event stream) for
    /// the crash-during-recovery sweep.
    pub recovery_points_pct: Vec<u64>,
}

impl CrashMcBenchConfig {
    /// Exhaustive run: every event index, every optimizer.
    pub fn paper() -> Self {
        Self {
            stride: 1,
            seeds_per_index: 2,
            optimizers: vec![
                OptimizerKind::Sgd { lr: 0.5 },
                OptimizerKind::Adagrad {
                    lr: 0.05,
                    eps: 1e-8,
                },
                OptimizerKind::Adam {
                    lr: 0.01,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                },
            ],
            recovery_points_pct: vec![50, 75, 99],
        }
    }

    /// CI smoke shape: stride-sampled, single seed, two optimizers.
    pub fn smoke() -> Self {
        Self {
            stride: 7,
            seeds_per_index: 1,
            optimizers: vec![
                OptimizerKind::Sgd { lr: 0.5 },
                OptimizerKind::Adagrad {
                    lr: 0.05,
                    eps: 1e-8,
                },
            ],
            recovery_points_pct: vec![99],
        }
    }

    fn arm(&self, optimizer: OptimizerKind) -> CrashMcConfig {
        let mut cfg = CrashMcConfig::exhaustive(optimizer);
        cfg.stride = self.stride;
        cfg.seeds_per_index = self.seeds_per_index;
        cfg
    }
}

/// One optimizer's sweep outcome.
#[derive(Debug, Serialize)]
pub struct CrashMcArm {
    /// Optimizer under test.
    pub optimizer: OptimizerKind,
    /// Persistence events in the reference run.
    pub total_events: u64,
    /// Event indices evaluated.
    pub indices_checked: u64,
    /// Invariant checks evaluated (training-crash sweep).
    pub invariant_checks: u64,
    /// Crash points inside the recovery scan evaluated.
    pub recovery_indices_checked: u64,
    /// Invariant checks evaluated in the recovery-crash sweep.
    pub recovery_invariant_checks: u64,
    /// All violations found (training + recovery sweeps).
    pub violations: Vec<String>,
    /// Wall-clock for this arm, ms.
    pub wall_ms: u64,
}

/// Full bench artifact (serialized to `BENCH_crashmc.json` by ci.sh).
#[derive(Debug, Serialize)]
pub struct CrashMcReport {
    /// The configuration swept.
    pub config: CrashMcBenchConfig,
    /// Per-optimizer arms.
    pub arms: Vec<CrashMcArm>,
    /// Events enumerated across all arms.
    pub events_enumerated: u64,
    /// Invariant checks evaluated across all arms and sweeps.
    pub invariant_checks: u64,
    /// Violations found across all arms (0 = the protocol held at
    /// every enumerated crash point).
    pub violations_found: u64,
}

/// Run every arm of the sweep.
pub fn run(cfg: &CrashMcBenchConfig) -> CrashMcReport {
    let mut arms = Vec::new();
    for &optimizer in &cfg.optimizers {
        let arm_cfg = cfg.arm(optimizer);
        let start = std::time::Instant::now();
        let s = sweep(&arm_cfg);
        let mut violations = s.violations.clone();

        // Crash inside the recovery scan at a few source crash points.
        let r = reference(&arm_cfg);
        let mut rec_indices = 0;
        let mut rec_checks = 0;
        for (i, pct) in cfg.recovery_points_pct.iter().enumerate() {
            let at_event = (r.total_events.saturating_sub(1)) * pct.min(&100) / 100;
            let rs = recovery_crash_sweep(&arm_cfg, at_event, 0xC4A5 + i as u64);
            rec_indices += rs.indices_checked;
            rec_checks += rs.invariant_checks;
            violations.extend(rs.violations);
        }

        arms.push(CrashMcArm {
            optimizer,
            total_events: s.total_events,
            indices_checked: s.indices_checked,
            invariant_checks: s.invariant_checks,
            recovery_indices_checked: rec_indices,
            recovery_invariant_checks: rec_checks,
            violations,
            wall_ms: start.elapsed().as_millis() as u64,
        });
    }
    CrashMcReport {
        events_enumerated: arms.iter().map(|a| a.indices_checked).sum(),
        invariant_checks: arms
            .iter()
            .map(|a| a.invariant_checks + a.recovery_invariant_checks)
            .sum(),
        violations_found: arms.iter().map(|a| a.violations.len() as u64).sum(),
        config: cfg.clone(),
        arms,
    }
}

fn optimizer_name(o: &OptimizerKind) -> &'static str {
    match o {
        OptimizerKind::Sgd { .. } => "sgd",
        OptimizerKind::Adagrad { .. } => "adagrad",
        OptimizerKind::Adam { .. } => "adam",
    }
}

/// Human-readable table, printed by `figures -- crashmc`.
pub fn print_report(r: &CrashMcReport) {
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>11} {:>10} {:>9}",
        "optimizer", "events", "indices", "checks", "rec-indices", "violations", "wall ms"
    );
    for a in &r.arms {
        println!(
            "{:<22} {:>8} {:>9} {:>9} {:>11} {:>10} {:>9}",
            optimizer_name(&a.optimizer),
            a.total_events,
            a.indices_checked,
            a.invariant_checks + a.recovery_invariant_checks,
            a.recovery_indices_checked,
            a.violations.len(),
            a.wall_ms
        );
        for v in &a.violations {
            println!("  VIOLATION: {v}");
        }
    }
    println!(
        "total: {} crash points enumerated, {} invariant checks, {} violations",
        r.events_enumerated, r.invariant_checks, r.violations_found
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean() {
        let r = run(&CrashMcBenchConfig::smoke());
        assert_eq!(r.violations_found, 0, "{:#?}", r.arms);
        assert!(r.events_enumerated > 0);
        assert!(r.invariant_checks > r.events_enumerated);
        assert_eq!(r.arms.len(), 2);
    }
}
