//! Fault-tolerance bench: retry overhead on a lossy wire and failover
//! recovery latency, JSON artifact `BENCH_failover.json`.
//!
//! Three measurements against the same scaled workload:
//!
//! - **drop sweep** — train over a seeded fault-injected wire at 0%,
//!   1% and 5% frame loss; report virtual-time overhead vs the 0% arm
//!   and the retry/timeout counters that paid for it. Every arm must
//!   end bit-identical to a fault-free local run (exactly-once
//!   delivery via idempotence tokens + the server replay cache).
//! - **recovery** — promote a [`CheckpointReplica`] from a trained,
//!   checkpointed primary's media and report the virtual recovery
//!   latency (crash image + slot scan + index rebuild under the
//!   recovery contention model) — the RPC-layer analogue of Fig. 14.
//! - **kill run** — kill the primary mid-epoch through the fault
//!   injector, fail over to the replica, rewind to the committed
//!   checkpoint, and finish; report the end-to-end overhead of the
//!   absorbed failure.

use oe_core::engine::PsEngine;
use oe_core::{CheckpointScheduler, NodeConfig, OptimizerKind, PsNode};
use oe_net::{
    loopback, CheckpointReplica, FaultInjector, FaultSpec, NetConfig, PsServer, RemotePs, Standby,
};
use oe_train::{SyncTrainer, TrainReport, TrainerConfig};
use oe_workload::{SkewModel, WorkloadGen, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;

/// Workload + fault shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverConfig {
    /// Embedding table size (distinct keys).
    pub num_keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Sparse fields per example.
    pub fields: usize,
    /// Examples per global batch.
    pub batch_size: usize,
    /// Synchronous trainer workers (GPUs).
    pub workers: u32,
    /// Batches per measured run.
    pub batches: u64,
    /// Frame-drop probabilities for the retry-overhead sweep.
    pub drop_rates: Vec<f64>,
    /// Fault-schedule / workload seed.
    pub seed: u64,
}

impl FailoverConfig {
    /// Paper-shaped run.
    pub fn paper() -> Self {
        Self {
            num_keys: 20_000,
            dim: 16,
            fields: 8,
            batch_size: 256,
            workers: 4,
            batches: 40,
            drop_rates: vec![0.0, 0.01, 0.05],
            seed: 0xFA17,
        }
    }

    /// Smoke-test run for CI: same shape, a fraction of the work.
    pub fn smoke() -> Self {
        Self {
            num_keys: 3_000,
            dim: 8,
            fields: 5,
            batch_size: 64,
            workers: 2,
            batches: 16,
            drop_rates: vec![0.0, 0.01, 0.05],
            seed: 0xFA17,
        }
    }

    fn workload(&self) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: self.num_keys,
            fields: self.fields,
            batch_size: self.batch_size,
            workers: self.workers as usize,
            skew: SkewModel::paper_fit(),
            seed: self.seed,
            drift_keys_per_batch: 0,
        }
    }

    fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = (self.num_keys as usize / 10).max(64) * cfg.bytes_per_cached_entry();
        cfg.pmem_capacity = 1 << 26;
        cfg
    }

    fn trainer_config(&self) -> TrainerConfig {
        let mut cfg = TrainerConfig::paper(self.workers);
        // Checkpoint every batch so a kill always has a recent
        // consistent point to promote from (bounded rewind).
        cfg.ckpt = CheckpointScheduler::every(1);
        cfg
    }

    /// RPCs per batch on the wire: one pull per worker, one flush, one
    /// push per worker, one checkpoint request.
    fn calls_per_batch(&self) -> u64 {
        2 * self.workers as u64 + 2
    }

    /// Kill the primary two thirds of the way through the run, on a
    /// pull — before that batch's flush commits the previous pending
    /// checkpoint, so the failover always pays a rewind (calls 0–1 are
    /// the connect handshake and the trainer's opening stats snapshot).
    fn kill_after_calls(&self) -> u64 {
        2 + self.calls_per_batch() * (self.batches * 2 / 3) + 1
    }
}

/// One arm of the drop-rate sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DropArm {
    /// Injected frame-drop probability (each direction).
    pub drop_rate: f64,
    /// End-to-end virtual training time.
    pub total_ns: u64,
    /// Client retries forced by the schedule.
    pub retries: u64,
    /// Deadline expiries (dropped frames surface as timeouts).
    pub timeouts: u64,
    /// Virtual-time overhead vs the 0% arm (0.05 == +5%).
    pub overhead_vs_clean: f64,
    /// Final weights bit-identical to a fault-free local run.
    pub bit_identical: bool,
}

/// Replica promotion cost, measured directly.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryResult {
    /// Batch the committed checkpoint ends at (training resumes at +1).
    pub resume_batch: u64,
    /// Virtual recovery latency: crash image, slot scan, index rebuild.
    pub recovery_ns: u64,
    /// Keys restored from the checkpoint.
    pub recovered_keys: usize,
    /// Recovery-scan partitions (threads).
    pub recovery_threads: u32,
}

/// Kill-mid-epoch failover run.
#[derive(Debug, Clone, Serialize)]
pub struct KillRun {
    /// Call index the primary died at.
    pub kill_after_calls: u64,
    /// Promotions the run absorbed.
    pub failovers: u64,
    /// Completed batches discarded by the checkpoint rewind.
    pub rewound_batches: u64,
    /// End-to-end virtual training time, recovery pause included.
    pub total_ns: u64,
    /// Virtual-time overhead vs a fault-free run.
    pub overhead_vs_clean: f64,
    /// Final weights bit-identical to a fault-free local run.
    pub bit_identical: bool,
}

/// Full bench artifact (serialized to `BENCH_failover.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct FailoverReport {
    /// The configuration measured.
    pub config: FailoverConfig,
    /// Fault-free local baseline, virtual ns.
    pub clean_total_ns: u64,
    /// Retry overhead at each drop rate.
    pub drops: Vec<DropArm>,
    /// Standby promotion latency.
    pub recovery: RecoveryResult,
    /// Kill-mid-epoch end-to-end failover.
    pub kill: KillRun,
}

/// Fault-free local run: the bit-identity reference and time baseline.
fn train_local(cfg: &FailoverConfig) -> (PsNode, TrainReport) {
    let node = PsNode::new(cfg.node_config());
    let gen = WorkloadGen::new(cfg.workload());
    let report = {
        let mut t = SyncTrainer::new(&node, &gen, cfg.trainer_config());
        t.run(1, cfg.batches)
    };
    (node, report)
}

/// Remote PS behind a fault-injected loopback wire. Returns the client;
/// server workers detach and drain when the transport closes.
fn faulty_remote(cfg: &FailoverConfig, fault: FaultSpec, standby: bool) -> RemotePs {
    let primary = PsNode::new(cfg.node_config());
    let media = Arc::clone(primary.pool().media());
    let engine: Arc<dyn PsEngine> = Arc::new(primary);
    let (ct, st) = loopback(64);
    drop(PsServer::spawn(engine, st, 4));
    let injector = Arc::new(FaultInjector::new(Arc::new(ct), fault));
    let remote = RemotePs::connect(injector, NetConfig::paper_default());
    if standby {
        remote.with_standby(Arc::new(CheckpointReplica::new(
            media,
            cfg.node_config(),
            4,
            4,
            cfg.seed,
        )))
    } else {
        remote
    }
}

fn weights_match(local: &PsNode, remote: &RemotePs, num_keys: u64) -> bool {
    (0..num_keys).all(|k| local.read_weights(k) == remote.read_weights(k))
}

/// Run the full comparison: drop sweep, direct promotion, kill run.
pub fn run(cfg: &FailoverConfig) -> FailoverReport {
    let (local, clean) = train_local(cfg);
    let gen = WorkloadGen::new(cfg.workload());

    let mut drops = Vec::new();
    let mut clean_wire_ns = clean.total_ns;
    for &rate in &cfg.drop_rates {
        let remote = faulty_remote(cfg, FaultSpec::drops(cfg.seed, rate), false);
        let report = {
            let mut t = SyncTrainer::with_client(&remote, &gen, cfg.trainer_config());
            t.try_run(1, cfg.batches)
                .expect("a lossy wire must be survivable")
        };
        let snap = remote.registry().snapshot();
        if rate == 0.0 {
            clean_wire_ns = report.total_ns;
        }
        drops.push(DropArm {
            drop_rate: rate,
            total_ns: report.total_ns,
            retries: snap.counter("client_rpc_retries_total").unwrap_or(0),
            timeouts: snap.counter("client_rpc_timeouts_total").unwrap_or(0),
            overhead_vs_clean: report.total_ns as f64 / clean_wire_ns as f64 - 1.0,
            bit_identical: weights_match(&local, &remote, cfg.num_keys),
        });
    }

    // Direct promotion from the trained reference's media: the pure
    // recovery latency, isolated from the wire.
    let recovery_threads = 4u32;
    let promo = CheckpointReplica::new(
        Arc::clone(local.pool().media()),
        cfg.node_config(),
        1,
        recovery_threads,
        cfg.seed,
    )
    .promote()
    .expect("trained media promotes");
    let recovery = RecoveryResult {
        resume_batch: promo.resume_batch,
        recovery_ns: promo.recovery_ns,
        recovered_keys: promo.recovered_keys,
        recovery_threads,
    };

    // Kill mid-epoch, fail over, finish.
    let kill_at = cfg.kill_after_calls();
    let remote = faulty_remote(cfg, FaultSpec::kill_after(cfg.seed, kill_at), true);
    let report = {
        let mut t = SyncTrainer::with_client(&remote, &gen, cfg.trainer_config());
        t.try_run(1, cfg.batches)
            .expect("failover must absorb the kill")
    };
    let kill = KillRun {
        kill_after_calls: kill_at,
        failovers: report.failovers,
        rewound_batches: report.rewound_batches,
        total_ns: report.total_ns,
        overhead_vs_clean: report.total_ns as f64 / clean_wire_ns as f64 - 1.0,
        bit_identical: weights_match(&local, &remote, cfg.num_keys),
    };

    FailoverReport {
        config: cfg.clone(),
        clean_total_ns: clean.total_ns,
        drops,
        recovery,
        kill,
    }
}

/// Human-readable table, printed by `figures -- failover`.
pub fn print_report(r: &FailoverReport) {
    println!(
        "workload: {} batches × {} examples, {} keys dim {}, {} workers",
        r.config.batches, r.config.batch_size, r.config.num_keys, r.config.dim, r.config.workers
    );
    println!(
        "{:<10} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "drop%", "total ms", "retries", "timeouts", "overhead", "identical"
    );
    for d in &r.drops {
        println!(
            "{:<10} {:>12.3} {:>9} {:>9} {:>9.2}% {:>10}",
            format!("{:.1}%", d.drop_rate * 100.0),
            d.total_ns as f64 / 1e6,
            d.retries,
            d.timeouts,
            d.overhead_vs_clean * 100.0,
            d.bit_identical
        );
    }
    println!(
        "recovery: {:.3} ms to restore {} keys (checkpoint @ batch {}, {} scan threads)",
        r.recovery.recovery_ns as f64 / 1e6,
        r.recovery.recovered_keys,
        r.recovery.resume_batch,
        r.recovery.recovery_threads
    );
    println!(
        "kill @ call {}: {} failover(s), {} batch(es) rewound, +{:.2}% vs clean, identical={}",
        r.kill.kill_after_calls,
        r.kill.failovers,
        r.kill.rewound_batches,
        r.kill.overhead_vs_clean * 100.0,
        r.kill.bit_identical
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FailoverConfig {
        FailoverConfig {
            num_keys: 1_000,
            batches: 9,
            drop_rates: vec![0.0, 0.05],
            ..FailoverConfig::smoke()
        }
    }

    #[test]
    fn bench_arms_stay_bit_identical() {
        let r = run(&tiny());
        for d in &r.drops {
            assert!(d.bit_identical, "drop rate {}", d.drop_rate);
        }
        assert!(r.kill.bit_identical, "failover perturbed training state");
        assert_eq!(r.kill.failovers, 1);
        assert!(r.recovery.recovery_ns > 0);
        assert!(r.recovery.recovered_keys > 0);
    }

    #[test]
    fn lossy_arm_pays_for_its_retries() {
        let r = run(&tiny());
        let lossy = r.drops.last().unwrap();
        assert!(lossy.retries > 0, "5% drop must force retries");
        assert!(
            lossy.overhead_vs_clean > 0.0,
            "retries charge virtual time: {}",
            lossy.overhead_vs_clean
        );
    }
}
