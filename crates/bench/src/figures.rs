//! One generator per paper artifact. Each prints the measured series
//! alongside the paper's published values so shape agreement is
//! inspectable at a glance. EXPERIMENTS.md records the comparison.

use crate::scenario::{run_scenario, CkptSetup, EngineKind, Scenario};
use oe_baselines::{CkptDevice, DramPs};
use oe_core::engine::PsEngine;
use oe_core::{NodeConfig, PsNode};
use oe_simdevice::clock::secs;
use oe_simdevice::{Cost, CostKind, DeviceKind, DeviceTiming, Media, MediaConfig};
use oe_train::failure::crash_and_recover;
use oe_train::{SyncTrainer, TrainMode, TrainerConfig};
use oe_workload::analyze::{top_share_empirical, RankFrequency};
use oe_workload::{SkewModel, WorkloadGen};

fn hr(title: &str) {
    println!("\n==== {title} ====");
}

/// Table I: device bandwidth/latency — configured model vs a measured
/// microbenchmark on the simulated media (1 MiB streaming transfer and
/// single-line random access, in virtual time).
pub fn table1(_sc: &Scenario) {
    hr("Table I — device performance (GB/s, ns)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}   {:>12} {:>12}",
        "device", "R bw", "W bw", "R lat", "W lat", "meas R GB/s", "meas W GB/s"
    );
    for kind in [DeviceKind::Dram, DeviceKind::Pmem, DeviceKind::FlashSsd] {
        let t = DeviceTiming::of(kind);
        // Measured: stream 1 MiB through a media instance.
        let media = Media::new(MediaConfig {
            device: kind,
            capacity: 1 << 21,
        });
        let mut c = Cost::new();
        let buf = vec![0u8; 1 << 20];
        media.write(0, &buf, &mut c);
        media.persist(0, 1 << 20, &mut c);
        let w_ns = c
            .ns(t.write_cost_kind())
            .max(c.ns(CostKind::DramTransfer))
            .max(1);
        let mut c2 = Cost::new();
        let mut rbuf = vec![0u8; 1 << 20];
        media.read(0, &mut rbuf, &mut c2);
        let r_ns = c2.ns(t.read_cost_kind()).max(1);
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10} {:>10}   {:>12.1} {:>12.1}",
            format!("{kind:?}"),
            t.read_bw_bytes_per_ns,
            t.write_bw_bytes_per_ns,
            t.read_lat_ns,
            t.write_lat_ns,
            (1u64 << 20) as f64 / r_ns as f64,
            (1u64 << 20) as f64 / w_ns as f64,
        );
    }
    println!("paper Table I: DRAM 115/79 GB/s 81/86 ns · PMem 39/14 GB/s 305/94 ns · SSD 2-3/1-2 GB/s >10000 ns");
}

/// Table II: top-k% access share of the generated workload.
pub fn table2(sc: &Scenario) {
    hr("Table II — access skew of the workload");
    let gen = WorkloadGen::new(sc.workload(4));
    let counts = gen.access_counts(40);
    let model = SkewModel::paper_fit().scaled(sc.skew_scale);
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "top-k%", "measured", "analytic", "paper"
    );
    for (frac, paper) in [(0.0005, 85.7), (0.001, 89.5), (0.01, 95.7)] {
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>9.1}%",
            format!("top {:.2}%", frac * 100.0),
            top_share_empirical(&counts, frac) * 100.0,
            model.share_top(frac) * 100.0,
            paper
        );
    }
}

/// Fig. 2: per-millisecond pull/update arrivals over two batches.
pub fn fig2(sc: &Scenario) {
    hr("Fig. 2 — access pattern in two batches (requests per ms)");
    let engine = EngineKind::Oe.build(sc);
    let gen = WorkloadGen::new(sc.workload(8));
    let mut cfg = TrainerConfig::paper(8);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
    let mut warm = SyncTrainer::new(engine.as_ref(), &gen, cfg);
    warm.run(1, 5);
    drop(warm);
    let mut cfg = TrainerConfig::paper(8);
    cfg.record_trace = true;
    let mut t = SyncTrainer::new(engine.as_ref(), &gen, cfg);
    let r = t.run(6, 2);
    let trace = r.trace_per_ms.expect("trace");
    let (p, u): (u64, u64) = trace
        .iter()
        .fold((0, 0), |(p, u), b| (p + b.pulls, u + b.updates));
    println!("{:<6} {:>10} {:>10}", "ms", "pulls", "updates");
    for b in &trace {
        if b.pulls + b.updates > 0 {
            println!("{:<6} {:>10} {:>10}", b.ms, b.pulls, b.updates);
        }
    }
    println!("totals: pulls={p} updates={u} (paper: pull/update pairs, equal totals)");
    println!("bursts at batch edges with an idle compute gap in between — matches Fig. 2.");
}

fn norm_sweep(
    title: &str,
    sc: &Scenario,
    rows: &[(EngineKind, CkptSetup)],
    workers: &[u32],
    paper: &[(&str, &[f64])],
) {
    hr(title);
    // Baseline: first row at the first worker count.
    let base = run_scenario(rows[0].0, sc, workers[0], rows[0].1).total_ns as f64;
    print!("{:<18}", "engine");
    for w in workers {
        print!(" {:>8}", format!("{w} GPU"));
    }
    println!();
    for &(kind, ckpt) in rows {
        print!("{:<18}", kind.label());
        for &w in workers {
            let r = run_scenario(kind, sc, w, ckpt);
            print!(" {:>8.3}", r.total_ns as f64 / base);
        }
        println!();
    }
    for (label, vals) in paper {
        print!("paper {label:<12}");
        for v in *vals {
            print!(" {v:>8.3}");
        }
        println!();
    }
}

/// Fig. 3: penalty of the fine-grained hybrid & PMem-Hash vs DRAM-PS.
pub fn fig3(sc: &Scenario) {
    norm_sweep(
        "Fig. 3 — fine-grained hybrid / PMem-Hash penalty (normalized to DRAM-PS @ 4 GPUs)",
        sc,
        &[
            (EngineKind::DramPs, CkptSetup::None),
            (EngineKind::OriCache, CkptSetup::None),
            (EngineKind::PmemHash, CkptSetup::None),
        ],
        &[4, 8, 16],
        &[
            ("DRAM-PS", &[1.0, 0.60, 0.35]),
            ("Ori-Cache", &[1.24, 0.936, 0.795]),
            ("PMem-Hash", &[1.16, 1.11, 1.11]),
        ],
    );
    println!("(paper rows derived from: Ori +24%/55.8%/+127%, PMem-Hash 1.16/1.85/3.17× relative to same-GPU DRAM-PS)");
}

/// Fig. 6: end-to-end with checkpoints every interval.
pub fn fig6(sc: &Scenario, interval_ns: u64) {
    norm_sweep(
        "Fig. 6 — end-to-end training time with checkpoints (normalized to DRAM-PS @ 4 GPUs)",
        sc,
        &[
            (EngineKind::DramPs, CkptSetup::Incremental { interval_ns }),
            (EngineKind::Oe, CkptSetup::Proposed { interval_ns }),
            (EngineKind::OriCache, CkptSetup::Incremental { interval_ns }),
        ],
        &[4, 8, 16],
        &[
            ("DRAM-PS", &[1.0, 0.60, 0.35]),
            ("PMem-OE", &[0.928, 0.562, 0.330]),
            ("Ori-Cache", &[1.218, 0.890, 0.714]),
        ],
    );
    println!(
        "(paper: PMem-OE 7.2/6.4/5.6% faster than DRAM-PS; 23.8/36.9/53.8% faster than Ori-Cache)"
    );
}

/// Fig. 7: pipelined cache, no checkpoints.
pub fn fig7(sc: &Scenario) {
    norm_sweep(
        "Fig. 7 — pipelined cache performance, no checkpoints (normalized to DRAM-PS @ 4 GPUs)",
        sc,
        &[
            (EngineKind::DramPs, CkptSetup::None),
            (EngineKind::Oe, CkptSetup::None),
            (EngineKind::OriCache, CkptSetup::None),
        ],
        &[4, 8, 16],
        &[
            ("DRAM-PS", &[1.0, 0.60, 0.35]),
            ("PMem-OE", &[1.012, 0.626, 0.380]),
            ("Ori-Cache", &[1.24, 0.936, 0.795]),
        ],
    );
    println!("(paper: OE within 1.2%/4.3%/8.7% of DRAM-PS; 18.4%/33%/52.1% faster than Ori-Cache)");
}

/// Fig. 8: DRAM cache size sweep at 16 GPUs.
pub fn fig8(sc: &Scenario) {
    hr("Fig. 8 — impact of DRAM cache size @ 16 GPUs (normalized to the smallest cache)");
    // The paper sweeps 10 MB → 20 GB against a 500 GB model. What drives
    // the curve is the ratio of cache entries to the per-batch working
    // set (10 MB ≈ 0.22× of it, 2 GB ≈ 46×), so we sweep that ratio —
    // sweeping raw byte fractions on the scaled key space would place
    // every small point deep in the thrash regime.
    let unique_per_batch = {
        let gen = WorkloadGen::new(sc.workload(16));
        let batch = gen.global_batch(3);
        let mut all: Vec<u64> = batch.iter().flat_map(|b| b.unique_keys.clone()).collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    };
    let ratios: &[(f64, &str, Option<f64>)] = &[
        (0.22, "10MB≙", Some(1.0)),
        (0.45, "20MB≙", Some(0.856)),
        (0.90, "40MB≙", Some(0.820)),
        (2.25, "100MB≙", Some(0.751)),
        (9.0, "400MB≙", Some(0.678)),
        (46.0, "2GB≙", Some(0.618)),
        (460.0, "20GB≙", Some(0.612)),
    ];
    let mut base = None;
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "cache", "entries", "miss%", "norm time", "paper"
    );
    for &(ratio, label, paper) in ratios {
        let mut s = sc.clone();
        let entries = (ratio * unique_per_batch as f64).max(4.0);
        s.cache_frac =
            entries * s.node_config().bytes_per_cached_entry() as f64 / s.model_bytes() as f64;
        let r = run_scenario(EngineKind::Oe, &s, 16, CkptSetup::None);
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<10} {:>12} {:>9.2}% {:>10.3} {:>10}",
            label,
            s.node_config().cache_entries(),
            r.miss_rate() * 100.0,
            r.total_ns as f64 / b,
            paper.map_or("-".into(), |p| format!("{p:.3}")),
        );
    }
    println!("(paper: −14.4/−18/−24.9/−32.2/−38.2% vs 10 MB; 20 GB only ~1% better than 2 GB)");
}

/// Fig. 9: cache × pipeline ablation at 16 GPUs.
pub fn fig9(sc: &Scenario) {
    hr("Fig. 9 — individual improvement of cache and pipeline @ 16 GPUs");
    let configs = [
        (
            EngineKind::OeAblation {
                cache: false,
                pipeline: false,
            },
            Some(1.0),
        ),
        (
            EngineKind::OeAblation {
                cache: true,
                pipeline: false,
            },
            Some(0.579),
        ),
        (
            EngineKind::OeAblation {
                cache: true,
                pipeline: true,
            },
            Some(0.261),
        ),
    ];
    let mut base = None;
    println!("{:<20} {:>10} {:>10}", "config", "norm time", "paper");
    for (kind, paper) in configs {
        let r = run_scenario(kind, sc, 16, CkptSetup::None);
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<20} {:>10.3} {:>10}",
            kind.label(),
            r.total_ns as f64 / b,
            paper.map_or("-".into(), |p: f64| format!("{p:.3}")),
        );
    }
    println!("(paper: cache −42.1%, pipeline −54.9%, both −73.9%)");
}

/// Fig. 10: rank-frequency distributions and exponential fits.
pub fn fig10(sc: &Scenario) {
    hr("Fig. 10 — workload rank-frequency fits (original / more / less skew)");
    for (scale, name) in [(1.0, "original"), (3.0, "more skew"), (0.3, "less skew")] {
        let mut s = sc.clone();
        s.skew_scale = scale;
        let gen = WorkloadGen::new(s.workload(4));
        let counts = gen.access_counts(30);
        let rf = RankFrequency::from_counts(&counts, 400);
        let (a, lambda) = rf.fit_exponential(s.num_keys);
        let model = SkewModel::paper_fit().scaled(scale);
        println!(
            "{:<10} fit: freq ≈ {:8.1}·e^(−{:.0}·rank/n)   top0.1%: {:.1}%   top1%: {:.1}%",
            name,
            a,
            lambda,
            model.share_top(0.001) * 100.0,
            model.share_top(0.01) * 100.0,
        );
    }
    println!(
        "(paper: exponential-decay fits; adjusted parameters give the more/less-skew variants)"
    );
}

/// Fig. 11: training time & miss rate under different skews @ 16 GPUs.
pub fn fig11(sc: &Scenario) {
    hr("Fig. 11 — training time & miss rate vs skew @ 16 GPUs (normalized to DRAM-PS per skew)");
    println!(
        "{:<12} {:<12} {:>10} {:>10}",
        "skew", "engine", "norm time", "miss%"
    );
    for (scale, name, paper_miss) in [
        (3.0, "more", 10.04),
        (1.0, "original", 13.63),
        (0.3, "less", 17.08),
    ] {
        let mut s = sc.clone();
        s.skew_scale = scale;
        let base = run_scenario(EngineKind::DramPs, &s, 16, CkptSetup::None);
        for kind in [EngineKind::DramPs, EngineKind::Oe, EngineKind::OriCache] {
            let r = run_scenario(kind, &s, 16, CkptSetup::None);
            println!(
                "{:<12} {:<12} {:>10.3} {:>9.2}%",
                name,
                kind.label(),
                r.total_ns as f64 / base.total_ns as f64,
                r.miss_rate() * 100.0
            );
        }
        println!("  (paper miss rate at this skew: {paper_miss}%)");
    }
    println!("(paper: OE degrades <5% from original→less skew while Ori-Cache degrades >20%)");
}

/// Fig. 12: checkpoint-interval sweep @ 16 GPUs.
pub fn fig12(sc: &Scenario, base_interval_ns: u64) {
    hr("Fig. 12 — training time vs checkpoint interval @ 16 GPUs (normalized to No-Checkpoint)");
    let no_ckpt = run_scenario(EngineKind::Oe, sc, 16, CkptSetup::None).total_ns as f64;
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "variant", "1×", "2×", "3×", "4×"
    );
    type SetupFn = fn(u64) -> CkptSetup;
    let variants: [(&str, EngineKind, SetupFn); 3] = [
        ("PMem-OE (Proposed)", EngineKind::Oe, |i| {
            CkptSetup::Proposed { interval_ns: i }
        }),
        ("PMem-OE (SparseOnly)", EngineKind::Oe, |i| {
            CkptSetup::SparseOnly { interval_ns: i }
        }),
        ("PMem-OE (Incremental)", EngineKind::OeIncremental, |i| {
            CkptSetup::Incremental { interval_ns: i }
        }),
    ];
    for (name, kind, setup) in variants {
        print!("{name:<22}");
        for mult in 1..=4u64 {
            let r = run_scenario(kind, sc, 16, setup(base_interval_ns * mult));
            print!(" {:>8.3}", r.total_ns as f64 / no_ckpt);
        }
        println!();
    }
    println!("paper @10/20/30/40min: Proposed 1.024/1.012/1.008/1.006 · SparseOnly ≈1.000 · Incremental ≈1.24/1.21/1.19/1.17");
}

/// Fig. 13: checkpoint overhead vs GPU count at the default interval.
pub fn fig13(sc: &Scenario, interval_ns: u64) {
    hr("Fig. 13 — checkpoint overhead vs #GPUs (overhead % over No-Checkpoint at same GPUs)");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "GPUs", "Proposed", "SparseOnly", "paper"
    );
    for w in [4u32, 8, 16] {
        let none = run_scenario(EngineKind::Oe, sc, w, CkptSetup::None).total_ns as f64;
        let prop = run_scenario(EngineKind::Oe, sc, w, CkptSetup::Proposed { interval_ns }).total_ns
            as f64;
        let sparse = run_scenario(EngineKind::Oe, sc, w, CkptSetup::SparseOnly { interval_ns })
            .total_ns as f64;
        println!(
            "{:<12} {:>11.2}% {:>11.2}% {:>12}",
            w,
            (prop / none - 1.0) * 100.0,
            (sparse / none - 1.0) * 100.0,
            "+1.2% / ~0%"
        );
    }
    println!(
        "(paper: Proposed ≈ +1.2% at every GPU count — all from the dense dump; SparseOnly ≈ 0%)"
    );
}

/// Fig. 14: recovery time comparison.
pub fn fig14(sc: &Scenario) {
    hr("Fig. 14 — recovery time (virtual seconds, scaled model)");
    let workers = 4u32;
    // Build comparable trained+checkpointed state per engine.
    let build_dram = |device: CkptDevice| -> (DramPs, NodeConfig) {
        let cfg = sc.node_config();
        let engine = DramPs::new(cfg.clone(), device);
        let gen = WorkloadGen::new(sc.workload(workers));
        let mut tc = TrainerConfig::paper(workers);
        tc.mode = TrainMode::Synthetic { grad_scale: 0.01 };
        let mut t = SyncTrainer::new(&engine, &gen, tc);
        t.run(1, sc.warm_batches);
        engine.request_checkpoint(sc.warm_batches);
        (engine, cfg)
    };

    let mut results: Vec<(String, f64, usize)> = Vec::new();
    for (device, label) in [
        (CkptDevice::Ssd, "DRAM-PS (ckpt on SSD)"),
        (CkptDevice::Pmem, "DRAM-PS (ckpt on PMem)"),
    ] {
        let (engine, cfg) = build_dram(device);
        let media = std::sync::Arc::clone(engine.ckpt_log().media());
        let mut cost = Cost::new();
        let (node, _resume) = DramPs::recover(&media, cfg, device, &mut cost).expect("recover");
        let model = oe_simdevice::ContentionModel::new(1, 1);
        results.push((
            label.to_string(),
            model.burst_ns(&cost) as f64 / 1e9,
            node.num_keys(),
        ));
    }
    {
        let cfg = sc.node_config();
        let engine = PsNode::new(cfg.clone());
        let gen = WorkloadGen::new(sc.workload(workers));
        let mut tc = TrainerConfig::paper(workers);
        tc.mode = TrainMode::Synthetic { grad_scale: 0.01 };
        let mut t = SyncTrainer::new(&engine, &gen, tc);
        t.run(1, sc.warm_batches);
        engine.request_checkpoint(sc.warm_batches);
        t.run(sc.warm_batches + 1, 2); // commit
        drop(t);
        let (node, outcome) = crash_and_recover(&engine, cfg, 7, 1);
        results.push((
            "PMem-OE (in-place scan)".to_string(),
            outcome.recovery_ns as f64 / 1e9,
            node.num_keys(),
        ));
    }
    let oe_time = results.last().unwrap().1;
    println!(
        "{:<26} {:>12} {:>10} {:>10}",
        "system", "recovery (s)", "keys", "vs OE"
    );
    for (label, secs, keys) in &results {
        println!(
            "{label:<26} {:>12.4} {keys:>10} {:>9.2}×",
            secs,
            secs / oe_time
        );
    }
    println!("(paper: 1512.8 s SSD / 751.1 s PMem-file / 380.2 s OE → 3.97× / 1.98× vs OE)");
}

/// Fig. 15: Criteo-scale comparison with the framework PS.
pub fn fig15(sc: &Scenario) {
    hr("Fig. 15 — Criteo comparison (normalized to Tensorflow, dim 16, 1 GPU)");
    let mut base = None;
    println!(
        "{:<12} {:<12} {:>8} {:>8} {:>8}",
        "dim", "engine", "1 GPU", "2 GPU", "4 GPU"
    );
    for dim in [16usize, 64] {
        let mut s = sc.clone();
        s.dim = dim;
        s.fields = 26;
        // Paper: 128 MB cache = 6.4% (dim 16) / 1.6% (dim 64) of table.
        s.cache_frac = if dim == 16 { 0.064 } else { 0.016 };
        for kind in [
            EngineKind::TfPs,
            EngineKind::DramPs,
            EngineKind::Oe,
            EngineKind::PmemHash,
        ] {
            print!("{:<12} {:<12}", dim, kind.label());
            for w in [1u32, 2, 4] {
                let r = run_scenario(kind, &s, w, CkptSetup::None);
                let b = *base.get_or_insert(r.total_ns as f64);
                print!(" {:>8.3}", r.total_ns as f64 / b);
            }
            println!();
        }
    }
    println!("(paper: OE beats TF by 6.3/19.5/30.1% at dim 16 and 6.4/34.2/52% at dim 64; DRAM-PS fastest; PMem-Hash up to 4.3× TF)");
}

/// Table V: PS deployment cost.
pub fn table5(sc: &Scenario) {
    hr("Table V — price of parameter servers");
    use oe_train::{CloudCostModel, PsDeployment};
    let costs = CloudCostModel::paper();
    let interval = secs(0.025);
    let dram = run_scenario(
        EngineKind::DramPs,
        sc,
        4,
        CkptSetup::Incremental {
            interval_ns: interval,
        },
    );
    let oe = run_scenario(
        EngineKind::Oe,
        sc,
        4,
        CkptSetup::Proposed {
            interval_ns: interval,
        },
    );
    let ori = run_scenario(
        EngineKind::OriCache,
        sc,
        4,
        CkptSetup::Incremental {
            interval_ns: interval,
        },
    );
    // Anchor: paper's DRAM-PS epoch = 5.75 h; scale the others by the
    // measured per-batch ratio.
    let anchor = 5.75;
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "system", "$/hour", "epoch (h)", "$/epoch", "paper $/ep", "paper (h)"
    );
    for (name, dep, r, paper_cost, paper_h) in [
        (
            "DRAM-PS",
            PsDeployment::DramServers { count: 2 },
            &dram,
            34.9,
            5.75,
        ),
        (
            "PMem-OE",
            PsDeployment::PmemServers { count: 1 },
            &oe,
            20.3,
            5.33,
        ),
        (
            "Ori-Cache",
            PsDeployment::PmemServers { count: 1 },
            &ori,
            26.6,
            7.01,
        ),
    ] {
        let hours = anchor * r.total_ns as f64 / dram.total_ns as f64;
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>12.2} {:>12.1} {:>10.2}",
            name,
            costs.per_hour(dep),
            hours,
            costs.per_epoch(dep, hours),
            paper_cost,
            paper_h
        );
    }
    println!("(paper headline: PMem-OE saves 42% storage cost vs DRAM-PS, 24% vs Ori-Cache)");
}

/// Ablations beyond the paper: cache replacement policy, admission
/// control, and shard count — the design axes the paper fixes (LRU,
/// admit-always, one lock) or defers to future work.
pub fn ablations(sc: &Scenario) {
    use oe_cache::{AdmissionKind, PolicyKind};

    hr("Ablation A — replacement policy @ 16 GPUs (cache = paper default)");
    println!("{:<10} {:>10} {:>10}", "policy", "miss%", "norm time");
    let mut base = None;
    for (kind, name) in [
        (PolicyKind::Lru, "LRU"),
        (PolicyKind::Clock, "CLOCK"),
        (PolicyKind::Fifo, "FIFO"),
    ] {
        let r = run_scenario(
            EngineKind::OeCustom {
                replacement: kind,
                admission: AdmissionKind::Always,
                shards: 1,
            },
            sc,
            16,
            CkptSetup::None,
        );
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<10} {:>9.2}% {:>10.3}",
            name,
            r.miss_rate() * 100.0,
            r.total_ns as f64 / b
        );
    }
    println!("(expected: CLOCK ≈ LRU, FIFO worse — and all three gaps are small next to the pipeline's effect, supporting the paper's choice to not chase policies)");

    hr("Ablation B — admission control @ 16 GPUs, small cache (¼ of default)");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "admission", "miss%", "evictions", "norm time"
    );
    let mut small = sc.clone();
    small.cache_frac = sc.cache_frac / 4.0;
    let mut base = None;
    for (kind, name) in [
        (AdmissionKind::Always, "always"),
        (AdmissionKind::SecondTouch, "doorkeeper"),
    ] {
        let r = run_scenario(
            EngineKind::OeCustom {
                replacement: PolicyKind::Lru,
                admission: kind,
                shards: 1,
            },
            &small,
            16,
            CkptSetup::None,
        );
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<14} {:>9.2}% {:>12} {:>10.3}",
            name,
            r.miss_rate() * 100.0,
            r.stats.evictions,
            r.total_ns as f64 / b
        );
    }
    println!("(the doorkeeper keeps one-hit wonders out of a pressured cache: fewer evictions, lower churn)");

    hr("Ablation C — shard count @ 16 GPUs (the paper uses one RW lock)");
    println!("{:<10} {:>10} {:>12}", "shards", "norm time", "maintain ms");
    let mut base = None;
    for shards in [1usize, 4, 16] {
        let r = run_scenario(
            EngineKind::OeCustom {
                replacement: PolicyKind::Lru,
                admission: AdmissionKind::Always,
                shards,
            },
            sc,
            16,
            CkptSetup::None,
        );
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<10} {:>10.3} {:>12.3}",
            shards,
            r.total_ns as f64 / b,
            r.phases.maintain_ns as f64 / r.batches as f64 / 1e6
        );
    }
    println!("(sharding is a scalability reserve: with the pipeline hiding maintenance, one lock is already enough at this scale — the paper's design point)");

    hr("Ablation D — popularity drift @ 16 GPUs (item churn over the 147-day trace)");
    println!(
        "{:<16} {:>10} {:>10}",
        "drift keys/batch", "miss%", "norm time"
    );
    let mut base = None;
    for drift in [0u64, 10, 100, 1_000] {
        let mut s = sc.clone();
        s.drift_keys_per_batch = drift;
        let r = run_scenario(EngineKind::Oe, &s, 16, CkptSetup::None);
        let b = *base.get_or_insert(r.total_ns as f64);
        println!(
            "{:<16} {:>9.2}% {:>10.3}",
            drift,
            r.miss_rate() * 100.0,
            r.total_ns as f64 / b
        );
    }
    println!("(the LRU cache tracks a sliding hot set at moderate churn; extreme churn degrades toward the cold-miss regime)");
}

/// `latency` artifact: per-engine batch-phase latency distributions as
/// JSON — the tail-latency view behind the paper's barrier argument (a
/// p99 pull stall delays the whole synchronous batch). Dumped as JSON
/// so plots and regression checks can consume it directly.
pub fn latency(sc: &Scenario) {
    hr("latency — per-engine pull/batch latency quantiles @ 8 GPUs (virtual ns)");
    let mut rows = Vec::new();
    for kind in [EngineKind::Oe, EngineKind::DramPs, EngineKind::OriCache] {
        let r = run_scenario(kind, sc, 8, CkptSetup::None);
        println!("{:<12} pull {}", kind.label(), r.pull_hist.summary_ms());
        rows.push(serde_json::json!({
            "engine": kind.label(),
            "batches": r.batches,
            "miss_rate": r.miss_rate(),
            "pull_p50_ns": r.pull_hist.p50(),
            "pull_p95_ns": r.pull_hist.p95(),
            "pull_p99_ns": r.pull_hist.p99(),
            "pull_max_ns": r.pull_hist.max(),
            "batch_p99_ns": r.batch_hist.p99(),
        }));
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({ "latency": rows }))
            .expect("latency rows serialize")
    );
    println!("(expect: PMem-OE pull tails within a few % of DRAM-PS; Ori-Cache inflated by inline maintenance)");
}

/// Shard-plan hot-path throughput: legacy per-key vs planned vs
/// multi-lane execution on a skewed batch (see [`crate::pullpush`]).
pub fn pullpush(sc: &Scenario) {
    hr("pullpush — shard-plan batched pull/push throughput");
    let cfg = if sc.batch_size < 1024 {
        crate::pullpush::PullPushConfig::smoke()
    } else {
        crate::pullpush::PullPushConfig::paper()
    };
    let r = crate::pullpush::run(&cfg);
    crate::pullpush::print_report(&r);
}

/// Optimizer-kernel and codec wall-clock microbench: scalar vs
/// vectorized vs batched applies, owned vs borrowed codec (see
/// [`crate::kernels`]).
pub fn kernels(sc: &Scenario) {
    hr("kernels — optimizer kernel & zero-copy codec wall-clock microbench");
    let cfg = if sc.batch_size < 1024 {
        crate::kernels::KernelsConfig::smoke()
    } else {
        crate::kernels::KernelsConfig::paper()
    };
    let r = crate::kernels::run(&cfg);
    crate::kernels::print_report(&r);
}

/// Fault tolerance: retry overhead on a lossy wire and checkpoint-
/// failover recovery latency (see [`crate::failover`]).
pub fn failover(sc: &Scenario) {
    hr("failover — retry overhead and checkpoint-failover recovery");
    let cfg = if sc.batch_size < 1024 {
        crate::failover::FailoverConfig::smoke()
    } else {
        crate::failover::FailoverConfig::paper()
    };
    let r = crate::failover::run(&cfg);
    crate::failover::print_report(&r);
}

/// crashmc — exhaustive crash-point enumeration coverage.
pub fn crashmc(sc: &Scenario) {
    hr("crashmc — crash-point enumeration of the persistence protocol");
    let cfg = if sc.batch_size < 1024 {
        crate::crashmc::CrashMcBenchConfig::smoke()
    } else {
        crate::crashmc::CrashMcBenchConfig::paper()
    };
    let r = crate::crashmc::run(&cfg);
    crate::crashmc::print_report(&r);
}

/// rebalance — hot-key storm vs telemetry-driven live shard drain
/// (see [`crate::rebalance`]).
pub fn rebalance(sc: &Scenario) {
    hr("rebalance — skew-aware placement under a hot-key storm");
    let cfg = if sc.batch_size < 1024 {
        crate::rebalance::RebalanceBenchConfig::smoke()
    } else {
        crate::rebalance::RebalanceBenchConfig::paper()
    };
    let r = crate::rebalance::run(&cfg);
    crate::rebalance::print_report(&r);
}

/// pipeline — sync-vs-bounded-async pipelining frontier on DeepFM-lite
/// (see [`crate::pipeline`]).
pub fn pipeline(sc: &Scenario) {
    hr("pipeline — overlapped training vs staleness bound");
    let cfg = if sc.batch_size < 1024 {
        crate::pipeline::PipelineBenchConfig::smoke()
    } else {
        crate::pipeline::PipelineBenchConfig::paper()
    };
    let r = crate::pipeline::run(&cfg);
    crate::pipeline::print_report(&r);
}

/// serve — exact-vs-LSH recall/latency tradeoff and the open-loop QPS
/// replay with a mid-traffic snapshot flip (see [`crate::serve`]).
pub fn serve(sc: &Scenario) {
    hr("serve — snapshot-flip serving and ANN retrieval under load");
    let cfg = if sc.batch_size < 1024 {
        crate::serve::ServeBenchConfig::smoke()
    } else {
        crate::serve::ServeBenchConfig::paper()
    };
    let r = crate::serve::run(&cfg);
    crate::serve::print_report(&r);
}

/// Run everything.
pub fn all(sc: &Scenario, ckpt_interval_ns: u64) {
    table1(sc);
    table2(sc);
    fig2(sc);
    fig3(sc);
    table5(sc);
    fig6(sc, ckpt_interval_ns);
    fig7(sc);
    fig8(sc);
    fig9(sc);
    fig10(sc);
    fig11(sc);
    fig12(sc, ckpt_interval_ns);
    fig13(sc, ckpt_interval_ns);
    fig14(sc);
    fig15(sc);
    latency(sc);
    ablations(sc);
    pullpush(sc);
    kernels(sc);
    failover(sc);
    crashmc(sc);
    rebalance(sc);
    pipeline(sc);
    serve(sc);
}
