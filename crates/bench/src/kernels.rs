//! Wall-clock microbenchmarks for the two hot-path engines this crate
//! gates: the vectorized optimizer kernels and the zero-copy codec.
//!
//! Everything else in `oe-bench` measures *virtual* time (the cost
//! model), which is deterministic but blind to real instruction-level
//! wins: a SIMD kernel and its scalar reference charge identical
//! virtual ns by design. This module measures real nanoseconds with
//! `Instant`, best-of-`reps` to shed scheduler noise:
//!
//! - per-row optimizer applies, scalar reference vs vectorized kernels
//!   vs the batched multi-row kernel, in million f32 updates/s;
//! - wire codec encode/decode, owned (`Packet::encode`/`decode`) vs
//!   borrowed (`Packet::encode_push` / `RequestView`), in MB/s.
//!
//! Absolute rates are machine-dependent and only recorded for the
//! trajectory; the *ratios* (vector/scalar, view/owned) are what the
//! `ci.sh` regression gate holds steady — a vanished speedup means the
//! kernel or codec fast path stopped engaging.

use oe_core::{Optimizer, OptimizerKind};
use oe_net::{validate_frame, Packet, Request, RequestView};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Work sizes for one kernels run.
#[derive(Debug, Clone, Serialize)]
pub struct KernelsConfig {
    /// Payload rows per timed repetition.
    pub rows: usize,
    /// Timed repetitions; the best (fastest) is reported.
    pub reps: usize,
    /// Embedding dimensions swept.
    pub dims: Vec<usize>,
    /// Keys in the codec-bench push frame.
    pub codec_keys: usize,
    /// Gradient f32s per key in the codec-bench push frame.
    pub codec_dim: usize,
}

impl KernelsConfig {
    /// Full run.
    pub fn paper() -> Self {
        Self {
            rows: 8192,
            reps: 7,
            dims: vec![8, 32, 64],
            codec_keys: 16_384,
            codec_dim: 32,
        }
    }

    /// CI smoke run: same sweep, ~1/16 the work.
    pub fn smoke() -> Self {
        Self {
            rows: 1024,
            reps: 5,
            dims: vec![8, 32, 64],
            codec_keys: 2048,
            codec_dim: 32,
        }
    }
}

/// One optimizer × dimension row of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct KernelResult {
    /// Optimizer short name (`sgd`, `adagrad`, `adam`).
    pub kind: String,
    /// Embedding dimension.
    pub dim: usize,
    /// Scalar reference loop, million f32 weight updates per second.
    pub scalar_mf32s: f64,
    /// Vectorized per-row kernel, million f32 updates per second.
    pub vector_mf32s: f64,
    /// Batched multi-row kernel, million f32 updates per second.
    pub batch_mf32s: f64,
    /// `vector_mf32s / scalar_mf32s` — the gated ratio.
    pub speedup_vector: f64,
    /// `batch_mf32s / scalar_mf32s` — the gated ratio.
    pub speedup_batch: f64,
}

/// Codec throughput: owned vs borrowed paths over one large push frame.
#[derive(Debug, Clone, Serialize)]
pub struct CodecResult {
    /// Frame size in bytes.
    pub frame_bytes: usize,
    /// `Packet::request(..).encode()` (owned body clone path), MB/s.
    pub encode_owned_mbps: f64,
    /// `Packet::encode_push` (borrowed single-pass path), MB/s.
    pub encode_borrowed_mbps: f64,
    /// Owned decode into `Vec<u64>`/`Vec<f32>` bodies, MB/s.
    pub decode_owned_mbps: f64,
    /// `validate_frame` + `RequestView` + scatter into reused buffers,
    /// MB/s — the server's actual hot path.
    pub decode_view_mbps: f64,
    /// `encode_borrowed_mbps / encode_owned_mbps` — the gated ratio.
    pub speedup_encode: f64,
    /// `decode_view_mbps / decode_owned_mbps` — the gated ratio.
    pub speedup_decode: f64,
}

/// Full artifact, serialized to `BENCH_kernels.json`.
#[derive(Debug, Clone, Serialize)]
pub struct KernelsReport {
    /// The configuration measured.
    pub config: KernelsConfig,
    /// One row per optimizer × dimension.
    pub kernels: Vec<KernelResult>,
    /// The codec comparison.
    pub codec: CodecResult,
}

/// SplitMix64 — deterministic inputs without an RNG dependency.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn small_f32(seed: u64, i: usize) -> f32 {
    ((mix(seed ^ (i as u64) << 17) % 33) as f32 - 16.0) * 0.0625
}

/// Best-of-`reps` wall time of `work`, in ns.
fn best_ns<F: FnMut()>(reps: usize, mut work: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        work();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best.max(1)
}

fn payload_rows(kind: OptimizerKind, dim: usize, rows: usize, seed: u64) -> Vec<f32> {
    let stride = dim + kind.state_f32s(dim);
    (0..rows * stride)
        .map(|i| {
            // Keep state regions non-negative (AdaGrad accumulators,
            // Adam second moments); weights can be anything small.
            let in_row = i % stride;
            let v = small_f32(seed, i);
            if in_row >= dim {
                v.abs()
            } else {
                v
            }
        })
        .collect()
}

fn bench_kind(cfg: &KernelsConfig, kind: OptimizerKind, name: &str, dim: usize) -> KernelResult {
    let stride = dim + kind.state_f32s(dim);
    let grads: Vec<f32> = (0..cfg.rows * dim).map(|i| small_f32(7, i)).collect();
    let elems = (cfg.rows * dim) as f64;

    let per_row = |opt: Optimizer, payload: &mut [f32]| {
        for (r, g) in payload
            .chunks_exact_mut(stride)
            .zip(grads.chunks_exact(dim))
        {
            opt.apply(dim, r, g);
        }
    };

    let mut p = payload_rows(kind, dim, cfg.rows, 1);
    let scalar_ns = best_ns(cfg.reps, || per_row(kind.build_scalar(), black_box(&mut p)));
    let mut p = payload_rows(kind, dim, cfg.rows, 1);
    let vector_ns = best_ns(cfg.reps, || per_row(kind.build(), black_box(&mut p)));
    let mut p = payload_rows(kind, dim, cfg.rows, 1);
    let opt = kind.build();
    let batch_ns = best_ns(cfg.reps, || {
        opt.apply_batch(dim, black_box(&mut p), &grads, cfg.rows)
            .expect("bench shapes are valid");
    });

    let mf32s = |ns: u64| elems * 1e3 / ns as f64;
    KernelResult {
        kind: name.to_string(),
        dim,
        scalar_mf32s: mf32s(scalar_ns),
        vector_mf32s: mf32s(vector_ns),
        batch_mf32s: mf32s(batch_ns),
        speedup_vector: scalar_ns as f64 / vector_ns as f64,
        speedup_batch: scalar_ns as f64 / batch_ns as f64,
    }
}

fn bench_codec(cfg: &KernelsConfig) -> CodecResult {
    let keys: Vec<u64> = (0..cfg.codec_keys as u64).map(mix).collect();
    let grads: Vec<f32> = (0..cfg.codec_keys * cfg.codec_dim)
        .map(|i| small_f32(3, i))
        .collect();
    let frame = Packet::encode_push(9, 1, 0, 1, &keys, &grads);
    let frame_bytes = frame.len();
    let mb = frame_bytes as f64 / (1024.0 * 1024.0);

    let encode_owned_ns = best_ns(cfg.reps, || {
        let pkt = Packet::request(
            9,
            1,
            Request::Push {
                epoch: 0,
                batch: 1,
                keys: keys.clone(),
                grads: grads.clone(),
            },
        );
        black_box(pkt.encode());
    });
    let encode_borrowed_ns = best_ns(cfg.reps, || {
        black_box(Packet::encode_push(9, 1, 0, 1, &keys, &grads));
    });

    let decode_owned_ns = best_ns(cfg.reps, || {
        black_box(Packet::decode(frame.clone()).expect("valid frame"));
    });
    let (mut kbuf, mut gbuf): (Vec<u64>, Vec<f32>) = (Vec::new(), Vec::new());
    let decode_view_ns = best_ns(cfg.reps, || {
        let meta = validate_frame(&frame).expect("valid frame");
        match RequestView::decode(meta, black_box(&frame)).expect("valid frame") {
            RequestView::Push { keys, grads, .. } => {
                kbuf.clear();
                gbuf.clear();
                keys.extend_into(&mut kbuf);
                grads.extend_into(&mut gbuf);
                black_box((&kbuf, &gbuf));
            }
            _ => unreachable!("encoded a push"),
        }
    });
    let mbps = |ns: u64| mb * 1e9 / ns as f64;
    CodecResult {
        frame_bytes,
        encode_owned_mbps: mbps(encode_owned_ns),
        encode_borrowed_mbps: mbps(encode_borrowed_ns),
        decode_owned_mbps: mbps(decode_owned_ns),
        decode_view_mbps: mbps(decode_view_ns),
        speedup_encode: encode_owned_ns as f64 / encode_borrowed_ns as f64,
        speedup_decode: decode_owned_ns as f64 / decode_view_ns as f64,
    }
}

/// Run the full sweep.
pub fn run(cfg: &KernelsConfig) -> KernelsReport {
    let kinds: [(OptimizerKind, &str); 3] = [
        (OptimizerKind::Sgd { lr: 0.0625 }, "sgd"),
        (OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 }, "adagrad"),
        (
            OptimizerKind::Adam {
                lr: 0.001,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            "adam",
        ),
    ];
    let mut kernels = Vec::new();
    for (kind, name) in kinds {
        for &dim in &cfg.dims {
            kernels.push(bench_kind(cfg, kind, name, dim));
        }
    }
    KernelsReport {
        config: cfg.clone(),
        codec: bench_codec(cfg),
        kernels,
    }
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for v in vals {
        log_sum += v.max(f64::MIN_POSITIVE).ln();
        n += 1;
    }
    (log_sum / n.max(1) as f64).exp()
}

/// Trajectory metrics: every per-cell ratio and the vectorized rates
/// (recorded for history), plus sweep-wide geometric means of the
/// speedup ratios. Only the geomeans and the codec decode ratio are
/// *gated* (see the `kernels` binary): a single cell's wall-clock
/// ratio can swing ±40% run to run, but the geomean over the whole
/// sweep is stable — and still collapses if a fast path stops
/// engaging.
pub fn metrics(r: &KernelsReport) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for k in &r.kernels {
        m.push((
            format!("{}_d{}_speedup_vector", k.kind, k.dim),
            k.speedup_vector,
        ));
        m.push((
            format!("{}_d{}_speedup_batch", k.kind, k.dim),
            k.speedup_batch,
        ));
        m.push((
            format!("{}_d{}_vector_mf32s", k.kind, k.dim),
            k.vector_mf32s,
        ));
    }
    m.push((
        "geomean_speedup_vector".to_string(),
        geomean(r.kernels.iter().map(|k| k.speedup_vector)),
    ));
    m.push((
        "geomean_speedup_batch".to_string(),
        geomean(r.kernels.iter().map(|k| k.speedup_batch)),
    ));
    m.push(("codec_speedup_encode".to_string(), r.codec.speedup_encode));
    m.push(("codec_speedup_decode".to_string(), r.codec.speedup_decode));
    m.push((
        "codec_view_decode_mbps".to_string(),
        r.codec.decode_view_mbps,
    ));
    m
}

/// Human-readable table, printed by the `kernels` binary and
/// `figures -- kernels`.
pub fn print_report(r: &KernelsReport) {
    println!(
        "optimizer kernels: {} rows, best of {} reps (wall clock)",
        r.config.rows, r.config.reps
    );
    println!(
        "{:<10} {:>5} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "kind", "dim", "scalar Mf32/s", "vector Mf32/s", "batch Mf32/s", "vec ×", "batch ×"
    );
    for k in &r.kernels {
        println!(
            "{:<10} {:>5} {:>14.1} {:>14.1} {:>14.1} {:>8.2} {:>8.2}",
            k.kind,
            k.dim,
            k.scalar_mf32s,
            k.vector_mf32s,
            k.batch_mf32s,
            k.speedup_vector,
            k.speedup_batch
        );
    }
    let c = &r.codec;
    println!(
        "codec ({} KiB push frame): encode owned {:.0} MB/s → borrowed {:.0} MB/s ({:.2}×)",
        c.frame_bytes / 1024,
        c.encode_owned_mbps,
        c.encode_borrowed_mbps,
        c.speedup_encode
    );
    println!(
        "codec decode: owned {:.0} MB/s → view+scatter {:.0} MB/s ({:.2}×)",
        c.decode_owned_mbps, c.decode_view_mbps, c.speedup_decode
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KernelsConfig {
        KernelsConfig {
            rows: 64,
            reps: 1,
            dims: vec![8, 9],
            codec_keys: 128,
            codec_dim: 8,
        }
    }

    #[test]
    fn sweep_produces_finite_positive_rates() {
        let r = run(&tiny());
        assert_eq!(r.kernels.len(), 6, "3 kinds × 2 dims");
        for k in &r.kernels {
            for v in [
                k.scalar_mf32s,
                k.vector_mf32s,
                k.batch_mf32s,
                k.speedup_vector,
                k.speedup_batch,
            ] {
                assert!(v.is_finite() && v > 0.0, "{k:?}");
            }
        }
        for v in [
            r.codec.encode_owned_mbps,
            r.codec.encode_borrowed_mbps,
            r.codec.decode_owned_mbps,
            r.codec.decode_view_mbps,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
    }

    #[test]
    fn metrics_cover_every_row_and_the_codec() {
        let r = run(&tiny());
        let m = metrics(&r);
        assert_eq!(m.len(), 6 * 3 + 5);
        assert!(m.iter().any(|(k, _)| k == "sgd_d8_speedup_vector"));
        assert!(m.iter().any(|(k, _)| k == "geomean_speedup_vector"));
        assert!(m.iter().any(|(k, _)| k == "codec_speedup_decode"));
    }
}
