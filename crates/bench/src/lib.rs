//! # oe-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures on the simulator.
//!
//! - [`scenario`] — the scaled default workload (model size, skew, cache
//!   fraction all preserved as *ratios* of the paper's 500 GB setup),
//!   the engine factory, and the standard warm-up + measure runner.
//! - [`figures`] — one function per paper artifact (`table1` … `fig15`),
//!   each printing the measured series next to the paper's published
//!   values.
//! - [`pullpush`] — shard-plan hot-path throughput microbenchmark
//!   (legacy per-key vs planned vs multi-lane execution), emitted as
//!   `BENCH_pullpush.json` by the `pullpush` binary.
//! - [`failover`] — fault-tolerance bench: retry overhead at 0/1/5%
//!   frame loss and checkpoint-failover recovery latency, emitted as
//!   `BENCH_failover.json` by the `failover` binary.
//! - [`crashmc`] — crash-point enumeration sweep: every persistence
//!   event of a reference run is crashed, recovered, and checked
//!   against the durability invariants, emitted as `BENCH_crashmc.json`
//!   by the `crashmc` binary.
//! - [`rebalance`] — skew-aware placement bench: a zipf hot-key storm
//!   melts one shard; the telemetry-driven rebalancer drains it live
//!   and restores tail latency, emitted as `BENCH_rebalance.json` by
//!   the `rebalance` binary.
//! - [`pipeline`] — sync-vs-bounded-async pipelining frontier: epoch
//!   virtual time and wall time vs the staleness bound on a zipf
//!   DeepFM-lite workload, with prefetch hit-rates and the
//!   accuracy-vs-epoch-time convergence curve, emitted as
//!   `BENCH_pipeline.json` by the `pipeline` binary.
//! - [`kernels`] — wall-clock microbench of the vectorized optimizer
//!   kernels (scalar vs SIMD-shaped vs batched) and the zero-copy
//!   codec (owned vs borrowed encode/decode), emitted as
//!   `BENCH_kernels.json` by the `kernels` binary.
//! - [`pool`] — disaggregated-PMem bench: local vs DRAM vs remote-pool
//!   storage arms at equal simulated cost, fabric congestion scaling,
//!   and pool-resident vs crash-image recovery, emitted as
//!   `BENCH_pool.json` by the `pool` binary.
//! - [`serve`] — serving-plane bench: exact-vs-LSH recall/latency
//!   tradeoff plus an open-loop QPS replay with a mid-traffic snapshot
//!   flip, emitted as `BENCH_serve.json` by the `serve` binary.
//! - [`trajectory`] — persistent perf trajectory: appends each gated
//!   run's metrics to `BENCH_trajectory.json` keyed by git commit and
//!   fails CI when a metric regresses >30% below
//!   `BENCH_baseline.json`.
//!
//! Run `cargo run --release -p oe-bench --bin figures -- all` (or a
//! single id, or `--quick` for a fast pass).

pub mod crashmc;
pub mod failover;
pub mod figures;
pub mod kernels;
pub mod pipeline;
pub mod pool;
pub mod pullpush;
pub mod rebalance;
pub mod scenario;
pub mod serve;
pub mod trajectory;

pub use crashmc::{CrashMcBenchConfig, CrashMcReport};
pub use failover::{FailoverConfig, FailoverReport};
pub use kernels::{KernelsConfig, KernelsReport};
pub use pipeline::{PipelineBenchConfig, PipelineBenchReport};
pub use pool::{PoolBenchConfig, PoolBenchReport};
pub use pullpush::{PullPushConfig, PullPushReport};
pub use rebalance::{RebalanceBenchConfig, RebalanceReport};
pub use scenario::{CkptSetup, EngineKind, Scenario};
pub use serve::{ServeBenchConfig, ServeReport};
pub use trajectory::{GateOutcome, DEFAULT_THRESHOLD};
