//! Sync-vs-bounded-async pipelining frontier on DeepFM-lite, JSON
//! artifact `BENCH_pipeline.json`.
//!
//! One arm per staleness bound `k ∈ {0, 1, 2, 4}` replays the identical
//! zipf-skewed DeepFM-lite workload through the pipelined trainer; a
//! separate [`SyncTrainer`] arm anchors the comparison:
//!
//! - **k = 0** must be *bit-identical* to the sync arm — same weights,
//!   same virtual nanoseconds. The pipelined schedule with an empty
//!   overlap window is the synchronous schedule.
//! - **k ≥ 1** overlaps the PS lane (due applies + next-batch prefetch)
//!   with GPU compute, so the epoch's virtual time shrinks toward the
//!   compute critical path. The workload is pull/push-heavy (lite dense
//!   part, fat embedding traffic), the shape where pipelining pays.
//!
//! Reported per arm: epoch virtual time, wall time of the simulation
//! itself, prefetch hit-rate, stale-read conflict counts, and the
//! accuracy-vs-virtual-time convergence curve (one point per epoch,
//! scored against the synthetic teacher on a held-out seed). Epoch
//! boundaries are barriers: each epoch drains the push queue, so every
//! arm ends an epoch with the same gradients applied.

use oe_core::{NodeConfig, OptimizerKind, PsEngine, PsNode};
use oe_train::model::DeepFmConfig;
use oe_train::{
    GpuModel, PipelineConfig, PipelineReport, PipelinedTrainer, SyncTrainer, TrainMode,
    TrainerConfig,
};
use oe_workload::{SkewModel, WorkloadGen, WorkloadSpec};
use serde::Serialize;
use std::time::Instant;

/// Workload + model + pipeline shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchConfig {
    /// Embedding table size (distinct keys).
    pub num_keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Sparse fields per example.
    pub fields: usize,
    /// Global batch size (split across workers).
    pub batch_size: usize,
    /// GPU workers.
    pub workers: u32,
    /// Epochs per arm (each epoch ends in a drain barrier).
    pub epochs: u64,
    /// Batches per epoch.
    pub batches_per_epoch: u64,
    /// Staleness bounds to sweep (0 is the sync-parity arm).
    pub staleness_arms: Vec<usize>,
    /// Prefetch-cache capacity in entries — deliberately below the
    /// epoch's working set so the cold tail streams through the demand
    /// path and the hit-rate is a real skew measurement.
    pub prefetch_capacity: usize,
    /// PS-node DRAM cache budget in entries.
    pub cache_entries_per_node: usize,
    /// DeepFM-lite GPU time per input×dim (the lite dense part computes
    /// quickly, which is exactly when PS time dominates and overlap
    /// pays).
    pub gpu_ns_per_input_dim: f64,
    /// Per-batch allreduce of the lite dense part.
    pub gpu_allreduce_ns: u64,
    /// Fixed kernel-launch overhead per batch.
    pub gpu_batch_overhead_ns: u64,
    /// MLP hidden widths of the lite model.
    pub hidden: Vec<usize>,
    /// Held-out batches scored per convergence point.
    pub eval_batches: u64,
    /// Seed shift for the held-out eval workload.
    pub eval_seed: u64,
    /// Workload seed.
    pub seed: u64,
}

impl PipelineBenchConfig {
    /// Paper-shaped run.
    pub fn paper() -> Self {
        Self {
            num_keys: 120_000,
            dim: 64,
            fields: 16,
            batch_size: 1_024,
            workers: 4,
            epochs: 4,
            batches_per_epoch: 30,
            staleness_arms: vec![0, 1, 2, 4],
            prefetch_capacity: 12_288,
            cache_entries_per_node: 8_192,
            gpu_ns_per_input_dim: 18.0,
            gpu_allreduce_ns: 100_000,
            gpu_batch_overhead_ns: 80_000,
            hidden: vec![32, 16],
            eval_batches: 6,
            eval_seed: 0xEE1,
            seed: 0x91de,
        }
    }

    /// Smoke-test run for CI: same shape, a fraction of the work.
    pub fn smoke() -> Self {
        Self {
            num_keys: 40_000,
            dim: 32,
            fields: 12,
            batch_size: 512,
            workers: 2,
            epochs: 2,
            batches_per_epoch: 20,
            staleness_arms: vec![0, 1, 2, 4],
            prefetch_capacity: 6_144,
            cache_entries_per_node: 4_096,
            gpu_ns_per_input_dim: 18.0,
            gpu_allreduce_ns: 100_000,
            gpu_batch_overhead_ns: 80_000,
            hidden: vec![32, 16],
            eval_batches: 4,
            eval_seed: 0xEE1,
            seed: 0x91de,
        }
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: self.num_keys,
            fields: self.fields,
            batch_size: self.batch_size,
            workers: self.workers as usize,
            skew: SkewModel::paper_fit(),
            seed: self.seed,
            drift_keys_per_batch: 0,
        }
    }

    fn trainer_cfg(&self) -> TrainerConfig {
        let mut cfg = TrainerConfig::paper(self.workers);
        cfg.gpu = GpuModel {
            batch_overhead_ns: self.gpu_batch_overhead_ns,
            ns_per_input_dim: self.gpu_ns_per_input_dim,
            allreduce_ns: self.gpu_allreduce_ns,
        };
        cfg.mode = TrainMode::DeepFm(DeepFmConfig {
            dim: self.dim,
            fields: self.fields,
            dense_features: 0,
            hidden: self.hidden.clone(),
            dense_lr: 0.004,
            seed: 99,
        });
        cfg
    }

    fn node(&self) -> PsNode {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.02,
            eps: 1e-8,
        };
        cfg.cache_bytes = self.cache_entries_per_node * cfg.bytes_per_cached_entry();
        cfg.pmem_capacity = 1 << 28;
        PsNode::new(cfg)
    }
}

/// One point on an arm's convergence curve.
#[derive(Debug, Clone, Serialize)]
pub struct EpochPoint {
    /// Epoch index (1-based).
    pub epoch: u64,
    /// Virtual time of this epoch alone.
    pub epoch_virtual_ns: u64,
    /// Cumulative virtual time at the end of this epoch — the x-axis
    /// of the accuracy-vs-epoch-time curve.
    pub cum_virtual_ns: u64,
    /// Mean training loss over the epoch.
    pub avg_loss: f64,
    /// Held-out accuracy against the synthetic teacher.
    pub accuracy: f64,
}

/// One staleness arm of the frontier.
#[derive(Debug, Clone, Serialize)]
pub struct StalenessArm {
    /// Staleness bound `k`.
    pub staleness: usize,
    /// End-to-end virtual time across all epochs.
    pub total_virtual_ns: u64,
    /// Wall-clock time of the simulated training itself (eval excluded).
    pub wall_ms: f64,
    /// `sync_total_virtual_ns / total_virtual_ns` (>1 == overlap wins).
    pub virtual_speedup_vs_sync: f64,
    /// Wall-clock ratio vs the sync arm (noisy; geomean-gated only).
    pub wall_speedup_vs_sync: f64,
    /// Fraction of serve-time lookups answered from the prefetch cache.
    pub prefetch_hit_rate: f64,
    /// Serve-time cache hits.
    pub prefetch_hits: u64,
    /// Serve-time demand pulls.
    pub prefetch_misses: u64,
    /// Pulled key occurrences with a pending unapplied push (0 at k=0).
    pub stale_read_occurrences: u64,
    /// Distinct keys ever read stale.
    pub stale_read_keys: u64,
    /// Push batches applied out-of-band on the overlapped lane.
    pub async_applied_batches: u64,
    /// Virtual time hidden under the GPU lane.
    pub hidden_ns: u64,
    /// Serial drain time (epoch barriers + epilogues).
    pub drain_ns: u64,
    /// Held-out accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Accuracy-vs-virtual-time convergence curve, one point per epoch.
    pub curve: Vec<EpochPoint>,
}

/// Full bench artifact (serialized to `BENCH_pipeline.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchReport {
    /// The configuration measured.
    pub config: PipelineBenchConfig,
    /// Virtual time of the synchronous reference arm.
    pub sync_total_virtual_ns: u64,
    /// Wall time of the synchronous reference arm.
    pub sync_wall_ms: f64,
    /// Mean training loss of the sync arm's final epoch.
    pub sync_final_loss: f64,
    /// One arm per staleness bound.
    pub arms: Vec<StalenessArm>,
    /// The k=0 arm ended bit-identical to the sync arm (weights and
    /// virtual nanoseconds).
    pub bit_identical: bool,
    /// Best virtual speedup across the k ≥ 1 arms.
    pub best_virtual_speedup: f64,
    /// Geometric mean of the k ≥ 1 arms' wall speedups.
    pub wall_speedup_geomean: f64,
}

struct ArmRun {
    node: PsNode,
    total_ns: u64,
    wall_ms: f64,
    last: Option<PipelineReport>,
    curve: Vec<EpochPoint>,
    final_accuracy: f64,
}

fn run_pipelined_arm(cfg: &PipelineBenchConfig, k: usize) -> ArmRun {
    let node = cfg.node();
    let mut t = PipelinedTrainer::new(
        &node,
        cfg.spec(),
        cfg.trainer_cfg(),
        if k == 0 {
            PipelineConfig::sync()
        } else {
            PipelineConfig::bounded(k, cfg.prefetch_capacity)
        },
    );
    let mut wall = std::time::Duration::ZERO;
    let mut curve = Vec::with_capacity(cfg.epochs as usize);
    let mut last = None;
    let mut prev_ns = 0u64;
    for e in 0..cfg.epochs {
        let start = Instant::now();
        let r = t.run(1 + e * cfg.batches_per_epoch, cfg.batches_per_epoch);
        wall += start.elapsed();
        let cum = r.train.total_ns;
        curve.push(EpochPoint {
            epoch: e + 1,
            epoch_virtual_ns: cum - prev_ns,
            cum_virtual_ns: cum,
            avg_loss: r.train.avg_loss.unwrap_or(f64::NAN),
            accuracy: t
                .eval_accuracy(cfg.eval_seed, cfg.eval_batches)
                .unwrap_or(0.0),
        });
        prev_ns = cum;
        last = Some(r);
    }
    let final_accuracy = curve.last().map(|p| p.accuracy).unwrap_or(0.0);
    ArmRun {
        node,
        total_ns: prev_ns,
        wall_ms: wall.as_secs_f64() * 1e3,
        last,
        curve,
        final_accuracy,
    }
}

/// Run the frontier: the sync reference arm, then one pipelined arm per
/// staleness bound over the identical workload.
pub fn run(cfg: &PipelineBenchConfig) -> PipelineBenchReport {
    // Sync reference arm, segmented into the same epoch barriers.
    let sync_node = cfg.node();
    let gen = WorkloadGen::new(cfg.spec());
    let mut sync = SyncTrainer::new(&sync_node, &gen, cfg.trainer_cfg());
    let sync_start = Instant::now();
    let mut sync_total_ns = 0u64;
    let mut sync_final_loss = f64::NAN;
    for e in 0..cfg.epochs {
        let r = sync.run(1 + e * cfg.batches_per_epoch, cfg.batches_per_epoch);
        sync_total_ns = r.total_ns;
        sync_final_loss = r.avg_loss.unwrap_or(f64::NAN);
    }
    let sync_wall_ms = sync_start.elapsed().as_secs_f64() * 1e3;

    let mut arms = Vec::with_capacity(cfg.staleness_arms.len());
    let mut bit_identical = true;
    let mut best_virtual_speedup = 0.0f64;
    let mut wall_log_sum = 0.0f64;
    let mut wall_n = 0usize;
    for &k in &cfg.staleness_arms {
        let a = run_pipelined_arm(cfg, k);
        if k == 0 {
            bit_identical = a.total_ns == sync_total_ns
                && (0..cfg.num_keys)
                    .all(|key| sync_node.read_weights(key) == a.node.read_weights(key));
        }
        let virtual_speedup = sync_total_ns as f64 / a.total_ns.max(1) as f64;
        let wall_speedup = sync_wall_ms / a.wall_ms.max(1e-9);
        if k >= 1 {
            best_virtual_speedup = best_virtual_speedup.max(virtual_speedup);
            wall_log_sum += wall_speedup.ln();
            wall_n += 1;
        }
        let r = a.last.as_ref().expect("epochs >= 1");
        arms.push(StalenessArm {
            staleness: k,
            total_virtual_ns: a.total_ns,
            wall_ms: a.wall_ms,
            virtual_speedup_vs_sync: virtual_speedup,
            wall_speedup_vs_sync: wall_speedup,
            prefetch_hit_rate: r.prefetch_hit_rate,
            prefetch_hits: r.prefetch_hits,
            prefetch_misses: r.prefetch_misses,
            stale_read_occurrences: r.stale_read_occurrences,
            stale_read_keys: r.stale_read_keys,
            async_applied_batches: r.async_applied_batches,
            hidden_ns: r.hidden_ns,
            drain_ns: r.drain_ns,
            final_accuracy: a.final_accuracy,
            curve: a.curve,
        });
    }

    PipelineBenchReport {
        config: cfg.clone(),
        sync_total_virtual_ns: sync_total_ns,
        sync_wall_ms,
        sync_final_loss,
        arms,
        bit_identical,
        best_virtual_speedup,
        wall_speedup_geomean: if wall_n > 0 {
            (wall_log_sum / wall_n as f64).exp()
        } else {
            0.0
        },
    }
}

/// All recorded metrics (higher-is-better). The gated subset is chosen
/// by the `pipeline` binary: the deterministic virtual-time metrics and
/// bit-identity absolutely, the noisy wall-clock ratio only as a
/// geomean.
pub fn metrics(r: &PipelineBenchReport) -> Vec<(String, f64)> {
    let cfg = &r.config;
    let mut m = vec![
        (
            "bit_identical".to_string(),
            if r.bit_identical { 1.0 } else { 0.0 },
        ),
        (
            "sync_epochs_per_vsec".to_string(),
            cfg.epochs as f64 * 1e9 / r.sync_total_virtual_ns.max(1) as f64,
        ),
        ("best_virtual_speedup".to_string(), r.best_virtual_speedup),
        ("wall_speedup_geomean".to_string(), r.wall_speedup_geomean),
    ];
    for a in &r.arms {
        if a.staleness >= 1 {
            m.push((
                format!("virtual_speedup_s{}", a.staleness),
                a.virtual_speedup_vs_sync,
            ));
            m.push((
                format!("prefetch_hit_rate_s{}", a.staleness),
                a.prefetch_hit_rate,
            ));
        }
        m.push((format!("final_accuracy_s{}", a.staleness), a.final_accuracy));
    }
    m
}

/// The deterministic subset the gate enforces: virtual-time metrics and
/// bit-identity (absolute), plus the wall-clock geomean (30% slack
/// absorbs machine noise). Per-arm wall ratios and accuracies are
/// recorded but never gated.
pub fn gated_metrics(r: &PipelineBenchReport) -> Vec<(String, f64)> {
    metrics(r)
        .into_iter()
        .filter(|(k, _)| {
            k == "bit_identical"
                || k == "sync_epochs_per_vsec"
                || k == "wall_speedup_geomean"
                || k.starts_with("virtual_speedup_s")
                || k.starts_with("prefetch_hit_rate_s")
        })
        .collect()
}

/// Human-readable frontier table, printed by `figures -- pipeline`.
pub fn print_report(r: &PipelineBenchReport) {
    let c = &r.config;
    println!(
        "DeepFM-lite: {} keys, dim {}, {} fields, batch {} × {} workers, {} epochs × {} batches, prefetch cap {}",
        c.num_keys, c.dim, c.fields, c.batch_size, c.workers, c.epochs, c.batches_per_epoch,
        c.prefetch_capacity
    );
    println!(
        "sync reference: {:.3} ms virtual / epoch, {:.1} ms wall, final loss {:.4}",
        r.sync_total_virtual_ns as f64 / 1e6 / c.epochs as f64,
        r.sync_wall_ms,
        r.sync_final_loss
    );
    println!(
        "{:<10} {:>14} {:>9} {:>9} {:>8} {:>12} {:>10} {:>8}",
        "staleness",
        "epoch ms(virt)",
        "v-speedup",
        "hit rate",
        "stale",
        "hidden ms",
        "drain ms",
        "acc"
    );
    for a in &r.arms {
        println!(
            "{:<10} {:>14.3} {:>8.2}× {:>8.1}% {:>8} {:>12.3} {:>10.3} {:>7.1}%",
            a.staleness,
            a.total_virtual_ns as f64 / 1e6 / c.epochs as f64,
            a.virtual_speedup_vs_sync,
            a.prefetch_hit_rate * 100.0,
            a.stale_read_occurrences,
            a.hidden_ns as f64 / 1e6,
            a.drain_ns as f64 / 1e6,
            a.final_accuracy * 100.0,
        );
    }
    println!("convergence (cumulative virtual ms → held-out accuracy):");
    for a in &r.arms {
        let pts: Vec<String> = a
            .curve
            .iter()
            .map(|p| {
                format!(
                    "{:.1}ms→{:.1}%",
                    p.cum_virtual_ns as f64 / 1e6,
                    p.accuracy * 100.0
                )
            })
            .collect();
        println!("  k={}: {}", a.staleness, pts.join("  "));
    }
    println!(
        "bit-identical at k=0: {}   best virtual speedup: {:.2}×   wall geomean: {:.2}×",
        r.bit_identical, r.best_virtual_speedup, r.wall_speedup_geomean
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineBenchConfig {
        PipelineBenchConfig {
            num_keys: 6_000,
            dim: 16,
            fields: 6,
            batch_size: 128,
            workers: 2,
            epochs: 2,
            batches_per_epoch: 8,
            staleness_arms: vec![0, 2],
            prefetch_capacity: 1_024,
            cache_entries_per_node: 512,
            eval_batches: 2,
            ..PipelineBenchConfig::smoke()
        }
    }

    #[test]
    fn frontier_is_bit_identical_at_zero_and_faster_at_two() {
        let r = run(&tiny());
        assert!(r.bit_identical, "k=0 must reproduce the sync arm");
        assert_eq!(r.arms.len(), 2);
        assert_eq!(r.arms[0].staleness, 0);
        assert_eq!(r.arms[0].total_virtual_ns, r.sync_total_virtual_ns);
        assert_eq!(r.arms[0].stale_read_occurrences, 0);
        let k2 = &r.arms[1];
        assert!(
            k2.virtual_speedup_vs_sync > 1.0,
            "overlap must help: {:.3}×",
            k2.virtual_speedup_vs_sync
        );
        assert!(k2.prefetch_hit_rate > 0.0);
        assert_eq!(k2.curve.len(), 2, "one convergence point per epoch");
        assert!(k2.curve[1].cum_virtual_ns > k2.curve[0].cum_virtual_ns);
    }

    #[test]
    fn gated_subset_is_deterministic_metrics_plus_wall_geomean() {
        let r = run(&tiny());
        let gated = gated_metrics(&r);
        assert!(gated.iter().any(|(k, _)| k == "bit_identical"));
        assert!(gated.iter().any(|(k, _)| k == "virtual_speedup_s2"));
        assert!(gated.iter().any(|(k, _)| k == "wall_speedup_geomean"));
        assert!(
            !gated.iter().any(|(k, _)| k.starts_with("final_accuracy")),
            "accuracy is recorded, never gated"
        );
        // Virtual metrics replay deterministically.
        let r2 = run(&tiny());
        assert_eq!(r.sync_total_virtual_ns, r2.sync_total_virtual_ns);
        assert_eq!(r.arms[1].total_virtual_ns, r2.arms[1].total_virtual_ns);
    }
}
