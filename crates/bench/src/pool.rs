//! Disaggregated-PMem bench: local vs DRAM vs remote-pool storage arms
//! at equal simulated cost, fabric congestion scaling, and pool-resident
//! vs crash-image recovery, JSON artifact `BENCH_pool.json`.
//!
//! Three measurements against the same scaled workload:
//!
//! - **backend sweep** — train the identical batch schedule on the
//!   three [`StorageBackend`] arms (local PMem, volatile DRAM, shared
//!   remote pool over the CXL-style fabric) and report epoch virtual
//!   time per arm. Every arm must end **bit-identical**: the backend
//!   moves charges, never values.
//! - **congestion sweep** — re-run the pool arm with extra nodes
//!   attached to the shared fabric link; the contention model inflates
//!   every transfer, quantifying what "shared" costs.
//! - **recovery** — promote the same trained, checkpointed state two
//!   ways: a [`CheckpointReplica`] over the local crash image vs a
//!   [`PoolStandby`] recovering near the pool and shipping only the
//!   index summary. The local/pool latency ratio is the gated headline:
//!   pool-resident recovery must not regress toward image shipping.
//!
//! [`StorageBackend`]: oe_core::StorageBackend

use oe_core::engine::PsEngine;
use oe_core::{CheckpointScheduler, DramStore, NodeConfig, OptimizerKind, PsNode};
use oe_net::{CheckpointReplica, Standby};
use oe_pmem::PoolConfig;
use oe_pool::{FabricConfig, RemotePool, SharedPool};
use oe_simdevice::Cost;
use oe_train::{GpuModel, SyncTrainer, TrainerConfig};
use oe_workload::{SkewModel, WorkloadGen, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Workload shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct PoolBenchConfig {
    /// Embedding table size (distinct keys).
    pub num_keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Sparse fields per example.
    pub fields: usize,
    /// Examples per global batch.
    pub batch_size: usize,
    /// Synchronous trainer workers (GPUs).
    pub workers: u32,
    /// Batches per measured run.
    pub batches: u64,
    /// Attached-node counts for the congestion sweep (1 = exclusive).
    pub attached_sweep: Vec<u32>,
    /// Workload / torn-write seed.
    pub seed: u64,
}

impl PoolBenchConfig {
    /// Paper-shaped run.
    pub fn paper() -> Self {
        Self {
            num_keys: 20_000,
            dim: 16,
            fields: 8,
            batch_size: 256,
            workers: 4,
            batches: 40,
            attached_sweep: vec![1, 4, 8],
            seed: 0xB007,
        }
    }

    /// Smoke-test run for CI: same shape, a fraction of the work.
    pub fn smoke() -> Self {
        Self {
            num_keys: 3_000,
            dim: 8,
            fields: 5,
            batch_size: 64,
            workers: 2,
            batches: 16,
            attached_sweep: vec![1, 4, 8],
            seed: 0xB007,
        }
    }

    fn workload(&self) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: self.num_keys,
            fields: self.fields,
            batch_size: self.batch_size,
            workers: self.workers as usize,
            skew: SkewModel::paper_fit(),
            seed: self.seed,
            drift_keys_per_batch: 0,
        }
    }

    fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = (self.num_keys as usize / 10).max(64) * cfg.bytes_per_cached_entry();
        cfg.pmem_capacity = 1 << 26;
        cfg
    }

    fn pool_config(&self) -> PoolConfig {
        let cfg = self.node_config();
        PoolConfig {
            payload_bytes: cfg.payload_bytes(),
            capacity: cfg.pmem_capacity,
        }
    }

    fn trainer_config(&self) -> TrainerConfig {
        let mut cfg = TrainerConfig::paper(self.workers);
        // Checkpoint every batch so both recovery arms promote from the
        // same recent consistent point.
        cfg.ckpt = CheckpointScheduler::every(1);
        // PS-bound regime: with the calibrated GPU model, deferred
        // maintenance (where every flush/evict — and thus the entire
        // fabric surcharge — lands) hides completely in the compute
        // shadow and all backends report the same epoch time. A storage
        // bench must expose the storage plane, so the GPU contributes
        // zero and epoch time is pull + maintenance + push + ckpt.
        cfg.gpu = GpuModel {
            batch_overhead_ns: 0,
            ns_per_input_dim: 0.0,
            allreduce_ns: 0,
        };
        cfg
    }
}

/// One storage-backend arm of the epoch sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BackendArm {
    /// Backend label ("pmem", "dram", "pool").
    pub label: &'static str,
    /// End-to-end virtual training time.
    pub total_ns: u64,
    /// Wall-clock time for the same run (host noise; geomean-gated).
    pub wall_ns: u64,
    /// Virtual overhead vs the local-PMem arm (0.05 == +5%).
    pub overhead_vs_local: f64,
    /// Final weights bit-identical to the local-PMem arm.
    pub bit_identical: bool,
}

/// One attached-count arm of the fabric congestion sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CongestionArm {
    /// Nodes attached to the shared pool during the run.
    pub attached: u32,
    /// End-to-end virtual training time of the measured node.
    pub total_ns: u64,
    /// Virtual overhead vs the exclusive (attached = 1) pool arm.
    pub overhead_vs_exclusive: f64,
}

/// The recovery comparison at equal simulated cost: same trained state,
/// same scan parallelism, two topologies.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryComparison {
    /// Crash-image promotion latency (local PMem, `CheckpointReplica`).
    pub local_recovery_ns: u64,
    /// Pool-resident promotion latency (near-pool scan + summary ship).
    pub pool_recovery_ns: u64,
    /// local / pool — the gated headline; > 1 means the pool wins.
    pub local_over_pool: f64,
    /// Batch both arms resume from (must agree).
    pub resume_batch: u64,
    /// Keys both arms restore (must agree).
    pub recovered_keys: usize,
}

/// Full bench artifact (serialized to `BENCH_pool.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct PoolBenchReport {
    /// The configuration measured.
    pub config: PoolBenchConfig,
    /// Epoch time per storage backend.
    pub backends: Vec<BackendArm>,
    /// Fabric congestion scaling of the pool arm.
    pub congestion: Vec<CongestionArm>,
    /// Local crash-image vs pool-resident recovery.
    pub recovery: RecoveryComparison,
}

/// Train `node` over the standard schedule; returns (virtual ns, wall ns).
fn train(cfg: &PoolBenchConfig, node: &PsNode) -> (u64, u64) {
    let gen = WorkloadGen::new(cfg.workload());
    let start = Instant::now();
    let report = {
        let mut t = SyncTrainer::new(node, &gen, cfg.trainer_config());
        t.run(1, cfg.batches)
    };
    (report.total_ns, start.elapsed().as_nanos() as u64)
}

/// A PS node over a fresh partition of `shared`.
fn pool_node(cfg: &PoolBenchConfig, shared: &Arc<SharedPool>, node_id: u64) -> PsNode {
    let mut cost = Cost::new();
    let store = shared.create_partition(node_id, cfg.pool_config(), &mut cost);
    PsNode::with_storage(cfg.node_config(), Arc::new(store))
}

fn weights_match(a: &PsNode, b: &PsNode, num_keys: u64) -> bool {
    (0..num_keys).all(|k| a.read_weights(k) == b.read_weights(k))
}

/// Run the full comparison: backend sweep, congestion sweep, recovery.
pub fn run(cfg: &PoolBenchConfig) -> PoolBenchReport {
    // Backend sweep. The local arm is the reference for both time and
    // bit-identity.
    let local = PsNode::new(cfg.node_config());
    let (local_ns, local_wall) = train(cfg, &local);

    let dram = PsNode::with_storage(cfg.node_config(), {
        let mut cost = Cost::new();
        Arc::new(DramStore::create(cfg.pool_config(), &mut cost))
    });
    let (dram_ns, dram_wall) = train(cfg, &dram);

    let shared = SharedPool::new(FabricConfig::default());
    let pooled = pool_node(cfg, &shared, 0);
    let (pool_ns, pool_wall) = train(cfg, &pooled);

    let arm = |label, total_ns: u64, wall_ns, node: &PsNode| BackendArm {
        label,
        total_ns,
        wall_ns,
        overhead_vs_local: total_ns as f64 / local_ns as f64 - 1.0,
        bit_identical: weights_match(&local, node, cfg.num_keys),
    };
    let backends = vec![
        arm("pmem", local_ns, local_wall, &local),
        arm("dram", dram_ns, dram_wall, &dram),
        arm("pool", pool_ns, pool_wall, &pooled),
    ];

    // Congestion sweep: same pool run with extra attachments sharing
    // the fabric link. Idle attachments still shrink everyone's share
    // (the concurrency-efficiency model is population-based, matching
    // `ContentionModel`'s treatment of a shared device).
    let mut congestion = Vec::new();
    let mut exclusive_ns = pool_ns;
    for &attached in &cfg.attached_sweep {
        let shared = SharedPool::new(FabricConfig::default());
        let mut ballast: Vec<RemotePool> = Vec::new();
        let mut cost = Cost::new();
        for extra in 1..attached {
            ballast.push(shared.create_partition(
                1_000 + extra as u64,
                cfg.pool_config(),
                &mut cost,
            ));
        }
        let node = pool_node(cfg, &shared, 0);
        let (total_ns, _) = train(cfg, &node);
        if attached == 1 {
            exclusive_ns = total_ns;
        }
        congestion.push(CongestionArm {
            attached,
            total_ns,
            overhead_vs_exclusive: total_ns as f64 / exclusive_ns as f64 - 1.0,
        });
    }

    // Recovery at equal simulated cost: the local arm promotes from its
    // crash image with 4 scan threads; the pool arm recovers near the
    // pool (FabricConfig::default() also runs 4 near-pool threads) and
    // ships only the index summary.
    let local_promo = CheckpointReplica::new(
        Arc::clone(local.pool().media()),
        cfg.node_config(),
        1,
        4,
        cfg.seed,
    )
    .promote()
    .expect("trained media promotes");
    drop(pooled); // the pool node dies; its partition outlives it
    let pool_promo =
        oe_pool::PoolStandby::new(Arc::clone(&shared), 0, cfg.node_config(), 1, cfg.seed)
            .promote()
            .expect("pool partition promotes");
    assert_eq!(
        local_promo.resume_batch, pool_promo.resume_batch,
        "both arms promote the same committed checkpoint"
    );
    assert_eq!(local_promo.recovered_keys, pool_promo.recovered_keys);
    let recovery = RecoveryComparison {
        local_recovery_ns: local_promo.recovery_ns,
        pool_recovery_ns: pool_promo.recovery_ns,
        local_over_pool: local_promo.recovery_ns as f64 / pool_promo.recovery_ns.max(1) as f64,
        resume_batch: local_promo.resume_batch,
        recovered_keys: local_promo.recovered_keys,
    };

    PoolBenchReport {
        config: cfg.clone(),
        backends,
        congestion,
        recovery,
    }
}

/// Gated metrics: virtual inverse epoch times per backend, the
/// bit-identity bit, and the recovery ratio are deterministic and gate
/// absolutely; wall time gates only as one inverse geomean.
pub fn metrics(r: &PoolBenchReport) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for b in &r.backends {
        m.push((
            format!("epoch_virtual_inv_{}", b.label),
            1e9 / b.total_ns.max(1) as f64,
        ));
    }
    m.push((
        "bit_identical".to_string(),
        if r.backends.iter().all(|b| b.bit_identical) {
            1.0
        } else {
            0.0
        },
    ));
    m.push((
        "recovery_local_over_pool".to_string(),
        r.recovery.local_over_pool,
    ));
    let wall = r
        .backends
        .iter()
        .map(|b| 1e9 / b.wall_ns.max(1) as f64)
        .collect::<Vec<_>>();
    let geomean = wall.iter().map(|v| v.ln()).sum::<f64>() / wall.len() as f64;
    m.push(("wall_inv_geomean".to_string(), geomean.exp()));
    m
}

/// Human-readable table, printed by the `pool` binary.
pub fn print_report(r: &PoolBenchReport) {
    println!(
        "workload: {} batches × {} examples, {} keys dim {}, {} workers",
        r.config.batches, r.config.batch_size, r.config.num_keys, r.config.dim, r.config.workers
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>10}",
        "backend", "virtual ms", "wall ms", "overhead", "identical"
    );
    for b in &r.backends {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>9.2}% {:>10}",
            b.label,
            b.total_ns as f64 / 1e6,
            b.wall_ns as f64 / 1e6,
            b.overhead_vs_local * 100.0,
            b.bit_identical
        );
    }
    for c in &r.congestion {
        println!(
            "fabric ×{:<3} attached: {:>12.3} ms  (+{:.2}% vs exclusive)",
            c.attached,
            c.total_ns as f64 / 1e6,
            c.overhead_vs_exclusive * 100.0
        );
    }
    println!(
        "recovery: local crash-image {:.3} ms vs pool-resident {:.3} ms \
         (ratio {:.2}×, {} keys @ batch {})",
        r.recovery.local_recovery_ns as f64 / 1e6,
        r.recovery.pool_recovery_ns as f64 / 1e6,
        r.recovery.local_over_pool,
        r.recovery.recovered_keys,
        r.recovery.resume_batch
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PoolBenchConfig {
        PoolBenchConfig {
            num_keys: 1_000,
            batches: 8,
            attached_sweep: vec![1, 8],
            ..PoolBenchConfig::smoke()
        }
    }

    #[test]
    fn backends_agree_and_fabric_costs_show() {
        let r = run(&tiny());
        for b in &r.backends {
            assert!(b.bit_identical, "{} arm diverged", b.label);
        }
        let by = |l: &str| r.backends.iter().find(|b| b.label == l).unwrap();
        assert!(
            by("pool").total_ns > by("pmem").total_ns,
            "fabric surcharge must show: pool {} vs pmem {}",
            by("pool").total_ns,
            by("pmem").total_ns
        );
        assert!(
            by("dram").total_ns < by("pmem").total_ns,
            "volatile DRAM must be the cheapest arm"
        );
    }

    #[test]
    fn congestion_inflates_and_recovery_agrees() {
        let r = run(&tiny());
        assert_eq!(r.congestion.len(), 2);
        assert!(
            r.congestion[1].total_ns > r.congestion[0].total_ns,
            "8 attached nodes must cost more than an exclusive link"
        );
        assert!(r.recovery.resume_batch > 0);
        assert!(r.recovery.recovered_keys > 0);
        assert!(r.recovery.local_recovery_ns > 0);
        assert!(r.recovery.pool_recovery_ns > 0);
    }
}
