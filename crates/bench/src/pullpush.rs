//! Pull/push throughput microbenchmark for the shard-plan hot path.
//!
//! Measures simulated (virtual-time) keys/sec of batched pulls and
//! pushes over a skewed workload, comparing execution modes of the same
//! [`PsNode`]:
//!
//! - `legacy-per-key` (`parallelism = 0`): one lock acquisition and one
//!   payload access per key *occurrence*;
//! - `plan-1-lane` (`parallelism = 1`): shard-bucketed, duplicate-
//!   coalesced, one lock acquisition per shard group — the win here is
//!   pure deduplication and lock batching;
//! - `plan-4-lanes` / `plan-N-lanes`: shard groups execute on parallel
//!   lanes; parallelizable cost kinds (CPU, DRAM, PMem reads) take the
//!   max over lanes (`oe_simdevice::CostKind::lane_parallel`).
//!
//! The workload is 3-of-4 draws from a small hot set (heavy in-batch
//! duplication, DRAM-resident after warm-up) and 1-of-4 from a rotating
//! cold range (distinct, PMem-resident), mirroring the paper's Table II
//! skew. Every key is first-touched during warm-up and maintenance is
//! *not* run between measured requests, so measured pulls contain no
//! `Serialized` first-touch work and cache residency is frozen: the
//! comparison isolates the hot-path execution model.

use oe_core::engine::PsEngine;
use oe_core::{NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::{Cost, CostKind};
use serde::Serialize;
use std::collections::HashSet;
use std::time::Instant;

/// Workload + node shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct PullPushConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Index/arena/LRU shards (also the widest lane count measured).
    pub shards: usize,
    /// Hot-set size; hot draws are spread uniformly over these keys.
    pub hot_keys: u64,
    /// Cold key range; measured batches consume it sequentially so a
    /// measured cold key is never cache-resident (the warm-up tail that
    /// ends up cached is never re-pulled).
    pub cold_pool: u64,
    /// Key occurrences per request (3/4 hot, 1/4 cold).
    pub batch: usize,
    /// Measured requests.
    pub batches: usize,
    /// DRAM cache capacity in entries (≥ 2× `hot_keys`, so the whole
    /// hot set stays resident across the measurement window).
    pub cache_entries: usize,
    /// Workload seed.
    pub seed: u64,
}

impl PullPushConfig {
    /// Paper-shaped run: 8 K-key requests against a 512-key hot set.
    pub fn paper() -> Self {
        Self {
            dim: 32,
            shards: 16,
            hot_keys: 512,
            cold_pool: 18_432,
            batch: 8192,
            batches: 8,
            cache_entries: 1024,
            seed: 20230101,
        }
    }

    /// Smoke-test run for CI: same shape, ~1/16 the work.
    pub fn smoke() -> Self {
        Self {
            dim: 32,
            shards: 16,
            hot_keys: 128,
            cold_pool: 3072,
            batch: 2048,
            batches: 4,
            cache_entries: 256,
            seed: 20230101,
        }
    }

    fn cold_per_batch(&self) -> usize {
        self.batch / 4
    }
}

/// One execution mode's measured throughput.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    /// Human label (`legacy-per-key`, `plan-1-lane`, …).
    pub label: String,
    /// The `parallelism` knob value.
    pub parallelism: usize,
    /// Whether the node was pinned to the scalar optimizer kernels
    /// (`NodeConfig::scalar_kernels`). Virtual time is kernel-blind, so
    /// a scalar arm must match its vectorized twin on every virtual
    /// metric — only the wall clock may differ.
    pub scalar_kernels: bool,
    /// Total virtual time of all measured pulls (ns).
    pub pull_ns: u64,
    /// Total virtual time of all measured pushes (ns).
    pub push_ns: u64,
    /// Real wall-clock time of all measured pulls (ns, noisy).
    pub pull_wall_ns: u64,
    /// Real wall-clock time of all measured pushes (ns, noisy).
    pub push_wall_ns: u64,
    /// `Serialized` ns across the measurement — must be identical for
    /// every mode (here: zero, all keys are warmed).
    pub serialized_ns: u64,
    /// Pull throughput in key occurrences per simulated second.
    pub pull_keys_per_sec: f64,
    /// Push throughput in key occurrences per simulated second.
    pub push_keys_per_sec: f64,
    /// Cache hits over the measurement window.
    pub hits: u64,
    /// Cache misses (PMem reads) over the measurement window.
    pub misses: u64,
}

/// Full bench artifact (serialized to `BENCH_pullpush.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct PullPushReport {
    /// The configuration measured.
    pub config: PullPushConfig,
    /// Occurrences per distinct key, averaged over measured batches.
    pub dedup_ratio: f64,
    /// One row per execution mode.
    pub modes: Vec<ModeResult>,
    /// Pull speedup of `plan-1-lane` over `legacy-per-key`
    /// (dedup + lock batching only — acceptance floor 1.2×).
    pub pull_speedup_plan_vs_legacy: f64,
    /// Pull speedup of `plan-4-lanes` over `plan-1-lane`
    /// (lane parallelism only — acceptance floor 2×).
    pub pull_speedup_lanes4_vs_1: f64,
    /// Push speedup of `plan-1-lane` over `legacy-per-key`.
    pub push_speedup_plan_vs_legacy: f64,
    /// Push speedup of `plan-4-lanes` over `plan-1-lane` (limited:
    /// PMem writes serialize on the device and never lane-merge).
    pub push_speedup_lanes4_vs_1: f64,
    /// *Wall-clock* push speedup of the vectorized kernels over the
    /// scalar-pinned arm at the same parallelism — the only number
    /// here where the SIMD-shaped optimizer kernels can show up, since
    /// virtual time charges both identically.
    pub push_kernel_wall_speedup: f64,
}

/// SplitMix64 — deterministic workload without an RNG dependency.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measured request `b`: positions `i % 4 != 3` draw from the hot set,
/// the rest walk the cold range sequentially (never repeating across
/// the run, so cold keys are always PMem misses).
fn batch_keys(cfg: &PullPushConfig, b: usize) -> Vec<u64> {
    let mut cold_next = (b * cfg.cold_per_batch()) as u64;
    (0..cfg.batch)
        .map(|i| {
            if i % 4 == 3 {
                let k = cfg.hot_keys + cold_next;
                cold_next += 1;
                debug_assert!(cold_next <= cfg.cold_pool);
                k
            } else {
                mix(cfg.seed ^ ((b as u64) << 32) ^ i as u64) % cfg.hot_keys
            }
        })
        .collect()
}

fn grads_for(keys: &[u64], dim: usize, seed: u64) -> Vec<f32> {
    (0..keys.len() * dim)
        .map(|i| ((mix(seed ^ (i as u64) << 13) % 17) as f32 - 8.0) * 0.125)
        .collect()
}

fn build_node(cfg: &PullPushConfig, parallelism: usize, scalar_kernels: bool) -> PsNode {
    let mut nc = NodeConfig::small(cfg.dim);
    nc.optimizer = OptimizerKind::Sgd { lr: 0.0625 };
    nc.shards = cfg.shards;
    nc.cache_bytes = cfg.cache_entries * nc.bytes_per_cached_entry();
    nc.pmem_capacity = 1 << 26;
    nc.parallelism = parallelism;
    nc.scalar_kernels = scalar_kernels;
    PsNode::new(nc)
}

/// First-touch every key the measurement will see: the cold range in
/// ascending chunks, then the hot set last so it ends up cache-resident.
/// Returns the next free batch id.
fn warm(node: &PsNode, cfg: &PullPushConfig) -> u64 {
    let mut batch_id = 0u64;
    let mut cost = Cost::new();
    let cold: Vec<u64> = (0..cfg.cold_pool).map(|i| cfg.hot_keys + i).collect();
    for chunk in cold.chunks(cfg.batch) {
        batch_id += 1;
        let mut out = Vec::new();
        node.pull(chunk, batch_id, &mut out, &mut cost);
        node.end_pull_phase(batch_id);
    }
    let hot: Vec<u64> = (0..cfg.hot_keys).collect();
    batch_id += 1;
    let mut out = Vec::new();
    node.pull(&hot, batch_id, &mut out, &mut cost);
    node.end_pull_phase(batch_id);
    batch_id + 1
}

fn run_mode(
    cfg: &PullPushConfig,
    label: &str,
    parallelism: usize,
    scalar_kernels: bool,
) -> ModeResult {
    let node = build_node(cfg, parallelism, scalar_kernels);
    let first_batch = warm(&node, cfg);
    let warm_stats = node.stats();
    let mut pull_cost = Cost::new();
    let mut push_cost = Cost::new();
    let mut pull_wall_ns = 0u64;
    let mut push_wall_ns = 0u64;
    for b in 0..cfg.batches {
        let keys = batch_keys(cfg, b);
        let grads = grads_for(&keys, cfg.dim, cfg.seed ^ b as u64);
        let bid = first_batch + b as u64;
        let mut out = Vec::new();
        let t = Instant::now();
        node.pull(&keys, bid, &mut out, &mut pull_cost);
        pull_wall_ns += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        node.push(&keys, &grads, bid, &mut push_cost);
        push_wall_ns += t.elapsed().as_nanos() as u64;
    }
    let stats = node.stats();
    let occurrences = (cfg.batch * cfg.batches) as f64;
    ModeResult {
        label: label.to_string(),
        parallelism,
        scalar_kernels,
        pull_ns: pull_cost.total_ns(),
        push_ns: push_cost.total_ns(),
        pull_wall_ns,
        push_wall_ns,
        serialized_ns: pull_cost.ns(CostKind::Serialized) + push_cost.ns(CostKind::Serialized),
        pull_keys_per_sec: occurrences * 1e9 / pull_cost.total_ns().max(1) as f64,
        push_keys_per_sec: occurrences * 1e9 / push_cost.total_ns().max(1) as f64,
        hits: stats.hits - warm_stats.hits,
        misses: stats.misses - warm_stats.misses,
    }
}

/// Workload property, independent of execution mode: occurrences per
/// distinct key over the measured batches.
fn workload_dedup_ratio(cfg: &PullPushConfig) -> f64 {
    let (mut occ, mut uniq) = (0usize, 0usize);
    for b in 0..cfg.batches {
        let keys = batch_keys(cfg, b);
        occ += keys.len();
        uniq += keys.iter().collect::<HashSet<_>>().len();
    }
    occ as f64 / uniq.max(1) as f64
}

/// Run the full comparison: legacy, single-lane plan, 4 lanes, one
/// lane per shard, and a scalar-kernel-pinned twin of the 4-lane arm.
/// The scalar arm comes *last* so `by(parallelism)` (find-first) keeps
/// resolving to the vectorized arms for the virtual-time speedups.
pub fn run(cfg: &PullPushConfig) -> PullPushReport {
    let modes = vec![
        run_mode(cfg, "legacy-per-key", 0, false),
        run_mode(cfg, "plan-1-lane", 1, false),
        run_mode(cfg, "plan-4-lanes", 4, false),
        run_mode(
            cfg,
            &format!("plan-{}-lanes", cfg.shards),
            cfg.shards,
            false,
        ),
        run_mode(cfg, "plan-4-lanes-scalar", 4, true),
    ];
    let by = |p: usize| modes.iter().find(|m| m.parallelism == p).unwrap();
    let (legacy, p1, p4) = (by(0), by(1), by(4));
    let scalar = modes.iter().find(|m| m.scalar_kernels).unwrap();
    PullPushReport {
        config: cfg.clone(),
        dedup_ratio: workload_dedup_ratio(cfg),
        pull_speedup_plan_vs_legacy: legacy.pull_ns as f64 / p1.pull_ns.max(1) as f64,
        pull_speedup_lanes4_vs_1: p1.pull_ns as f64 / p4.pull_ns.max(1) as f64,
        push_speedup_plan_vs_legacy: legacy.push_ns as f64 / p1.push_ns.max(1) as f64,
        push_speedup_lanes4_vs_1: p1.push_ns as f64 / p4.push_ns.max(1) as f64,
        push_kernel_wall_speedup: scalar.push_wall_ns as f64 / p4.push_wall_ns.max(1) as f64,
        modes,
    }
}

/// Trajectory/gate metrics. The virtual-time throughputs and speedups
/// are fully deterministic (cost-model arithmetic), so the gate holds
/// them to the 30% band with zero measurement noise; wall-clock fields
/// are deliberately excluded (the `kernels` bench gates those as
/// ratios).
pub fn metrics(r: &PullPushReport) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for mode in &r.modes {
        m.push((
            format!("{}.pull_keys_per_sec", mode.label),
            mode.pull_keys_per_sec,
        ));
        m.push((
            format!("{}.push_keys_per_sec", mode.label),
            mode.push_keys_per_sec,
        ));
    }
    m.push((
        "pull_speedup_plan_vs_legacy".to_string(),
        r.pull_speedup_plan_vs_legacy,
    ));
    m.push((
        "pull_speedup_lanes4_vs_1".to_string(),
        r.pull_speedup_lanes4_vs_1,
    ));
    m.push((
        "push_speedup_plan_vs_legacy".to_string(),
        r.push_speedup_plan_vs_legacy,
    ));
    m
}

/// Human-readable table, printed by `figures -- pullpush`.
pub fn print_report(r: &PullPushReport) {
    println!(
        "workload: {} batches × {} keys, hot set {}, dedup ratio {:.2}",
        r.config.batches, r.config.batch, r.config.hot_keys, r.dedup_ratio
    );
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>14} {:>8} {:>8}",
        "mode", "pull ms", "pull keys/s", "push ms", "push keys/s", "hits", "misses"
    );
    for m in &r.modes {
        println!(
            "{:<16} {:>12.3} {:>14.0} {:>12.3} {:>14.0} {:>8} {:>8}",
            m.label,
            m.pull_ns as f64 / 1e6,
            m.pull_keys_per_sec,
            m.push_ns as f64 / 1e6,
            m.push_keys_per_sec,
            m.hits,
            m.misses
        );
    }
    println!(
        "pull speedups: plan/legacy {:.2}× (floor 1.2×), 4-lanes/1-lane {:.2}× (floor 2×)",
        r.pull_speedup_plan_vs_legacy, r.pull_speedup_lanes4_vs_1
    );
    println!(
        "push speedups: plan/legacy {:.2}×, 4-lanes/1-lane {:.2}× (PMem writes don't lane-merge)",
        r.push_speedup_plan_vs_legacy, r.push_speedup_lanes4_vs_1
    );
    println!(
        "kernel wall clock: vectorized push {:.2}× faster than scalar-pinned at 4 lanes \
         (virtual metrics identical by construction)",
        r.push_kernel_wall_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_meets_acceptance_floors() {
        let r = run(&PullPushConfig::smoke());
        assert!(r.dedup_ratio > 1.5, "dedup ratio {:.2}", r.dedup_ratio);
        assert!(
            r.pull_speedup_plan_vs_legacy >= 1.2,
            "plan vs legacy pull speedup {:.3}",
            r.pull_speedup_plan_vs_legacy
        );
        assert!(
            r.pull_speedup_lanes4_vs_1 >= 2.0,
            "4-lane vs 1-lane pull speedup {:.3}",
            r.pull_speedup_lanes4_vs_1
        );
    }

    #[test]
    fn serialized_time_is_mode_independent() {
        let r = run(&PullPushConfig::smoke());
        // Every key is warmed: no first-touch Serialized work remains,
        // in any mode.
        for m in &r.modes {
            assert_eq!(m.serialized_ns, 0, "{}", m.label);
        }
    }

    #[test]
    fn hit_miss_accounting_is_mode_independent() {
        let r = run(&PullPushConfig::smoke());
        let first = &r.modes[0];
        let cfg = &r.config;
        for m in &r.modes {
            assert_eq!(m.hits, first.hits, "{}", m.label);
            assert_eq!(m.misses, first.misses, "{}", m.label);
        }
        // 3/4 of draws are warm hot keys (hits), 1/4 cold PMem (misses).
        let occ = (cfg.batch * cfg.batches) as u64;
        assert_eq!(first.hits + first.misses, occ);
        assert_eq!(first.misses, occ / 4);
    }

    #[test]
    fn scalar_arm_is_virtually_identical_to_its_vectorized_twin() {
        // The cost model never looks at which kernel ran, and the
        // kernels are bit-identical, so the scalar-pinned arm must
        // reproduce the vectorized 4-lane arm's virtual time, hit/miss
        // counts, and throughput *exactly* — any drift means either a
        // kernel divergence or an accidental cost-model dependency on
        // the kernel choice.
        let r = run(&PullPushConfig::smoke());
        let vec4 = r
            .modes
            .iter()
            .find(|m| m.parallelism == 4 && !m.scalar_kernels)
            .unwrap();
        let scalar = r.modes.iter().find(|m| m.scalar_kernels).unwrap();
        assert_eq!(scalar.parallelism, 4);
        assert_eq!(scalar.pull_ns, vec4.pull_ns);
        assert_eq!(scalar.push_ns, vec4.push_ns);
        assert_eq!(scalar.serialized_ns, vec4.serialized_ns);
        assert_eq!((scalar.hits, scalar.misses), (vec4.hits, vec4.misses));
        assert_eq!(
            scalar.pull_keys_per_sec.to_bits(),
            vec4.pull_keys_per_sec.to_bits()
        );
        assert!(r.push_kernel_wall_speedup > 0.0);
    }

    #[test]
    fn metrics_are_gate_ready() {
        let r = run(&PullPushConfig::smoke());
        let m = metrics(&r);
        // 2 per mode + 3 speedups, all finite and positive.
        assert_eq!(m.len(), r.modes.len() * 2 + 3);
        for (k, v) in &m {
            assert!(v.is_finite() && *v > 0.0, "{k}");
        }
        assert!(m.iter().any(|(k, _)| k == "plan-4-lanes.pull_keys_per_sec"));
    }
}
