//! Skew-aware rebalancing bench: a zipf hot-key storm melts one shard,
//! the controller drains it live, JSON artifact `BENCH_rebalance.json`.
//!
//! Two arms replay the identical deterministic storm ([`StormGen`]):
//!
//! - **static** — a [`PlacedCluster`] with no controller: the flash
//!   crowd's keys all hash onto one node, its DRAM cache thrashes, and
//!   every batch pays that shard's melted burst latency (the cluster
//!   burst is the max over parallel shards, so one hot node gates all).
//! - **rebalanced** — the same cluster with telemetry-driven
//!   rebalancing: the controller spots the runaway node from windowed
//!   per-shard load/p99, seed-copies the hot entries to the cool nodes,
//!   double-writes through the window, and cuts over mid-epoch without
//!   stopping the run.
//!
//! Reported: per-batch p99 in the late storm window (after the
//! controller has had time to act) for both arms, the improvement
//! ratio, and the migration bill (keys moved, seed copies, double-write
//! pushes). The arms must end **bit-identical** — live migration is
//! pure mechanism, invisible to training.

use oe_cluster::{MigrationStats, PlacedCluster, PlacerConfig, RebalanceConfig};
use oe_core::{hash_node_of, NodeConfig, OptimizerKind, PsEngine, PsNode};
use oe_simdevice::Cost;
use oe_workload::{SkewModel, StormGen, StormSpec};
use serde::Serialize;

/// Workload + storm + controller shape for one bench run.
#[derive(Debug, Clone, Serialize)]
pub struct RebalanceBenchConfig {
    /// PS nodes in the cluster.
    pub num_nodes: usize,
    /// Embedding table size (distinct keys).
    pub num_keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Key references per batch (before dedup).
    pub keys_per_batch: usize,
    /// Flash-crowd size; every crowd key hashes onto the melted node.
    pub crowd_size: usize,
    /// Fraction of in-storm references hitting the crowd.
    pub hot_share: f64,
    /// Batches per arm.
    pub batches: u64,
    /// Storm window `[storm_start, storm_end)`.
    pub storm_start: u64,
    /// Exclusive end of the storm window.
    pub storm_end: u64,
    /// Per-node DRAM cache budget in entries — sized so one node cannot
    /// hold the crowd but the cluster together can.
    pub cache_entries_per_node: usize,
    /// Controller cadence in batches.
    pub check_every_batches: u64,
    /// Double-write window length in batches.
    pub double_write_batches: u64,
    /// Controller evidence floor: total window keys below this never
    /// trigger (scaled with `keys_per_batch` so short windows count).
    pub min_window_keys: u64,
    /// Placer hot-head fraction (of distinct keys observed).
    pub hot_fraction: f64,
    /// Placer per-migration move cap.
    pub max_moves: usize,
    /// Workload seed.
    pub seed: u64,
}

impl RebalanceBenchConfig {
    /// Paper-shaped run.
    pub fn paper() -> Self {
        Self {
            num_nodes: 4,
            num_keys: 20_000,
            dim: 16,
            keys_per_batch: 4_096,
            crowd_size: 192,
            hot_share: 0.85,
            batches: 72,
            storm_start: 12,
            storm_end: 64,
            cache_entries_per_node: 144,
            check_every_batches: 4,
            double_write_batches: 2,
            min_window_keys: 384,
            hot_fraction: 0.3,
            max_moves: 512,
            seed: 0x5702,
        }
    }

    /// Smoke-test run for CI: same shape, a fraction of the work.
    pub fn smoke() -> Self {
        Self {
            num_nodes: 4,
            num_keys: 4_000,
            dim: 8,
            keys_per_batch: 1_024,
            crowd_size: 64,
            hot_share: 0.85,
            batches: 36,
            storm_start: 8,
            storm_end: 32,
            cache_entries_per_node: 48,
            check_every_batches: 4,
            double_write_batches: 2,
            min_window_keys: 192,
            hot_fraction: 0.35,
            max_moves: 256,
            seed: 0x5702,
        }
    }

    /// The crowd: the first `crowd_size` keys that static-hash onto
    /// node 0 — the adversarial flash crowd for hash placement.
    pub fn crowd(&self) -> Vec<u64> {
        (0..self.num_keys)
            .filter(|&k| hash_node_of(k, self.num_nodes) == 0)
            .take(self.crowd_size)
            .collect()
    }

    fn storm(&self) -> StormSpec {
        StormSpec {
            num_keys: self.num_keys,
            keys_per_batch: self.keys_per_batch,
            hot_keys: self.crowd(),
            hot_share: self.hot_share,
            storm_start: self.storm_start,
            storm_end: self.storm_end,
            base: SkewModel::paper_fit(),
            seed: self.seed,
        }
    }

    fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = self.cache_entries_per_node * cfg.bytes_per_cached_entry();
        cfg.pmem_capacity = 1 << 26;
        cfg
    }

    fn nodes(&self) -> Vec<PsNode> {
        (0..self.num_nodes)
            .map(|_| PsNode::new(self.node_config()))
            .collect()
    }

    fn controller(&self) -> RebalanceConfig {
        RebalanceConfig {
            check_every_batches: self.check_every_batches,
            double_write_batches: self.double_write_batches,
            min_window_keys: self.min_window_keys,
            placer: PlacerConfig {
                hot_fraction: self.hot_fraction,
                max_moves: self.max_moves,
            },
            ..RebalanceConfig::default()
        }
    }

    /// Late-storm window start: the second half of the storm, after the
    /// controller has had time to notice, drain and cut over.
    fn late_start(&self) -> u64 {
        (self.storm_start + self.storm_end) / 2
    }
}

/// Per-batch virtual-time profile of one arm.
#[derive(Debug, Clone, Serialize)]
pub struct ArmResult {
    /// Mean batch time before the storm hits.
    pub pre_storm_mean_ns: u64,
    /// p99 batch time in the storm's first half (both arms melted).
    pub storm_early_p99_ns: u64,
    /// p99 batch time in the storm's second half (rebalanced arm has
    /// cut over by now).
    pub storm_late_p99_ns: u64,
    /// Mean batch time in the storm's second half.
    pub storm_late_mean_ns: u64,
    /// End-to-end virtual time of the arm.
    pub total_ns: u64,
    /// Final placement epoch (0 == never migrated).
    pub placement_epoch: u64,
}

/// Full bench artifact (serialized to `BENCH_rebalance.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct RebalanceReport {
    /// The configuration measured.
    pub config: RebalanceBenchConfig,
    /// Static hash placement, storm absorbed head-on.
    pub static_arm: ArmResult,
    /// Telemetry-driven rebalancing, hot head drained live.
    pub rebalanced_arm: ArmResult,
    /// Late-storm p99 ratio static/rebalanced (>1 == rebalancer wins).
    pub p99_improvement: f64,
    /// Crowd keys still on the melted node after the run.
    pub crowd_left_on_melted: usize,
    /// Migration bill of the rebalanced arm.
    pub migration: MigrationStats,
    /// Final weights of every key identical across the two arms.
    pub bit_identical: bool,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn window_stats(samples: &[u64]) -> (u64, u64) {
    let mut s = samples.to_vec();
    s.sort_unstable();
    let mean = if s.is_empty() {
        0
    } else {
        s.iter().sum::<u64>() / s.len() as u64
    };
    (percentile(&s, 0.99), mean)
}

/// Deterministic synthetic gradients: a pure function of `(batch, i)`,
/// identical across arms so final weights can be compared bitwise.
fn grads_for(keys: &[u64], batch: u64, dim: usize) -> Vec<f32> {
    let mut grads = vec![0.0f32; keys.len() * dim];
    for (i, g) in grads.iter_mut().enumerate() {
        *g = ((i % 13) as f32 - 6.0) * 0.01 + (batch % 31) as f32 * 0.001;
    }
    grads
}

fn run_arm(cfg: &RebalanceBenchConfig, cluster: &PlacedCluster<PsNode>) -> ArmResult {
    let gen = StormGen::new(cfg.storm());
    let late_start = cfg.late_start();
    let mut pre = Vec::new();
    let mut early = Vec::new();
    let mut late = Vec::new();
    let mut total_ns = 0u64;
    for batch in 1..=cfg.batches {
        let keys = gen.batch_keys(batch);
        let mut cost = Cost::new();
        let mut out = Vec::new();
        cluster.pull(&keys, batch, &mut out, &mut cost);
        cost.merge(&cluster.end_pull_phase(batch).cost);
        let grads = grads_for(&keys, batch, cfg.dim);
        cluster.push(&keys, &grads, batch, &mut cost);
        let ns = cost.total_ns();
        total_ns += ns;
        if batch < cfg.storm_start {
            pre.push(ns);
        } else if batch < late_start {
            early.push(ns);
        } else if batch < cfg.storm_end {
            late.push(ns);
        }
    }
    let (_, pre_mean) = window_stats(&pre);
    let (early_p99, _) = window_stats(&early);
    let (late_p99, late_mean) = window_stats(&late);
    ArmResult {
        pre_storm_mean_ns: pre_mean,
        storm_early_p99_ns: early_p99,
        storm_late_p99_ns: late_p99,
        storm_late_mean_ns: late_mean,
        total_ns,
        placement_epoch: cluster.placement_epoch(),
    }
}

/// Run the comparison: identical storm into a static and a rebalancing
/// cluster, late-storm tail latency side by side.
pub fn run(cfg: &RebalanceBenchConfig) -> RebalanceReport {
    let static_cluster = PlacedCluster::new(cfg.nodes());
    let auto_cluster =
        PlacedCluster::with_auto_rebalance(cfg.nodes(), cfg.controller(), Vec::new());

    let static_arm = run_arm(cfg, &static_cluster);
    let rebalanced_arm = run_arm(cfg, &auto_cluster);

    let crowd = cfg.crowd();
    let crowd_left_on_melted = crowd
        .iter()
        .filter(|&&k| auto_cluster.node_of(k) == 0)
        .count();
    let bit_identical =
        (0..cfg.num_keys).all(|k| static_cluster.read_weights(k) == auto_cluster.read_weights(k));

    RebalanceReport {
        config: cfg.clone(),
        p99_improvement: static_arm.storm_late_p99_ns as f64
            / rebalanced_arm.storm_late_p99_ns.max(1) as f64,
        static_arm,
        rebalanced_arm,
        crowd_left_on_melted,
        migration: auto_cluster.migration_stats(),
        bit_identical,
    }
}

/// Trajectory/gate metrics (all deterministic virtual-time, all
/// higher-is-better): the headline p99 improvement, inverted
/// late-storm p99s (so latency regressions trip the gate), and
/// bit-identity as 1.0/0.0 — a baseline of 1.0 makes any non-identical
/// run an automatic gate failure.
pub fn metrics(r: &RebalanceReport) -> Vec<(String, f64)> {
    vec![
        ("p99_improvement".to_string(), r.p99_improvement),
        (
            "rebalanced_late_p99_inv_per_sec".to_string(),
            1e9 / r.rebalanced_arm.storm_late_p99_ns.max(1) as f64,
        ),
        (
            "static_late_p99_inv_per_sec".to_string(),
            1e9 / r.static_arm.storm_late_p99_ns.max(1) as f64,
        ),
        (
            "bit_identical".to_string(),
            if r.bit_identical { 1.0 } else { 0.0 },
        ),
    ]
}

/// Human-readable table, printed by `figures -- rebalance`.
pub fn print_report(r: &RebalanceReport) {
    let c = &r.config;
    println!(
        "storm: {} crowd keys on node 0/{} at {:.0}% share, batches [{}, {}) of {}, cache {} entries/node",
        c.crowd_size, c.num_nodes, c.hot_share * 100.0, c.storm_start, c.storm_end, c.batches,
        c.cache_entries_per_node
    );
    println!(
        "{:<12} {:>14} {:>16} {:>16} {:>8}",
        "arm", "pre mean ms", "early p99 ms", "late p99 ms", "epoch"
    );
    for (name, a) in [("static", &r.static_arm), ("rebalanced", &r.rebalanced_arm)] {
        println!(
            "{:<12} {:>14.3} {:>16.3} {:>16.3} {:>8}",
            name,
            a.pre_storm_mean_ns as f64 / 1e6,
            a.storm_early_p99_ns as f64 / 1e6,
            a.storm_late_p99_ns as f64 / 1e6,
            a.placement_epoch
        );
    }
    println!(
        "late-storm p99 improvement: {:.2}×  (crowd left on melted node: {}/{})",
        r.p99_improvement, r.crowd_left_on_melted, c.crowd_size
    );
    let m = &r.migration;
    println!(
        "migration bill: {} migration(s), {} keys moved, {} seed copies, {} double-write pushes over {} window batch(es)",
        m.migrations, m.keys_moved, m.seed_copies, m.double_write_pushes, m.double_write_batches
    );
    println!("bit-identical across arms: {}", r.bit_identical);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RebalanceBenchConfig {
        RebalanceBenchConfig {
            num_keys: 2_000,
            keys_per_batch: 512,
            crowd_size: 48,
            batches: 24,
            storm_start: 5,
            storm_end: 21,
            cache_entries_per_node: 36,
            min_window_keys: 96,
            // The tiny storm dedups to ~200 distinct keys, so the hot
            // head must cover a large fraction of them to reach the
            // whole 48-key crowd.
            hot_fraction: 0.4,
            ..RebalanceBenchConfig::smoke()
        }
    }

    #[test]
    fn rebalancer_restores_tail_latency_bit_identically() {
        let r = run(&tiny());
        assert!(r.bit_identical, "migration must be invisible to training");
        assert_eq!(r.static_arm.placement_epoch, 0);
        assert!(
            r.rebalanced_arm.placement_epoch >= 1,
            "storm must trigger the controller"
        );
        assert!(r.migration.keys_moved > 0);
        assert!(
            r.crowd_left_on_melted < r.config.crowd_size,
            "crowd drained off the melted node: {} left",
            r.crowd_left_on_melted
        );
        assert!(
            r.p99_improvement > 1.0,
            "rebalanced late-storm p99 must beat static: {:.3}×",
            r.p99_improvement
        );
    }

    #[test]
    fn crowd_is_adversarial_for_the_hash() {
        let cfg = tiny();
        let crowd = cfg.crowd();
        assert_eq!(crowd.len(), cfg.crowd_size);
        assert!(crowd.iter().all(|&k| hash_node_of(k, cfg.num_nodes) == 0));
    }
}
