//! The scaled evaluation scenario and the standard run harness.
//!
//! The paper's testbed is a 500 GB / 2.1 B-entry model trained by 4–16
//! V100s. The simulator preserves every *ratio* that drives the results:
//! cache size as a fraction of model bytes, the access-skew curve, batch
//! geometry, and the device speed ratios — while scaling the key count
//! down so a full figure regenerates in seconds.

use oe_baselines::{CkptDevice, DramPs, IncrementalCkpt, OriCache, PmemHash, TfPs};
use oe_core::engine::PsEngine;
use oe_core::{CheckpointScheduler, NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::clock::Nanos;
use oe_simdevice::DeviceTiming;
use oe_train::{SyncTrainer, TrainMode, TrainReport, TrainerConfig};
use oe_workload::{SkewModel, WorkloadGen, WorkloadSpec};

/// Scaled workload + system parameters.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Distinct embedding keys (paper: 2.1 B).
    pub num_keys: u64,
    /// Embedding dimension (paper: 64).
    pub dim: usize,
    /// Sparse fields per input.
    pub fields: usize,
    /// Global batch size (paper: 4096).
    pub batch_size: usize,
    /// Skew multiplier: 1.0 = the paper-fit distribution.
    pub skew_scale: f64,
    /// DRAM cache as a fraction of model bytes (paper default:
    /// 2 GB / 500 GB = 0.4 %).
    pub cache_frac: f64,
    /// Warm-up batches before measurement.
    pub warm_batches: u64,
    /// Measured batches.
    pub measure_batches: u64,
    /// Workload seed.
    pub seed: u64,
    /// Popularity drift (keys/batch) — item churn over a long trace.
    pub drift_keys_per_batch: u64,
}

impl Scenario {
    /// Default scaled scenario.
    pub fn default_paper() -> Self {
        Self {
            num_keys: 1_000_000,
            dim: 64,
            fields: 8,
            batch_size: 2048,
            skew_scale: 1.0,
            cache_frac: 0.004,
            warm_batches: 40,
            measure_batches: 40,
            seed: 20230101,
            drift_keys_per_batch: 0,
        }
    }

    /// A much faster variant for smoke tests (`--quick`).
    pub fn quick() -> Self {
        Self {
            num_keys: 30_000,
            dim: 16,
            fields: 8,
            batch_size: 512,
            warm_batches: 10,
            measure_batches: 15,
            ..Self::default_paper()
        }
    }

    /// Node configuration implied by the scenario.
    pub fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = self.cache_bytes();
        cfg.pmem_capacity = (self.model_bytes() * 2).max(1 << 22);
        cfg
    }

    /// Simulated model footprint in bytes.
    pub fn model_bytes(&self) -> usize {
        let cfg = NodeConfig::small(self.dim); // payload math only
        self.num_keys as usize * cfg.payload_bytes()
    }

    /// DRAM cache bytes implied by `cache_frac`.
    pub fn cache_bytes(&self) -> usize {
        ((self.model_bytes() as f64 * self.cache_frac) as usize).max(1 << 14)
    }

    /// Workload spec for `workers` GPUs.
    pub fn workload(&self, workers: u32) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: self.num_keys,
            fields: self.fields,
            batch_size: self.batch_size,
            workers: workers as usize,
            skew: SkewModel::paper_fit().scaled(self.skew_scale),
            seed: self.seed,
            drift_keys_per_batch: self.drift_keys_per_batch,
        }
    }
}

/// Which engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// PMem-OE: the full OpenEmbedding node.
    Oe,
    /// PMem-OE with the cache and/or pipeline ablated (Fig. 9).
    OeAblation {
        /// DRAM cache enabled.
        cache: bool,
        /// Pipelined maintenance enabled.
        pipeline: bool,
    },
    /// PMem-OE wrapped with incremental checkpointing (Fig. 12).
    OeIncremental,
    /// Classic DRAM parameter server.
    DramPs,
    /// Fine-grained hybrid cache, synchronous maintenance.
    OriCache,
    /// PMem-native hash store.
    PmemHash,
    /// Framework-default PS (Fig. 15).
    TfPs,
    /// PMem-OE with custom cache policies (ablations beyond the paper).
    OeCustom {
        /// Replacement policy.
        replacement: oe_cache::PolicyKind,
        /// Admission policy.
        admission: oe_cache::AdmissionKind,
        /// Shard count.
        shards: usize,
    },
}

impl EngineKind {
    /// Instantiate the engine for a scenario.
    pub fn build(self, sc: &Scenario) -> Box<dyn PsEngine> {
        let cfg = sc.node_config();
        match self {
            EngineKind::Oe => Box::new(PsNode::new(cfg)),
            EngineKind::OeAblation { cache, pipeline } => {
                let mut cfg = cfg;
                cfg.enable_cache = cache;
                cfg.enable_pipeline = pipeline;
                Box::new(PsNode::new(cfg))
            }
            EngineKind::OeIncremental => {
                Box::new(IncrementalCkpt::new(PsNode::new(cfg), CkptDevice::Pmem))
            }
            EngineKind::DramPs => Box::new(DramPs::new(cfg, CkptDevice::Pmem)),
            EngineKind::OriCache => Box::new(OriCache::new(cfg, CkptDevice::Pmem)),
            EngineKind::PmemHash => Box::new(PmemHash::new(cfg)),
            EngineKind::TfPs => Box::new(TfPs::new(cfg, CkptDevice::Ssd)),
            EngineKind::OeCustom {
                replacement,
                admission,
                shards,
            } => {
                let mut cfg = cfg;
                cfg.replacement = replacement;
                cfg.admission = admission;
                cfg.shards = shards;
                Box::new(PsNode::new(cfg))
            }
        }
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Oe => "PMem-OE",
            EngineKind::OeAblation { cache, pipeline } => match (cache, pipeline) {
                (false, false) => "OE(-cache,-pipe)",
                (true, false) => "OE(+cache,-pipe)",
                (false, true) => "OE(-cache,+pipe)",
                (true, true) => "OE(+cache,+pipe)",
            },
            EngineKind::OeIncremental => "PMem-OE(Incr)",
            EngineKind::DramPs => "DRAM-PS",
            EngineKind::OriCache => "Ori-Cache",
            EngineKind::PmemHash => "PMem-Hash",
            EngineKind::TfPs => "Tensorflow",
            EngineKind::OeCustom { .. } => "PMem-OE(custom)",
        }
    }
}

/// Checkpoint configuration for a run (Table IV variants).
#[derive(Debug, Clone, Copy)]
pub enum CkptSetup {
    /// No checkpoints.
    None,
    /// Batch-aware sparse checkpoint + TF dense checkpoint ("Proposed").
    Proposed {
        /// Virtual-time interval.
        interval_ns: Nanos,
    },
    /// Batch-aware sparse only, no dense dump ("Sparse Only").
    SparseOnly {
        /// Virtual-time interval.
        interval_ns: Nanos,
    },
    /// Engine-native incremental dump + dense checkpoint
    /// ("Incremental Checkpoint").
    Incremental {
        /// Virtual-time interval.
        interval_ns: Nanos,
    },
}

impl CkptSetup {
    fn scheduler(&self) -> CheckpointScheduler {
        match self {
            CkptSetup::None => CheckpointScheduler::disabled(),
            CkptSetup::Proposed { interval_ns }
            | CkptSetup::SparseOnly { interval_ns }
            | CkptSetup::Incremental { interval_ns } => CheckpointScheduler::every(*interval_ns),
        }
    }

    /// Dense-model dump pause: the dense part (~1 % of the model) is
    /// written to SSD by the framework's own checkpoint path.
    fn dense_pause(&self, sc: &Scenario) -> Nanos {
        match self {
            CkptSetup::None | CkptSetup::SparseOnly { .. } => 0,
            CkptSetup::Proposed { .. } | CkptSetup::Incremental { .. } => {
                let dense_bytes = (sc.model_bytes() / 1000) as u64;
                DeviceTiming::flash_ssd().write_ns(dense_bytes)
            }
        }
    }
}

/// Run `engine` under the standard harness: warm up (untimed, builds
/// the cache working set) and measure.
pub fn run_scenario(kind: EngineKind, sc: &Scenario, workers: u32, ckpt: CkptSetup) -> TrainReport {
    let engine = kind.build(sc);
    let gen = WorkloadGen::new(sc.workload(workers));

    // Warm-up pass: first-touch initialization + cache warming.
    let mut warm_cfg = TrainerConfig::paper(workers);
    warm_cfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
    let mut warm = SyncTrainer::new(engine.as_ref(), &gen, warm_cfg);
    warm.run(1, sc.warm_batches);
    drop(warm);

    // Measured pass.
    let mut cfg = TrainerConfig::paper(workers);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
    cfg.ckpt = ckpt.scheduler();
    cfg.dense_ckpt_pause_ns = ckpt.dense_pause(sc);
    let mut t = SyncTrainer::new(engine.as_ref(), &gen, cfg);
    t.run(sc.warm_batches + 1, sc.measure_batches)
}

/// Format a normalized-comparison row.
pub fn norm_row(label: &str, value: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{label:<22} measured {value:>7.3}   (paper ≈ {p:.3})"),
        None => format!("{label:<22} measured {value:>7.3}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_math() {
        let sc = Scenario::default_paper();
        // dim 64 + adagrad state = 512 B payload.
        assert_eq!(sc.model_bytes(), 1_000_000 * 512);
        assert!((sc.cache_bytes() as f64 / sc.model_bytes() as f64 - 0.004).abs() < 1e-3);
    }

    #[test]
    fn engines_build_and_run_quick() {
        let sc = Scenario {
            num_keys: 2_000,
            batch_size: 64,
            warm_batches: 2,
            measure_batches: 3,
            dim: 8,
            fields: 4,
            ..Scenario::quick()
        };
        for kind in [
            EngineKind::Oe,
            EngineKind::DramPs,
            EngineKind::OriCache,
            EngineKind::PmemHash,
            EngineKind::TfPs,
        ] {
            let r = run_scenario(kind, &sc, 2, CkptSetup::None);
            assert_eq!(r.batches, 3, "{}", kind.label());
            assert!(r.total_ns > 0);
        }
    }

    #[test]
    fn checkpoint_setups_configure_pauses() {
        let sc = Scenario::quick();
        assert_eq!(CkptSetup::None.dense_pause(&sc), 0);
        assert_eq!(CkptSetup::SparseOnly { interval_ns: 1 }.dense_pause(&sc), 0);
        assert!(CkptSetup::Proposed { interval_ns: 1 }.dense_pause(&sc) > 0);
    }
}
