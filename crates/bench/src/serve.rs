//! SLO-driven serving bench: closed training loop → snapshot flip →
//! open-loop QPS replay, JSON artifact `BENCH_serve.json`.
//!
//! Three phases, one report:
//!
//! 1. **Train** — a PsNode runs a zipf-skewed workload through two
//!    checkpoint commits (driven by [`BatchCadence`], the training
//!    side's checkpoint scheduler). Checkpoint A becomes the serving
//!    snapshot the QPS phase starts on; checkpoint B is published
//!    *mid-traffic* through [`CheckpointPublisher::maybe_publish`] —
//!    the real training→serving wiring, not a bench shortcut.
//! 2. **Recall/latency sweep** — exact top-k vs LSH shapes over the
//!    checkpoint-B snapshot on a zipf query stream: recall@k, virtual
//!    retrieval cost, and wall time per query for every arm.
//! 3. **Open-loop QPS replay** — N reader threads replay a zipf
//!    request stream ([`StormGen::request_key`]) against a
//!    [`SnapshotHandle`] under open-loop arrival (latency =
//!    completion − scheduled, so queueing counts). Mid-run the
//!    checkpoint-B flip fires; per-request latencies are split into a
//!    flip window vs steady state so the artifact shows exactly what a
//!    mid-traffic snapshot swap costs the tail.
//!
//! Gated metrics: recall and virtual speedup are deterministic and
//! gated absolutely; wall-clock latency enters only as one geomean
//! (the kernels-bench convention for noisy numbers).

use oe_core::{BatchCadence, NodeConfig, OptimizerKind, PsEngine, PsNode};
use oe_serve::{
    recall_at_k, AnnConfig, CheckpointPublisher, ExactScan, LshRetriever, Retriever, Snapshot,
    SnapshotHandle,
};
use oe_simdevice::{Cost, CrashImage};
use oe_workload::{SkewModel, StormGen, StormSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload, model, and driver shape for one serving-bench run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchConfig {
    /// Embedding table size (distinct keys).
    pub num_keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Key references per training batch.
    pub keys_per_batch: usize,
    /// Checkpoint cadence in batches: A commits at `ckpt_every`,
    /// B at `2·ckpt_every` (end of training).
    pub ckpt_every: u64,
    /// ANN shapes swept against the exact arm.
    pub sweep: Vec<AnnShape>,
    /// Queries per sweep arm.
    pub recall_queries: u64,
    /// Top-k cut.
    pub k: usize,
    /// Reader threads in the QPS phase.
    pub readers: usize,
    /// Open-loop requests replayed.
    pub requests: u64,
    /// Open-loop arrival rate (requests/second, all readers together).
    pub target_qps: f64,
    /// Every Nth request is a top-k retrieval instead of a point read.
    pub topk_every: u64,
    /// Fraction of the request stream after which the flip fires.
    pub flip_at: f64,
    /// Workload seed.
    pub seed: u64,
}

/// One swept LSH shape (serializable mirror of [`AnnConfig`]).
#[derive(Debug, Clone, Serialize)]
pub struct AnnShape {
    /// Hash tables.
    pub tables: usize,
    /// Signature bits per table.
    pub bits: usize,
    /// Multiprobe bit flips per table.
    pub probes: usize,
}

impl AnnShape {
    fn config(&self) -> AnnConfig {
        AnnConfig::shaped(self.tables, self.bits, self.probes)
    }
}

impl ServeBenchConfig {
    /// Paper-shaped run.
    pub fn paper() -> Self {
        Self {
            num_keys: 40_000,
            dim: 32,
            keys_per_batch: 4_096,
            ckpt_every: 16,
            sweep: vec![
                AnnShape {
                    tables: 4,
                    bits: 8,
                    probes: 2,
                },
                AnnShape {
                    tables: 8,
                    bits: 8,
                    probes: 6,
                },
                AnnShape {
                    tables: 16,
                    bits: 10,
                    probes: 8,
                },
            ],
            recall_queries: 300,
            k: 10,
            readers: 4,
            requests: 24_000,
            target_qps: 50_000.0,
            topk_every: 16,
            flip_at: 0.5,
            seed: 0x5E1A,
        }
    }

    /// Smoke-test run for CI: same shape, a fraction of the work.
    pub fn smoke() -> Self {
        Self {
            num_keys: 8_000,
            dim: 16,
            keys_per_batch: 1_024,
            ckpt_every: 6,
            sweep: vec![
                AnnShape {
                    tables: 4,
                    bits: 8,
                    probes: 2,
                },
                AnnShape {
                    tables: 8,
                    bits: 8,
                    probes: 6,
                },
            ],
            recall_queries: 120,
            k: 10,
            readers: 4,
            requests: 6_000,
            target_qps: 20_000.0,
            topk_every: 16,
            flip_at: 0.5,
            seed: 0x5E1A,
        }
    }

    fn storm(&self) -> StormSpec {
        StormSpec {
            num_keys: self.num_keys,
            keys_per_batch: self.keys_per_batch,
            // A mild always-on crowd: serving traffic is head-heavy.
            hot_keys: (0..64.min(self.num_keys)).collect(),
            hot_share: 0.2,
            storm_start: 0,
            storm_end: u64::MAX,
            base: SkewModel::paper_fit(),
            seed: self.seed,
        }
    }

    fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        // Size the pool to the table (payload + header + version
        // slack), not a fixed budget: snapshot build scans the whole
        // pool, so oversizing it inflates every flip-publish.
        let slot_bytes = self.dim * 4 + 64;
        cfg.pmem_capacity = (self.num_keys as usize * slot_bytes * 8)
            .next_power_of_two()
            .max(1 << 22);
        cfg
    }

    fn ckpt_a(&self) -> u64 {
        self.ckpt_every
    }

    fn ckpt_b(&self) -> u64 {
        self.ckpt_every * 2
    }
}

/// One arm of the recall/latency tradeoff sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Arm label (`exact` or `lsh-TxBpP`).
    pub label: String,
    /// Mean recall@k against the exact arm (1.0 for exact itself).
    pub recall_at_k: f64,
    /// Mean virtual retrieval cost per query (deterministic).
    pub virtual_ns_per_query: u64,
    /// Virtual speedup over the exact arm (1.0 for exact).
    pub virtual_speedup: f64,
    /// Mean wall time per query (noisy; geomean-gated only).
    pub wall_ns_per_query: u64,
    /// Mean candidate fraction scored (1.0 for exact).
    pub candidate_fraction: f64,
}

/// Open-loop QPS phase results.
#[derive(Debug, Clone, Serialize)]
pub struct QpsResult {
    /// Reader threads.
    pub readers: usize,
    /// Requests replayed.
    pub requests: u64,
    /// Open-loop target arrival rate.
    pub target_qps: f64,
    /// Completed requests / wall time of the phase.
    pub achieved_qps: f64,
    /// Scheduled→completion latency quantiles (wall, ns).
    pub p50_ns: u64,
    /// p99 wall latency.
    pub p99_ns: u64,
    /// p999 wall latency.
    pub p999_ns: u64,
    /// p999 restricted to steady state (outside the flip window).
    pub steady_p999_ns: u64,
    /// p999 restricted to the flip window — the spike the artifact is
    /// for. Bounded: the swap is an Arc exchange, not a pause.
    pub flip_window_p999_ns: u64,
    /// Requests that landed inside the flip window.
    pub flip_window_requests: u64,
    /// Wall time of building snapshot B + flipping it in (off-path).
    pub flip_publish_wall_ns: u64,
    /// Epoch after the mid-run flip (2 = exactly one flip happened).
    pub epoch_after: u64,
    /// Mean virtual cost per point lookup (deterministic).
    pub virtual_ns_per_lookup: u64,
    /// Every request served a known key from checkpoint A or B.
    pub consistent: bool,
}

/// Full bench artifact (serialized to `BENCH_serve.json` by ci.sh).
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// The configuration measured.
    pub config: ServeBenchConfig,
    /// Checkpoint A batch id (initial serving snapshot).
    pub ckpt_a: u64,
    /// Checkpoint B batch id (flipped in mid-traffic).
    pub ckpt_b: u64,
    /// Snapshot build virtual cost (scan + decode + ANN), checkpoint B
    /// with the default shape.
    pub snapshot_build_virtual_ns: u64,
    /// Exact vs ANN shapes on the checkpoint-B snapshot.
    pub sweep: Vec<SweepRow>,
    /// The open-loop replay with the mid-run flip.
    pub qps: QpsResult,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Wait until `deadline` without burning the core: sleep for the bulk
/// of the gap, yield across the last stretch. Open-loop arrival must
/// not starve the serving threads it is measuring (CI boxes can be
/// single-core).
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let gap = deadline - now;
        if gap > Duration::from_micros(500) {
            std::thread::sleep(gap - Duration::from_micros(200));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Deterministic synthetic gradients, pure function of `(batch, i)`.
fn grads_for(keys: &[u64], batch: u64, dim: usize) -> Vec<f32> {
    let mut grads = vec![0.0f32; keys.len() * dim];
    for (i, g) in grads.iter_mut().enumerate() {
        *g = ((i % 17) as f32 - 8.0) * 0.02 + (batch % 29) as f32 * 0.001;
    }
    grads
}

/// Train through both checkpoints. Returns the node (kept alive so the
/// publisher can capture checkpoint B mid-traffic) and checkpoint A's
/// image.
fn train(cfg: &ServeBenchConfig) -> (PsNode, CrashImage) {
    let node = PsNode::new(cfg.node_config());
    let gen = StormGen::new(cfg.storm());
    let mut cadence = BatchCadence::every(cfg.ckpt_every);
    let mut cost = Cost::new();
    let mut out = Vec::new();
    let mut image_a = None;
    for b in 1..=cfg.ckpt_b() {
        // Batch 1 touches the whole table (day-0 initialization) so
        // both checkpoints serve every key the request stream can ask
        // about; the rest replay the skewed stream.
        let keys = if b == 1 {
            (0..cfg.num_keys).collect()
        } else {
            gen.batch_keys(b)
        };
        out.clear();
        node.pull(&keys, b, &mut out, &mut cost);
        node.end_pull_phase(b);
        // The previous boundary's checkpoint commits during this pull
        // phase; capture A's image the moment it lands.
        if image_a.is_none() && node.committed_checkpoint() == cfg.ckpt_a() {
            image_a = Some(node.pool().media().crash(cfg.ckpt_a()));
        }
        let grads = grads_for(&keys, b, cfg.dim);
        node.push(&keys, &grads, b, &mut cost);
        if cadence.due(b) {
            node.request_checkpoint(b);
        }
    }
    // One more pull phase commits checkpoint B.
    let tail = cfg.ckpt_b() + 1;
    out.clear();
    node.pull(&[0], tail, &mut out, &mut cost);
    node.end_pull_phase(tail);
    assert_eq!(node.committed_checkpoint(), cfg.ckpt_b());
    (
        node,
        image_a.expect("checkpoint A committed during training"),
    )
}

/// Zipf query keys for the sweep (offset into the request stream so
/// they differ from the QPS phase's prefix).
fn sweep_queries(cfg: &ServeBenchConfig, gen: &StormGen) -> Vec<u64> {
    (0..cfg.recall_queries)
        .map(|r| gen.request_key(r.wrapping_add(1 << 40)))
        .collect()
}

/// Recall/latency tradeoff: exact reference plus every swept shape.
fn run_sweep(cfg: &ServeBenchConfig, node: &PsNode, gen: &StormGen) -> (Vec<SweepRow>, u64) {
    let image_b = node.pool().media().crash(cfg.ckpt_b());
    let queries = sweep_queries(cfg, gen);

    // Exact arm: ground truth and reference costs.
    let exact_snap =
        Snapshot::build(image_b.clone(), cfg.dim, None).expect("checkpoint B snapshot");
    let mut truths = Vec::with_capacity(queries.len());
    let mut exact_virtual = 0u64;
    let wall0 = Instant::now();
    for &key in &queries {
        let q = exact_snap.lookup(key).0.expect("trained key").to_vec();
        let (top, c) = ExactScan.top_k(&exact_snap, &q, cfg.k);
        exact_virtual += c.total_ns();
        truths.push((q, top));
    }
    let exact_wall = wall0.elapsed().as_nanos() as u64 / queries.len() as u64;
    let exact_virtual = exact_virtual / queries.len() as u64;
    let mut rows = vec![SweepRow {
        label: "exact".to_string(),
        recall_at_k: 1.0,
        virtual_ns_per_query: exact_virtual,
        virtual_speedup: 1.0,
        wall_ns_per_query: exact_wall,
        candidate_fraction: 1.0,
    }];

    let mut build_virtual_default = 0u64;
    for shape in &cfg.sweep {
        let ann = shape.config();
        let snap = Snapshot::build(image_b.clone(), cfg.dim, Some(&ann)).expect("ANN snapshot");
        if ann == AnnConfig::paper_default() || build_virtual_default == 0 {
            build_virtual_default = snap.build_cost().total_ns();
        }
        let index = snap.ann_index().expect("index requested");
        let mut recall_sum = 0.0;
        let mut virt = 0u64;
        let mut cand = 0usize;
        let wall0 = Instant::now();
        for (q, truth) in &truths {
            let (top, c) = LshRetriever.top_k(&snap, q, cfg.k);
            virt += c.total_ns();
            recall_sum += recall_at_k(truth, &top);
            cand += index.candidates(q).len();
        }
        let wall = wall0.elapsed().as_nanos() as u64 / queries.len() as u64;
        let virt = virt / queries.len() as u64;
        rows.push(SweepRow {
            label: ann.label(),
            recall_at_k: recall_sum / queries.len() as f64,
            virtual_ns_per_query: virt,
            virtual_speedup: exact_virtual as f64 / virt.max(1) as f64,
            wall_ns_per_query: wall,
            candidate_fraction: cand as f64 / (queries.len() as f64 * snap.num_keys() as f64),
        });
    }
    (rows, build_virtual_default)
}

struct ReaderOutcome {
    /// `(scheduled_ns, latency_ns)` per request.
    samples: Vec<(u64, u64)>,
    virtual_ns: u64,
    lookups: u64,
    consistent: bool,
}

/// Open-loop replay against a [`SnapshotHandle`] with the checkpoint-B
/// flip mid-run, published through the real training→serving wiring.
fn run_qps(
    cfg: &ServeBenchConfig,
    node: &PsNode,
    image_a: CrashImage,
    gen: &StormGen,
) -> QpsResult {
    let ann = AnnConfig::paper_default();
    let snap_a =
        Arc::new(Snapshot::build(image_a, cfg.dim, Some(&ann)).expect("checkpoint A snapshot"));
    let handle = Arc::new(SnapshotHandle::new(snap_a));
    let mut publisher = CheckpointPublisher::new(Arc::clone(&handle), cfg.dim, Some(ann));
    assert_eq!(publisher.last_published(), cfg.ckpt_a());

    let interval_ns = 1e9 / cfg.target_qps;
    let flip_req = (cfg.requests as f64 * cfg.flip_at) as u64;
    let readers = cfg.readers;
    let (ckpt_a, ckpt_b) = (cfg.ckpt_a(), cfg.ckpt_b());
    let start = Instant::now();
    let mut flip_begin_ns = 0u64;
    let mut flip_publish_wall_ns = 0u64;

    let outcomes: Vec<ReaderOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|t| {
                let handle = &handle;
                s.spawn(move || {
                    let mut reader = handle.reader();
                    let mut out = ReaderOutcome {
                        samples: Vec::with_capacity((cfg.requests / readers as u64) as usize + 1),
                        virtual_ns: 0,
                        lookups: 0,
                        consistent: true,
                    };
                    let mut scratch: Vec<f32> = Vec::with_capacity(cfg.dim);
                    let mut req = t as u64;
                    while req < cfg.requests {
                        let sched_ns = (req as f64 * interval_ns) as u64;
                        let sched = start + Duration::from_nanos(sched_ns);
                        wait_until(sched);
                        let key = gen.request_key(req);
                        if req.is_multiple_of(cfg.topk_every) {
                            // Retrieval request: query = the key's own
                            // embedding, copied into one reused scratch
                            // buffer (no per-request allocation).
                            let known = {
                                let snap = reader.acquire();
                                let (q, _) = snap.lookup(key);
                                match q {
                                    Some(q) => {
                                        scratch.clear();
                                        scratch.extend_from_slice(q);
                                        true
                                    }
                                    None => false,
                                }
                            };
                            if known {
                                let (top, _) = reader.retrieve(&scratch, cfg.k, &LshRetriever);
                                if top.is_empty() {
                                    out.consistent = false;
                                }
                            } else {
                                out.consistent = false;
                            }
                        } else {
                            let snap = reader.acquire();
                            let ck = snap.checkpoint();
                            let (v, c) = snap.lookup(key);
                            out.virtual_ns += c.total_ns();
                            out.lookups += 1;
                            if v.is_none() || (ck != ckpt_a && ck != ckpt_b) {
                                out.consistent = false;
                            }
                        }
                        let done_ns = start.elapsed().as_nanos() as u64;
                        out.samples
                            .push((sched_ns, done_ns.saturating_sub(sched_ns)));
                        req += readers as u64;
                    }
                    out
                })
            })
            .collect();

        // Publisher: wait for the flip request's scheduled instant,
        // then publish checkpoint B mid-traffic (build + ANN + flip,
        // all off the read path).
        let flip_sched = start + Duration::from_nanos((flip_req as f64 * interval_ns) as u64);
        wait_until(flip_sched);
        flip_begin_ns = start.elapsed().as_nanos() as u64;
        let flip_t0 = Instant::now();
        let epoch = publisher.maybe_publish(node).expect("checkpoint B flips");
        flip_publish_wall_ns = flip_t0.elapsed().as_nanos() as u64;
        assert_eq!(epoch, 2, "exactly one mid-run flip");

        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });
    let phase_wall_ns = start.elapsed().as_nanos() as u64;

    // The flip window: requests scheduled while the publish was in
    // flight, padded by the publish duration on both sides.
    let pad = flip_publish_wall_ns;
    let window = (flip_begin_ns.saturating_sub(pad))..=(flip_begin_ns + flip_publish_wall_ns + pad);
    let mut all = Vec::new();
    let mut steady = Vec::new();
    let mut spike = Vec::new();
    let mut virtual_ns = 0u64;
    let mut lookups = 0u64;
    let mut consistent = true;
    for o in &outcomes {
        virtual_ns += o.virtual_ns;
        lookups += o.lookups;
        consistent &= o.consistent;
        for &(sched_ns, lat_ns) in &o.samples {
            all.push(lat_ns);
            if window.contains(&sched_ns) {
                spike.push(lat_ns);
            } else {
                steady.push(lat_ns);
            }
        }
    }
    all.sort_unstable();
    steady.sort_unstable();
    spike.sort_unstable();

    QpsResult {
        readers,
        requests: cfg.requests,
        target_qps: cfg.target_qps,
        achieved_qps: cfg.requests as f64 / (phase_wall_ns as f64 / 1e9),
        p50_ns: percentile(&all, 0.50),
        p99_ns: percentile(&all, 0.99),
        p999_ns: percentile(&all, 0.999),
        steady_p999_ns: percentile(&steady, 0.999),
        flip_window_p999_ns: percentile(&spike, 0.999),
        flip_window_requests: spike.len() as u64,
        flip_publish_wall_ns,
        epoch_after: handle.epoch(),
        virtual_ns_per_lookup: virtual_ns / lookups.max(1),
        consistent,
    }
}

/// Run the full serving bench: train, sweep, open-loop replay.
pub fn run(cfg: &ServeBenchConfig) -> ServeReport {
    let (node, image_a) = train(cfg);
    let gen = StormGen::new(cfg.storm());
    let (sweep, snapshot_build_virtual_ns) = run_sweep(cfg, &node, &gen);
    let qps = run_qps(cfg, &node, image_a, &gen);
    ServeReport {
        config: cfg.clone(),
        ckpt_a: cfg.ckpt_a(),
        ckpt_b: cfg.ckpt_b(),
        snapshot_build_virtual_ns,
        sweep,
        qps,
    }
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in vals {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Trajectory/gate metrics. Recall, virtual costs, and consistency are
/// deterministic → gated absolutely. Wall-clock latency is noisy →
/// only one geomean over {sweep wall inverses, QPS p50/p99 inverses}
/// enters the gate (the kernels-bench convention); the p999 spike is
/// reported in the artifact but not gated.
pub fn metrics(r: &ServeReport) -> Vec<(String, f64)> {
    let mut m = Vec::new();
    for row in r.sweep.iter().filter(|row| row.label != "exact") {
        m.push((format!("recall_{}", row.label), row.recall_at_k));
        m.push((
            format!("virtual_speedup_{}", row.label),
            row.virtual_speedup,
        ));
    }
    m.push((
        "lookup_virtual_inv_per_sec".to_string(),
        1e9 / r.qps.virtual_ns_per_lookup.max(1) as f64,
    ));
    m.push((
        "consistent".to_string(),
        if r.qps.consistent { 1.0 } else { 0.0 },
    ));
    // Wall numbers gate only as one geomean (kernels convention), and
    // only over the stable components: retrieval scan costs and the
    // steady-state p50. Open-loop tail percentiles swing by integer
    // factors run-to-run under scheduler noise (the readers oversubscribe
    // the host), so p99/p999 are reported but never gated.
    let wall = [
        1e9 / r.sweep[0].wall_ns_per_query.max(1) as f64,
        1e9 / r
            .sweep
            .last()
            .map(|s| s.wall_ns_per_query)
            .unwrap_or(1)
            .max(1) as f64,
        1e9 / r.qps.p50_ns.max(1) as f64,
    ];
    m.push((
        "wall_inv_geomean".to_string(),
        geomean(wall.iter().copied()),
    ));
    m
}

/// Human-readable table, printed by `figures -- serve`.
pub fn print_report(r: &ServeReport) {
    let c = &r.config;
    println!(
        "serve: {} keys × dim {}, checkpoints A@{} / B@{}, snapshot build {:.2} ms virtual",
        c.num_keys,
        c.dim,
        r.ckpt_a,
        r.ckpt_b,
        r.snapshot_build_virtual_ns as f64 / 1e6
    );
    println!(
        "{:<12} {:>10} {:>16} {:>10} {:>14} {:>10}",
        "arm", "recall@k", "virtual ns/q", "speedup", "wall ns/q", "cand frac"
    );
    for s in &r.sweep {
        println!(
            "{:<12} {:>10.3} {:>16} {:>10.2} {:>14} {:>10.4}",
            s.label,
            s.recall_at_k,
            s.virtual_ns_per_query,
            s.virtual_speedup,
            s.wall_ns_per_query,
            s.candidate_fraction
        );
    }
    let q = &r.qps;
    println!(
        "open loop: {} readers × {} requests at {:.0} rps target ({:.0} achieved)",
        q.readers, q.requests, q.target_qps, q.achieved_qps
    );
    println!(
        "latency: p50 {} ns, p99 {} ns, p999 {} ns (steady p999 {} ns)",
        q.p50_ns, q.p99_ns, q.p999_ns, q.steady_p999_ns
    );
    println!(
        "mid-run flip: publish {:.2} ms wall, window p999 {} ns over {} requests, epoch → {}",
        q.flip_publish_wall_ns as f64 / 1e6,
        q.flip_window_p999_ns,
        q.flip_window_requests,
        q.epoch_after
    );
    println!(
        "consistent (every read from checkpoint A or B): {}",
        q.consistent
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            num_keys: 1_500,
            dim: 8,
            keys_per_batch: 256,
            ckpt_every: 3,
            sweep: vec![AnnShape {
                tables: 8,
                bits: 8,
                probes: 6,
            }],
            recall_queries: 40,
            k: 5,
            readers: 2,
            requests: 1_000,
            target_qps: 200_000.0,
            topk_every: 16,
            flip_at: 0.5,
            seed: 0x5E1A,
        }
    }

    #[test]
    fn serve_bench_flips_mid_traffic_and_stays_consistent() {
        let r = run(&tiny());
        assert_eq!(r.qps.epoch_after, 2, "exactly one mid-run flip");
        assert!(r.qps.consistent, "every read from checkpoint A or B");
        assert!(r.qps.achieved_qps > 0.0);
        assert!(r.qps.flip_window_requests > 0, "flip landed mid-traffic");
        assert_eq!(r.sweep[0].label, "exact");
        assert!(r.sweep[1].recall_at_k > 0.5);
        assert!(r.sweep[1].virtual_speedup > 1.0, "ANN must be cheaper");
        let m = metrics(&r);
        assert!(m.iter().any(|(k, _)| k == "consistent"));
        assert!(m.iter().any(|(k, _)| k.starts_with("recall_lsh")));
        assert!(m.iter().any(|(k, _)| k == "wall_inv_geomean"));
    }

    #[test]
    fn training_commits_both_checkpoints() {
        let cfg = tiny();
        let (node, _image_a) = train(&cfg);
        assert_eq!(node.committed_checkpoint(), cfg.ckpt_b());
    }
}
