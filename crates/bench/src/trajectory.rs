//! Persistent perf trajectory: every gated bench run appends its
//! metrics to `BENCH_trajectory.json`, keyed by git commit, and is
//! checked against `BENCH_baseline.json` — a flat `"bench.metric":
//! value` object. All recorded metrics are higher-is-better
//! (throughputs and speedup ratios); the gate fails when a metric
//! drops more than [`DEFAULT_THRESHOLD`] below its baseline.
//!
//! The workspace's vendored `serde_json` stub is serialize-only, so
//! reading both files is hand-rolled here: the trajectory file is
//! appended to by text-splicing its trailing `]`, and the baseline is
//! parsed with a tiny flat-object scanner. Both writers emit plain
//! pretty JSON that real tooling can consume.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Fraction a higher-is-better metric may fall below its baseline
/// before the gate fails: 30%, loose enough for wall-clock jitter on
/// best-of-k ratios, tight enough to catch a disabled fast path.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Entries kept per bench in the trajectory file. The file is an
/// append-only log committed to the repo; without a cap every CI run
/// grows it forever. Twenty runs is enough history to eyeball a trend
/// while keeping the artifact diff-sized.
pub const MAX_HISTORY_PER_BENCH: usize = 20;

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
pub fn current_commit() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_time() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn entry_json(commit: &str, bench: &str, when: u64, metrics: &[(String, f64)]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "  {{\n    \"commit\": \"{}\",\n    \"bench\": \"{}\",\n    \"unix_time\": {},\n    \"metrics\": {{",
        escape(commit),
        escape(bench),
        when
    );
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(s, "{sep}\n      \"{}\": {v}", escape(k));
    }
    if metrics.is_empty() {
        s.push_str("}\n  }");
    } else {
        s.push_str("\n    }\n  }");
    }
    s
}

/// Append one run to the trajectory file, creating it as a fresh JSON
/// array if absent. Entries carry the commit, bench name, unix time,
/// and a flat metric map. History is capped: only the newest
/// [`MAX_HISTORY_PER_BENCH`] entries of each bench survive an append.
pub fn record(path: &Path, bench: &str, metrics: &[(String, f64)]) -> io::Result<()> {
    let entry = entry_json(&current_commit(), bench, unix_time(), metrics);
    let existing = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim_end();
    let out = if let Some(head) = trimmed.strip_suffix(']') {
        let head = head.trim_end();
        if head.trim_start() == "[" {
            // Existing but empty array.
            format!("[\n{entry}\n]\n")
        } else {
            format!("{head},\n{entry}\n]\n")
        }
    } else if trimmed.is_empty() {
        format!("[\n{entry}\n]\n")
    } else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a JSON array; refusing to append", path.display()),
        ));
    };
    fs::write(path, cap_history(&out).unwrap_or(out))
}

/// Split the text of a JSON array into its top-level object entries
/// (string-aware brace matching; the vendored `serde_json` stub cannot
/// parse). `None` when the text is not a well-formed array of objects.
fn top_level_entries(text: &str) -> Option<Vec<&str>> {
    let body = text.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut entries = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    let (mut in_str, mut esc) = (false, false);
    for (i, c) in body.char_indices() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    entries.push(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    (depth == 0 && !in_str).then_some(entries)
}

/// The `"bench"` field of one trajectory entry.
fn bench_of(entry: &str) -> Option<&str> {
    let rest = &entry[entry.find("\"bench\"")? + "\"bench\"".len()..];
    let rest = rest[rest.find(':')? + 1..].trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// Drop each bench's oldest entries beyond [`MAX_HISTORY_PER_BENCH`],
/// preserving order. `None` (caller keeps the uncapped text) when the
/// array cannot be split — better an oversized log than a corrupted
/// one.
fn cap_history(text: &str) -> Option<String> {
    let entries = top_level_entries(text)?;
    let mut per_bench: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for e in &entries {
        *per_bench.entry(bench_of(e).unwrap_or("")).or_insert(0) += 1;
    }
    if per_bench.values().all(|&n| n <= MAX_HISTORY_PER_BENCH) {
        return None; // nothing to drop; keep the spliced text verbatim
    }
    let mut kept: Vec<&str> = Vec::with_capacity(entries.len());
    for e in &entries {
        let n = per_bench
            .get_mut(bench_of(e).unwrap_or(""))
            .expect("counted above");
        if *n > MAX_HISTORY_PER_BENCH {
            *n -= 1; // this bench still has too many: drop this (older) one
        } else {
            kept.push(e);
        }
    }
    let mut out = String::from("[\n");
    for (i, e) in kept.iter().enumerate() {
        let sep = if i + 1 == kept.len() { "\n" } else { ",\n" };
        out.push_str("  ");
        out.push_str(e);
        out.push_str(sep);
    }
    out.push_str("]\n");
    Some(out)
}

/// Parse a flat JSON object of `"name": number` pairs (the baseline
/// format). Tolerates arbitrary whitespace; rejects nesting, strings,
/// and anything else a baseline should not contain.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("baseline must be a JSON object")?;
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at: {:.40}…", rest))?;
        let end = rest.find('"').ok_or("unterminated key")?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start();
        rest = rest
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        let num_len = rest
            .find(|c: char| !matches!(c, '0'..='9' | '+' | '-' | '.' | 'e' | 'E'))
            .unwrap_or(rest.len());
        let value: f64 = rest[..num_len]
            .parse()
            .map_err(|_| format!("bad number for key {key:?}: {:?}", &rest[..num_len]))?;
        out.push((key, value));
        rest = rest[num_len..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

fn write_flat_json(path: &Path, entries: &[(String, f64)]) -> io::Result<()> {
    let mut s = String::from("{");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(s, "{sep}\n  \"{}\": {v}", escape(k));
    }
    s.push_str(if entries.is_empty() { "}\n" } else { "\n}\n" });
    fs::write(path, s)
}

/// Gate outcome for one run.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Every baselined metric is within the threshold.
    Pass {
        /// Metrics compared against a baseline entry.
        checked: usize,
        /// Current metrics with no baseline entry yet (not failures).
        unbaselined: usize,
    },
    /// The baseline file does not exist yet — advisory, not a failure;
    /// run with `--update-baseline` to create it.
    NoBaseline,
    /// At least one metric regressed past the threshold.
    Fail(Vec<String>),
}

/// Compare `metrics` for `bench` against the flat baseline at `path`.
/// Baseline keys are `"{bench}.{metric}"`; metrics missing from the
/// baseline are counted but never fail (new metrics appear before
/// their baseline does). All metrics are higher-is-better.
pub fn gate(
    path: &Path,
    bench: &str,
    metrics: &[(String, f64)],
    threshold: f64,
) -> Result<GateOutcome, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(GateOutcome::NoBaseline),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let baseline = parse_flat_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    let mut unbaselined = 0usize;
    for (name, current) in metrics {
        let key = format!("{bench}.{name}");
        match baseline.iter().find(|(k, _)| *k == key) {
            None => unbaselined += 1,
            Some((_, base)) => {
                checked += 1;
                let floor = base * (1.0 - threshold);
                if *current < floor {
                    failures.push(format!(
                        "{key}: {current:.4} < floor {floor:.4} (baseline {base:.4}, \
                         -{:.0}% allowed)",
                        threshold * 100.0
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(GateOutcome::Pass {
            checked,
            unbaselined,
        })
    } else {
        Ok(GateOutcome::Fail(failures))
    }
}

/// Rewrite this bench's entries in the baseline with the current
/// metrics, preserving other benches' entries and sorting keys.
pub fn update_baseline(path: &Path, bench: &str, metrics: &[(String, f64)]) -> io::Result<()> {
    let mut entries = match fs::read_to_string(path) {
        Ok(text) => {
            parse_flat_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let prefix = format!("{bench}.");
    entries.retain(|(k, _)| !k.starts_with(&prefix));
    entries.extend(metrics.iter().map(|(k, v)| (format!("{bench}.{k}"), *v)));
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    write_flat_json(path, &entries)
}

/// Shared CLI handling for gated bench binaries: applies
/// `--record TRAJ`, `--gate BASE`, and `--update-baseline` to one
/// bench's metrics. Returns `false` when the gate failed (the caller
/// should exit nonzero). Prints its own report either way.
pub fn record_and_gate(
    bench: &str,
    metrics: &[(String, f64)],
    record_path: Option<&str>,
    gate_path: Option<&str>,
    do_update: bool,
) -> bool {
    if let Some(p) = record_path {
        match record(Path::new(p), bench, metrics) {
            Ok(()) => println!(
                "trajectory: appended {} ({} metrics) to {p}",
                bench,
                metrics.len()
            ),
            Err(e) => {
                eprintln!("trajectory: failed to append to {p}: {e}");
                return false;
            }
        }
    }
    let Some(gp) = gate_path else { return true };
    let gp_path = Path::new(gp);
    if do_update {
        match update_baseline(gp_path, bench, metrics) {
            Ok(()) => {
                println!("baseline: rewrote {bench}.* in {gp}");
                return true;
            }
            Err(e) => {
                eprintln!("baseline: failed to update {gp}: {e}");
                return false;
            }
        }
    }
    match gate(gp_path, bench, metrics, DEFAULT_THRESHOLD) {
        Ok(GateOutcome::Pass {
            checked,
            unbaselined,
        }) => {
            println!(
                "gate: PASS — {checked} metrics within {:.0}% of {gp}\
                 {}",
                DEFAULT_THRESHOLD * 100.0,
                if unbaselined > 0 {
                    format!(" ({unbaselined} not yet baselined)")
                } else {
                    String::new()
                }
            );
            true
        }
        Ok(GateOutcome::NoBaseline) => {
            println!("gate: no baseline at {gp}; run with --update-baseline to create it");
            true
        }
        Ok(GateOutcome::Fail(failures)) => {
            eprintln!("gate: FAIL — perf regression vs {gp}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!("  (intentional? re-run with --update-baseline to accept the new numbers)");
            false
        }
        Err(e) => {
            eprintln!("gate: cannot evaluate {gp}: {e}");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "oe_traj_{}_{}_{name}",
            std::process::id(),
            unix_time()
        ));
        let _ = fs::remove_file(&p);
        p
    }

    fn m(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn record_appends_and_stays_an_array() {
        let p = tmp("record.json");
        record(&p, "alpha", &m(&[("x", 1.5), ("y", 2.0)])).unwrap();
        record(&p, "beta", &m(&[("z", 3.0)])).unwrap();
        let text = fs::read_to_string(&p).unwrap();
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches("\"bench\"").count(), 2, "{text}");
        assert!(
            text.contains("\"alpha\"") && text.contains("\"beta\""),
            "{text}"
        );
        // Appending twice more keeps splicing cleanly.
        record(&p, "alpha", &m(&[("x", 1.6)])).unwrap();
        let text = fs::read_to_string(&p).unwrap();
        assert_eq!(text.matches("\"commit\"").count(), 3, "{text}");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn record_caps_history_per_bench() {
        let p = tmp("cap.json");
        for i in 0..(MAX_HISTORY_PER_BENCH + 5) {
            record(&p, "hot", &m(&[("x", i as f64)])).unwrap();
            if i % 3 == 0 {
                record(&p, "cold", &m(&[("y", i as f64)])).unwrap();
            }
        }
        let text = fs::read_to_string(&p).unwrap();
        let hot = text.matches("\"hot\"").count();
        assert_eq!(hot, MAX_HISTORY_PER_BENCH, "{text}");
        // The oldest "hot" runs were dropped, the newest kept.
        assert!(!text.contains("\"x\": 0\n"), "{text}");
        assert!(text.contains(&format!("\"x\": {}", MAX_HISTORY_PER_BENCH + 4)));
        // The under-cap bench kept its full history.
        assert_eq!(text.matches("\"cold\"").count(), 9, "{text}");
        // Still a well-formed array that future appends splice into.
        record(&p, "hot", &m(&[("x", 999.0)])).unwrap();
        let text = fs::read_to_string(&p).unwrap();
        assert!(text.contains("\"x\": 999"));
        assert_eq!(text.matches("\"hot\"").count(), MAX_HISTORY_PER_BENCH);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn gate_failure_names_metric_observed_and_allowed_in_one_line() {
        let p = tmp("gatemsg.json");
        update_baseline(&p, "pipe", &m(&[("speedup", 2.0)])).unwrap();
        let bad = gate(&p, "pipe", &m(&[("speedup", 1.0)]), 0.30).unwrap();
        let GateOutcome::Fail(msgs) = bad else {
            panic!("expected failure");
        };
        assert_eq!(msgs.len(), 1);
        let msg = &msgs[0];
        assert!(!msg.contains('\n'), "one line: {msg:?}");
        assert!(msg.contains("pipe.speedup"), "names the metric: {msg}");
        assert!(msg.contains("1.0000"), "observed value: {msg}");
        assert!(msg.contains("1.4000"), "allowed floor: {msg}");
        assert!(msg.contains("2.0000"), "baseline: {msg}");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn record_refuses_non_array_files() {
        let p = tmp("notarray.json");
        fs::write(&p, "{\"oops\": 1}").unwrap();
        assert!(record(&p, "x", &[]).is_err());
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn flat_parser_handles_pretty_and_compact() {
        let pretty = "{\n  \"a.b\": 1.5,\n  \"c.d\": -2e3\n}\n";
        assert_eq!(
            parse_flat_json(pretty).unwrap(),
            vec![("a.b".to_string(), 1.5), ("c.d".to_string(), -2e3)]
        );
        assert_eq!(
            parse_flat_json("{\"k\":2}").unwrap(),
            vec![("k".to_string(), 2.0)]
        );
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
        assert!(parse_flat_json("[1,2]").is_err());
        assert!(parse_flat_json("{\"k\": \"str\"}").is_err());
    }

    #[test]
    fn baseline_roundtrips_through_update() {
        let p = tmp("base.json");
        update_baseline(&p, "pullpush", &m(&[("pull", 100.0), ("push", 50.0)])).unwrap();
        update_baseline(&p, "kernels", &m(&[("speedup", 3.0)])).unwrap();
        let back = parse_flat_json(&fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(
            back,
            vec![
                ("kernels.speedup".to_string(), 3.0),
                ("pullpush.pull".to_string(), 100.0),
                ("pullpush.push".to_string(), 50.0),
            ]
        );
        // Updating one bench leaves the other untouched.
        update_baseline(&p, "kernels", &m(&[("speedup", 4.0)])).unwrap();
        let back = parse_flat_json(&fs::read_to_string(&p).unwrap()).unwrap();
        assert!(back.contains(&("kernels.speedup".to_string(), 4.0)));
        assert!(back.contains(&("pullpush.pull".to_string(), 100.0)));
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let p = tmp("gate.json");
        update_baseline(&p, "b", &m(&[("fast", 100.0), ("ratio", 2.0)])).unwrap();
        // 25% drop: inside the 30% threshold.
        let ok = gate(&p, "b", &m(&[("fast", 75.0), ("ratio", 2.1)]), 0.30).unwrap();
        assert_eq!(
            ok,
            GateOutcome::Pass {
                checked: 2,
                unbaselined: 0
            }
        );
        // 40% drop on one metric: fail, and the message names it.
        let bad = gate(&p, "b", &m(&[("fast", 60.0), ("ratio", 2.0)]), 0.30).unwrap();
        let GateOutcome::Fail(msgs) = bad else {
            panic!("expected failure");
        };
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("b.fast"), "{msgs:?}");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn gate_tolerates_missing_baseline_and_new_metrics() {
        let p = tmp("nogate.json");
        assert_eq!(
            gate(&p, "b", &m(&[("x", 1.0)]), 0.30).unwrap(),
            GateOutcome::NoBaseline
        );
        update_baseline(&p, "b", &m(&[("x", 1.0)])).unwrap();
        let out = gate(&p, "b", &m(&[("x", 1.0), ("brand_new", 9.0)]), 0.30).unwrap();
        assert_eq!(
            out,
            GateOutcome::Pass {
                checked: 1,
                unbaselined: 1
            }
        );
        fs::remove_file(&p).unwrap();
    }
}
