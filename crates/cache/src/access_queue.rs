//! The per-batch access queue (paper Fig. 5).
//!
//! Pull threads append every accessed key; the cache-maintainer threads
//! drain the queue once all pulls of the batch have completed, performing
//! deferred LRU maintenance, flush-backs and checkpoint commits while the
//! GPUs compute. The queue is the hand-off point of the pipeline.

use crate::Key;
use crossbeam::queue::SegQueue;

/// Lock-free MPMC queue of keys accessed by the current batch's pulls.
#[derive(Default)]
pub struct AccessQueue {
    q: SegQueue<Key>,
}

impl AccessQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access (called from pull handlers, lock-free).
    #[inline]
    pub fn push(&self, key: Key) {
        self.q.push(key);
    }

    /// Record many accesses.
    pub fn push_all(&self, keys: &[Key]) {
        for &k in keys {
            self.q.push(k);
        }
    }

    /// Pop one access (called from maintainer threads).
    #[inline]
    pub fn pop(&self) -> Option<Key> {
        self.q.pop()
    }

    /// Drain up to `max` accesses into `out`; returns the count.
    pub fn drain_into(&self, out: &mut Vec<Key>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.q.pop() {
                Some(k) => {
                    out.push(k);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Pending accesses.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = AccessQueue::new();
        q.push_all(&[1, 2, 3]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_into_respects_max() {
        let q = AccessQueue::new();
        q.push_all(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(AccessQueue::new());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(k) = q.pop() {
                        got.push(k);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 4000);
        all.dedup();
        assert_eq!(all.len(), 4000, "no duplicates, nothing lost");
    }
}
