//! Cache admission control.
//!
//! DLRM access traces are full of one-hit wonders (the exponential
//! tail): admitting every missed key into the cache evicts hot entries
//! for keys that will never be seen again. A TinyLFU-style *doorkeeper*
//! — a tiny counting filter in front of the cache — only admits keys on
//! their second touch within a generation. This is an extension beyond
//! the paper (which admits always); the ablation harness quantifies it.

use crate::Key;
use serde::Serialize;

/// Admission strategy for cache misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AdmissionKind {
    /// Admit every missed key (the paper's behaviour).
    Always,
    /// Admit on the second touch within a generation (doorkeeper).
    SecondTouch,
}

impl AdmissionKind {
    /// Build the filter; `expected_keys` sizes the doorkeeper.
    pub fn build(self, expected_keys: usize) -> Admission {
        match self {
            AdmissionKind::Always => Admission::Always,
            AdmissionKind::SecondTouch => Admission::Doorkeeper(Doorkeeper::new(expected_keys)),
        }
    }
}

/// A built admission filter.
pub enum Admission {
    /// No filtering.
    Always,
    /// Second-touch doorkeeper.
    Doorkeeper(Doorkeeper),
}

impl Admission {
    /// Record a touch of `key`; returns true if the key should be
    /// admitted to the cache now.
    pub fn admit(&mut self, key: Key) -> bool {
        match self {
            Admission::Always => true,
            Admission::Doorkeeper(d) => d.touch(key),
        }
    }
}

/// A 4-bit counting filter with periodic halving (aging), à la TinyLFU.
/// ~0.5 B per expected key; false positives only make admission
/// slightly more permissive, never incorrect.
pub struct Doorkeeper {
    counters: Vec<u8>, // two 4-bit counters per byte
    mask: u64,
    touches: u64,
    aging_period: u64,
}

impl Doorkeeper {
    /// Size for `expected_keys` distinct keys.
    pub fn new(expected_keys: usize) -> Self {
        let slots = (expected_keys.max(16)).next_power_of_two();
        Self {
            counters: vec![0; slots / 2],
            mask: (slots - 1) as u64,
            touches: 0,
            aging_period: (slots as u64) * 4,
        }
    }

    fn bump(&mut self, idx: u64) -> u8 {
        let byte = (idx / 2) as usize;
        let high = idx & 1 == 1;
        let cur = if high {
            self.counters[byte] >> 4
        } else {
            self.counters[byte] & 0x0F
        };
        let next = (cur + 1).min(15);
        if high {
            self.counters[byte] = (self.counters[byte] & 0x0F) | (next << 4);
        } else {
            self.counters[byte] = (self.counters[byte] & 0xF0) | next;
        }
        next
    }

    fn age(&mut self) {
        for c in &mut self.counters {
            // Halve both nibbles.
            let high = (*c >> 4) >> 1;
            let low = (*c & 0x0F) >> 1;
            *c = (high << 4) | low;
        }
    }

    /// Record a touch; admit when the key has been seen before.
    pub fn touch(&mut self, key: Key) -> bool {
        self.touches += 1;
        if self.touches.is_multiple_of(self.aging_period) {
            self.age();
        }
        let idx = oe_hash(key) & self.mask;
        self.bump(idx) >= 2
    }
}

#[inline]
fn oe_hash(key: Key) -> u64 {
    let mut z = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_admits() {
        let mut a = AdmissionKind::Always.build(100);
        assert!(a.admit(1));
        assert!(a.admit(1));
    }

    #[test]
    fn doorkeeper_rejects_first_touch_admits_second() {
        let mut a = AdmissionKind::SecondTouch.build(1024);
        assert!(!a.admit(42), "first touch rejected");
        assert!(a.admit(42), "second touch admitted");
        assert!(a.admit(42), "stays admitted");
    }

    #[test]
    fn one_hit_wonders_mostly_rejected() {
        let mut a = AdmissionKind::SecondTouch.build(1 << 16);
        let mut admitted = 0;
        for key in 0..4000u64 {
            if a.admit(key) {
                admitted += 1;
            }
        }
        // Only hash collisions sneak through (expected ≈ n²/2m ≈ 122).
        assert!(admitted < 400, "admitted {admitted} of 4000 singletons");
    }

    #[test]
    fn aging_decays_counts() {
        let mut d = Doorkeeper::new(16); // tiny: ages every 64 touches
        assert!(!d.touch(7));
        assert!(d.touch(7));
        // Flood with other keys to trigger several agings.
        for k in 0..400u64 {
            d.touch(k.wrapping_mul(1_000_003));
        }
        // 7's count decayed; not necessarily back to zero (collisions),
        // but the structure stayed sound and bounded.
        let _ = d.touch(7);
    }

    #[test]
    fn counters_saturate_without_overflow() {
        let mut d = Doorkeeper::new(16);
        for _ in 0..100 {
            d.touch(5);
        }
        assert!(d.touch(5), "still admitted after saturation");
    }
}
