//! Fixed-capacity DRAM slab holding the hot embedding entries.
//!
//! Storage is columnar: one flat `f32` buffer for all payloads plus
//! parallel `key`/`version` columns, so a cache of N entries costs exactly
//! `N * (payload + 16)` bytes with zero per-entry allocation — the cache
//! size knob in Fig. 8 maps directly to arena capacity.

use crate::{BatchId, Key};

const NIL: u32 = u32::MAX;

/// A slab of embedding entries in DRAM. Not internally synchronized:
/// the owning shard wraps it in its lock (paper Algorithm 1/2 use a
/// reader-writer lock around the whole cache).
pub struct DramArena {
    payload_f32s: usize,
    payloads: Vec<f32>,
    keys: Vec<Key>,
    versions: Vec<BatchId>,
    /// Entry payload differs from its newest PMem copy (write-back
    /// cache: only dirty victims need a flush on eviction).
    dirty: Vec<bool>,
    /// Slot occupancy, for live-slot iteration (checkpoint drain).
    occupied: Vec<bool>,
    /// Intrusive free list threaded through `keys` storage is avoided for
    /// clarity: a simple stack of free slots.
    free: Vec<u32>,
    live: usize,
}

impl DramArena {
    /// An arena with room for `capacity` entries of `payload_f32s` floats.
    pub fn new(capacity: usize, payload_f32s: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one entry");
        assert!(capacity < NIL as usize, "capacity overflows slot index");
        Self {
            payload_f32s,
            payloads: vec![0.0; capacity * payload_f32s],
            keys: vec![0; capacity],
            versions: vec![0; capacity],
            dirty: vec![false; capacity],
            occupied: vec![false; capacity],
            free: (0..capacity as u32).rev().collect(),
            live: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True when every slot is occupied (an insert requires an eviction).
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// Payload length in `f32`s.
    pub fn payload_f32s(&self) -> usize {
        self.payload_f32s
    }

    /// DRAM bytes consumed by this arena (for cost/size reporting).
    pub fn bytes(&self) -> usize {
        self.payloads.len() * 4 + self.keys.len() * 16
    }

    /// Allocate a slot for `key` at `version`; payload is zeroed.
    /// Returns `None` when full (caller must evict first).
    pub fn insert(&mut self, key: Key, version: BatchId) -> Option<u32> {
        let slot = self.free.pop()?;
        self.keys[slot as usize] = key;
        self.versions[slot as usize] = version;
        self.dirty[slot as usize] = true; // nothing persisted yet
        self.occupied[slot as usize] = true;
        self.payload_mut(slot).fill(0.0);
        self.live += 1;
        Some(slot)
    }

    /// Iterate the currently occupied slots (checkpoint drain pass).
    pub fn iter_live(&self) -> impl Iterator<Item = u32> + '_ {
        self.occupied
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(|(i, _)| i as u32)
    }

    /// Whether the slot's payload has unpersisted changes.
    #[inline]
    pub fn is_dirty(&self, slot: u32) -> bool {
        self.dirty[slot as usize]
    }

    /// Mark the slot dirty (after a gradient update) or clean (after a
    /// flush to PMem or a load from PMem).
    #[inline]
    pub fn set_dirty(&mut self, slot: u32, dirty: bool) {
        self.dirty[slot as usize] = dirty;
    }

    /// Release a slot.
    pub fn remove(&mut self, slot: u32) {
        debug_assert!(!self.free.contains(&slot), "double free of arena slot");
        self.free.push(slot);
        self.occupied[slot as usize] = false;
        self.live -= 1;
    }

    /// Entry key at `slot`.
    #[inline]
    pub fn key(&self, slot: u32) -> Key {
        self.keys[slot as usize]
    }

    /// Entry version at `slot`.
    #[inline]
    pub fn version(&self, slot: u32) -> BatchId {
        self.versions[slot as usize]
    }

    /// Bump the entry version (maintainer sets it to the current batch).
    #[inline]
    pub fn set_version(&mut self, slot: u32, version: BatchId) {
        self.versions[slot as usize] = version;
    }

    /// Immutable payload view.
    #[inline]
    pub fn payload(&self, slot: u32) -> &[f32] {
        let s = slot as usize * self.payload_f32s;
        &self.payloads[s..s + self.payload_f32s]
    }

    /// Mutable payload view.
    #[inline]
    pub fn payload_mut(&mut self, slot: u32) -> &mut [f32] {
        let s = slot as usize * self.payload_f32s;
        &mut self.payloads[s..s + self.payload_f32s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_fill_and_exhaust() {
        let mut a = DramArena::new(2, 4);
        let s0 = a.insert(10, 1).unwrap();
        let s1 = a.insert(20, 2).unwrap();
        assert_ne!(s0, s1);
        assert!(a.insert(30, 3).is_none(), "full arena rejects inserts");
        assert!(a.is_full());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn payload_isolation() {
        let mut a = DramArena::new(3, 2);
        let s0 = a.insert(1, 0).unwrap();
        let s1 = a.insert(2, 0).unwrap();
        a.payload_mut(s0).copy_from_slice(&[1.0, 2.0]);
        a.payload_mut(s1).copy_from_slice(&[3.0, 4.0]);
        assert_eq!(a.payload(s0), &[1.0, 2.0]);
        assert_eq!(a.payload(s1), &[3.0, 4.0]);
    }

    #[test]
    fn remove_recycles_and_zeroes_on_reuse() {
        let mut a = DramArena::new(1, 2);
        let s = a.insert(7, 3).unwrap();
        a.payload_mut(s).copy_from_slice(&[9.0, 9.0]);
        a.remove(s);
        assert!(a.is_empty());
        let s2 = a.insert(8, 4).unwrap();
        assert_eq!(s2, s);
        assert_eq!(a.payload(s2), &[0.0, 0.0], "reused slot starts zeroed");
        assert_eq!(a.key(s2), 8);
        assert_eq!(a.version(s2), 4);
    }

    #[test]
    fn version_updates() {
        let mut a = DramArena::new(1, 1);
        let s = a.insert(1, 5).unwrap();
        a.set_version(s, 9);
        assert_eq!(a.version(s), 9);
    }

    #[test]
    fn bytes_accounting() {
        let a = DramArena::new(100, 64);
        assert_eq!(a.bytes(), 100 * 64 * 4 + 100 * 16);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        DramArena::new(0, 4);
    }
}
