//! Per-key PMem version chains — the "space manager" contract.
//!
//! Flushes to PMem are out-of-place: a key may transiently own several
//! PMem slots holding different batch versions. A slot may be recycled
//! only when **no committed or pending checkpoint can need it**. The
//! retention rule (paper §V-C, "the space manager will recycle the space
//! of these entries once the new checkpoint is done"):
//!
//! keep (a) the newest slot overall, and (b) for every protection
//! boundary `b` (the committed Checkpointed Batch ID plus every pending
//! checkpoint request id), the newest slot with `version ≤ b`. Everything
//! else is recyclable.

use crate::BatchId;
use oe_pmem::SlotId;

/// Maximum simultaneously retained versions per key. With one committed
/// checkpoint and a couple of in-flight checkpoint requests this never
/// exceeds 4 in practice; 6 leaves margin and keeps the chain inline
/// (no heap allocation per key).
pub const CHAIN_CAP: usize = 6;

/// Inline list of (PMem slot, version) pairs for one key, newest last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionChain {
    slots: [(SlotId, BatchId); CHAIN_CAP],
    len: u8,
}

impl Default for VersionChain {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self {
            slots: [(SlotId(0), 0); CHAIN_CAP],
            len: 0,
        }
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no PMem slot is retained for this key.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Retained (slot, version) pairs, oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, BatchId)> + '_ {
        self.slots[..self.len as usize].iter().copied()
    }

    /// The newest retained slot, if any.
    pub fn newest(&self) -> Option<(SlotId, BatchId)> {
        (self.len > 0).then(|| self.slots[self.len as usize - 1])
    }

    /// The newest retained slot with `version ≤ bound`.
    pub fn newest_le(&self, bound: BatchId) -> Option<(SlotId, BatchId)> {
        self.iter().filter(|&(_, v)| v <= bound).last()
    }

    /// Append a new version. Versions must arrive in non-decreasing
    /// order (flushes happen in batch order for a given key). Panics if
    /// the chain is full — callers must [`Self::prune`] first.
    pub fn push(&mut self, slot: SlotId, version: BatchId) {
        assert!(
            (self.len as usize) < CHAIN_CAP,
            "version chain overflow: prune before push"
        );
        if let Some((_, newest)) = self.newest() {
            debug_assert!(version >= newest, "versions must be monotone per key");
        }
        self.slots[self.len as usize] = (slot, version);
        self.len += 1;
    }

    /// Apply the retention rule for the given protection `boundaries`
    /// (committed checkpoint id + pending checkpoint ids, any order).
    /// Recyclable slots are appended to `freed`. Returns the number freed.
    pub fn prune(&mut self, boundaries: &[BatchId], freed: &mut Vec<SlotId>) -> usize {
        if self.len <= 1 {
            return 0;
        }
        let n = self.len as usize;
        let mut keep = [false; CHAIN_CAP];
        keep[n - 1] = true; // newest overall
        for &b in boundaries {
            // newest index with version ≤ b
            if let Some(i) = (0..n).rev().find(|&i| self.slots[i].1 <= b) {
                keep[i] = true;
            }
        }
        let before = n;
        let mut w = 0;
        for (i, &kept) in keep.iter().enumerate().take(n) {
            if kept {
                self.slots[w] = self.slots[i];
                w += 1;
            } else {
                freed.push(self.slots[i].0);
            }
        }
        self.len = w as u8;
        before - w
    }

    /// Drop every slot (e.g. when the key's entry is fully rewritten at
    /// recovery); appends them to `freed`.
    pub fn clear_into(&mut self, freed: &mut Vec<SlotId>) {
        for (s, _) in self.iter() {
            freed.push(s);
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(versions: &[BatchId]) -> VersionChain {
        let mut c = VersionChain::new();
        for (i, &v) in versions.iter().enumerate() {
            c.push(SlotId(i as u64), v);
        }
        c
    }

    #[test]
    fn push_and_query() {
        let c = chain(&[1, 3, 7]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.newest(), Some((SlotId(2), 7)));
        assert_eq!(c.newest_le(5), Some((SlotId(1), 3)));
        assert_eq!(c.newest_le(0), None);
        assert_eq!(c.newest_le(3), Some((SlotId(1), 3)));
    }

    #[test]
    fn prune_keeps_newest_and_boundary_versions() {
        // Versions 1,3,7,9; boundaries {CBI=3, pending cp=8}.
        let mut c = chain(&[1, 3, 7, 9]);
        let mut freed = Vec::new();
        let n = c.prune(&[3, 8], &mut freed);
        // keep: newest overall (9), newest ≤3 (3), newest ≤8 (7). Free: 1.
        assert_eq!(n, 1);
        assert_eq!(freed, vec![SlotId(0)]);
        let kept: Vec<_> = c.iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![3, 7, 9]);
    }

    #[test]
    fn prune_with_no_boundaries_keeps_only_newest() {
        let mut c = chain(&[2, 4, 6]);
        let mut freed = Vec::new();
        c.prune(&[], &mut freed);
        assert_eq!(c.len(), 1);
        assert_eq!(c.newest(), Some((SlotId(2), 6)));
        assert_eq!(freed.len(), 2);
    }

    #[test]
    fn prune_single_element_is_noop() {
        let mut c = chain(&[5]);
        let mut freed = Vec::new();
        assert_eq!(c.prune(&[1], &mut freed), 0);
        assert!(freed.is_empty());
    }

    #[test]
    fn boundary_below_all_versions_protects_nothing_extra() {
        let mut c = chain(&[10, 20]);
        let mut freed = Vec::new();
        c.prune(&[5], &mut freed);
        // newest ≤ 5 doesn't exist; keep newest only.
        assert_eq!(c.len(), 1);
        assert_eq!(freed, vec![SlotId(0)]);
    }

    #[test]
    fn same_slot_protected_by_multiple_boundaries_counted_once() {
        let mut c = chain(&[4, 9]);
        let mut freed = Vec::new();
        // Both boundaries 5 and 7 protect version 4.
        c.prune(&[5, 7], &mut freed);
        assert_eq!(c.len(), 2);
        assert!(freed.is_empty());
    }

    #[test]
    fn clear_into_frees_all() {
        let mut c = chain(&[1, 2, 3]);
        let mut freed = Vec::new();
        c.clear_into(&mut freed);
        assert!(c.is_empty());
        assert_eq!(freed.len(), 3);
    }

    #[test]
    #[should_panic(expected = "version chain overflow")]
    fn overflow_panics() {
        let mut c = VersionChain::new();
        for i in 0..=CHAIN_CAP as u64 {
            c.push(SlotId(i), i);
        }
    }

    #[test]
    fn prune_is_idempotent() {
        let mut c = chain(&[1, 3, 7, 9]);
        let mut freed = Vec::new();
        c.prune(&[3, 8], &mut freed);
        let snapshot: Vec<_> = c.iter().collect();
        let mut freed2 = Vec::new();
        c.prune(&[3, 8], &mut freed2);
        assert!(freed2.is_empty());
        assert_eq!(snapshot, c.iter().collect::<Vec<_>>());
    }
}
