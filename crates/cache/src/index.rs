//! The DRAM hash index mapping keys to tagged locations.
//!
//! One [`IndexEntry`] per known key: where the entry lives right now
//! (DRAM slot or newest PMem slot, via [`TaggedLoc`]), its version, and
//! the retained PMem [`VersionChain`]. The index is the structure
//! rebuilt by recovery (paper §V-C step 2).

use crate::chain::VersionChain;
use crate::tagged::TaggedLoc;
use crate::{BatchId, Key};
use oe_pmem::SlotId;
use std::collections::HashMap;

/// Index record for one embedding key.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// Current authoritative location of the weights.
    pub loc: TaggedLoc,
    /// Batch id of the last access/update (mirrors the arena version when
    /// cached; equals the newest PMem version when not).
    pub version: BatchId,
    /// PMem slots still retained for this key (checkpoint protection).
    pub chain: VersionChain,
}

/// Hash index over embedding keys. Wrapped in the shard lock by `oe-core`;
/// not internally synchronized.
#[derive(Default)]
pub struct HashIndex {
    map: HashMap<Key, IndexEntry>,
}

impl HashIndex {
    /// An empty index with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
        }
    }

    /// Number of known keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no key is known.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a key.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&IndexEntry> {
        self.map.get(&key)
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: Key) -> Option<&mut IndexEntry> {
        self.map.get_mut(&key)
    }

    /// Insert a brand-new key living in DRAM (Algorithm 1 lines 6-12).
    pub fn insert_new_dram(&mut self, key: Key, dram_slot: u32, version: BatchId) {
        let prev = self.map.insert(
            key,
            IndexEntry {
                loc: TaggedLoc::dram(dram_slot),
                version,
                chain: VersionChain::new(),
            },
        );
        debug_assert!(prev.is_none(), "key {key} already indexed");
    }

    /// Insert a key recovered from a PMem slot (recovery rebuild).
    pub fn insert_recovered(&mut self, key: Key, slot: SlotId, version: BatchId) {
        let mut chain = VersionChain::new();
        chain.push(slot, version);
        self.map.insert(
            key,
            IndexEntry {
                loc: TaggedLoc::pmem(slot),
                version,
                chain,
            },
        );
    }

    /// Remove a key entirely, returning its entry so the caller can
    /// release the DRAM slot and chained PMem slots it references
    /// (entry migration: the source side forgets a key at cutover).
    pub fn remove(&mut self, key: Key) -> Option<IndexEntry> {
        self.map.remove(&key)
    }

    /// Iterate all entries (reporting / invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &IndexEntry)> {
        self.map.iter()
    }

    /// Mutable iteration (checkpoint drain).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Key, &mut IndexEntry)> {
        self.map.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_dram_key() {
        let mut idx = HashIndex::with_capacity(4);
        idx.insert_new_dram(42, 7, 1);
        let e = idx.get(42).unwrap();
        assert_eq!(e.loc.as_dram(), Some(7));
        assert_eq!(e.version, 1);
        assert!(e.chain.is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn recovered_key_points_to_pmem_with_chain() {
        let mut idx = HashIndex::default();
        idx.insert_recovered(9, SlotId(3), 5);
        let e = idx.get(9).unwrap();
        assert_eq!(e.loc.as_pmem(), Some(SlotId(3)));
        assert_eq!(e.chain.newest(), Some((SlotId(3), 5)));
    }

    #[test]
    fn missing_key_is_none() {
        let idx = HashIndex::default();
        assert!(idx.get(1).is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn remove_returns_entry_and_forgets_key() {
        let mut idx = HashIndex::default();
        idx.insert_recovered(9, SlotId(3), 5);
        let e = idx.remove(9).expect("entry existed");
        assert_eq!(e.chain.newest(), Some((SlotId(3), 5)));
        assert!(idx.get(9).is_none());
        assert!(idx.is_empty());
        assert!(idx.remove(9).is_none(), "second remove is a no-op");
    }

    #[test]
    fn get_mut_allows_relocation() {
        let mut idx = HashIndex::default();
        idx.insert_new_dram(1, 0, 0);
        {
            let e = idx.get_mut(1).unwrap();
            e.loc = TaggedLoc::pmem(SlotId(11));
            e.version = 3;
            e.chain.push(SlotId(11), 3);
        }
        let e = idx.get(1).unwrap();
        assert!(!e.loc.is_dram());
        assert_eq!(e.version, 3);
    }
}
