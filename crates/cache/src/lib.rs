//! # oe-cache
//!
//! DRAM-cache building blocks for the OpenEmbedding parameter server
//! (paper §V-A, Fig. 5):
//!
//! - [`arena::DramArena`] — a fixed-capacity slab of embedding entries
//!   (key, version, flat `f32` payload) kept in DRAM as the hot cache.
//! - [`tagged::TaggedLoc`] — the hash-index pointer whose *lowest bit*
//!   says whether the entry currently lives in DRAM or PMem, exactly as
//!   the paper's smart pointers (§V-A, following ref. 21).
//! - [`lru::LruList`] — an intrusive doubly-linked LRU over arena slots;
//!   reordering is *deferred* to the maintainer threads (the pipeline).
//! - [`chain::VersionChain`] — the per-key list of PMem slots still
//!   retained for checkpoint protection, with the pruning rule that
//!   implements the paper's "space manager recycles superseded versions
//!   once the new checkpoint is done".
//! - [`access_queue::AccessQueue`] — the queue of entries touched by the
//!   current batch's pulls, consumed by the cache-maintainer threads.
//! - [`prefetch::PrefetchCache`] — the trainer-side, heat-ranked store
//!   of next-batch rows for the pipelined training path, coherent with
//!   the applied-push watermark.
//!
//! The crate is policy-free: Algorithm 1/2 logic lives in `oe-core`.

pub mod access_queue;
pub mod admission;
pub mod arena;
pub mod chain;
pub mod index;
pub mod lru;
pub mod policy;
pub mod prefetch;
pub mod tagged;

/// Embedding entry key (feature id).
pub type Key = u64;

/// Batch id / entry version.
pub type BatchId = u64;

pub use access_queue::AccessQueue;
pub use admission::{Admission, AdmissionKind, Doorkeeper};
pub use arena::DramArena;
pub use chain::VersionChain;
pub use index::{HashIndex, IndexEntry};
pub use lru::LruList;
pub use policy::{EvictionPolicy, PolicyKind};
pub use prefetch::{HeatSketch, PrefetchCache, PrefetchStats};
pub use tagged::TaggedLoc;
