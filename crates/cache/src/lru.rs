//! Intrusive LRU list over DRAM arena slots.
//!
//! The list stores no data of its own: `prev`/`next` arrays are indexed by
//! arena slot, so membership costs 8 bytes per cache entry and every
//! operation is O(1). The head is most-recently-used; the tail is the
//! eviction victim.
//!
//! Per the paper's pipelined design, `move_to_front` ("reorder" in
//! Algorithm 2) is called by the maintainer threads *after* the pull burst
//! completes — never on the pull critical path.

const NIL: u32 = u32::MAX;

/// O(1) intrusive LRU list keyed by arena slot index.
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    /// A list able to track slots `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Entries currently linked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Most-recently-used slot.
    pub fn head(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// Least-recently-used slot (the eviction victim).
    pub fn tail(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Link `slot` as most-recently-used. `slot` must not be linked.
    pub fn push_front(&mut self, slot: u32) {
        debug_assert!(!self.contains(slot), "slot {slot} already linked");
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.len += 1;
    }

    /// Unlink `slot`. Panics in debug builds if it is not linked.
    pub fn remove(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        debug_assert!(
            p != NIL || n != NIL || self.head == slot,
            "slot {slot} not linked"
        );
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = NIL;
        self.len -= 1;
    }

    /// Move an already-linked `slot` to the front (Algorithm 2 `reorder`).
    pub fn move_to_front(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.remove(slot);
        self.push_front(slot);
    }

    /// Unlink and return the LRU victim.
    pub fn pop_back(&mut self) -> Option<u32> {
        let victim = self.tail;
        if victim == NIL {
            return None;
        }
        self.remove(victim);
        Some(victim)
    }

    /// Whether `slot` is currently linked.
    pub fn contains(&self, slot: u32) -> bool {
        self.head == slot || self.prev[slot as usize] != NIL || self.next[slot as usize] != NIL
    }

    /// Iterate from MRU to LRU (test/debug helper; O(len)).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let out = cur;
            cur = self.next[cur as usize];
            Some(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(l: &LruList) -> Vec<u32> {
        l.iter().collect()
    }

    #[test]
    fn push_and_order() {
        let mut l = LruList::new(8);
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(order(&l), vec![3, 2, 1]);
        assert_eq!(l.head(), Some(3));
        assert_eq!(l.tail(), Some(1));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn move_to_front_reorders() {
        let mut l = LruList::new(8);
        for s in [1, 2, 3] {
            l.push_front(s);
        }
        l.move_to_front(1);
        assert_eq!(order(&l), vec![1, 3, 2]);
        l.move_to_front(1); // already head: no-op
        assert_eq!(order(&l), vec![1, 3, 2]);
        l.move_to_front(3);
        assert_eq!(order(&l), vec![3, 1, 2]);
    }

    #[test]
    fn pop_back_returns_lru() {
        let mut l = LruList::new(8);
        for s in [5, 6, 7] {
            l.push_front(s);
        }
        assert_eq!(l.pop_back(), Some(5));
        assert_eq!(l.pop_back(), Some(6));
        assert_eq!(l.pop_back(), Some(7));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle_and_relink() {
        let mut l = LruList::new(8);
        for s in [1, 2, 3, 4] {
            l.push_front(s);
        }
        l.remove(3);
        assert_eq!(order(&l), vec![4, 2, 1]);
        assert!(!l.contains(3));
        l.push_front(3);
        assert_eq!(order(&l), vec![3, 4, 2, 1]);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::new(4);
        l.push_front(0);
        assert_eq!(l.head(), l.tail());
        l.move_to_front(0);
        assert_eq!(l.len(), 1);
        l.remove(0);
        assert!(l.is_empty());
        assert_eq!(l.head(), None);
        assert_eq!(l.tail(), None);
    }

    #[test]
    fn model_check_against_vecdeque() {
        use std::collections::VecDeque;
        let mut l = LruList::new(16);
        let mut model: VecDeque<u32> = VecDeque::new();
        // Deterministic pseudo-random op mix.
        let mut state = 12345u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..2000 {
            let op = rand() % 3;
            match op {
                0 => {
                    let slot = rand() % 16;
                    if !l.contains(slot) {
                        l.push_front(slot);
                        model.push_front(slot);
                    }
                }
                1 => {
                    let slot = rand() % 16;
                    if l.contains(slot) {
                        l.move_to_front(slot);
                        let pos = model.iter().position(|&x| x == slot).unwrap();
                        model.remove(pos);
                        model.push_front(slot);
                    }
                }
                _ => {
                    assert_eq!(l.pop_back(), model.pop_back());
                }
            }
            assert_eq!(order(&l), model.iter().copied().collect::<Vec<_>>());
        }
    }
}
