//! Pluggable cache replacement policies.
//!
//! The paper uses LRU and explicitly defers policy research ("we do not
//! focus on improving the cache replacement policies", §II-B). This
//! module makes the policy a first-class axis so the ablation harness
//! can quantify how much the *policy* matters relative to the paper's
//! *pipeline* (answer: far less, see the `ablations` experiment):
//!
//! - [`LruPolicy`] — the paper's choice; also the only policy whose
//!   victim is guaranteed oldest-versioned, enabling the eviction-time
//!   checkpoint commit of Algorithm 2 lines 24-27.
//! - [`FifoPolicy`] — insertion order, accesses ignored.
//! - [`ClockPolicy`] — one reference bit + sweeping hand (second
//!   chance); near-LRU hit rates at lower bookkeeping cost.

use crate::lru::LruList;
use serde::Serialize;
use std::collections::VecDeque;

/// Which replacement policy a cache shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PolicyKind {
    /// Least-recently-used (the paper's configuration).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// CLOCK / second-chance.
    Clock,
}

impl PolicyKind {
    /// Build a policy instance for `capacity` slots.
    pub fn build(self, capacity: usize) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new(capacity)),
            PolicyKind::Fifo => Box::new(FifoPolicy::new(capacity)),
            PolicyKind::Clock => Box::new(ClockPolicy::new(capacity)),
        }
    }
}

/// A cache replacement policy over arena slot indices.
pub trait EvictionPolicy: Send + Sync {
    /// A new entry landed in `slot`.
    fn on_insert(&mut self, slot: u32);
    /// `slot` was accessed (deferred to maintenance in the pipeline).
    fn on_access(&mut self, slot: u32);
    /// Choose and unlink a victim.
    fn evict(&mut self) -> Option<u32>;
    /// Entry left the cache without eviction (recovery/rebuild paths).
    fn remove(&mut self, slot: u32);
    /// Tracked entries.
    fn len(&self) -> usize;
    /// True when nothing is tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The slot that `evict` would pick, without unlinking it — `None`
    /// if the policy cannot cheaply answer. Only LRU guarantees the
    /// peeked victim carries the *oldest batch version*, the property
    /// the eviction-time checkpoint commit relies on; other policies
    /// return the candidate for inspection but the commit logic must
    /// fall back to the drain pass.
    fn peek_victim(&self) -> Option<u32>;
    /// Whether the victim order is oldest-version-first (true only for
    /// LRU under the pipeline's access pattern).
    fn victim_is_oldest_version(&self) -> bool;
}

/// LRU via the intrusive list.
pub struct LruPolicy {
    list: LruList,
}

impl LruPolicy {
    /// LRU over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            list: LruList::new(capacity),
        }
    }
}

impl EvictionPolicy for LruPolicy {
    fn on_insert(&mut self, slot: u32) {
        self.list.push_front(slot);
    }
    fn on_access(&mut self, slot: u32) {
        self.list.move_to_front(slot);
    }
    fn evict(&mut self) -> Option<u32> {
        self.list.pop_back()
    }
    fn remove(&mut self, slot: u32) {
        self.list.remove(slot);
    }
    fn len(&self) -> usize {
        self.list.len()
    }
    fn peek_victim(&self) -> Option<u32> {
        self.list.tail()
    }
    fn victim_is_oldest_version(&self) -> bool {
        true
    }
}

/// FIFO: accesses don't reorder.
pub struct FifoPolicy {
    queue: VecDeque<u32>,
    present: Vec<bool>,
}

impl FifoPolicy {
    /// FIFO over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            queue: VecDeque::with_capacity(capacity),
            present: vec![false; capacity],
        }
    }
}

impl EvictionPolicy for FifoPolicy {
    fn on_insert(&mut self, slot: u32) {
        debug_assert!(!self.present[slot as usize]);
        self.present[slot as usize] = true;
        self.queue.push_back(slot);
    }
    fn on_access(&mut self, _slot: u32) {}
    fn evict(&mut self) -> Option<u32> {
        while let Some(slot) = self.queue.pop_front() {
            if self.present[slot as usize] {
                self.present[slot as usize] = false;
                return Some(slot);
            }
        }
        None
    }
    fn remove(&mut self, slot: u32) {
        // Lazy removal: mark absent; the queue skips it later.
        self.present[slot as usize] = false;
    }
    fn len(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }
    fn peek_victim(&self) -> Option<u32> {
        self.queue
            .iter()
            .copied()
            .find(|&s| self.present[s as usize])
    }
    fn victim_is_oldest_version(&self) -> bool {
        false
    }
}

/// CLOCK (second chance): a reference bit per slot and a sweeping hand.
pub struct ClockPolicy {
    referenced: Vec<bool>,
    present: Vec<bool>,
    hand: usize,
    live: usize,
}

impl ClockPolicy {
    /// CLOCK over `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            referenced: vec![false; capacity],
            present: vec![false; capacity],
            hand: 0,
            live: 0,
        }
    }
}

impl EvictionPolicy for ClockPolicy {
    fn on_insert(&mut self, slot: u32) {
        debug_assert!(!self.present[slot as usize]);
        self.present[slot as usize] = true;
        self.referenced[slot as usize] = true;
        self.live += 1;
    }
    fn on_access(&mut self, slot: u32) {
        self.referenced[slot as usize] = true;
    }
    fn evict(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        let n = self.present.len();
        // Two full sweeps guarantee progress (first clears ref bits).
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            if !self.present[i] {
                continue;
            }
            if self.referenced[i] {
                self.referenced[i] = false;
            } else {
                self.present[i] = false;
                self.live -= 1;
                return Some(i as u32);
            }
        }
        None
    }
    fn remove(&mut self, slot: u32) {
        if self.present[slot as usize] {
            self.present[slot as usize] = false;
            self.live -= 1;
        }
    }
    fn len(&self) -> usize {
        self.live
    }
    fn peek_victim(&self) -> Option<u32> {
        None // destructive to compute; not exposed
    }
    fn victim_is_oldest_version(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_trace(policy: &mut dyn EvictionPolicy, capacity: usize, trace: &[u32]) -> usize {
        // Simulate a cache of `capacity`: returns hit count.
        let mut cached = [false; 64];
        let mut hits = 0;
        for &slot_key in trace {
            if cached[slot_key as usize] {
                policy.on_access(slot_key);
                hits += 1;
            } else {
                if policy.len() == capacity {
                    let v = policy.evict().expect("victim");
                    cached[v as usize] = false;
                }
                policy.on_insert(slot_key);
                cached[slot_key as usize] = true;
            }
        }
        hits
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = LruPolicy::new(8);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(0); // 1 is now LRU
        assert_eq!(p.peek_victim(), Some(1));
        assert_eq!(p.evict(), Some(1));
        assert!(p.victim_is_oldest_version());
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = FifoPolicy::new(8);
        p.on_insert(0);
        p.on_insert(1);
        p.on_access(0); // does not save 0
        assert_eq!(p.peek_victim(), Some(0));
        assert_eq!(p.evict(), Some(0));
        assert!(!p.victim_is_oldest_version());
    }

    #[test]
    fn fifo_lazy_removal() {
        let mut p = FifoPolicy::new(8);
        p.on_insert(0);
        p.on_insert(1);
        p.remove(0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.evict(), Some(1), "skips the removed slot");
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new(4);
        for s in 0..3 {
            p.on_insert(s);
        }
        // All referenced: first sweep clears, second evicts slot 0.
        assert_eq!(p.evict(), Some(0));
        // Re-referencing 1 protects it over 2.
        p.on_access(1);
        assert_eq!(p.evict(), Some(2));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn clock_remove_and_empty() {
        let mut p = ClockPolicy::new(4);
        p.on_insert(2);
        p.remove(2);
        assert!(p.is_empty());
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn lru_beats_fifo_on_skewed_trace() {
        // Hot keys 0..3 re-accessed between cold scans.
        let mut trace = Vec::new();
        for round in 0..40u32 {
            for hot in 0..4 {
                trace.push(hot);
            }
            trace.push(4 + (round % 20)); // cold scan
        }
        let cap = 6;
        let lru_hits = run_trace(&mut LruPolicy::new(64), cap, &trace);
        let fifo_hits = run_trace(&mut FifoPolicy::new(64), cap, &trace);
        let clock_hits = run_trace(&mut ClockPolicy::new(64), cap, &trace);
        assert!(lru_hits >= fifo_hits, "lru {lru_hits} vs fifo {fifo_hits}");
        assert!(
            clock_hits >= fifo_hits,
            "clock {clock_hits} vs fifo {fifo_hits}"
        );
    }

    #[test]
    fn all_policies_conserve_entries() {
        for kind in [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock] {
            let mut p = kind.build(16);
            for s in 0..10 {
                p.on_insert(s);
            }
            assert_eq!(p.len(), 10, "{kind:?}");
            let mut evicted = std::collections::HashSet::new();
            while let Some(v) = p.evict() {
                assert!(evicted.insert(v), "{kind:?} evicted {v} twice");
            }
            assert_eq!(evicted.len(), 10, "{kind:?}");
            assert!(p.is_empty());
        }
    }
}
