//! Skew-aware prefetch cache for pipelined training.
//!
//! The pipelined trainer issues batch *t+1*'s pulls during batch *t*'s
//! GPU compute and parks the weights here until they are served. The
//! cache is *coherent with the applied-push watermark*: whenever an
//! out-of-band push applies to the parameter server, the trainer
//! invalidates the touched keys, so a lookup never returns a value that
//! differs from what a direct pull at serve time would have returned.
//!
//! Residency is skew-aware: admission and eviction are ranked by a
//! pluggable [`HeatSketch`] (in practice the decaying frequency sketch
//! from `oe-cluster::freq`), so hot entries stay resident across
//! batches while cold entries stream through — the RecNMP observation
//! that the zipf head is worth pinning. Ties break on ascending key, so
//! every decision is deterministic.
//!
//! Accounting invariant (checked by tests and the e2e suite): every
//! serve-time lookup is classified as exactly one of hit or miss, so
//! `hits + misses == lookups` always; `evictions` and `invalidations`
//! count capacity and coherence drops separately.

use crate::Key;
use std::collections::HashMap;

/// A heat oracle for admission/eviction ranking. Implemented by
/// `oe-cluster`'s decaying `FreqTracker`; any monotone popularity
/// estimate works.
pub trait HeatSketch {
    /// Current heat of `key` (0 = never seen or fully decayed).
    fn heat(&self, key: Key) -> u64;
}

/// A flat count map is sketch enough for tests and small runs.
impl HeatSketch for HashMap<Key, u64> {
    fn heat(&self, key: Key) -> u64 {
        self.get(&key).copied().unwrap_or(0)
    }
}

/// Counter snapshot of one cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Serve-time lookups answered from the cache.
    pub hits: u64,
    /// Serve-time lookups that fell through to a synchronous pull.
    pub misses: u64,
    /// Entries dropped to make room for hotter keys.
    pub evictions: u64,
    /// Entries dropped because an applied push made them stale.
    pub invalidations: u64,
    /// Entries inserted by the prefetcher.
    pub inserts: u64,
    /// Prefetch offers refused because the key was colder than the
    /// coldest resident entry of a full cache.
    pub admission_rejects: u64,
}

impl PrefetchStats {
    /// Total serve-time lookups; always `hits + misses`.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Fixed-capacity, heat-ranked store of prefetched embedding rows.
#[derive(Debug)]
pub struct PrefetchCache {
    capacity: usize,
    dim: usize,
    entries: HashMap<Key, Vec<f32>>,
    stats: PrefetchStats,
}

impl PrefetchCache {
    /// A cache holding at most `capacity` entries of `dim` f32s each.
    pub fn new(capacity: usize, dim: usize) -> Self {
        Self {
            capacity,
            dim,
            entries: HashMap::new(),
            stats: PrefetchStats::default(),
        }
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `key` is resident (no counter side effects — serve-time
    /// classification goes through [`PrefetchCache::lookup`]).
    pub fn contains(&self, key: Key) -> bool {
        self.entries.contains_key(&key)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Serve-time lookup: append the cached row to `out` and count a
    /// hit, or count a miss and leave `out` untouched. Exactly one
    /// counter moves per call, preserving `hits + misses == lookups`.
    pub fn lookup(&mut self, key: Key, out: &mut Vec<f32>) -> bool {
        match self.entries.get(&key) {
            Some(row) => {
                out.extend_from_slice(row);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Side-effect-free preview of [`PrefetchCache::insert`]'s
    /// admission decision: would this key be retained right now? The
    /// prefetcher uses it to avoid spending pull bandwidth on rows the
    /// cache would immediately refuse — refused (cold) keys stream
    /// through the demand path instead.
    pub fn admissible(&self, key: Key, sketch: &dyn HeatSketch) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.entries.contains_key(&key) || self.entries.len() < self.capacity {
            return true;
        }
        let victim = self
            .entries
            .keys()
            .map(|&k| (sketch.heat(k), k))
            .min()
            .expect("cache is non-empty when full");
        (sketch.heat(key), key) > victim
    }

    /// Prefetch insert: admit `key`'s freshly pulled row, evicting the
    /// coldest resident entry if the cache is full and `key` is hotter
    /// (ties break on ascending key — the resident entry wins an exact
    /// tie, so a churning tail cannot thrash the head). Returns true if
    /// the row was admitted.
    pub fn insert(&mut self, key: Key, row: &[f32], sketch: &dyn HeatSketch) -> bool {
        debug_assert_eq!(row.len(), self.dim, "row shape");
        if self.capacity == 0 {
            self.stats.admission_rejects += 1;
            return false;
        }
        if let Some(existing) = self.entries.get_mut(&key) {
            existing.clear();
            existing.extend_from_slice(row);
            self.stats.inserts += 1;
            return true;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .keys()
                .map(|&k| (sketch.heat(k), k))
                .min()
                .expect("cache is non-empty when full");
            let candidate = (sketch.heat(key), key);
            if candidate <= victim {
                self.stats.admission_rejects += 1;
                return false;
            }
            self.entries.remove(&victim.1);
            self.stats.evictions += 1;
        }
        self.entries.insert(key, row.to_vec());
        self.stats.inserts += 1;
        true
    }

    /// Coherence fence: drop every resident entry in `keys` (an applied
    /// push made them stale). Returns how many entries were actually
    /// dropped — a key with no resident entry costs nothing, so a
    /// second fence over the same keys is a no-op and the caller can
    /// assert exactly-once invalidation.
    pub fn invalidate(&mut self, keys: &[Key]) -> u64 {
        let mut dropped = 0;
        for &k in keys {
            if self.entries.remove(&k).is_some() {
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped;
        dropped
    }

    /// Drop everything (placement-epoch change fallback, tests).
    pub fn clear(&mut self) {
        let n = self.entries.len() as u64;
        self.stats.invalidations += n;
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(pairs: &[(Key, u64)]) -> HashMap<Key, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn lookup_classifies_every_access_exactly_once() {
        let s = sketch(&[(1, 10), (2, 5)]);
        let mut c = PrefetchCache::new(4, 2);
        assert!(c.insert(1, &[1.0, 2.0], &s));
        let mut out = Vec::new();
        assert!(c.lookup(1, &mut out));
        assert!(!c.lookup(2, &mut out));
        assert!(!c.lookup(3, &mut out));
        let st = c.stats();
        assert_eq!((st.hits, st.misses), (1, 2));
        assert_eq!(st.lookups(), 3);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn full_cache_evicts_coldest_for_hotter_key() {
        let s = sketch(&[(1, 100), (2, 1), (3, 50)]);
        let mut c = PrefetchCache::new(2, 1);
        assert!(c.insert(1, &[0.1], &s));
        assert!(c.insert(2, &[0.2], &s));
        // 3 is hotter than resident 2 → 2 evicted.
        assert!(c.insert(3, &[0.3], &s));
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
        assert_eq!(c.stats().evictions, 1);
        // 2 is colder than both residents → rejected, nothing evicted.
        assert!(!c.insert(2, &[0.2], &s));
        assert_eq!(c.stats().admission_rejects, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn exact_heat_tie_keeps_the_resident_entry() {
        let s = sketch(&[(7, 5), (9, 5)]);
        let mut c = PrefetchCache::new(1, 1);
        assert!(c.insert(7, &[0.7], &s));
        // Same heat, higher key: (5, 9) > (5, 7) → admitted. Lower key
        // at the same heat would lose and be rejected.
        assert!(c.insert(9, &[0.9], &s));
        assert!(!c.insert(7, &[0.7], &s), "tie resolves to the resident");
        assert!(c.contains(9));
    }

    #[test]
    fn invalidation_is_exactly_once() {
        let s = sketch(&[(1, 1), (2, 2), (3, 3)]);
        let mut c = PrefetchCache::new(4, 1);
        for k in 1..=3u64 {
            c.insert(k, &[k as f32], &s);
        }
        assert_eq!(c.invalidate(&[1, 2, 99]), 2, "only resident keys drop");
        assert_eq!(c.invalidate(&[1, 2, 99]), 0, "second fence is a no-op");
        assert_eq!(c.stats().invalidations, 2);
        let mut out = Vec::new();
        assert!(!c.lookup(1, &mut out));
        assert!(c.lookup(3, &mut out));
    }

    #[test]
    fn reinsert_refreshes_in_place_without_eviction() {
        let s = sketch(&[(1, 1)]);
        let mut c = PrefetchCache::new(1, 2);
        assert!(c.insert(1, &[1.0, 1.0], &s));
        assert!(c.insert(1, &[2.0, 2.0], &s));
        let mut out = Vec::new();
        assert!(c.lookup(1, &mut out));
        assert_eq!(out, vec![2.0, 2.0]);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().inserts, 2);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let s = sketch(&[]);
        let mut c = PrefetchCache::new(0, 1);
        assert!(!c.insert(1, &[0.0], &s));
        assert!(c.is_empty());
        assert_eq!(c.stats().admission_rejects, 1);
    }

    #[test]
    fn admissible_previews_insert_exactly() {
        let s: HashMap<Key, u64> = (0..64).map(|k| (k, (k * 11) % 17)).collect();
        let mut c = PrefetchCache::new(4, 1);
        for k in 0..64u64 {
            let preview = c.admissible(k, &s);
            let admitted = c.insert(k, &[k as f32], &s);
            assert_eq!(preview, admitted, "key {k}");
        }
    }

    #[test]
    fn counter_sum_invariant_across_seeded_traffic() {
        // Deterministic pseudo-random traffic: the sum invariant
        // hits + misses == lookups must hold at every step, for any
        // interleaving of inserts, invalidations, and lookups.
        for seed in [1u64, 7, 42, 1234] {
            let mut x = seed;
            let mut step = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let s: HashMap<Key, u64> = (0..32).map(|k| (k, (k * 7) % 13)).collect();
            let mut c = PrefetchCache::new(8, 1);
            let mut lookups = 0u64;
            for _ in 0..500 {
                let k = step() % 32;
                match step() % 3 {
                    0 => {
                        c.insert(k, &[k as f32], &s);
                    }
                    1 => {
                        let mut out = Vec::new();
                        c.lookup(k, &mut out);
                        lookups += 1;
                    }
                    _ => {
                        c.invalidate(&[k]);
                    }
                }
                let st = c.stats();
                assert_eq!(st.hits + st.misses, lookups, "seed {seed}");
                assert!(c.len() <= 8, "capacity respected");
            }
        }
    }
}
