//! Tagged location pointers.
//!
//! The paper (§V-A) stores, in the DRAM hash index, pointers "implemented
//! in the similar way as the smart pointers proposed in earlier work (ref. 21),
//! which uses the lowest bit to indicate whether the target embedding
//! entry is in DRAM or PMem". We reproduce that encoding on 64-bit slot
//! indices.

use oe_pmem::SlotId;

/// A location: either a DRAM arena slot or a PMem pool slot, packed into
/// one `u64` with the lowest bit as the DRAM tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaggedLoc(u64);

const DRAM_BIT: u64 = 1;

impl TaggedLoc {
    /// Point at DRAM arena slot `slot`.
    #[inline]
    pub fn dram(slot: u32) -> Self {
        Self(((slot as u64) << 1) | DRAM_BIT)
    }

    /// Point at PMem pool slot `id`.
    #[inline]
    pub fn pmem(id: SlotId) -> Self {
        debug_assert!(id.0 < (1 << 63), "slot id overflows tag encoding");
        Self(id.0 << 1)
    }

    /// True if the entry currently lives in the DRAM cache.
    #[inline]
    pub fn is_dram(self) -> bool {
        self.0 & DRAM_BIT != 0
    }

    /// The DRAM slot, if this points at DRAM.
    #[inline]
    pub fn as_dram(self) -> Option<u32> {
        self.is_dram().then_some((self.0 >> 1) as u32)
    }

    /// The PMem slot, if this points at PMem.
    #[inline]
    pub fn as_pmem(self) -> Option<SlotId> {
        (!self.is_dram()).then_some(SlotId(self.0 >> 1))
    }

    /// Raw encoded value (for compact serialization in reports).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_roundtrip() {
        let t = TaggedLoc::dram(12345);
        assert!(t.is_dram());
        assert_eq!(t.as_dram(), Some(12345));
        assert_eq!(t.as_pmem(), None);
    }

    #[test]
    fn pmem_roundtrip() {
        let t = TaggedLoc::pmem(SlotId(987654321));
        assert!(!t.is_dram());
        assert_eq!(t.as_pmem(), Some(SlotId(987654321)));
        assert_eq!(t.as_dram(), None);
    }

    #[test]
    fn lowest_bit_is_the_tag() {
        assert_eq!(TaggedLoc::dram(0).raw() & 1, 1);
        assert_eq!(TaggedLoc::pmem(SlotId(0)).raw() & 1, 0);
        assert_eq!(TaggedLoc::dram(7).raw(), (7 << 1) | 1);
    }

    #[test]
    fn extreme_values() {
        let t = TaggedLoc::dram(u32::MAX);
        assert_eq!(t.as_dram(), Some(u32::MAX));
        let big = SlotId((1u64 << 62) - 1);
        assert_eq!(TaggedLoc::pmem(big).as_pmem(), Some(big));
    }
}
