//! Per-key access-frequency tracking for the placer.
//!
//! The placement plane needs to know *which* keys are hot right now —
//! not the long-run stationary skew (that is `oe-workload`'s
//! `SkewModel`), but the empirical counts of the recent window, because
//! a flash crowd is exactly a deviation from the stationary model. The
//! tracker is a plain count map with exponential decay: `decay()` halves
//! every count, so a storm that ended a few rebalance windows ago stops
//! dominating `top_hot` without any timestamp bookkeeping.

use oe_core::Key;
use std::collections::HashMap;

/// Decayed per-key access counters.
#[derive(Debug, Default)]
pub struct FreqTracker {
    counts: HashMap<Key, u64>,
    total: u64,
}

impl FreqTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` accesses of `key`.
    pub fn observe(&mut self, key: Key, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Total accesses observed (post-decay mass).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys currently tracked.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Current count for `key` (0 if never seen or fully decayed).
    pub fn count(&self, key: Key) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// The `limit` hottest keys with their counts, hottest first.
    /// Ties break on ascending key so the ordering — and therefore every
    /// placement decision downstream — is deterministic.
    pub fn top_hot(&self, limit: usize) -> Vec<(Key, u64)> {
        let mut v: Vec<(Key, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }

    /// Halve every count, dropping keys that reach zero. Call once per
    /// rebalance window to age out finished storms.
    pub fn decay(&mut self) {
        self.total = 0;
        self.counts.retain(|_, c| {
            *c /= 2;
            self.total += *c;
            *c > 0
        });
    }
}

/// The tracker doubles as the heat oracle for `oe-cache`'s prefetch
/// cache: the pipelined trainer feeds it observed pulls and the cache
/// ranks admission/eviction by the same decayed counts the placer uses
/// — one sketch, two consumers.
impl oe_cache::prefetch::HeatSketch for FreqTracker {
    fn heat(&self, key: Key) -> u64 {
        self.count(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_hot_is_sorted_and_deterministic() {
        let mut f = FreqTracker::new();
        f.observe(5, 10);
        f.observe(3, 10); // tie with 5 → key order
        f.observe(9, 100);
        f.observe(1, 1);
        assert_eq!(f.top_hot(3), vec![(9, 100), (3, 10), (5, 10)]);
        assert_eq!(f.total(), 121);
        assert_eq!(f.distinct(), 4);
    }

    #[test]
    fn heat_sketch_view_matches_counts() {
        use oe_cache::prefetch::HeatSketch;
        let mut f = FreqTracker::new();
        f.observe(4, 6);
        assert_eq!(f.heat(4), 6);
        f.decay();
        assert_eq!(f.heat(4), 3);
        assert_eq!(f.heat(999), 0);
    }

    #[test]
    fn decay_halves_and_forgets() {
        let mut f = FreqTracker::new();
        f.observe(1, 1);
        f.observe(2, 8);
        f.decay();
        assert_eq!(f.count(1), 0, "count 1 decays to zero and is dropped");
        assert_eq!(f.count(2), 4);
        assert_eq!(f.distinct(), 1);
        assert_eq!(f.total(), 4);
    }
}
