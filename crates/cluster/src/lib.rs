//! # oe-cluster — the skew-aware placement plane
//!
//! `core::Cluster` shards embedding keys across PS nodes by a static
//! hash: simple, stateless, and exactly wrong under the paper's access
//! skew (Table II: the top 0.05 % of keys absorb 85.7 % of accesses).
//! When a flash crowd's keys hash onto one node, that shard's DRAM cache
//! thrashes and its p99 melts while the rest of the cluster idles.
//!
//! This crate layers a placement plane over any [`oe_core::PsEngine`]:
//!
//! * [`PlacementTable`] — epoch-versioned key→node overrides for the hot
//!   head, hash fallback for the cold tail. Same epoch ⇒ same routing.
//! * [`FreqTracker`] + [`SkewAwarePlacer`] — recent access counts turned
//!   into minimal hot-key move lists onto the coolest DRAM-rich nodes.
//! * [`PlacedCluster`] — routes pull/push bursts through the table and
//!   performs **live migration**: seed-copy of full entries (weights +
//!   optimizer state), a double-write window keeping both replicas in
//!   deterministic lockstep, and a cutover fence at `end_pull_phase`
//!   that bumps the placement epoch with no push in flight. Training
//!   never pauses, and final weights are bit-identical to a run that
//!   never migrated.
//! * [`RebalanceController`] — watches windowed per-node load and p99
//!   burst-latency histograms (`oe-telemetry` deltas) and triggers a
//!   drain when one node runs away from its peers.
//!
//! Retry safety across a migration epoch is inherited from the RPC
//! layer: `oe-net` servers fence stale placement epochs the same way
//! they fence stale sequence numbers, and the replay cache still
//! answers retries of already-applied mutations, so a push retried
//! across a cutover is never applied twice.

#![warn(missing_docs)]

pub mod freq;
pub mod migration;
pub mod placed;
pub mod placement;
pub mod placer;
pub mod rebalance;

pub use freq::FreqTracker;
pub use migration::{MigrationSpec, MigrationStats};
pub use placed::PlacedCluster;
pub use placement::PlacementTable;
pub use placer::{NodeClass, PlacerConfig, SkewAwarePlacer};
pub use rebalance::{NodeWindow, RebalanceConfig, RebalanceController};
