//! Live-migration bookkeeping: the double-write window and its ledger.
//!
//! A migration moves a set of keys from their current owners to new
//! destinations *while training continues*:
//!
//! 1. **Seed** — at a batch boundary, each migrating key's full payload
//!    (weights *and* optimizer state) is copied source → destination.
//! 2. **Double-write window** — every push of a migrating key is applied
//!    to both replicas. The optimizer is deterministic, so the replicas
//!    stay bit-identical; pulls keep routing to the source (the table is
//!    untouched), so readers never see a half-migrated view.
//! 3. **Cutover fence** — at the `end_pull_phase` of the cutover batch
//!    (all pulls done, no push in flight — the same barrier the sync
//!    protocol already provides), the placement table applies the moves
//!    in one epoch bump and the source copies are discarded.
//!
//! The struct here is only the ledger; [`crate::PlacedCluster`] drives
//! the protocol.

use oe_core::{BatchId, Key};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// A requested migration: which keys go where, and how long the
/// double-write window runs before cutover.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// `(key, destination)` moves; keys already at their destination are
    /// dropped at start.
    pub moves: Vec<(Key, usize)>,
    /// Batches of double-writing before the cutover fence. May be 0 for
    /// an immediate cutover at the next `end_pull_phase`.
    pub double_write_batches: u64,
}

/// An in-flight migration (one at a time per cluster).
#[derive(Debug)]
pub(crate) struct ActiveMigration {
    /// `(key, source, destination)` for every real move.
    pub moves: Vec<(Key, usize, usize)>,
    /// key → destination, for O(1) double-write lookups on the push path.
    pub dest_of: HashMap<Key, usize>,
    /// Keys whose destination replica has been seeded (at start, or
    /// lazily on first double-write of a key born after the snapshot).
    pub seeded: HashSet<Key>,
    /// Batch the migration started after (its state is the snapshot).
    pub started_batch: BatchId,
    /// First batch whose `end_pull_phase` performs the cutover.
    pub cutover_batch: BatchId,
}

/// Cumulative migration counters, serialized into bench reports.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MigrationStats {
    /// Completed migrations (cutovers performed).
    pub migrations: u64,
    /// Keys relocated across all migrations.
    pub keys_moved: u64,
    /// Pushes applied twice during double-write windows — the wire-level
    /// cost of migrating live, and exactly the amount to subtract from
    /// summed node push counters to recover logical push volume.
    pub double_write_pushes: u64,
    /// Batches spent inside double-write windows, across migrations.
    pub double_write_batches: u64,
    /// Payload copies performed to seed destinations.
    pub seed_copies: u64,
}
