//! `PlacedCluster`: a sharded PS cluster routed through the placement
//! table, with live migration and optional telemetry-driven rebalancing.
//!
//! This is `core::Cluster` with the static hash replaced by a
//! [`PlacementTable`] and three extra moving parts:
//!
//! * **Telemetry** — per-node burst-latency histograms and keys-served
//!   counters feed the [`RebalanceController`]; a [`FreqTracker`] feeds
//!   the [`SkewAwarePlacer`].
//! * **Live migration** — [`PlacedCluster::start_migration`] seed-copies
//!   full entries (weights + optimizer state) to their destinations,
//!   double-writes every subsequent push of a migrating key to both
//!   replicas, and cuts over at the `end_pull_phase` fence of the
//!   cutover batch: table epoch bump + source discard, between the pull
//!   and push bursts of one batch, so no push is ever in flight across
//!   the fence. Training never stops, and because seeding/double-writes
//!   carry complete deterministic state, the post-migration weights are
//!   bit-identical to a never-migrated run.
//! * **Rebalancing** — with [`PlacedCluster::with_auto_rebalance`], the
//!   controller checks windowed per-node load/p99 on a batch cadence and
//!   plans a hot-key drain off the overloaded node via the placer.
//!
//! Routing invariant: a burst is always routed by the *current* table —
//! the in-flight migration only adds destination double-writes; it never
//! changes where reads go until the cutover's epoch bump.

use crate::freq::FreqTracker;
use crate::migration::{ActiveMigration, MigrationSpec, MigrationStats};
use crate::placement::PlacementTable;
use crate::placer::{NodeClass, SkewAwarePlacer};
use crate::rebalance::{NodeWindow, RebalanceConfig, RebalanceController};
use oe_core::plan::{ShardBuckets, ShardPlan};
use oe_core::{merge_node_parallel, BatchId, Key, MaintenanceReport, PsEngine, StatsSnapshot};
use oe_simdevice::Cost;
use oe_telemetry::{Counter, Gauge, HistogramHandle, HistogramSnapshot, Registry};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};

/// A cluster of PS engines routed by an epoch-versioned placement table.
pub struct PlacedCluster<E: PsEngine> {
    nodes: Vec<E>,
    classes: Vec<NodeClass>,
    table: RwLock<PlacementTable>,
    active: Mutex<Option<ActiveMigration>>,
    freq: Mutex<FreqTracker>,
    controller: Option<Mutex<RebalanceController>>,
    mig: Mutex<MigrationStats>,
    /// Keys whose placement changed at the most recent cutovers, not
    /// yet collected by [`PlacedCluster::drain_moved_keys`]. Feeds
    /// trainer-side caches that must invalidate moved entries.
    moved_pending: Mutex<Vec<Key>>,
    // Telemetry: per-node burst latency + keys served, cluster gauges.
    registry: Registry,
    node_hist: Vec<HistogramHandle>,
    node_keys: Vec<Counter>,
    window_base: Mutex<Vec<(HistogramSnapshot, u64)>>,
    epoch_gauge: Gauge,
    migrations_total: Counter,
    keys_moved_total: Counter,
    dw_pushes_total: Counter,
    seed_copies_total: Counter,
}

impl<E: PsEngine> PlacedCluster<E> {
    /// A placed cluster with no controller: static hash routing until
    /// someone calls [`PlacedCluster::start_migration`] explicitly.
    pub fn new(nodes: Vec<E>) -> Self {
        Self::build(nodes, None, Vec::new())
    }

    /// A placed cluster that rebalances itself: the controller checks
    /// windowed telemetry every `cfg.check_every_batches` completed
    /// batches and drains hot keys off an overloaded node. `classes`
    /// restricts hot-key destinations to DRAM-rich nodes (empty = all).
    pub fn with_auto_rebalance(
        nodes: Vec<E>,
        cfg: RebalanceConfig,
        classes: Vec<NodeClass>,
    ) -> Self {
        let ctrl = RebalanceController::new(cfg);
        Self::build(nodes, Some(ctrl), classes)
    }

    fn build(
        nodes: Vec<E>,
        controller: Option<RebalanceController>,
        classes: Vec<NodeClass>,
    ) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        assert!(
            classes.is_empty() || classes.len() == nodes.len(),
            "one class per node, or empty for all-DRAM"
        );
        let registry = Registry::new();
        let node_hist = (0..nodes.len())
            .map(|i| registry.histogram(&format!("cluster_node{i}_burst_ns")))
            .collect();
        let node_keys = (0..nodes.len())
            .map(|i| registry.counter(&format!("cluster_node{i}_keys_served_total")))
            .collect();
        let window_base = Mutex::new(vec![(HistogramSnapshot::empty(), 0u64); nodes.len()]);
        let epoch_gauge = registry.gauge("cluster_placement_epoch");
        let migrations_total = registry.counter("cluster_migrations_total");
        let keys_moved_total = registry.counter("cluster_keys_moved_total");
        let dw_pushes_total = registry.counter("cluster_double_write_pushes_total");
        let seed_copies_total = registry.counter("cluster_seed_copies_total");
        let table = RwLock::new(PlacementTable::new(nodes.len()));
        Self {
            nodes,
            classes,
            table,
            active: Mutex::new(None),
            freq: Mutex::new(FreqTracker::new()),
            controller: controller.map(Mutex::new),
            mig: Mutex::new(MigrationStats::default()),
            moved_pending: Mutex::new(Vec::new()),
            registry,
            node_hist,
            node_keys,
            window_base,
            epoch_gauge,
            migrations_total,
            keys_moved_total,
            dw_pushes_total,
            seed_copies_total,
        }
    }

    /// Number of PS nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, per the constructor).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node (tests / stats).
    pub fn node(&self, i: usize) -> &E {
        &self.nodes[i]
    }

    /// Which node currently serves `key`.
    pub fn node_of(&self, key: Key) -> usize {
        self.table.read().node_of(key)
    }

    /// Current placement epoch.
    pub fn placement_epoch(&self) -> u64 {
        self.table.read().epoch()
    }

    /// A snapshot of the placement table.
    pub fn placement(&self) -> PlacementTable {
        self.table.read().clone()
    }

    /// True while a migration's double-write window is open.
    pub fn migration_active(&self) -> bool {
        self.active.lock().is_some()
    }

    /// Cumulative migration counters.
    pub fn migration_stats(&self) -> MigrationStats {
        *self.mig.lock()
    }

    /// Collect (and clear) the keys whose placement changed at cutovers
    /// since the last call, in move order. A trainer-side prefetch
    /// cache drains this at the batch boundary and invalidates exactly
    /// those entries exactly once — a second drain returns nothing.
    pub fn drain_moved_keys(&self) -> Vec<Key> {
        std::mem::take(&mut *self.moved_pending.lock())
    }

    /// The cluster's telemetry registry (placement epoch, per-node
    /// burst histograms, migration counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Start a migration after `after_batch` has fully completed
    /// (pushes included): seed-copy each moving key's full entry to its
    /// destination now, double-write pushes for
    /// `spec.double_write_batches` batches, then cut over at the
    /// `end_pull_phase` fence. Returns the number of keys actually
    /// migrating (no-op moves are dropped; 0 if a migration is already
    /// in flight).
    pub fn start_migration(
        &self,
        spec: MigrationSpec,
        after_batch: BatchId,
        cost: &mut Cost,
    ) -> usize {
        self.start_migration_inner(&spec.moves, spec.double_write_batches, after_batch, cost)
    }

    fn start_migration_inner(
        &self,
        moves: &[(Key, usize)],
        double_write_batches: u64,
        started_batch: BatchId,
        cost: &mut Cost,
    ) -> usize {
        let mut guard = self.active.lock();
        if guard.is_some() {
            return 0; // one migration at a time
        }
        let real: Vec<(Key, usize, usize)> = {
            let table = self.table.read();
            moves
                .iter()
                .filter_map(|&(k, dest)| {
                    let src = table.node_of(k);
                    (src != dest).then_some((k, src, dest))
                })
                .collect()
        };
        if real.is_empty() {
            return 0;
        }
        // Seed: copy full entries (weights + optimizer state + version)
        // to the destinations. Keys with no entry yet are seeded lazily
        // on their first double-write (or at cutover).
        let mut seeded = HashSet::new();
        let mut copies = 0u64;
        for &(k, src, dest) in &real {
            if let Some((v, payload)) = self.nodes[src].export_entry(k, cost) {
                self.nodes[dest].import_entry(k, v, &payload, cost);
                seeded.insert(k);
                copies += 1;
            }
        }
        self.seed_copies_total.add(copies);
        self.mig.lock().seed_copies += copies;
        let n = real.len();
        *guard = Some(ActiveMigration {
            dest_of: real.iter().map(|&(k, _, d)| (k, d)).collect(),
            moves: real,
            seeded,
            started_batch,
            cutover_batch: started_batch + double_write_batches + 1,
        });
        n
    }

    /// The cutover fence: bump the table epoch with the moves and forget
    /// the source copies. Runs between the pull and push bursts of
    /// `batch` (inside `end_pull_phase`), so no push spans the fence.
    fn cutover(&self, mut active: ActiveMigration, batch: BatchId, cost: &mut Cost) {
        // Any key that has an entry at the source but was never
        // double-written gets its copy now — after this loop the
        // destination has an entry iff the source did, so logical
        // counters (new_entries) stay placement-invariant.
        let mut copies = 0u64;
        for &(k, src, dest) in &active.moves {
            if !active.seeded.contains(&k) {
                if let Some((v, payload)) = self.nodes[src].export_entry(k, cost) {
                    self.nodes[dest].import_entry(k, v, &payload, cost);
                    active.seeded.insert(k);
                    copies += 1;
                }
            }
        }
        let epoch = {
            let mut table = self.table.write();
            let flat: Vec<(Key, usize)> = active.moves.iter().map(|&(k, _, d)| (k, d)).collect();
            table.apply(&flat)
        };
        self.epoch_gauge.set(epoch);
        for &(k, src, _) in &active.moves {
            self.nodes[src].discard_entry(k, cost);
        }
        self.moved_pending
            .lock()
            .extend(active.moves.iter().map(|&(k, _, _)| k));
        let moved = active.moves.len() as u64;
        let window = (batch - active.started_batch).saturating_sub(1);
        self.migrations_total.inc();
        self.keys_moved_total.add(moved);
        self.seed_copies_total.add(copies);
        let mut mig = self.mig.lock();
        mig.migrations += 1;
        mig.keys_moved += moved;
        mig.double_write_batches += window;
        mig.seed_copies += copies;
    }

    /// Controller tick: compute per-node windows from telemetry deltas,
    /// ask the controller for an overload verdict, and start a drain
    /// migration if one is due. No-op without a controller or while a
    /// migration is in flight.
    fn maybe_rebalance(&self, batch: BatchId, cost: &mut Cost) {
        let Some(ctrl) = &self.controller else { return };
        let mut ctrl = ctrl.lock();
        if !ctrl.due(batch) || self.active.lock().is_some() {
            return;
        }
        let windows: Vec<NodeWindow> = {
            let mut bases = self.window_base.lock();
            (0..self.nodes.len())
                .map(|i| {
                    let snap = self.node_hist[i].snapshot();
                    let keys_now = self.node_keys[i].get();
                    let delta = snap.delta_since(&bases[i].0);
                    let w = NodeWindow {
                        keys: keys_now - bases[i].1,
                        p99_ns: delta.p99(),
                        mean_ns: delta.mean(),
                    };
                    bases[i] = (snap, keys_now);
                    w
                })
                .collect()
        };
        let Some(hot) = ctrl.overloaded(&windows) else {
            return;
        };
        let moves = {
            let placer = SkewAwarePlacer::new(ctrl.config().placer.clone());
            let table = self.table.read();
            let loads: Vec<u64> = windows.iter().map(|w| w.keys).collect();
            let freq = self.freq.lock();
            placer.plan_moves(&freq, &table, &loads, &self.classes, Some(hot))
        };
        if !moves.is_empty() {
            // Seeding happens here, between this batch's pulls and its
            // pushes, so this batch's pushes are already double-written:
            // the snapshot predates them, hence started = batch − 1.
            let dw = ctrl.config().double_write_batches;
            self.start_migration_inner(&moves, dw, batch.saturating_sub(1), cost);
            self.freq.lock().decay();
        }
    }

    /// Bucket a burst by the *current* table and coalesce duplicates.
    fn scatter(&self, keys: &[Key]) -> ShardPlan {
        let table = self.table.read();
        ShardBuckets::bucket(keys, self.nodes.len(), |k| table.node_of(k)).coalesce()
    }
}

impl<E: PsEngine> PsEngine for PlacedCluster<E> {
    fn name(&self) -> &'static str {
        self.nodes[0].name()
    }

    fn dim(&self) -> usize {
        self.nodes[0].dim()
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.dim();
        let start = out.len();
        out.resize(start + keys.len() * dim, 0.0);
        let plan = self.scatter(keys);
        let mut node_costs = Vec::with_capacity(plan.groups.len());
        {
            let mut freq = self.freq.lock();
            for g in &plan.groups {
                for (ui, occ) in g.occs.iter().enumerate() {
                    freq.observe(g.uniques[ui], occ.len() as u64);
                }
            }
        }
        for g in &plan.groups {
            let mut node_out = Vec::with_capacity(g.uniques.len() * dim);
            let mut c = Cost::new();
            self.nodes[g.shard].pull(&g.uniques, batch, &mut node_out, &mut c);
            for (ui, occ) in g.occs.iter().enumerate() {
                let src = ui * dim;
                for &pos in occ {
                    let dst = start + pos as usize * dim;
                    out[dst..dst + dim].copy_from_slice(&node_out[src..src + dim]);
                }
            }
            self.node_hist[g.shard].record(c.total_ns());
            self.node_keys[g.shard].add(g.uniques.len() as u64);
            node_costs.push(c);
        }
        merge_node_parallel(&node_costs, cost);
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        let reports: Vec<MaintenanceReport> =
            self.nodes.iter().map(|n| n.end_pull_phase(batch)).collect();
        let mut merged = MaintenanceReport::default();
        let mut costs = Vec::new();
        for r in reports {
            merged.entries_processed += r.entries_processed;
            merged.ckpt_commits += r.ckpt_commits;
            costs.push(r.cost);
        }
        merge_node_parallel(&costs, &mut merged.cost);
        // The cutover fence: all pulls of `batch` are done, no push of
        // `batch` has started.
        let due = {
            let mut guard = self.active.lock();
            match guard.as_ref() {
                Some(a) if batch >= a.cutover_batch => guard.take(),
                _ => None,
            }
        };
        let mut c = Cost::new();
        if let Some(active) = due {
            self.cutover(active, batch, &mut c);
        } else {
            self.maybe_rebalance(batch, &mut c);
        }
        merged.cost.merge(&c);
        merged
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.dim();
        let mut guard = self.active.lock();
        // Late seeding must happen *before* the source applies this
        // batch's gradient, so the copy reflects the pre-push state and
        // the double-write below advances both replicas exactly once.
        if let Some(a) = guard.as_mut() {
            let mut copies = 0u64;
            for &k in keys {
                if a.dest_of.contains_key(&k) && !a.seeded.contains(&k) {
                    let src = self.table.read().node_of(k);
                    let dest = a.dest_of[&k];
                    if let Some((v, payload)) = self.nodes[src].export_entry(k, cost) {
                        self.nodes[dest].import_entry(k, v, &payload, cost);
                        a.seeded.insert(k);
                        copies += 1;
                    }
                }
            }
            if copies > 0 {
                self.seed_copies_total.add(copies);
                self.mig.lock().seed_copies += copies;
            }
        }
        let plan = self.scatter(keys);
        let mut node_costs = Vec::with_capacity(plan.groups.len());
        for g in &plan.groups {
            let occ = g.occurrences_in_request_order();
            let mut node_keys = Vec::with_capacity(occ.len());
            let mut node_grads = Vec::with_capacity(occ.len() * dim);
            for &(pos, k) in &occ {
                node_keys.push(k);
                let p = pos as usize * dim;
                node_grads.extend_from_slice(&grads[p..p + dim]);
            }
            let mut c = Cost::new();
            self.nodes[g.shard].push(&node_keys, &node_grads, batch, &mut c);
            self.node_hist[g.shard].record(c.total_ns());
            node_costs.push(c);
        }
        // Double-write: migrating keys also push to their destination,
        // occurrence-preserving, so both replicas apply the identical
        // per-key gradient sequence.
        if let Some(a) = guard.as_ref() {
            let mut per_dest: HashMap<usize, (Vec<Key>, Vec<f32>)> = HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                if let Some(&dest) = a.dest_of.get(&k) {
                    if a.seeded.contains(&k) {
                        let e = per_dest.entry(dest).or_default();
                        e.0.push(k);
                        e.1.extend_from_slice(&grads[i * dim..(i + 1) * dim]);
                    }
                }
            }
            let mut dests: Vec<usize> = per_dest.keys().copied().collect();
            dests.sort_unstable();
            let mut dw = 0u64;
            for d in dests {
                let (dk, dg) = &per_dest[&d];
                let before = self.nodes[d].stats().pushes;
                let mut c = Cost::new();
                self.nodes[d].push(dk, dg, batch, &mut c);
                dw += self.nodes[d].stats().pushes - before;
                self.node_hist[d].record(c.total_ns());
                node_costs.push(c);
            }
            if dw > 0 {
                self.dw_pushes_total.add(dw);
                self.mig.lock().double_write_pushes += dw;
            }
        }
        merge_node_parallel(&node_costs, cost);
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut total = Cost::new();
        let costs: Vec<Cost> = self
            .nodes
            .iter()
            .map(|n| n.request_checkpoint(batch))
            .collect();
        merge_node_parallel(&costs, &mut total);
        total
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.nodes
            .iter()
            .map(|n| n.committed_checkpoint())
            .min()
            .unwrap_or(0)
    }

    fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for n in &self.nodes {
            let s = n.stats();
            total.pulls += s.pulls;
            total.hits += s.hits;
            total.misses += s.misses;
            total.new_entries += s.new_entries;
            total.pushes += s.pushes;
            total.evictions += s.evictions;
            total.flushes += s.flushes;
            total.loads += s.loads;
            total.ckpt_commits += s.ckpt_commits;
            total.ckpt_entries_written += s.ckpt_entries_written;
            total.slots_recycled += s.slots_recycled;
        }
        // Double-writes are migration plumbing, not training traffic:
        // subtract them so summed push counters stay placement-invariant.
        total.pushes -= self.mig.lock().double_write_pushes.min(total.pushes);
        total
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        self.nodes[self.node_of(key)].read_weights(key)
    }

    fn num_keys(&self) -> usize {
        // During a double-write window each seeded key has a live
        // replica on both its source and its destination.
        let replicas = self.active.lock().as_ref().map_or(0, |a| a.seeded.len());
        self.nodes.iter().map(|n| n.num_keys()).sum::<usize>() - replicas
    }

    fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    fn export_entry(&self, key: Key, cost: &mut Cost) -> Option<(BatchId, Vec<f32>)> {
        self.nodes[self.node_of(key)].export_entry(key, cost)
    }

    fn import_entry(&self, key: Key, version: BatchId, payload: &[f32], cost: &mut Cost) -> bool {
        self.nodes[self.node_of(key)].import_entry(key, version, payload, cost)
    }

    fn discard_entry(&self, key: Key, cost: &mut Cost) -> bool {
        self.nodes[self.node_of(key)].discard_entry(key, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::PlacerConfig;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn nodes(n: usize, opt: OptimizerKind) -> Vec<PsNode> {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = opt;
        (0..n).map(|_| PsNode::new(cfg.clone())).collect()
    }

    fn adagrad() -> OptimizerKind {
        OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        }
    }

    fn pull(c: &impl PsEngine, keys: &[u64], b: u64) -> Vec<f32> {
        let (mut out, mut cost) = (Vec::new(), Cost::new());
        c.pull(keys, b, &mut out, &mut cost);
        out
    }

    fn push(c: &impl PsEngine, keys: &[u64], b: u64) {
        let mut grads = vec![0.0f32; keys.len() * 4];
        for (i, g) in grads.iter_mut().enumerate() {
            *g = ((i % 7) as f32 - 3.0) * 0.01 + (b as f32) * 0.001;
        }
        c.push(keys, &grads, b, &mut Cost::new());
    }

    #[test]
    fn routes_like_static_hash_at_epoch_zero() {
        let c = PlacedCluster::new(nodes(3, adagrad()));
        assert_eq!(c.placement_epoch(), 0);
        for k in 0..64u64 {
            assert_eq!(c.node_of(k), oe_core::hash_node_of(k, 3));
        }
        let keys: Vec<u64> = (0..32).collect();
        let out = pull(&c, &keys, 1);
        assert_eq!(out.len(), 32 * 4);
    }

    #[test]
    fn migration_is_bit_identical_and_relocates() {
        // Train two identical clusters; migrate on one; weights must
        // stay bit-identical while routing actually changes.
        let a = PlacedCluster::new(nodes(3, adagrad()));
        let b = PlacedCluster::new(nodes(3, adagrad()));
        let keys: Vec<u64> = (0..48).collect();
        let moved: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&k| a.node_of(k) == 0)
            .collect();
        assert!(moved.len() >= 4, "enough keys on node 0: {}", moved.len());
        for batch in 1..=12u64 {
            for c in [&a, &b] {
                pull(c, &keys, batch);
                c.end_pull_phase(batch);
                push(c, &keys, batch);
            }
            if batch == 4 {
                let spec = MigrationSpec {
                    moves: moved.iter().map(|&k| (k, 1 + (k as usize % 2))).collect(),
                    double_write_batches: 3,
                };
                let n = a.start_migration(spec, 4, &mut Cost::new());
                assert_eq!(n, moved.len());
                assert!(a.migration_active());
            }
        }
        assert!(!a.migration_active(), "cutover happened");
        assert_eq!(a.placement_epoch(), 1);
        assert_eq!(b.placement_epoch(), 0);
        for &k in &keys {
            assert_eq!(
                a.read_weights(k),
                b.read_weights(k),
                "key {k} diverged across migration"
            );
        }
        for &k in &moved {
            assert_ne!(a.node_of(k), 0, "key {k} relocated");
            assert!(a.node(0).read_weights(k).is_none(), "source forgot key {k}");
        }
        let ms = a.migration_stats();
        assert_eq!(ms.migrations, 1);
        assert_eq!(ms.keys_moved, moved.len() as u64);
        assert!(ms.double_write_pushes > 0, "pushes were in flight");
        assert_eq!(ms.double_write_batches, 3);
        // Logical counters are placement-invariant.
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.pulls, sb.pulls);
        assert_eq!(sa.pushes, sb.pushes, "double-writes subtracted");
        assert_eq!(sa.new_entries, sb.new_entries);
        assert_eq!(a.num_keys(), b.num_keys());
    }

    #[test]
    fn num_keys_stable_during_double_write_window() {
        let c = PlacedCluster::new(nodes(2, adagrad()));
        let keys: Vec<u64> = (0..20).collect();
        pull(&c, &keys, 1);
        c.end_pull_phase(1);
        push(&c, &keys, 1);
        let before = c.num_keys();
        let moved: Vec<(u64, usize)> = keys
            .iter()
            .filter(|&&k| c.node_of(k) == 0)
            .map(|&k| (k, 1))
            .collect();
        c.start_migration(
            MigrationSpec {
                moves: moved,
                double_write_batches: 2,
            },
            1,
            &mut Cost::new(),
        );
        assert!(c.migration_active());
        assert_eq!(c.num_keys(), before, "replicas not double-counted");
    }

    #[test]
    fn key_born_during_window_migrates_via_late_seed() {
        let c = PlacedCluster::new(nodes(2, adagrad()));
        let d = PlacedCluster::new(nodes(2, adagrad()));
        let old: Vec<u64> = (0..8).collect();
        let newborn: u64 = (100..200).find(|&k| c.node_of(k) == 0).unwrap();
        for e in [&c, &d] {
            pull(e, &old, 1);
            e.end_pull_phase(1);
            push(e, &old, 1);
        }
        // Migrate node 0's keys, including the not-yet-born `newborn`.
        let mut moves: Vec<(u64, usize)> = old
            .iter()
            .filter(|&&k| c.node_of(k) == 0)
            .map(|&k| (k, 1))
            .collect();
        moves.push((newborn, 1));
        c.start_migration(
            MigrationSpec {
                moves,
                double_write_batches: 2,
            },
            1,
            &mut Cost::new(),
        );
        // The newborn first appears mid-window.
        let mut all = old.clone();
        all.push(newborn);
        for batch in 2..=6u64 {
            for e in [&c, &d] {
                pull(e, &all, batch);
                e.end_pull_phase(batch);
                push(e, &all, batch);
            }
        }
        assert!(!c.migration_active());
        assert_eq!(c.node_of(newborn), 1, "newborn routed to destination");
        assert_eq!(c.read_weights(newborn), d.read_weights(newborn));
        assert_eq!(c.stats().new_entries, d.stats().new_entries);
    }

    #[test]
    fn second_migration_request_is_refused_while_active() {
        let c = PlacedCluster::new(nodes(2, adagrad()));
        let keys: Vec<u64> = (0..16).collect();
        pull(&c, &keys, 1);
        c.end_pull_phase(1);
        push(&c, &keys, 1);
        let moves: Vec<(u64, usize)> = keys
            .iter()
            .filter(|&&k| c.node_of(k) == 0)
            .map(|&k| (k, 1))
            .collect();
        assert!(
            c.start_migration(
                MigrationSpec {
                    moves: moves.clone(),
                    double_write_batches: 4
                },
                1,
                &mut Cost::new()
            ) > 0
        );
        assert_eq!(
            c.start_migration(
                MigrationSpec {
                    moves,
                    double_write_batches: 4
                },
                2,
                &mut Cost::new()
            ),
            0,
            "one migration at a time"
        );
    }

    #[test]
    fn auto_rebalance_drains_a_melted_node() {
        // All traffic hammers node 0's keys; the controller must notice
        // and move hot keys off it, bumping the epoch.
        let cfg = RebalanceConfig {
            check_every_batches: 4,
            double_write_batches: 1,
            min_window_keys: 32,
            placer: PlacerConfig {
                hot_fraction: 0.5,
                max_moves: 64,
            },
            ..RebalanceConfig::default()
        };
        let c = PlacedCluster::with_auto_rebalance(nodes(3, adagrad()), cfg, Vec::new());
        let hot: Vec<u64> = (0..2000u64)
            .filter(|&k| c.node_of(k) == 0)
            .take(24)
            .collect();
        for batch in 1..=16u64 {
            pull(&c, &hot, batch);
            c.end_pull_phase(batch);
            push(&c, &hot, batch);
        }
        assert!(c.placement_epoch() >= 1, "controller migrated");
        let off: usize = hot.iter().filter(|&&k| c.node_of(k) != 0).count();
        assert!(off > 0, "hot keys drained off node 0: {off}/{}", hot.len());
        assert!(c.migration_stats().keys_moved > 0);
        // Telemetry reflects it all.
        let snap = c.registry().snapshot();
        assert_eq!(
            snap.gauge("cluster_placement_epoch"),
            Some(c.placement_epoch())
        );
        assert!(snap.counter("cluster_keys_moved_total").unwrap() > 0);
    }

    #[test]
    fn balanced_load_never_triggers_the_controller() {
        let cfg = RebalanceConfig {
            check_every_batches: 2,
            min_window_keys: 16,
            ..RebalanceConfig::default()
        };
        let c = PlacedCluster::with_auto_rebalance(nodes(3, adagrad()), cfg, Vec::new());
        let keys: Vec<u64> = (0..96).collect(); // hash-spread evenly-ish
        for batch in 1..=12u64 {
            pull(&c, &keys, batch);
            c.end_pull_phase(batch);
            push(&c, &keys, batch);
        }
        assert_eq!(c.placement_epoch(), 0, "no migration on balanced load");
        assert_eq!(c.migration_stats().migrations, 0);
    }
}
