//! The epoch-versioned placement table.
//!
//! Routing is a two-level lookup: an explicit key→node override map for
//! the (tiny) set of relocated keys, and the static hash placement
//! ([`oe_core::hash_node_of`]) as the fallback for everything else —
//! RecShard's observation that only the hot head needs individual
//! placement, the cold tail can stay hashed. Every change to the
//! overrides bumps the **epoch**; a `(table, epoch)` pair therefore
//! fully determines routing, which is what lets servers fence stale
//! clients (`oe-net`'s placement-epoch check) and lets tests assert
//! *same epoch ⇒ same routing* as a property.

use oe_core::{hash_node_of, Key};
use std::collections::HashMap;

/// Epoch-numbered key→node indirection with hash fallback.
#[derive(Debug, Clone)]
pub struct PlacementTable {
    nodes: usize,
    epoch: u64,
    overrides: HashMap<Key, usize>,
}

impl PlacementTable {
    /// A fresh table over `nodes` PS nodes: epoch 0, pure hash routing.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "placement needs at least one node");
        Self {
            nodes,
            epoch: 0,
            overrides: HashMap::new(),
        }
    }

    /// Number of nodes routed over.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Current placement epoch. Bumped exactly once per [`apply`].
    ///
    /// [`apply`]: PlacementTable::apply
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of keys with an explicit override.
    pub fn overrides_len(&self) -> usize {
        self.overrides.len()
    }

    /// True if `key` routes through an explicit override.
    pub fn is_overridden(&self, key: Key) -> bool {
        self.overrides.contains_key(&key)
    }

    /// Route `key`: override if present, hash fallback otherwise.
    #[inline]
    pub fn node_of(&self, key: Key) -> usize {
        match self.overrides.get(&key) {
            Some(&n) => n,
            None => hash_node_of(key, self.nodes),
        }
    }

    /// Apply a batch of placement moves atomically and bump the epoch.
    /// A move back to a key's hash home removes its override (the table
    /// stays minimal). Returns the new epoch.
    pub fn apply(&mut self, moves: &[(Key, usize)]) -> u64 {
        for &(key, dest) in moves {
            assert!(dest < self.nodes, "destination {dest} out of range");
            if dest == hash_node_of(key, self.nodes) {
                self.overrides.remove(&key);
            } else {
                self.overrides.insert(key, dest);
            }
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_table_is_pure_hash() {
        let t = PlacementTable::new(4);
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.overrides_len(), 0);
        for k in 0..256u64 {
            assert_eq!(t.node_of(k), hash_node_of(k, 4));
        }
    }

    #[test]
    fn apply_moves_only_listed_keys_and_bumps_epoch() {
        let mut t = PlacementTable::new(4);
        let k = (0..64u64).find(|&k| hash_node_of(k, 4) != 2).unwrap();
        let e = t.apply(&[(k, 2)]);
        assert_eq!(e, 1);
        assert_eq!(t.node_of(k), 2);
        assert!(t.is_overridden(k));
        for other in 0..64u64 {
            if other != k {
                assert_eq!(t.node_of(other), hash_node_of(other, 4), "key {other}");
            }
        }
    }

    #[test]
    fn moving_home_clears_the_override() {
        let mut t = PlacementTable::new(4);
        let k = 7u64;
        let home = hash_node_of(k, 4);
        let away = (home + 1) % 4;
        t.apply(&[(k, away)]);
        assert_eq!(t.overrides_len(), 1);
        t.apply(&[(k, home)]);
        assert_eq!(t.overrides_len(), 0, "table stays minimal");
        assert_eq!(t.node_of(k), home);
        assert_eq!(t.epoch(), 2, "both applies bumped");
    }

    proptest! {
        /// Same epoch ⇒ same routing: a table and its clone (same state,
        /// same epoch) route every key identically, and routing is a
        /// pure function (repeat lookups agree).
        #[test]
        fn same_epoch_same_routing(
            nodes in 1usize..8,
            moves in proptest::collection::vec((0u64..500, 0usize..8), 0..32),
            probes in proptest::collection::vec(0u64..1000, 1..64),
        ) {
            let mut t = PlacementTable::new(nodes);
            let moves: Vec<(u64, usize)> =
                moves.into_iter().map(|(k, d)| (k, d % nodes)).collect();
            t.apply(&moves);
            let clone = t.clone();
            prop_assert_eq!(t.epoch(), clone.epoch());
            for &k in &probes {
                let n = t.node_of(k);
                prop_assert!(n < nodes);
                prop_assert_eq!(n, clone.node_of(k), "clone diverged on key {}", k);
                prop_assert_eq!(n, t.node_of(k), "routing not pure on key {}", k);
            }
        }

        /// Epochs are strictly monotonic over applies, and a non-applied
        /// table never changes its routing.
        #[test]
        fn epoch_monotonic(applies in 1usize..16) {
            let mut t = PlacementTable::new(3);
            let mut last = t.epoch();
            for i in 0..applies {
                let e = t.apply(&[(i as u64, i % 3)]);
                prop_assert!(e > last);
                last = e;
            }
        }
    }
}
