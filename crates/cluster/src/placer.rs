//! The skew-aware placer: turns frequency telemetry into placement moves.
//!
//! The paper's Table II skew (top 0.05 % of keys → 85.7 % of accesses)
//! means a tiny override map captures most of the traffic: pinning just
//! the hot head onto DRAM-rich nodes moves the bulk of the load, while
//! the cold tail stays on its static hash home for free. The placer
//! therefore takes the [`FreqTracker`]'s hot head (sized by
//! `hot_fraction`, default the paper's 0.05 %), orders candidate
//! destinations by recent load (coolest first), and deals hot keys
//! round-robin across them — skipping keys already well placed so the
//! move list, and with it the double-write window, stays minimal.

use crate::freq::FreqTracker;
use crate::placement::PlacementTable;
use oe_core::Key;
use oe_workload::SkewModel;

/// How a node's memory is provisioned, for placement eligibility.
///
/// Hot keys only pay off on nodes whose DRAM cache can actually hold
/// them; a PMem-heavy node serves the cold tail fine but would thrash
/// on the crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Large DRAM cache — eligible destination for hot keys.
    DramRich,
    /// Mostly PMem — kept out of the hot-key destination rotation.
    PmemHeavy,
    /// Slots live in a disaggregated remote pool (`oe-pool`): every
    /// miss pays fabric latency on top of PMem, so like [`PmemHeavy`]
    /// it serves the cold tail and never receives hot keys.
    ///
    /// [`PmemHeavy`]: NodeClass::PmemHeavy
    PoolBacked,
}

/// Placer tuning knobs.
#[derive(Debug, Clone)]
pub struct PlacerConfig {
    /// Fraction of tracked keys treated as the hot head. Default is the
    /// paper's 0.05 % (which Table II credits with 85.7 % of accesses).
    pub hot_fraction: f64,
    /// Hard cap on moves per migration (bounds the double-write set).
    pub max_moves: usize,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            hot_fraction: 0.0005,
            max_moves: 4096,
        }
    }
}

/// Plans hot-key moves from frequency telemetry.
#[derive(Debug, Clone, Default)]
pub struct SkewAwarePlacer {
    /// Tuning knobs.
    pub cfg: PlacerConfig,
}

impl SkewAwarePlacer {
    /// A placer with the given config.
    pub fn new(cfg: PlacerConfig) -> Self {
        Self { cfg }
    }

    /// Fraction of accesses the configured hot head should capture under
    /// `model` — the analytic ceiling on how much load a migration of
    /// `hot_fraction` of the keys can move.
    pub fn expected_hot_share(&self, model: &SkewModel) -> f64 {
        model.share_top(self.cfg.hot_fraction)
    }

    /// Plan placement moves.
    ///
    /// * `freq` — recent access counts (the hot head comes from here).
    /// * `table` — current routing; keys already at their target stay.
    /// * `loads` — recent per-node load (keys served); coolest nodes are
    ///   preferred destinations.
    /// * `classes` — per-node memory class; only [`NodeClass::DramRich`]
    ///   nodes receive hot keys. Pass `&[]` to treat all as DRAM-rich.
    /// * `avoid` — the overloaded node, if any. When set, only keys
    ///   currently routed *to* it are moved (drain the melted shard);
    ///   when `None`, the whole hot head is spread.
    ///
    /// Returns `(key, destination)` moves, deterministic for identical
    /// inputs. Never returns a move to the key's current node.
    pub fn plan_moves(
        &self,
        freq: &FreqTracker,
        table: &PlacementTable,
        loads: &[u64],
        classes: &[NodeClass],
        avoid: Option<usize>,
    ) -> Vec<(Key, usize)> {
        let nodes = table.num_nodes();
        assert!(loads.len() == nodes, "one load figure per node");
        assert!(
            classes.is_empty() || classes.len() == nodes,
            "one class per node, or empty for all-DRAM"
        );

        // Candidate destinations: DRAM-rich, not the melted node,
        // coolest first (ties on index for determinism).
        let mut dests: Vec<usize> = (0..nodes)
            .filter(|&i| Some(i) != avoid)
            .filter(|&i| classes.is_empty() || classes[i] == NodeClass::DramRich)
            .collect();
        dests.sort_by_key(|&i| (loads[i], i));
        if dests.is_empty() {
            return Vec::new();
        }

        let hot = ((freq.distinct() as f64 * self.cfg.hot_fraction).ceil() as usize)
            .clamp(1, self.cfg.max_moves);
        let mut moves = Vec::new();
        let mut next = 0usize;
        for (key, _count) in freq.top_hot(hot) {
            let cur = table.node_of(key);
            if let Some(melted) = avoid {
                if cur != melted {
                    continue; // already off the hot shard
                }
            }
            let dest = dests[next % dests.len()];
            next += 1;
            if dest != cur {
                moves.push((key, dest));
            }
            if moves.len() >= self.cfg.max_moves {
                break;
            }
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_tracker(keys: &[Key]) -> FreqTracker {
        let mut f = FreqTracker::new();
        for (i, &k) in keys.iter().enumerate() {
            // Descending counts so `keys` order == hotness order.
            f.observe(k, 1_000 - i as u64);
        }
        // Cold tail so hot_fraction has a denominator to bite on.
        for k in 10_000..11_000u64 {
            f.observe(k, 1);
        }
        f
    }

    #[test]
    fn drains_only_the_melted_node_onto_cool_peers() {
        let table = PlacementTable::new(4);
        let hot: Vec<Key> = (0..200u64)
            .filter(|&k| table.node_of(k) == 1)
            .take(8)
            .collect();
        let freq = loaded_tracker(&hot);
        let placer = SkewAwarePlacer::new(PlacerConfig {
            hot_fraction: 0.01,
            max_moves: 64,
        });
        let moves = placer.plan_moves(&freq, &table, &[10, 900, 20, 30], &[], Some(1));
        assert!(!moves.is_empty());
        for &(k, dest) in &moves {
            assert_eq!(table.node_of(k), 1, "only melted-node keys move");
            assert_ne!(dest, 1, "never back onto the melted node");
        }
        // Round-robin over the three cool nodes → spread, not a pile-up.
        let spread: std::collections::HashSet<usize> = moves.iter().map(|&(_, d)| d).collect();
        assert!(spread.len() >= 2, "moves spread over peers: {moves:?}");
    }

    #[test]
    fn pmem_heavy_nodes_receive_no_hot_keys() {
        let table = PlacementTable::new(3);
        let hot: Vec<Key> = (0..100u64)
            .filter(|&k| table.node_of(k) == 0)
            .take(6)
            .collect();
        let freq = loaded_tracker(&hot);
        let placer = SkewAwarePlacer::new(PlacerConfig {
            hot_fraction: 0.01,
            max_moves: 64,
        });
        let classes = [
            NodeClass::DramRich,
            NodeClass::PmemHeavy,
            NodeClass::DramRich,
        ];
        let moves = placer.plan_moves(&freq, &table, &[500, 0, 0], &classes, Some(0));
        assert!(!moves.is_empty());
        assert!(
            moves.iter().all(|&(_, d)| d == 2),
            "only the DRAM-rich peer"
        );
    }

    #[test]
    fn pool_backed_nodes_receive_no_hot_keys() {
        // A pool-backed shard is even worse than PMem-heavy for the hot
        // head: every miss adds a fabric round trip. It must stay out
        // of the destination rotation exactly like PmemHeavy.
        let table = PlacementTable::new(3);
        let hot: Vec<Key> = (0..100u64)
            .filter(|&k| table.node_of(k) == 0)
            .take(6)
            .collect();
        let freq = loaded_tracker(&hot);
        let placer = SkewAwarePlacer::new(PlacerConfig {
            hot_fraction: 0.01,
            max_moves: 64,
        });
        let classes = [
            NodeClass::DramRich,
            NodeClass::PoolBacked,
            NodeClass::DramRich,
        ];
        let moves = placer.plan_moves(&freq, &table, &[500, 0, 0], &classes, Some(0));
        assert!(!moves.is_empty());
        assert!(
            moves.iter().all(|&(_, d)| d == 2),
            "hot keys skip the pool-backed node: {moves:?}"
        );
    }

    #[test]
    fn planning_is_deterministic_and_skips_well_placed_keys() {
        let mut table = PlacementTable::new(4);
        let hot: Vec<Key> = (0..200u64)
            .filter(|&k| table.node_of(k) == 2)
            .take(4)
            .collect();
        // Pre-place the hottest key on the coolest node: no move for it.
        table.apply(&[(hot[0], 3)]);
        let freq = loaded_tracker(&hot);
        let placer = SkewAwarePlacer::new(PlacerConfig {
            hot_fraction: 0.005,
            max_moves: 64,
        });
        let a = placer.plan_moves(&freq, &table, &[5, 6, 900, 0], &[], Some(2));
        let b = placer.plan_moves(&freq, &table, &[5, 6, 900, 0], &[], Some(2));
        assert_eq!(a, b, "same inputs, same plan");
        assert!(
            a.iter().all(|&(k, _)| k != hot[0]),
            "hot[0] already off node 2"
        );
    }

    #[test]
    fn expected_hot_share_matches_the_paper_head() {
        let placer = SkewAwarePlacer::default();
        let share = placer.expected_hot_share(&SkewModel::paper_fit());
        assert!(
            (share - 0.857).abs() < 0.02,
            "top 0.05% ≈ 85.7%, got {share}"
        );
    }
}
