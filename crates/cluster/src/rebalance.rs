//! The rebalance controller: decides *when* to migrate.
//!
//! The controller watches per-node windowed telemetry — keys served and
//! burst-latency histograms, differenced against the previous check via
//! [`oe_telemetry::HistogramSnapshot::delta_since`] — and flags a node
//! as overloaded when its share of the window's load or its p99 burst
//! latency runs away from its peers. Detection is relative (ratios, not
//! absolute thresholds) so the same config works across cache sizes and
//! batch shapes, and it is guarded by a minimum window volume so a
//! near-idle cluster never migrates on noise.

use crate::placer::PlacerConfig;
use oe_core::{BatchCadence, BatchId};

/// One node's telemetry over the last check window.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeWindow {
    /// Unique keys served (pull-side) in the window.
    pub keys: u64,
    /// p99 burst latency over the window, in simulated ns.
    pub p99_ns: u64,
    /// Mean burst latency over the window, in simulated ns.
    pub mean_ns: u64,
}

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Batches between overload checks.
    pub check_every_batches: u64,
    /// Double-write window length for migrations the controller starts.
    pub double_write_batches: u64,
    /// A node is load-overloaded when its window key share exceeds this
    /// multiple of the per-node mean.
    pub load_ratio: f64,
    /// A node is latency-overloaded when its window p99 exceeds this
    /// multiple of the median peer p99.
    pub p99_ratio: f64,
    /// Minimum total keys in a window before any verdict is reached.
    pub min_window_keys: u64,
    /// Placer knobs for migrations the controller plans.
    pub placer: PlacerConfig,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            check_every_batches: 8,
            double_write_batches: 2,
            load_ratio: 1.5,
            p99_ratio: 2.0,
            min_window_keys: 256,
            placer: PlacerConfig::default(),
        }
    }
}

/// Watches windows and fires overload verdicts on a batch cadence.
#[derive(Debug)]
pub struct RebalanceController {
    cfg: RebalanceConfig,
    cadence: BatchCadence,
}

impl RebalanceController {
    /// A controller with the given config, armed from batch 0.
    pub fn new(cfg: RebalanceConfig) -> Self {
        let cadence = BatchCadence::every(cfg.check_every_batches.max(1));
        Self { cfg, cadence }
    }

    /// The config.
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// True when `completed` batches warrant an overload check.
    pub fn due(&mut self, completed: BatchId) -> bool {
        self.cadence.due(completed)
    }

    /// The overloaded node, if any: the busiest node when its load or
    /// p99 runs away from its peers per the configured ratios. `None`
    /// when the window is too quiet, the cluster has a single node, or
    /// everything is balanced.
    pub fn overloaded(&self, windows: &[NodeWindow]) -> Option<usize> {
        let n = windows.len();
        if n < 2 {
            return None;
        }
        let total: u64 = windows.iter().map(|w| w.keys).sum();
        if total < self.cfg.min_window_keys {
            return None;
        }
        // Busiest node by keys, then by p99 for ties.
        let i = (0..n).max_by_key(|&i| (windows[i].keys, windows[i].p99_ns))?;
        let mean_keys = total as f64 / n as f64;
        let load_hot = windows[i].keys as f64 >= self.cfg.load_ratio * mean_keys;

        let mut peer_p99: Vec<u64> = (0..n)
            .filter(|&j| j != i)
            .map(|j| windows[j].p99_ns)
            .collect();
        peer_p99.sort_unstable();
        let median_peer = peer_p99[peer_p99.len() / 2];
        let p99_hot = windows[i].p99_ns > 0
            && windows[i].p99_ns as f64 >= self.cfg.p99_ratio * median_peer as f64;

        (load_hot || p99_hot).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(keys: u64, p99: u64) -> NodeWindow {
        NodeWindow {
            keys,
            p99_ns: p99,
            mean_ns: p99 / 2,
        }
    }

    #[test]
    fn balanced_cluster_is_left_alone() {
        let c = RebalanceController::new(RebalanceConfig::default());
        let windows = [w(1000, 500), w(1100, 520), w(980, 480), w(1050, 510)];
        assert_eq!(c.overloaded(&windows), None);
    }

    #[test]
    fn load_runaway_flags_the_busiest_node() {
        let c = RebalanceController::new(RebalanceConfig::default());
        let windows = [w(300, 500), w(2400, 700), w(310, 480), w(290, 510)];
        assert_eq!(c.overloaded(&windows), Some(1));
    }

    #[test]
    fn p99_runaway_flags_even_when_load_is_even() {
        let cfg = RebalanceConfig {
            load_ratio: 10.0, // disable the load trigger
            ..RebalanceConfig::default()
        };
        let c = RebalanceController::new(cfg);
        let windows = [w(1000, 500), w(1001, 5000), w(999, 480), w(1000, 520)];
        assert_eq!(c.overloaded(&windows), Some(1));
    }

    #[test]
    fn quiet_windows_never_trigger() {
        let c = RebalanceController::new(RebalanceConfig::default());
        let windows = [w(3, 50), w(100, 9000), w(2, 40)];
        assert_eq!(c.overloaded(&windows), None, "below min_window_keys");
    }

    #[test]
    fn single_node_never_triggers() {
        let c = RebalanceController::new(RebalanceConfig::default());
        assert_eq!(c.overloaded(&[w(100_000, 9000)]), None);
    }

    #[test]
    fn cadence_gates_checks() {
        let mut c = RebalanceController::new(RebalanceConfig {
            check_every_batches: 4,
            ..RebalanceConfig::default()
        });
        let fired: Vec<BatchId> = (1..=12).filter(|&b| c.due(b)).collect();
        assert_eq!(fired, vec![4, 8, 12]);
    }
}
