//! Periodic checkpoint scheduling (the paper's "checkpoint thread").
//!
//! The paper sets the interval with Young's formula and Facebook's
//! reported MTTF, defaulting to 20 minutes (§VI-A). In the simulator the
//! scheduler is driven by virtual time: the trainer calls
//! [`CheckpointScheduler::due`] at every batch boundary.

use crate::BatchId;
use oe_simdevice::clock::{minutes, Nanos};

/// Decides when a periodic checkpoint is due.
#[derive(Debug, Clone)]
pub struct CheckpointScheduler {
    interval_ns: Nanos,
    last_ns: Nanos,
    enabled: bool,
}

impl CheckpointScheduler {
    /// Checkpoint every `interval_ns` of (virtual) time.
    pub fn every(interval_ns: Nanos) -> Self {
        Self {
            interval_ns,
            last_ns: 0,
            enabled: true,
        }
    }

    /// The paper's default: every 20 minutes.
    pub fn paper_default() -> Self {
        Self::every(minutes(20.0))
    }

    /// A disabled scheduler (the "No Checkpoint" configuration).
    pub fn disabled() -> Self {
        Self {
            interval_ns: u64::MAX,
            last_ns: 0,
            enabled: false,
        }
    }

    /// Whether checkpoints are being scheduled at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured interval.
    pub fn interval(&self) -> Nanos {
        self.interval_ns
    }

    /// Called at a batch boundary with the current virtual time and the
    /// just-completed batch. Returns the batch id to checkpoint if the
    /// interval has elapsed.
    pub fn due(&mut self, now_ns: Nanos, completed: BatchId) -> Option<BatchId> {
        if !self.enabled {
            return None;
        }
        let elapsed = now_ns.saturating_sub(self.last_ns);
        if elapsed >= self.interval_ns {
            // Re-arm on the interval grid, not at the fire time: batch
            // boundaries rarely land exactly on a deadline, and carrying
            // each overshoot into the next deadline compounds into a
            // long-run checkpoint rate below the Young's-formula target
            // (see `no_cadence_drift_on_overshoot`). Advancing by whole
            // interval multiples keeps the grid fixed while still firing
            // at most once per call (a long stall yields one checkpoint,
            // not a catch-up burst).
            self.last_ns += (elapsed / self.interval_ns) * self.interval_ns;
            Some(completed)
        } else {
            None
        }
    }

    /// Young's formula: optimal checkpoint interval ≈ √(2 · δ · MTBF)
    /// where δ is the cost of taking one checkpoint. Exposed for the
    /// interval-selection discussion in EXPERIMENTS.md.
    pub fn youngs_interval(checkpoint_cost_ns: Nanos, mtbf_ns: Nanos) -> Nanos {
        ((2.0 * checkpoint_cost_ns as f64 * mtbf_ns as f64).sqrt()) as Nanos
    }
}

/// A drift-free *batch-count* cadence: fires every `every` completed
/// batches, re-arming on the fixed grid exactly like
/// [`CheckpointScheduler::due`] does in virtual time (an overshoot —
/// e.g. a failover rewind skipping boundary calls — advances by whole
/// multiples, so the long-run rate stays pinned and a long gap yields
/// one fire, not a burst). Used by `oe-cluster`'s rebalance controller
/// to rate-limit placement decisions.
#[derive(Debug, Clone)]
pub struct BatchCadence {
    every: u64,
    last: BatchId,
}

impl BatchCadence {
    /// Fire every `every` batches (≥ 1).
    pub fn every(every: u64) -> Self {
        assert!(every >= 1, "cadence must be at least one batch");
        Self { every, last: 0 }
    }

    /// The configured period in batches.
    pub fn period(&self) -> u64 {
        self.every
    }

    /// Called at a batch boundary with the just-completed batch id.
    /// True when a full period has elapsed since the last grid point.
    pub fn due(&mut self, completed: BatchId) -> bool {
        let elapsed = completed.saturating_sub(self.last);
        if elapsed >= self.every {
            self.last += (elapsed / self.every) * self.every;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::clock::secs;

    #[test]
    fn fires_on_interval() {
        let mut s = CheckpointScheduler::every(secs(60.0));
        assert_eq!(s.due(secs(10.0), 5), None);
        assert_eq!(s.due(secs(61.0), 12), Some(12));
        // Re-arms on the interval grid (deadline 120 s, not 121 s).
        assert_eq!(s.due(secs(100.0), 20), None);
        assert_eq!(s.due(secs(121.0), 25), Some(25));
    }

    #[test]
    fn no_cadence_drift_on_overshoot() {
        // Regression: `due` used to re-arm from the fire time
        // (`last_ns = now_ns`), so with batch boundaries every 25 s and
        // a 60 s interval each fire pushed the next deadline to
        // fire + 60, yielding one checkpoint per 75 s (4 in 300 s)
        // instead of the grid rate of one per 60 s (5 in 300 s). The
        // long-run rate fell permanently below the Young's-formula
        // target. Schedule exposing it: boundaries at k·25 s.
        let mut s = CheckpointScheduler::every(secs(60.0));
        let mut fires = 0u64;
        for b in 1..=12u64 {
            if s.due(b * secs(25.0), b).is_some() {
                fires += 1;
            }
        }
        assert_eq!(fires, 5, "300 s at a 60 s interval → 5 checkpoints");
        // Long run: the rate stays pinned to the grid.
        let mut s = CheckpointScheduler::every(secs(60.0));
        let mut fires = 0u64;
        for b in 1..=1200u64 {
            if s.due(b * secs(25.0), b).is_some() {
                fires += 1;
            }
        }
        assert_eq!(fires, 500, "30000 s at a 60 s interval → 500 fires");
    }

    #[test]
    fn long_stall_fires_once_without_burst() {
        // A stall spanning many intervals yields a single checkpoint and
        // re-arms on the grid — no catch-up burst, no residual offset.
        let mut s = CheckpointScheduler::every(secs(60.0));
        assert_eq!(s.due(secs(601.0), 9), Some(9)); // 10 intervals late
        assert_eq!(s.due(secs(610.0), 10), None, "no burst");
        assert_eq!(s.due(secs(660.0), 11), Some(11), "grid deadline 660 s");
    }

    #[test]
    fn disabled_never_fires() {
        let mut s = CheckpointScheduler::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.due(u64::MAX - 1, 1), None);
    }

    #[test]
    fn batch_cadence_fires_on_grid() {
        let mut c = BatchCadence::every(4);
        assert_eq!(c.period(), 4);
        assert!(!c.due(1));
        assert!(!c.due(3));
        assert!(c.due(4));
        assert!(!c.due(5));
        assert!(c.due(8));
    }

    #[test]
    fn batch_cadence_long_gap_fires_once_without_drift() {
        // Skipping many boundaries (failover rewind) yields one fire and
        // re-arms on the grid, like the virtual-time scheduler.
        let mut c = BatchCadence::every(10);
        assert!(c.due(35)); // 3 periods late
        assert!(!c.due(36), "no catch-up burst");
        assert!(c.due(40), "grid point 40, not 45");
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn batch_cadence_rejects_zero() {
        BatchCadence::every(0);
    }

    #[test]
    fn youngs_formula_shape() {
        // 10 s checkpoint cost, 4 h MTBF → ~9 min (within 2x).
        let i = CheckpointScheduler::youngs_interval(secs(10.0), secs(4.0 * 3600.0));
        let mins = i as f64 / secs(60.0) as f64;
        assert!((4.0..20.0).contains(&mins), "interval = {mins} min");
    }
}
