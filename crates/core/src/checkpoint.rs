//! Periodic checkpoint scheduling (the paper's "checkpoint thread").
//!
//! The paper sets the interval with Young's formula and Facebook's
//! reported MTTF, defaulting to 20 minutes (§VI-A). In the simulator the
//! scheduler is driven by virtual time: the trainer calls
//! [`CheckpointScheduler::due`] at every batch boundary.

use crate::BatchId;
use oe_simdevice::clock::{minutes, Nanos};

/// Decides when a periodic checkpoint is due.
#[derive(Debug, Clone)]
pub struct CheckpointScheduler {
    interval_ns: Nanos,
    last_ns: Nanos,
    enabled: bool,
}

impl CheckpointScheduler {
    /// Checkpoint every `interval_ns` of (virtual) time.
    pub fn every(interval_ns: Nanos) -> Self {
        Self {
            interval_ns,
            last_ns: 0,
            enabled: true,
        }
    }

    /// The paper's default: every 20 minutes.
    pub fn paper_default() -> Self {
        Self::every(minutes(20.0))
    }

    /// A disabled scheduler (the "No Checkpoint" configuration).
    pub fn disabled() -> Self {
        Self {
            interval_ns: u64::MAX,
            last_ns: 0,
            enabled: false,
        }
    }

    /// Whether checkpoints are being scheduled at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured interval.
    pub fn interval(&self) -> Nanos {
        self.interval_ns
    }

    /// Called at a batch boundary with the current virtual time and the
    /// just-completed batch. Returns the batch id to checkpoint if the
    /// interval has elapsed.
    pub fn due(&mut self, now_ns: Nanos, completed: BatchId) -> Option<BatchId> {
        if !self.enabled {
            return None;
        }
        if now_ns.saturating_sub(self.last_ns) >= self.interval_ns {
            self.last_ns = now_ns;
            Some(completed)
        } else {
            None
        }
    }

    /// Young's formula: optimal checkpoint interval ≈ √(2 · δ · MTBF)
    /// where δ is the cost of taking one checkpoint. Exposed for the
    /// interval-selection discussion in EXPERIMENTS.md.
    pub fn youngs_interval(checkpoint_cost_ns: Nanos, mtbf_ns: Nanos) -> Nanos {
        ((2.0 * checkpoint_cost_ns as f64 * mtbf_ns as f64).sqrt()) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::clock::secs;

    #[test]
    fn fires_on_interval() {
        let mut s = CheckpointScheduler::every(secs(60.0));
        assert_eq!(s.due(secs(10.0), 5), None);
        assert_eq!(s.due(secs(61.0), 12), Some(12));
        // Re-arms from the fire time.
        assert_eq!(s.due(secs(100.0), 20), None);
        assert_eq!(s.due(secs(121.0), 25), Some(25));
    }

    #[test]
    fn disabled_never_fires() {
        let mut s = CheckpointScheduler::disabled();
        assert!(!s.is_enabled());
        assert_eq!(s.due(u64::MAX - 1, 1), None);
    }

    #[test]
    fn youngs_formula_shape() {
        // 10 s checkpoint cost, 4 h MTBF → ~9 min (within 2x).
        let i = CheckpointScheduler::youngs_interval(secs(10.0), secs(4.0 * 3600.0));
        let mins = i as f64 / secs(60.0) as f64;
        assert!((4.0..20.0).contains(&mins), "interval = {mins} min");
    }
}
