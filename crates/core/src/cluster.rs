//! Sharded PS cluster: embedding entries are partitioned across a series
//! of PS nodes by hashing the entry id (paper §IV). The cluster scatters
//! pull/push bursts to the owning nodes and gathers responses; the burst
//! completion time is the max over nodes (they serve in parallel).
//!
//! Scatter goes through [`crate::plan`] bucketing, so multi-node bursts
//! get the same duplicate-key coalescing as a node's internal shard
//! lanes: pulls send each distinct key to its owner once and fan the
//! payload out to every occurrence client-side; pushes stay
//! occurrence-preserving on the wire (whether duplicate gradients may
//! be summed is the *owner's* decision, via
//! [`crate::OptimizerKind::coalescible`] — the cluster must not pre-sum
//! for stateful optimizers).
//!
//! For skew-aware placement (epoch-versioned routing overrides, live
//! migration, rebalancing) layer `oe-cluster`'s `PlacedCluster` on top;
//! it reuses [`hash_node_of`] as its fallback and [`merge_node_parallel`]
//! for burst pricing.

use crate::engine::{MaintenanceReport, PsEngine};
use crate::plan::{ShardBuckets, ShardPlan};
use crate::stats::StatsSnapshot;
use crate::{BatchId, Key};
use oe_simdevice::{Cost, CostKind};

/// The static hash placement: which of `nodes` owns `key` when no
/// placement override applies. Salted so node routing decorrelates from
/// the in-node shard hash (`splitmix64(key)`).
#[inline]
pub fn hash_node_of(key: Key, nodes: usize) -> usize {
    (crate::init::splitmix64(key ^ 0xC1u64) % nodes as u64) as usize
}

/// Merge per-node burst costs for nodes serving in parallel: the
/// elementwise max of device/serialized charges (each node's hardware
/// works concurrently) and the sum of CPU/NET/fabric (the client still
/// pays per-request work, and pool-backed nodes share one fabric link,
/// so their transfers queue rather than overlap). A simple,
/// conservative merge for multi-node bursts.
pub fn merge_node_parallel(costs: &[Cost], out: &mut Cost) {
    for kind in CostKind::ALL {
        let ns = match kind {
            CostKind::Cpu | CostKind::Net | CostKind::FabricTransfer => {
                costs.iter().map(|c| c.ns(kind)).sum()
            }
            _ => costs.iter().map(|c| c.ns(kind)).max().unwrap_or(0),
        };
        out.charge_ns_only(kind, ns);
    }
}

/// A cluster of PS engines of the same type.
pub struct Cluster<E: PsEngine> {
    nodes: Vec<E>,
}

impl<E: PsEngine> Cluster<E> {
    /// Build a cluster from nodes.
    pub fn new(nodes: Vec<E>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        Self { nodes }
    }

    /// Number of PS nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes (never, per the constructor
    /// assert, but the `len`/`is_empty` contract must hold regardless).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node (tests / stats).
    pub fn node(&self, i: usize) -> &E {
        &self.nodes[i]
    }

    /// Which node owns `key`.
    #[inline]
    pub fn node_of(&self, key: Key) -> usize {
        hash_node_of(key, self.nodes.len())
    }

    /// Bucket a burst by owning node and coalesce duplicates per node.
    fn scatter(&self, keys: &[Key]) -> ShardPlan {
        ShardBuckets::bucket(keys, self.nodes.len(), |k| self.node_of(k)).coalesce()
    }
}

impl<E: PsEngine> PsEngine for Cluster<E> {
    fn name(&self) -> &'static str {
        self.nodes[0].name()
    }

    fn dim(&self) -> usize {
        self.nodes[0].dim()
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.dim();
        let start = out.len();
        out.resize(start + keys.len() * dim, 0.0);
        let plan = self.scatter(keys);
        let mut node_costs = Vec::with_capacity(plan.groups.len());
        for g in &plan.groups {
            // Pull each distinct key once and fan the payload out to all
            // of its occurrence positions — duplicates never cross the
            // node boundary.
            let mut node_out = Vec::with_capacity(g.uniques.len() * dim);
            let mut c = Cost::new();
            self.nodes[g.shard].pull(&g.uniques, batch, &mut node_out, &mut c);
            for (ui, occ) in g.occs.iter().enumerate() {
                let src = ui * dim;
                for &pos in occ {
                    let dst = start + pos as usize * dim;
                    out[dst..dst + dim].copy_from_slice(&node_out[src..src + dim]);
                }
            }
            node_costs.push(c);
        }
        merge_node_parallel(&node_costs, cost);
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        let reports: Vec<MaintenanceReport> =
            self.nodes.iter().map(|n| n.end_pull_phase(batch)).collect();
        let mut merged = MaintenanceReport::default();
        let mut costs = Vec::new();
        for r in reports {
            merged.entries_processed += r.entries_processed;
            merged.ckpt_commits += r.ckpt_commits;
            costs.push(r.cost);
        }
        merge_node_parallel(&costs, &mut merged.cost);
        merged
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.dim();
        let plan = self.scatter(keys);
        let mut node_costs = Vec::with_capacity(plan.groups.len());
        for g in &plan.groups {
            // Occurrence-preserving: rebuild this node's slice of the
            // request in original order. The node's own plan coalesces
            // duplicate gradients iff its optimizer allows it.
            let occ = g.occurrences_in_request_order();
            let mut node_keys = Vec::with_capacity(occ.len());
            let mut node_grads = Vec::with_capacity(occ.len() * dim);
            for &(pos, k) in &occ {
                node_keys.push(k);
                let p = pos as usize * dim;
                node_grads.extend_from_slice(&grads[p..p + dim]);
            }
            let mut c = Cost::new();
            self.nodes[g.shard].push(&node_keys, &node_grads, batch, &mut c);
            node_costs.push(c);
        }
        merge_node_parallel(&node_costs, cost);
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut total = Cost::new();
        let costs: Vec<Cost> = self
            .nodes
            .iter()
            .map(|n| n.request_checkpoint(batch))
            .collect();
        merge_node_parallel(&costs, &mut total);
        total
    }

    fn committed_checkpoint(&self) -> BatchId {
        // The cluster checkpoint is the min across nodes: only batches
        // durably committed everywhere are globally recoverable.
        self.nodes
            .iter()
            .map(|n| n.committed_checkpoint())
            .min()
            .unwrap_or(0)
    }

    fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for n in &self.nodes {
            let s = n.stats();
            total.pulls += s.pulls;
            total.hits += s.hits;
            total.misses += s.misses;
            total.new_entries += s.new_entries;
            total.pushes += s.pushes;
            total.evictions += s.evictions;
            total.flushes += s.flushes;
            total.loads += s.loads;
            total.ckpt_commits += s.ckpt_commits;
            total.ckpt_entries_written += s.ckpt_entries_written;
            total.slots_recycled += s.slots_recycled;
        }
        total
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        self.nodes[self.node_of(key)].read_weights(key)
    }

    fn num_keys(&self) -> usize {
        self.nodes.iter().map(|n| n.num_keys()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::node::PsNode;
    use crate::optimizer::OptimizerKind;

    fn cluster(n: usize) -> Cluster<PsNode> {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        Cluster::new((0..n).map(|_| PsNode::new(cfg.clone())).collect())
    }

    #[test]
    fn cluster_is_never_empty() {
        let c = cluster(3);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn scatter_gather_preserves_order() {
        let c3 = cluster(3);
        let c1 = cluster(1);
        let keys: Vec<u64> = (0..40).collect();
        let mut out3 = Vec::new();
        let mut out1 = Vec::new();
        let mut cost = Cost::new();
        c3.pull(&keys, 1, &mut out3, &mut cost);
        c1.pull(&keys, 1, &mut out1, &mut cost);
        // Same deterministic init regardless of cluster size and order.
        assert_eq!(out3, out1);
        assert_eq!(out3.len(), 40 * 4);
    }

    #[test]
    fn scatter_gather_preserves_order_with_duplicate_keys() {
        // A hot key repeated across the request must come back at every
        // occurrence position, identically to the single-node gather.
        let keys: Vec<u64> = vec![7, 3, 7, 11, 3, 7, 99, 11, 7, 3];
        let c3 = cluster(3);
        let c1 = cluster(1);
        let (mut out3, mut out1, mut cost) = (Vec::new(), Vec::new(), Cost::new());
        c3.pull(&keys, 1, &mut out3, &mut cost);
        c1.pull(&keys, 1, &mut out1, &mut cost);
        assert_eq!(out3, out1);
        assert_eq!(out3.len(), keys.len() * 4);
        // Every occurrence of key 7 carries the same payload.
        let w7 = c3.read_weights(7).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            if k == 7 {
                assert_eq!(&out3[i * 4..i * 4 + 4], &w7[..]);
            }
        }
        // Dedup actually happened: each node's pull counter counts
        // distinct keys per request, not occurrences.
        let pulls: u64 = (0..3).map(|i| c3.node(i).stats().pulls).sum();
        assert_eq!(pulls, 4, "10 occurrences coalesce to 4 uniques");
    }

    #[test]
    fn duplicate_push_matches_single_node() {
        // SGD is linear in the gradient; duplicate pushes must apply
        // per occurrence (or coalesce to an identical sum) on both
        // cluster shapes.
        let keys: Vec<u64> = vec![5, 9, 5, 5, 9, 21];
        let run = |c: &Cluster<PsNode>| {
            let (mut out, mut cost) = (Vec::new(), Cost::new());
            c.pull(&keys, 1, &mut out, &mut cost);
            c.end_pull_phase(1);
            let mut grads = vec![0.0f32; keys.len() * 4];
            for (i, g) in grads.iter_mut().enumerate() {
                *g = (i % 4) as f32 * 0.5 + 1.0;
            }
            c.push(&keys, &grads, 1, &mut cost);
            keys.iter()
                .map(|&k| c.read_weights(k).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&cluster(4)), run(&cluster(1)));
    }

    #[test]
    fn push_routes_to_owner() {
        let c = cluster(4);
        let keys: Vec<u64> = (0..16).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        c.pull(&keys, 1, &mut out, &mut cost);
        c.end_pull_phase(1);
        let grads = vec![1.0f32; 16 * 4];
        c.push(&keys, &grads, 1, &mut cost);
        for (i, &k) in keys.iter().enumerate() {
            let w = c.read_weights(k).unwrap();
            assert!((w[0] - (out[i * 4] - 1.0)).abs() < 1e-6, "key {k}");
        }
        // All nodes saw some keys (hash spreads 16 keys over 4 nodes whp).
        let busy = (0..4).filter(|&i| c.node(i).num_keys() > 0).count();
        assert!(busy >= 3, "keys spread across nodes: {busy}");
    }

    #[test]
    fn cluster_checkpoint_is_min() {
        let c = cluster(2);
        let keys: Vec<u64> = (0..8).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        c.pull(&keys, 1, &mut out, &mut cost);
        c.end_pull_phase(1);
        c.push(&keys, &[0.1; 8 * 4], 1, &mut cost);
        c.request_checkpoint(1);
        let mut out2 = Vec::new();
        c.pull(&keys, 2, &mut out2, &mut cost);
        c.end_pull_phase(2);
        assert_eq!(c.committed_checkpoint(), 1);
    }

    #[test]
    fn cluster_checkpoint_zero_when_one_node_never_checkpointed() {
        // Checkpoint node 0 directly; node 1 never commits anything, so
        // the *cluster* commit point must stay 0 — a recovery to any
        // batch > 0 would lose node 1's uncommitted state boundary.
        let c = cluster(2);
        let keys: Vec<u64> = (0..64).filter(|&k| c.node_of(k) == 0).collect();
        assert!(!keys.is_empty());
        let (mut out, mut cost) = (Vec::new(), Cost::new());
        c.pull(&keys, 1, &mut out, &mut cost);
        c.end_pull_phase(1);
        c.node(0).request_checkpoint(1);
        let mut out2 = Vec::new();
        c.pull(&keys, 2, &mut out2, &mut cost);
        c.end_pull_phase(2);
        assert!(c.node(0).committed_checkpoint() >= 1, "node 0 committed");
        assert_eq!(c.node(1).committed_checkpoint(), 0, "node 1 never did");
        assert_eq!(c.committed_checkpoint(), 0, "cluster min is 0");
    }

    #[test]
    fn parallel_cost_merge_takes_max_of_device_time() {
        let mut costs = vec![Cost::new(), Cost::new()];
        costs[0].charge(CostKind::PmemWrite, 100);
        costs[1].charge(CostKind::PmemWrite, 300);
        costs[0].charge(CostKind::Cpu, 10);
        costs[1].charge(CostKind::Cpu, 20);
        let mut out = Cost::new();
        merge_node_parallel(&costs, &mut out);
        assert_eq!(out.ns(CostKind::PmemWrite), 300);
        assert_eq!(out.ns(CostKind::Cpu), 30);
    }
}
