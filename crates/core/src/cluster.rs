//! Sharded PS cluster: embedding entries are partitioned across a series
//! of PS nodes by hashing the entry id (paper §IV). The cluster scatters
//! pull/push bursts to the owning nodes and gathers responses; the burst
//! completion time is the max over nodes (they serve in parallel).

use crate::engine::{MaintenanceReport, PsEngine};
use crate::stats::StatsSnapshot;
use crate::{BatchId, Key};
use oe_simdevice::{Cost, CostKind};

/// A cluster of PS engines of the same type.
pub struct Cluster<E: PsEngine> {
    nodes: Vec<E>,
}

impl<E: PsEngine> Cluster<E> {
    /// Build a cluster from nodes.
    pub fn new(nodes: Vec<E>) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        Self { nodes }
    }

    /// Number of PS nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster is a single node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Access a node (tests / stats).
    pub fn node(&self, i: usize) -> &E {
        &self.nodes[i]
    }

    /// Which node owns `key`.
    #[inline]
    pub fn node_of(&self, key: Key) -> usize {
        (crate::init::splitmix64(key ^ 0xC1u64) % self.nodes.len() as u64) as usize
    }

    fn scatter(&self, keys: &[Key]) -> Vec<Vec<(usize, Key)>> {
        let mut per: Vec<Vec<(usize, Key)>> = vec![Vec::new(); self.nodes.len()];
        for (pos, &k) in keys.iter().enumerate() {
            per[self.node_of(k)].push((pos, k));
        }
        per
    }

    /// Take the elementwise max of device/serialized charges (parallel
    /// nodes) and the sum of CPU/NET (the client still pays per-request
    /// work). A simple, conservative merge for multi-node bursts.
    fn merge_parallel(costs: Vec<Cost>, out: &mut Cost) {
        for kind in CostKind::ALL {
            let ns = match kind {
                CostKind::Cpu | CostKind::Net => costs.iter().map(|c| c.ns(kind)).sum(),
                _ => costs.iter().map(|c| c.ns(kind)).max().unwrap_or(0),
            };
            out.charge_ns_only(kind, ns);
        }
    }
}

impl<E: PsEngine> PsEngine for Cluster<E> {
    fn name(&self) -> &'static str {
        self.nodes[0].name()
    }

    fn dim(&self) -> usize {
        self.nodes[0].dim()
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.dim();
        let start = out.len();
        out.resize(start + keys.len() * dim, 0.0);
        let mut node_costs = Vec::with_capacity(self.nodes.len());
        for (ni, group) in self.scatter(keys).into_iter().enumerate() {
            if group.is_empty() {
                node_costs.push(Cost::new());
                continue;
            }
            let node_keys: Vec<Key> = group.iter().map(|&(_, k)| k).collect();
            let mut node_out = Vec::with_capacity(node_keys.len() * dim);
            let mut c = Cost::new();
            self.nodes[ni].pull(&node_keys, batch, &mut node_out, &mut c);
            for (gi, &(pos, _)) in group.iter().enumerate() {
                let dst = start + pos * dim;
                out[dst..dst + dim].copy_from_slice(&node_out[gi * dim..(gi + 1) * dim]);
            }
            node_costs.push(c);
        }
        Self::merge_parallel(node_costs, cost);
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        let reports: Vec<MaintenanceReport> =
            self.nodes.iter().map(|n| n.end_pull_phase(batch)).collect();
        let mut merged = MaintenanceReport::default();
        let mut costs = Vec::new();
        for r in reports {
            merged.entries_processed += r.entries_processed;
            merged.ckpt_commits += r.ckpt_commits;
            costs.push(r.cost);
        }
        Self::merge_parallel(costs, &mut merged.cost);
        merged
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.dim();
        let mut node_costs = Vec::with_capacity(self.nodes.len());
        for (ni, group) in self.scatter(keys).into_iter().enumerate() {
            if group.is_empty() {
                node_costs.push(Cost::new());
                continue;
            }
            let node_keys: Vec<Key> = group.iter().map(|&(_, k)| k).collect();
            let mut node_grads = Vec::with_capacity(node_keys.len() * dim);
            for &(pos, _) in &group {
                node_grads.extend_from_slice(&grads[pos * dim..(pos + 1) * dim]);
            }
            let mut c = Cost::new();
            self.nodes[ni].push(&node_keys, &node_grads, batch, &mut c);
            node_costs.push(c);
        }
        Self::merge_parallel(node_costs, cost);
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut total = Cost::new();
        let costs: Vec<Cost> = self
            .nodes
            .iter()
            .map(|n| n.request_checkpoint(batch))
            .collect();
        Self::merge_parallel(costs, &mut total);
        total
    }

    fn committed_checkpoint(&self) -> BatchId {
        // The cluster checkpoint is the min across nodes: only batches
        // durably committed everywhere are globally recoverable.
        self.nodes
            .iter()
            .map(|n| n.committed_checkpoint())
            .min()
            .unwrap_or(0)
    }

    fn stats(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for n in &self.nodes {
            let s = n.stats();
            total.pulls += s.pulls;
            total.hits += s.hits;
            total.misses += s.misses;
            total.new_entries += s.new_entries;
            total.pushes += s.pushes;
            total.evictions += s.evictions;
            total.flushes += s.flushes;
            total.loads += s.loads;
            total.ckpt_commits += s.ckpt_commits;
            total.ckpt_entries_written += s.ckpt_entries_written;
            total.slots_recycled += s.slots_recycled;
        }
        total
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        self.nodes[self.node_of(key)].read_weights(key)
    }

    fn num_keys(&self) -> usize {
        self.nodes.iter().map(|n| n.num_keys()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::node::PsNode;
    use crate::optimizer::OptimizerKind;

    fn cluster(n: usize) -> Cluster<PsNode> {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        Cluster::new((0..n).map(|_| PsNode::new(cfg.clone())).collect())
    }

    #[test]
    fn scatter_gather_preserves_order() {
        let c3 = cluster(3);
        let c1 = cluster(1);
        let keys: Vec<u64> = (0..40).collect();
        let mut out3 = Vec::new();
        let mut out1 = Vec::new();
        let mut cost = Cost::new();
        c3.pull(&keys, 1, &mut out3, &mut cost);
        c1.pull(&keys, 1, &mut out1, &mut cost);
        // Same deterministic init regardless of cluster size and order.
        assert_eq!(out3, out1);
        assert_eq!(out3.len(), 40 * 4);
    }

    #[test]
    fn push_routes_to_owner() {
        let c = cluster(4);
        let keys: Vec<u64> = (0..16).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        c.pull(&keys, 1, &mut out, &mut cost);
        c.end_pull_phase(1);
        let grads = vec![1.0f32; 16 * 4];
        c.push(&keys, &grads, 1, &mut cost);
        for (i, &k) in keys.iter().enumerate() {
            let w = c.read_weights(k).unwrap();
            assert!((w[0] - (out[i * 4] - 1.0)).abs() < 1e-6, "key {k}");
        }
        // All nodes saw some keys (hash spreads 16 keys over 4 nodes whp).
        let busy = (0..4).filter(|&i| c.node(i).num_keys() > 0).count();
        assert!(busy >= 3, "keys spread across nodes: {busy}");
    }

    #[test]
    fn cluster_checkpoint_is_min() {
        let c = cluster(2);
        let keys: Vec<u64> = (0..8).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        c.pull(&keys, 1, &mut out, &mut cost);
        c.end_pull_phase(1);
        c.push(&keys, &[0.1; 8 * 4], 1, &mut cost);
        c.request_checkpoint(1);
        let mut out2 = Vec::new();
        c.pull(&keys, 2, &mut out2, &mut cost);
        c.end_pull_phase(2);
        assert_eq!(c.committed_checkpoint(), 1);
    }

    #[test]
    fn parallel_cost_merge_takes_max_of_device_time() {
        let mut costs = vec![Cost::new(), Cost::new()];
        costs[0].charge(CostKind::PmemWrite, 100);
        costs[1].charge(CostKind::PmemWrite, 300);
        costs[0].charge(CostKind::Cpu, 10);
        costs[1].charge(CostKind::Cpu, 20);
        let mut out = Cost::new();
        Cluster::<PsNode>::merge_parallel(costs, &mut out);
        assert_eq!(out.ns(CostKind::PmemWrite), 300);
        assert_eq!(out.ns(CostKind::Cpu), 30);
    }
}
