//! Parameter-server node configuration.

use crate::optimizer::OptimizerKind;
use oe_cache::{AdmissionKind, PolicyKind};
use serde::Serialize;

/// DRAM bookkeeping overhead per cached entry beyond the payload:
/// key + version columns (16 B) plus LRU links (8 B) plus an amortized
/// index share (~40 B). Used to translate a cache *byte* budget (the
/// Fig. 8 knob) into arena entries.
pub const CACHE_ENTRY_OVERHEAD_BYTES: usize = 64;

/// Per-key CPU cost of a hash-index probe (ns).
pub const HASH_PROBE_NS: u64 = 45;
/// Per-key CPU cost of appending to the access queue (ns).
pub const ACCESS_QUEUE_NS: u64 = 8;
/// Per-key CPU cost of LRU pointer surgery (ns).
pub const LRU_OP_NS: u64 = 25;
/// Per-f32 CPU cost of optimizer arithmetic (ns).
pub const OPT_FLOP_NS_PER_F32: u64 = 1;
/// CPU cost of initializing a brand-new entry (ns, excl. memory traffic).
pub const INIT_ENTRY_NS: u64 = 150;
/// Per-key CPU cost of bucketing a request's keys by shard (ns).
pub const PLAN_KEY_NS: u64 = 4;
/// Per-key CPU cost of duplicate-key coalescing within a shard group
/// (one hash-map probe + occurrence-list append, ns).
pub const DEDUP_KEY_NS: u64 = 6;
/// Per-occurrence CPU cost of fanning a deduped payload out to the
/// response buffer during the merge stage (ns; the row itself was read
/// once per *unique* key).
pub const FANOUT_KEY_NS: u64 = 8;
/// CPU cost of one shard-lock acquisition (ns). The per-key path pays
/// this for every key; the shard-plan path pays it once per shard group.
pub const SHARD_LOCK_NS: u64 = 30;

/// Configuration of one [`crate::PsNode`].
#[derive(Debug, Clone, Serialize)]
pub struct NodeConfig {
    /// Embedding dimension (f32 weights per entry).
    pub dim: usize,
    /// Optimizer applied to pushed gradients.
    pub optimizer: OptimizerKind,
    /// DRAM cache budget in bytes (translated to entries).
    pub cache_bytes: usize,
    /// Number of index/arena/LRU shards. 1 reproduces the paper's single
    /// reader-writer lock exactly; more shards is the scalability
    /// ablation.
    pub shards: usize,
    /// Enable the DRAM cache (Fig. 9 ablation). When off, every entry
    /// lives in PMem and pull/push go straight to the pool.
    pub enable_cache: bool,
    /// Enable pipelined maintenance (Fig. 9 ablation). When off, cache
    /// replacement and flushes run inline on the pull path.
    pub enable_pipeline: bool,
    /// Uniform init scale: new weights ~ U(-scale, +scale), derived
    /// deterministically from the key.
    pub init_scale: f32,
    /// Initial PMem pool capacity in bytes.
    pub pmem_capacity: usize,
    /// Deterministic seed folded into weight initialization.
    pub seed: u64,
    /// Cache replacement policy (the paper uses LRU; FIFO/CLOCK are
    /// ablation options).
    pub replacement: PolicyKind,
    /// Cache admission policy (the paper admits always; the doorkeeper
    /// filters one-hit wonders).
    pub admission: AdmissionKind,
    /// Pull/push execution lanes for the shard-plan hot path (the
    /// paper's "multiple threads pre-allocated" on the PS):
    ///
    /// - `0` — legacy per-key execution: one lock acquisition per key,
    ///   no duplicate coalescing. Kept as the A/B baseline for the
    ///   `pullpush` bench.
    /// - `1` — shard-plan execution, single lane: keys are bucketed by
    ///   shard, deduplicated per group, and each shard lock is taken
    ///   exactly once per request.
    /// - `n > 1` — shard groups execute on `n` parallel lanes; lane
    ///   costs merge as max-over-lanes for parallelizable cost kinds
    ///   (see `oe_simdevice::CostKind::lane_parallel`).
    pub parallelism: usize,
    /// Pin optimizer applies to the scalar reference loops instead of
    /// the vectorized kernels. Wall-clock A/B baseline for the
    /// `kernels`/`pullpush` benches; virtual-time costs and resulting
    /// weights are identical either way (the kernels are bit-identical),
    /// so flipping this never changes simulated results.
    pub scalar_kernels: bool,
}

impl NodeConfig {
    /// A reasonable default for tests and examples: dim-8 embeddings,
    /// AdaGrad, 1 MiB cache, one shard, everything enabled.
    pub fn small(dim: usize) -> Self {
        Self {
            dim,
            optimizer: OptimizerKind::Adagrad {
                lr: 0.05,
                eps: 1e-8,
            },
            cache_bytes: 1 << 20,
            shards: 1,
            enable_cache: true,
            enable_pipeline: true,
            init_scale: 0.01,
            pmem_capacity: 1 << 24,
            seed: 42,
            replacement: PolicyKind::Lru,
            admission: AdmissionKind::Always,
            parallelism: 1,
            scalar_kernels: false,
        }
    }

    /// Payload length in f32s: weights + optimizer state.
    pub fn payload_f32s(&self) -> usize {
        self.dim + self.optimizer.state_f32s(self.dim)
    }

    /// Payload length in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.payload_f32s() * 4
    }

    /// DRAM bytes one cached entry costs (payload + bookkeeping).
    pub fn bytes_per_cached_entry(&self) -> usize {
        self.payload_bytes() + CACHE_ENTRY_OVERHEAD_BYTES
    }

    /// Total cache capacity in entries implied by `cache_bytes`.
    pub fn cache_entries(&self) -> usize {
        (self.cache_bytes / self.bytes_per_cached_entry())
            .max(self.shards)
            .max(1)
    }

    /// Cache entries per shard.
    pub fn cache_entries_per_shard(&self) -> usize {
        (self.cache_entries() / self.shards.max(1)).max(1)
    }

    /// Validate invariants; panics with a clear message on nonsense.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.cache_bytes > 0, "cache_bytes must be positive");
        assert!(self.init_scale >= 0.0, "init_scale must be non-negative");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounts_for_optimizer_state() {
        let mut c = NodeConfig::small(16);
        c.optimizer = OptimizerKind::Sgd { lr: 0.1 };
        assert_eq!(c.payload_f32s(), 16);
        c.optimizer = OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 };
        assert_eq!(c.payload_f32s(), 32);
        c.optimizer = OptimizerKind::Adam {
            lr: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        };
        assert_eq!(c.payload_f32s(), 16 + 32 + 1);
    }

    #[test]
    fn cache_entry_math() {
        let c = NodeConfig::small(64); // payload 512 B + 64 B overhead
        assert_eq!(c.bytes_per_cached_entry(), 576);
        assert_eq!(c.cache_entries(), (1 << 20) / 576);
    }

    #[test]
    fn cache_entries_never_zero() {
        let mut c = NodeConfig::small(64);
        c.cache_bytes = 1; // absurdly small
        assert_eq!(c.cache_entries(), 1);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn validate_rejects_zero_dim() {
        let mut c = NodeConfig::small(1);
        c.dim = 0;
        c.validate();
    }
}
