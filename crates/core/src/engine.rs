//! The storage-engine interface shared by OpenEmbedding and every
//! baseline, consumed by the synchronous-training simulator.
//!
//! The phase split mirrors the paper's batch anatomy (Fig. 2/5):
//!
//! ```text
//!  pull burst → [maintenance ∥ GPU compute] → push burst → (checkpoint?)
//! ```
//!
//! `pull`/`push` charge their costs to the caller's [`Cost`] sink — they
//! are on the critical path. [`PsEngine::end_pull_phase`] performs the
//! engine's deferred work (cache replacement, flush-backs, checkpoint
//! commits) and returns its cost *separately*, so the trainer can overlap
//! it with the simulated GPU compute for pipelined engines, or add it to
//! the critical path for engines that do the work inline (in which case
//! the report is empty because the cost was already charged during pull).

use crate::stats::StatsSnapshot;
use crate::{BatchId, Key};
use oe_simdevice::Cost;

/// Outcome of the deferred (pipelined) phase of a batch.
#[derive(Debug, Default, Clone)]
pub struct MaintenanceReport {
    /// Virtual-time cost of the deferred work (overlappable with compute).
    pub cost: Cost,
    /// Access-queue records processed.
    pub entries_processed: u64,
    /// Checkpoints committed during this maintenance pass.
    pub ckpt_commits: u64,
}

/// A parameter-server storage engine.
pub trait PsEngine: Send + Sync {
    /// Short stable name used in figures ("PMem-OE", "DRAM-PS", …).
    fn name(&self) -> &'static str;

    /// Embedding dimension served.
    fn dim(&self) -> usize;

    /// Serve a pull burst: append `dim` weights per key to `out`.
    /// `batch` is the batch about to train on these weights.
    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost);

    /// All pulls of `batch` are done: run the engine's deferred work.
    /// Pipelined engines do cache replacement + checkpoint work here;
    /// inline engines return an empty report.
    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport;

    /// Apply a gradient burst: `grads` is `keys.len() * dim` values,
    /// pre-aggregated per key.
    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost);

    /// Out-of-band gradient apply for the pipelined training path:
    /// byte-for-byte the same state transition as [`PsEngine::push`]
    /// (the weights must not care *when* a gradient lands), but the
    /// caller is signalling that this burst runs off the training
    /// critical path — during a later batch's GPU compute — so engines
    /// may account it separately (telemetry, service-lane scheduling).
    /// The default simply delegates, which is always correct.
    fn push_async(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        self.push(keys, grads, batch, cost);
    }

    /// Request a checkpoint covering everything up to and including
    /// `batch`. Returns the *inline* cost that pauses training
    /// (near-zero for batch-aware checkpointing; the full dump for
    /// synchronous incremental checkpointing).
    fn request_checkpoint(&self, batch: BatchId) -> Cost;

    /// Batch id of the newest durably committed checkpoint.
    fn committed_checkpoint(&self) -> BatchId;

    /// Counter snapshot.
    fn stats(&self) -> StatsSnapshot;

    /// Current weights of `key` (None if never initialized). For tests,
    /// verification and weight export — not a hot path.
    fn read_weights(&self, key: Key) -> Option<Vec<f32>>;

    /// Number of distinct keys the engine knows.
    fn num_keys(&self) -> usize;

    /// Prometheus-style text exposition of the engine's telemetry
    /// registry. Engines without one (simple baselines) return an
    /// empty string.
    fn metrics_text(&self) -> String {
        String::new()
    }

    // ---- entry migration (live shard rebalancing, `oe-cluster`) ----
    //
    // A migrating key is seed-copied from source to destination with its
    // *complete* state — weights plus optimizer slots plus version — so
    // that subsequent double-written pushes keep the replicas in
    // lockstep and the cutover is bit-exact. None of these touch the
    // engine's logical counters (pulls/pushes/new_entries): migration is
    // placement plumbing, not training traffic. Engines that don't
    // support migration inherit the refusing defaults and simply can't
    // be rebalanced.

    /// Export `key`'s full entry: `(version, payload)` where the payload
    /// carries weights *and* optimizer state (unlike
    /// [`PsEngine::read_weights`], which truncates to `dim`). `None` if
    /// the key has no entry or the engine doesn't support export.
    fn export_entry(&self, key: Key, cost: &mut Cost) -> Option<(BatchId, Vec<f32>)> {
        let _ = (key, cost);
        None
    }

    /// Install a full entry previously exported from another engine,
    /// replacing any existing entry for `key`. Returns false if the
    /// engine doesn't support import.
    fn import_entry(&self, key: Key, version: BatchId, payload: &[f32], cost: &mut Cost) -> bool {
        let _ = (key, version, payload, cost);
        false
    }

    /// Drop `key`'s entry entirely (cutover: the source side forgets a
    /// migrated key, freeing its cache slot and storage). Returns false
    /// if there was no entry or the engine doesn't support discard.
    fn discard_entry(&self, key: Key, cost: &mut Cost) -> bool {
        let _ = (key, cost);
        false
    }
}
