//! Deterministic weight initialization.
//!
//! New embedding entries are initialized on first touch (Algorithm 1
//! lines 6–12). Initialization is a pure function of (seed, key, index)
//! so every engine — OpenEmbedding and all baselines — starts from
//! *identical* weights, which lets integration tests assert bit-equal
//! convergence across engines.

/// SplitMix64: a tiny, high-quality mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in `(-scale, +scale)` for weight `i` of `key`.
#[inline]
pub fn init_weight(seed: u64, key: u64, i: usize, scale: f32) -> f32 {
    let h = splitmix64(seed ^ splitmix64(key ^ ((i as u64) << 32)));
    // Map the top 24 bits to (0,1), then to (-scale, scale).
    let u = ((h >> 40) as f32 + 0.5) / (1u64 << 24) as f32;
    (2.0 * u - 1.0) * scale
}

/// Fill `weights` for a fresh entry; optimizer state (the remainder of
/// the payload) stays zero.
pub fn init_payload(seed: u64, key: u64, scale: f32, dim: usize, payload: &mut [f32]) {
    for (i, w) in payload.iter_mut().take(dim).enumerate() {
        *w = init_weight(seed, key, i, scale);
    }
    for s in payload.iter_mut().skip(dim) {
        *s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = init_weight(1, 100, 0, 0.1);
        assert_eq!(a, init_weight(1, 100, 0, 0.1));
        assert_ne!(a, init_weight(1, 101, 0, 0.1));
        assert_ne!(a, init_weight(2, 100, 0, 0.1));
        assert_ne!(a, init_weight(1, 100, 1, 0.1));
    }

    #[test]
    fn within_scale_and_roughly_centered() {
        let scale = 0.05f32;
        let mut sum = 0.0f64;
        let n = 10_000;
        for k in 0..n {
            let w = init_weight(7, k, 3, scale);
            assert!(w.abs() <= scale, "w={w}");
            sum += w as f64;
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.002, "mean={mean}");
    }

    #[test]
    fn payload_init_zeroes_state() {
        let mut p = vec![9.0f32; 6];
        init_payload(1, 5, 0.1, 4, &mut p);
        assert!(p[..4].iter().all(|w| w.abs() <= 0.1 && *w != 9.0));
        assert_eq!(&p[4..], &[0.0, 0.0]);
    }
}
