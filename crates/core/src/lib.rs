//! # oe-core — the OpenEmbedding parameter server
//!
//! The paper's primary contribution: a PMem-backed parameter server for
//! synchronous DLRM training with
//!
//! - **pull handling via a DRAM cache** ([`node::PsNode::pull`],
//!   Algorithm 1): lock-light reads from DRAM or PMem, first-touch
//!   initialization, access-queue append;
//! - **pipelined cache maintenance co-designed with lightweight
//!   batch-aware checkpointing** ([`node::PsNode::run_maintenance`],
//!   Algorithm 2): deferred LRU reordering, flush-before-version-bump,
//!   eviction write-back, and checkpoint commit by atomically advancing
//!   the Checkpointed Batch ID in PMem;
//! - **gradient application on the server** with pluggable
//!   [`optimizer`]s (SGD / AdaGrad / Adam), optimizer state co-located
//!   with the weights so checkpoints capture training state exactly;
//! - **recovery** ([`recovery`]): scan PMem, discard post-checkpoint
//!   versions, rebuild the DRAM hash index — no data copy;
//! - a **sharded cluster** ([`cluster::Cluster`]) hashing keys across PS
//!   nodes;
//! - a **shard-plan hot path** ([`plan`]): batch keys are bucketed by
//!   shard, duplicates coalesced, and shard groups executed on parallel
//!   lanes with one lock acquisition per shard per request (the
//!   [`config::NodeConfig::parallelism`] knob).
//!
//! Engines (this one and the baselines in `oe-baselines`) implement the
//! [`engine::PsEngine`] trait consumed by the training simulator.

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod init;
pub mod node;
pub mod optimizer;
pub mod plan;
pub mod recovery;
pub mod scratch;
pub mod stats;
pub mod storage;

pub use checkpoint::{BatchCadence, CheckpointScheduler};
pub use cluster::{hash_node_of, merge_node_parallel, Cluster};
pub use config::{NodeConfig, CACHE_ENTRY_OVERHEAD_BYTES};
pub use engine::{MaintenanceReport, PsEngine};
pub use node::PsNode;
pub use optimizer::{Optimizer, OptimizerKind, ShapeError};
pub use plan::{ShardBuckets, ShardGroup, ShardPlan};
pub use scratch::{PooledScratch, ScratchPool, Shape};
pub use stats::{EngineStats, StatsSnapshot};
pub use storage::{DramStore, LocalPmem, StorageBackend};

/// Embedding key (re-exported from `oe-cache`).
pub type Key = oe_cache::Key;
/// Batch identifier (re-exported from `oe-cache`).
pub type BatchId = oe_cache::BatchId;
