//! The OpenEmbedding PS node: Algorithm 1 (pull weights) and Algorithm 2
//! (cache replacement & checkpoint), plus gradient application.
//!
//! ## Checkpoint-correctness invariant
//!
//! At every instant, for every key and every protection boundary `b`
//! (the committed Checkpointed Batch ID and every pending checkpoint
//! request), PMem retains the key's newest state with version ≤ `b`,
//! *provided the key existed at batch `b`*. The moving parts:
//!
//! - **flush-before-bump** (Alg. 2 lines 13–16): when maintenance
//!   re-versions a cached entry from `v` to the current batch `n`, it
//!   first flushes the `v`-state if `v ≤ max(pending checkpoints)` and
//!   the PMem copy is stale;
//! - **out-of-place flushes with version-chain pruning** keep exactly the
//!   slots the boundaries require (see [`oe_cache::VersionChain`]);
//! - **commit-on-eviction** (Alg. 2 lines 24–27): when every shard's LRU
//!   victim is newer than the head checkpoint, all ≤-cp states have been
//!   flushed, so the Checkpointed Batch ID is atomically advanced;
//! - a **drain pass** at the end of each maintenance run flushes the
//!   stragglers (cached entries still at version ≤ cp) so checkpoints
//!   commit within one batch even when the cache is not evicting.
//!
//! Checkpoint requests must carry the id of the **latest completed
//! batch** (synchronous checkpointing, paper §II-A): every entry version
//! is then ≤ cp at request time, which closes the flush-before-bump race.

use crate::config::{
    NodeConfig, ACCESS_QUEUE_NS, DEDUP_KEY_NS, FANOUT_KEY_NS, HASH_PROBE_NS, INIT_ENTRY_NS,
    LRU_OP_NS, OPT_FLOP_NS_PER_F32, PLAN_KEY_NS, SHARD_LOCK_NS,
};
use crate::engine::{MaintenanceReport, PsEngine};
use crate::init::init_payload;
use crate::optimizer::Optimizer;
use crate::plan::{ShardBuckets, ShardGroup, ShardPlan};
use crate::scratch::{PooledScratch, Scratch, ScratchPool, Shape};
use crate::stats::{EngineStats, StatsSnapshot};
use crate::storage::{LocalPmem, StorageBackend};
use crate::{BatchId, Key};
use oe_cache::chain::CHAIN_CAP;
use oe_cache::policy::EvictionPolicy;
use oe_cache::{AccessQueue, Admission, DramArena, HashIndex, TaggedLoc, VersionChain};
use oe_pmem::{PmemPool, PoolConfig};
use oe_simdevice::{Cost, CostKind, DeviceTiming};
use oe_telemetry::{Gauge, Phase, PhaseTimes, Registry};
use parking_lot::{Mutex, RwLock, RwLockUpgradableReadGuard, RwLockWriteGuard};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum simultaneously pending checkpoint requests; a newer request
/// replaces the newest pending one when the queue is full (a later
/// checkpoint strictly supersedes an uncommitted earlier one).
const MAX_PENDING_CKPTS: usize = 3;

/// One cache shard: hash index + DRAM arena + LRU, guarded together by
/// the shard lock (the paper's reader-writer lock, Alg. 1 line 3 /
/// Alg. 2 line 9).
struct Shard {
    index: HashIndex,
    arena: DramArena,
    /// Replacement policy (LRU by default; Algorithm 2's "LRU List").
    policy: Box<dyn EvictionPolicy>,
    /// Admission filter consulted before loading a missed key.
    admission: Admission,
}

/// How one *unique* key of a planned pull was served. Recorded by the
/// execute stage and settled into stats by the merge stage, weighted by
/// the key's occurrence count so the accounting identity
/// `hits + misses + new_entries == pulls` holds exactly as it does on
/// the per-key path.
#[derive(Debug, Clone, Copy)]
enum PullOutcome {
    /// Served from the DRAM cache.
    Hit,
    /// Served from PMem.
    Miss,
    /// First touch, admitted into the cache.
    NewAdmitted,
    /// First touch, declined by the doorkeeper (initialized in PMem).
    NewDeclined,
}

impl PullOutcome {
    /// Byte tag for the pooled lane scratch (outcomes ride in
    /// [`Scratch::tags`] so a lane performs zero allocations of its own).
    fn code(self) -> u8 {
        match self {
            PullOutcome::Hit => 0,
            PullOutcome::Miss => 1,
            PullOutcome::NewAdmitted => 2,
            PullOutcome::NewDeclined => 3,
        }
    }

    fn from_code(code: u8) -> Self {
        match code {
            0 => PullOutcome::Hit,
            1 => PullOutcome::Miss,
            2 => PullOutcome::NewAdmitted,
            _ => PullOutcome::NewDeclined,
        }
    }
}

/// One execution lane's output for a planned pull, carried entirely in
/// a pooled scratch arena: deduped payloads (uniques × dim, in the
/// lane's group order) in `scratch.rows`, one outcome tag per unique in
/// `scratch.tags`, plus the lane's virtual-time cost (folded
/// max-over-lanes for parallelizable kinds by [`Cost::merge_parallel`]).
/// Dropping the lane returns its buffers to the node's pool.
struct PullLane<'p> {
    scratch: PooledScratch<'p>,
    cost: Cost,
}

/// The OpenEmbedding parameter-server node ("PMem-OE").
pub struct PsNode {
    cfg: NodeConfig,
    opt: Optimizer,
    /// Where durable slots live (local PMem by default; see
    /// [`crate::storage`] for the DRAM and remote-pool arms). All slot
    /// traffic is charged through this seam.
    store: Arc<dyn StorageBackend>,
    shards: Vec<RwLock<Shard>>,
    access_queue: AccessQueue,
    ckpt_pending: Mutex<VecDeque<BatchId>>,
    committed: AtomicU64,
    stats: EngineStats,
    dram: DeviceTiming,
    /// Telemetry registry (S25): counters shared with `stats`, phase
    /// latency histograms, and the committed-CBI gauge all live here.
    registry: Arc<Registry>,
    phases: PhaseTimes,
    committed_gauge: Gauge,
    /// Per-request/per-lane scratch recycling: every hot-path buffer
    /// (payload read scratch, gradient accumulators, lane weight rows,
    /// batched-kernel rows) is drawn from here instead of allocated.
    scratch: ScratchPool,
}

impl PsNode {
    /// Create a fresh node on new PMem media.
    pub fn new(cfg: NodeConfig) -> Self {
        cfg.validate();
        let mut cost = Cost::new();
        let pool = PmemPool::create(
            PoolConfig {
                payload_bytes: cfg.payload_bytes(),
                capacity: cfg.pmem_capacity,
            },
            &mut cost,
        );
        Self::with_pool(cfg, pool)
    }

    /// Create a fresh node on caller-provided (empty) PMem media. Lets
    /// a crash-enumeration harness arm a
    /// [`oe_simdevice::Media`] crash plan *before* pool creation, so
    /// even the pool-format persistence events (root write + fence) are
    /// enumerable crash points.
    pub fn on_media(cfg: NodeConfig, media: Arc<oe_simdevice::Media>) -> Self {
        cfg.validate();
        let mut cost = Cost::new();
        let pool = PmemPool::create_on(media, cfg.payload_bytes(), &mut cost);
        Self::with_pool(cfg, pool)
    }

    /// Create a node on a caller-provided storage backend (the seam the
    /// DRAM baseline and the disaggregated `oe-pool` arm plug into).
    /// The backend's pool payload size must match the config.
    pub fn with_storage(cfg: NodeConfig, store: Arc<dyn StorageBackend>) -> Self {
        cfg.validate();
        assert_eq!(
            store.pool().payload_bytes(),
            cfg.payload_bytes(),
            "storage backend payload size must match node config"
        );
        Self::with_backend(cfg, store)
    }

    fn with_pool(cfg: NodeConfig, pool: PmemPool) -> Self {
        Self::with_backend(cfg, Arc::new(LocalPmem::new(pool)))
    }

    fn with_backend(cfg: NodeConfig, store: Arc<dyn StorageBackend>) -> Self {
        let per_shard = cfg.cache_entries_per_shard();
        let shards = (0..cfg.shards)
            .map(|_| {
                RwLock::new(Shard {
                    index: HashIndex::with_capacity(per_shard * 2),
                    arena: DramArena::new(per_shard, cfg.payload_f32s()),
                    policy: cfg.replacement.build(per_shard),
                    admission: cfg.admission.build(per_shard * 16),
                })
            })
            .collect();
        let opt = if cfg.scalar_kernels {
            cfg.optimizer.build_scalar()
        } else {
            cfg.optimizer.build()
        };
        let registry = Arc::new(Registry::new());
        let stats = EngineStats::registered(&registry);
        let phases = PhaseTimes::new(
            &registry,
            "oe",
            &[
                Phase::Pull,
                Phase::Maintain,
                Phase::Flush,
                Phase::CkptCommit,
                Phase::Push,
                Phase::Plan,
                Phase::Dedup,
                Phase::Execute,
                Phase::Merge,
            ],
        );
        let committed_gauge = registry.gauge("oe_committed_batch");
        Self {
            cfg,
            opt,
            store,
            shards,
            access_queue: AccessQueue::new(),
            ckpt_pending: Mutex::new(VecDeque::new()),
            committed: AtomicU64::new(0),
            stats,
            dram: DeviceTiming::dram(),
            registry,
            phases,
            committed_gauge,
            scratch: ScratchPool::new(),
        }
    }

    /// Rebuild a node from a recovered pool + scan report: every live
    /// entry is indexed at its PMem slot; the cache starts cold; the
    /// committed checkpoint id is restored from the pool root.
    pub(crate) fn from_recovery(
        cfg: NodeConfig,
        pool: PmemPool,
        scan: &oe_pmem::scan::ScanReport,
    ) -> Self {
        Self::from_recovered_storage(cfg, Arc::new(LocalPmem::new(pool)), scan)
    }

    /// Rebuild a node from a recovered storage backend + scan report —
    /// the public entry the disaggregated-pool arm uses after a
    /// near-pool recovery scan. Same semantics as local recovery: live
    /// entries indexed at their slots, cold cache, committed CBI
    /// restored from the pool root.
    pub fn from_recovered_storage(
        cfg: NodeConfig,
        store: Arc<dyn StorageBackend>,
        scan: &oe_pmem::scan::ScanReport,
    ) -> Self {
        let node = Self::with_backend(cfg, store);
        for r in &scan.live {
            let sid = node.shard_of(r.key);
            let mut g = node.shards[sid].write();
            g.index.insert_recovered(r.key, r.id, r.version);
        }
        node.committed.store(scan.checkpoint_id, Ordering::Release);
        node.committed_gauge.set(scan.checkpoint_id);
        node
    }

    /// The node's telemetry registry (counters, gauges, phase latency
    /// histograms). Shared so servers can merge it into exposition.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// The backing slot pool (crash it in tests via `pool().media()`).
    pub fn pool(&self) -> &PmemPool {
        self.store.pool()
    }

    /// The storage backend behind this node.
    pub fn storage(&self) -> &Arc<dyn StorageBackend> {
        &self.store
    }

    #[inline]
    fn shard_of(&self, key: Key) -> usize {
        (crate::init::splitmix64(key) % self.shards.len() as u64) as usize
    }

    /// Protection boundaries: committed CBI + all pending checkpoint ids.
    fn boundaries(&self) -> (Vec<BatchId>, Option<BatchId>, BatchId) {
        let committed = self.committed.load(Ordering::Acquire);
        let pending = self.ckpt_pending.lock();
        let head = pending.front().copied();
        let protect_max = pending.iter().copied().max().unwrap_or(committed);
        let mut bounds = Vec::with_capacity(1 + pending.len());
        bounds.push(committed);
        bounds.extend(pending.iter().copied());
        (bounds, head, protect_max)
    }

    /// Flush `payload` (state at `version`) of `key` to PMem out of
    /// place, then prune the chain against `boundaries`.
    fn flush_payload(
        &self,
        key: Key,
        version: BatchId,
        payload: &[f32],
        chain: &mut VersionChain,
        boundaries: &[BatchId],
        cost: &mut Cost,
    ) {
        let t0 = cost.total_ns();
        if chain.len() == CHAIN_CAP {
            // Emergency prune so push never overflows.
            let mut freed = Vec::new();
            chain.prune(boundaries, &mut freed);
            for s in freed {
                self.store.free(s, cost);
                EngineStats::add(&self.stats.slots_recycled, 1);
            }
            assert!(
                chain.len() < CHAIN_CAP,
                "version chain irreducible: too many pending checkpoints"
            );
        }
        let slot = self.store.alloc(cost);
        self.store.write_slot(slot, key, version, payload, cost);
        chain.push(slot, version);
        let mut freed = Vec::new();
        chain.prune(boundaries, &mut freed);
        for s in freed {
            self.store.free(s, cost);
            EngineStats::add(&self.stats.slots_recycled, 1);
        }
        EngineStats::add(&self.stats.flushes, 1);
        self.phases
            .record_ns(Phase::Flush, cost.total_ns().saturating_sub(t0));
    }

    /// Evict the shard's LRU victim to PMem, freeing one arena slot.
    /// Returns the victim's version, or None if nothing is cached.
    fn evict_one(
        &self,
        shard: &mut Shard,
        boundaries: &[BatchId],
        cost: &mut Cost,
    ) -> Option<BatchId> {
        let victim = shard.policy.evict()?;
        let vkey = shard.arena.key(victim);
        let vver = shard.arena.version(victim);
        let Shard { index, arena, .. } = shard;
        let e = index.get_mut(vkey).expect("cached key must be indexed");
        if arena.is_dirty(victim) {
            self.flush_payload(
                vkey,
                vver,
                arena.payload(victim),
                &mut e.chain,
                boundaries,
                cost,
            );
        }
        let (newest_slot, _) = e.chain.newest().expect("evicted entry has a PMem copy");
        e.loc = TaggedLoc::pmem(newest_slot);
        e.version = vver;
        arena.remove(victim);
        EngineStats::add(&self.stats.evictions, 1);
        Some(vver)
    }

    /// Algorithm 2 body for one accessed key. Returns true if an
    /// eviction occurred (commit check may be due).
    fn maintain_key(
        &self,
        shard: &mut Shard,
        key: Key,
        batch: BatchId,
        boundaries: &[BatchId],
        protect_max: BatchId,
        cost: &mut Cost,
    ) -> bool {
        cost.charge(CostKind::Cpu, HASH_PROBE_NS + LRU_OP_NS);
        let mut evicted = false;
        let Some(e) = shard.index.get_mut(key) else {
            return false; // key vanished (not possible in normal flow)
        };
        if let Some(slot) = e.loc.as_dram() {
            // Cached entry (Alg. 2 lines 12-17): flush the old-version
            // state if a pending checkpoint may need it, then re-version
            // and reorder.
            let v = shard.arena.version(slot);
            if v < batch {
                if v <= protect_max && shard.arena.is_dirty(slot) {
                    let Shard { arena, .. } = shard;
                    self.flush_payload(key, v, arena.payload(slot), &mut e.chain, boundaries, cost);
                    // The v-state is now persisted; the payload is clean
                    // until the next gradient lands.
                    arena.set_dirty(slot, false);
                }
                shard.arena.set_version(slot, batch);
                e.version = batch;
            }
            shard.policy.on_access(slot);
        } else {
            // PMem-resident entry (Alg. 2 lines 18-31): consult the
            // admission filter, then make room and load.
            let pm_slot = e.loc.as_pmem().expect("tagged loc");
            let version = e.version;
            if !shard.admission.admit(key) {
                // One-hit wonder (so far): leave it in PMem.
                return false;
            }
            if shard.arena.is_full() {
                self.evict_one(shard, boundaries, cost);
                evicted = true;
            }
            let dram_slot = shard
                .arena
                .insert(key, batch)
                .expect("eviction freed a slot");
            // Copy payload PMem → DRAM.
            {
                let Shard { arena, .. } = shard;
                let dst = arena.payload_mut(dram_slot);
                let ok = self.store.read_slot(pm_slot, dst, cost).is_some();
                assert!(ok, "indexed PMem slot must be valid");
                cost.charge(
                    CostKind::DramTransfer,
                    self.dram.write_ns((dst.len() * 4) as u64),
                );
            }
            EngineStats::add(&self.stats.loads, 1);
            // The loaded state is already in PMem: clean until pushed.
            shard.arena.set_dirty(dram_slot, false);
            let e = shard.index.get_mut(key).expect("still indexed");
            e.loc = TaggedLoc::dram(dram_slot);
            // Note: the chain's newest *version label* may lag `version`
            // when the entry was evicted clean (bumped but never pushed);
            // the payload contents are identical in that case.
            let _ = version;
            e.version = batch;
            shard.policy.on_insert(dram_slot);
        }
        evicted
    }

    /// Commit every pending checkpoint whose condition holds: all shards'
    /// LRU victims are newer than it (Alg. 2 lines 24-27, generalized to
    /// shards). Call without holding shard locks.
    fn try_commit(&self, cost: &mut Cost) -> u64 {
        let mut commits = 0;
        loop {
            let Some(cp) = self.ckpt_pending.lock().front().copied() else {
                break;
            };
            let all_newer = self.shards.iter().all(|s| {
                let g = s.read();
                // Only LRU guarantees the victim is oldest-versioned;
                // other policies rely on the drain pass instead.
                if !g.policy.victim_is_oldest_version() {
                    return false;
                }
                match g.policy.peek_victim() {
                    Some(t) => g.arena.version(t) > cp,
                    None => g.arena.is_empty(),
                }
            });
            if !all_newer {
                break;
            }
            self.commit_checkpoint(cp, cost);
            commits += 1;
        }
        commits
    }

    fn commit_checkpoint(&self, cp: BatchId, cost: &mut Cost) {
        let t0 = cost.total_ns();
        self.store.set_checkpoint_id(cp, cost);
        self.committed.store(cp, Ordering::Release);
        self.committed_gauge.set(cp);
        let mut q = self.ckpt_pending.lock();
        debug_assert_eq!(q.front().copied(), Some(cp));
        q.pop_front();
        EngineStats::add(&self.stats.ckpt_commits, 1);
        self.phases
            .record_ns(Phase::CkptCommit, cost.total_ns().saturating_sub(t0));
    }

    /// Drain pass: flush every cached dirty entry with version ≤ cp, then
    /// commit cp. Makes checkpoints commit within one maintenance cycle
    /// even when the cache is not evicting.
    fn drain_commit(&self, cost: &mut Cost) -> u64 {
        let mut commits = 0;
        loop {
            let Some(cp) = self.ckpt_pending.lock().front().copied() else {
                break;
            };
            let (boundaries, _, _) = self.boundaries();
            for s in &self.shards {
                let mut g = s.write();
                let slots: Vec<u32> = g
                    .arena
                    .iter_live()
                    .filter(|&slot| g.arena.version(slot) <= cp)
                    .collect();
                for slot in slots {
                    let key = g.arena.key(slot);
                    let v = g.arena.version(slot);
                    let Shard { index, arena, .. } = &mut *g;
                    let e = index.get_mut(key).expect("cached key indexed");
                    if arena.is_dirty(slot) {
                        self.flush_payload(
                            key,
                            v,
                            arena.payload(slot),
                            &mut e.chain,
                            &boundaries,
                            cost,
                        );
                        arena.set_dirty(slot, false);
                    }
                    cost.charge(CostKind::Cpu, LRU_OP_NS);
                }
            }
            self.commit_checkpoint(cp, cost);
            commits += 1;
        }
        commits
    }

    /// Pull for cache-disabled mode: entries live in PMem only.
    fn pull_uncached(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        let mut arena = self.scratch.acquire(Shape::lane(self.cfg.payload_f32s()));
        arena.payload.resize(self.cfg.payload_f32s(), 0.0);
        let payload = &mut arena.payload;
        for &key in keys {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS);
            let sid = self.shard_of(key);
            let mut g = self.shards[sid].write();
            match g.index.get(key) {
                Some(e) => {
                    let slot = e.loc.as_pmem().expect("uncached mode: PMem only");
                    self.store.read_slot(slot, payload, cost).expect("valid");
                    out.extend_from_slice(&payload[..dim]);
                    EngineStats::add(&self.stats.misses, 1);
                }
                None => {
                    init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, payload);
                    let (boundaries, _, _) = self.boundaries();
                    let slot = self.store.alloc(cost);
                    self.store.write_slot(slot, key, batch, payload, cost);
                    let mut chain = VersionChain::new();
                    chain.push(slot, batch);
                    let _ = boundaries;
                    g.index.insert_recovered(key, slot, batch);
                    g.index.get_mut(key).unwrap().chain = chain;
                    out.extend_from_slice(&payload[..dim]);
                    EngineStats::add(&self.stats.new_entries, 1);
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                }
            }
            EngineStats::add(&self.stats.pulls, 1);
        }
    }

    /// Push for cache-disabled mode: read-modify-write out of place.
    fn push_uncached(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.cfg.dim;
        let mut arena = self.scratch.acquire(Shape::lane(self.cfg.payload_f32s()));
        arena.payload.resize(self.cfg.payload_f32s(), 0.0);
        let payload = &mut arena.payload;
        let (boundaries, _, _) = self.boundaries();
        for (i, &key) in keys.iter().enumerate() {
            let sid = self.shard_of(key);
            let mut g = self.shards[sid].write();
            let Shard { index, .. } = &mut *g;
            let e = index.get_mut(key).expect("pushed key must exist");
            let slot = e.loc.as_pmem().expect("uncached mode: PMem only");
            self.store.read_slot(slot, payload, cost).expect("valid");
            self.opt.apply(dim, payload, &grads[i * dim..(i + 1) * dim]);
            cost.charge(
                CostKind::Cpu,
                dim as u64 * OPT_FLOP_NS_PER_F32 + HASH_PROBE_NS,
            );
            self.flush_payload(key, batch, payload, &mut e.chain, &boundaries, cost);
            let (newest, _) = e.chain.newest().unwrap();
            e.loc = TaggedLoc::pmem(newest);
            e.version = batch;
            EngineStats::add(&self.stats.pushes, 1);
        }
    }

    /// Run Algorithm 2 over the access queue. Public so tests can drive
    /// maintenance directly; engines call it via `end_pull_phase`.
    pub fn run_maintenance(&self, batch: BatchId, cost: &mut Cost) -> (u64, u64) {
        let t0 = cost.total_ns();
        let mut processed = 0u64;
        let mut commits = 0u64;
        if self.cfg.enable_cache {
            let mut chunk = Vec::with_capacity(1024);
            loop {
                chunk.clear();
                if self.access_queue.drain_into(&mut chunk, 1024) == 0 {
                    break;
                }
                let (boundaries, _, protect_max) = self.boundaries();
                let mut any_evicted = false;
                for &key in chunk.iter() {
                    let sid = self.shard_of(key);
                    let mut g = self.shards[sid].write();
                    any_evicted |=
                        self.maintain_key(&mut g, key, batch, &boundaries, protect_max, cost);
                    processed += 1;
                }
                if any_evicted {
                    commits += self.try_commit(cost);
                }
            }
        }
        // Checkpoint completion: evictions may already have committed;
        // the drain pass finishes whatever is left.
        commits += self.try_commit(cost);
        commits += self.drain_commit(cost);
        self.phases
            .record_ns(Phase::Maintain, cost.total_ns().saturating_sub(t0));
        (processed, commits)
    }

    /// Inline maintenance for the non-pipelined ablation: the same work,
    /// charged to the pull path as serialized time (global-lock model).
    fn maintain_inline(&self, batch: BatchId, cost: &mut Cost) {
        let mut mcost = Cost::new();
        let (processed, _) = {
            let (p, c) = self.run_maintenance(batch, &mut mcost);
            (p, c)
        };
        let _ = processed;
        // Device work stays in its buckets; CPU work becomes serialized.
        for kind in [
            CostKind::PmemRead,
            CostKind::PmemWrite,
            CostKind::DramTransfer,
        ] {
            cost.charge_ns_only(kind, mcost.ns(kind));
        }
        cost.charge_ns_only(
            CostKind::Serialized,
            mcost.ns(CostKind::Cpu) + mcost.ns(CostKind::Serialized),
        );
    }

    /// Algorithm 1 (pull weights) over the DRAM cache, per-key execution:
    /// one lock acquisition and one payload access per occurrence. Kept
    /// as the `parallelism = 0` A/B baseline for the shard-plan path.
    fn pull_cached_legacy(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) {
        let dim = self.cfg.dim;
        let mut arena = self.scratch.acquire(Shape::lane(self.cfg.payload_f32s()));
        arena.payload.resize(self.cfg.payload_f32s(), 0.0);
        let scratch = &mut arena.payload;
        for &key in keys {
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + ACCESS_QUEUE_NS + SHARD_LOCK_NS,
            );
            let sid = self.shard_of(key);
            let guard = self.shards[sid].upgradable_read();
            let known = guard.index.get(key).map(|e| (e.loc, e.version));
            match known {
                Some((loc, _)) => {
                    if let Some(slot) = loc.as_dram() {
                        out.extend_from_slice(&guard.arena.payload(slot)[..dim]);
                        cost.charge(CostKind::DramTransfer, self.dram.read_ns((dim * 4) as u64));
                        EngineStats::add(&self.stats.hits, 1);
                    } else {
                        let slot = loc.as_pmem().unwrap();
                        self.store
                            .read_slot(slot, scratch, cost)
                            .expect("indexed slot valid");
                        out.extend_from_slice(&scratch[..dim]);
                        EngineStats::add(&self.stats.misses, 1);
                    }
                }
                None => {
                    // Algorithm 1 lines 6-12: first touch, write lock.
                    let mut g = parking_lot::RwLockUpgradableReadGuard::upgrade(guard);
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                    if g.admission.admit(key) {
                        if g.arena.is_full() {
                            let (boundaries, _, _) = self.boundaries();
                            self.evict_one(&mut g, &boundaries, cost);
                        }
                        let slot = g.arena.insert(key, batch).expect("slot available");
                        init_payload(
                            self.cfg.seed,
                            key,
                            self.cfg.init_scale,
                            dim,
                            g.arena.payload_mut(slot),
                        );
                        g.index.insert_new_dram(key, slot, batch);
                        g.policy.on_insert(slot);
                        out.extend_from_slice(&g.arena.payload(slot)[..dim]);
                    } else {
                        // Doorkeeper declined: initialize straight to
                        // PMem; the cache stays clean of singletons.
                        // (`init_payload` fills the whole payload —
                        // weights and zeroed state — so reusing the
                        // read scratch here is safe.)
                        init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, scratch);
                        let slot = self.store.alloc(cost);
                        self.store.write_slot(slot, key, batch, scratch, cost);
                        g.index.insert_recovered(key, slot, batch);
                        out.extend_from_slice(&scratch[..dim]);
                    }
                    EngineStats::add(&self.stats.new_entries, 1);
                    self.access_queue.push(key);
                    EngineStats::add(&self.stats.pulls, 1);
                    continue;
                }
            }
            drop(guard);
            self.access_queue.push(key);
            EngineStats::add(&self.stats.pulls, 1);
        }
        if !self.cfg.enable_pipeline {
            self.maintain_inline(batch, cost);
        }
    }

    /// Gradient application over the DRAM cache, per-key execution
    /// (`parallelism = 0` A/B baseline). Boundaries are stable within a
    /// request and the scratch payload is key-independent, so both are
    /// hoisted out of the per-key loop.
    fn push_cached_legacy(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.cfg.dim;
        let (boundaries, _, protect_max) = self.boundaries();
        let mut arena = self.scratch.acquire(Shape::lane(self.cfg.payload_f32s()));
        arena.payload.resize(self.cfg.payload_f32s(), 0.0);
        let scratch = &mut arena.payload;
        for (i, &key) in keys.iter().enumerate() {
            cost.charge(
                CostKind::Cpu,
                HASH_PROBE_NS + SHARD_LOCK_NS + dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
            let sid = self.shard_of(key);
            let mut g = self.shards[sid].write();
            let grad = &grads[i * dim..(i + 1) * dim];
            // The entry may not be cached — evicted between maintenance
            // and push when the cache is smaller than the batch working
            // set, or never admitted by the doorkeeper. Apply the update
            // in PMem directly (out-of-place RMW) in that case.
            let loc = g.index.get(key).expect("pushed key must exist").loc;
            let slot = match loc.as_dram() {
                Some(s) => s,
                None => {
                    let pm_slot = loc.as_pmem().expect("tagged loc");
                    self.store
                        .read_slot(pm_slot, scratch, cost)
                        .expect("indexed slot valid");
                    self.opt.apply(dim, scratch, grad);
                    let Shard { index, .. } = &mut *g;
                    let e = index.get_mut(key).expect("indexed");
                    self.flush_payload(key, batch, scratch, &mut e.chain, &boundaries, cost);
                    let (newest, _) = e.chain.newest().expect("just flushed");
                    e.loc = TaggedLoc::pmem(newest);
                    e.version = batch;
                    EngineStats::add(&self.stats.pushes, 1);
                    continue;
                }
            };
            // Flush-before-update guard: if this entry's pre-update state
            // may be needed by a pending checkpoint and is not yet
            // persisted, flush first (normally maintenance already did).
            let v = g.arena.version(slot);
            let Shard { index, arena, .. } = &mut *g;
            let e = index.get_mut(key).expect("indexed");
            if v <= protect_max && v < batch && arena.is_dirty(slot) {
                self.flush_payload(key, v, arena.payload(slot), &mut e.chain, &boundaries, cost);
            }
            arena.set_version(slot, batch);
            e.version = batch;
            self.opt.apply(dim, arena.payload_mut(slot), grad);
            arena.set_dirty(slot, true);
            EngineStats::add(&self.stats.pushes, 1);
        }
    }

    /// Build the request's [`ShardPlan`], charging the plan and dedup
    /// stages (pure CPU bookkeeping, proportional to occurrences).
    fn build_plan(&self, keys: &[Key], cost: &mut Cost) -> ShardPlan {
        let plan_ns = PLAN_KEY_NS * keys.len() as u64;
        cost.charge(CostKind::Cpu, plan_ns);
        let buckets = ShardBuckets::bucket(keys, self.shards.len(), |k| self.shard_of(k));
        self.phases.record_ns(Phase::Plan, plan_ns);
        let dedup_ns = DEDUP_KEY_NS * keys.len() as u64;
        cost.charge(CostKind::Cpu, dedup_ns);
        let plan = buckets.coalesce();
        self.phases.record_ns(Phase::Dedup, dedup_ns);
        plan
    }

    /// Execute one shard group of a planned pull: the shard lock is
    /// taken exactly once (upgraded transiently for first-touch
    /// inserts), every unique key's payload is read exactly once.
    /// Deduped weight rows land in `s.rows`, one outcome code per
    /// unique in `s.tags`; `s.payload` is the PMem read scratch.
    fn pull_group(
        &self,
        group: &ShardGroup,
        batch: BatchId,
        boundaries: &[BatchId],
        s: &mut Scratch,
        cost: &mut Cost,
    ) {
        let dim = self.cfg.dim;
        cost.charge(CostKind::Cpu, SHARD_LOCK_NS);
        let mut guard = self.shards[group.shard].upgradable_read();
        for &key in &group.uniques {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS + ACCESS_QUEUE_NS);
            let known = guard.index.get(key).map(|e| e.loc);
            match known {
                Some(loc) => {
                    if let Some(slot) = loc.as_dram() {
                        s.rows.extend_from_slice(&guard.arena.payload(slot)[..dim]);
                        cost.charge(CostKind::DramTransfer, self.dram.read_ns((dim * 4) as u64));
                        s.tags.push(PullOutcome::Hit.code());
                    } else {
                        let slot = loc.as_pmem().unwrap();
                        self.store
                            .read_slot(slot, &mut s.payload, cost)
                            .expect("indexed slot valid");
                        s.rows.extend_from_slice(&s.payload[..dim]);
                        s.tags.push(PullOutcome::Miss.code());
                    }
                }
                None => {
                    // First touch (Alg. 1 lines 6-12): upgrade to a write
                    // lock for the insert, then downgrade and continue
                    // with the rest of the group.
                    let mut g = RwLockUpgradableReadGuard::upgrade(guard);
                    cost.charge(CostKind::Serialized, INIT_ENTRY_NS);
                    if g.admission.admit(key) {
                        if g.arena.is_full() {
                            self.evict_one(&mut g, boundaries, cost);
                        }
                        let slot = g.arena.insert(key, batch).expect("slot available");
                        init_payload(
                            self.cfg.seed,
                            key,
                            self.cfg.init_scale,
                            dim,
                            g.arena.payload_mut(slot),
                        );
                        g.index.insert_new_dram(key, slot, batch);
                        g.policy.on_insert(slot);
                        s.rows.extend_from_slice(&g.arena.payload(slot)[..dim]);
                        s.tags.push(PullOutcome::NewAdmitted.code());
                    } else {
                        // Doorkeeper declined: initialize straight to
                        // PMem; the cache stays clean of singletons.
                        init_payload(self.cfg.seed, key, self.cfg.init_scale, dim, &mut s.payload);
                        let slot = self.store.alloc(cost);
                        self.store.write_slot(slot, key, batch, &s.payload, cost);
                        g.index.insert_recovered(key, slot, batch);
                        s.rows.extend_from_slice(&s.payload[..dim]);
                        s.tags.push(PullOutcome::NewDeclined.code());
                    }
                    guard = RwLockWriteGuard::downgrade_to_upgradable(g);
                }
            }
        }
    }

    /// Shard-plan pull: bucket → dedup → parallel lane execute → merge.
    /// Weights are bit-identical to the per-key path (same reads, same
    /// init); stats are occurrence-weighted so snapshots match too.
    fn pull_planned(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let dim = self.cfg.dim;
        let plan = self.build_plan(keys, cost);
        let (boundaries, _, _) = self.boundaries();
        let lanes = plan.partition(self.cfg.parallelism);

        let payload_f32s = self.cfg.payload_f32s();
        let run_lane = |range: &Range<usize>| {
            let mut scratch = self.scratch.acquire(Shape::lane(payload_f32s));
            let mut cost = Cost::new();
            {
                let s = &mut *scratch;
                s.payload.resize(payload_f32s, 0.0);
                for group in &plan.groups[range.clone()] {
                    self.pull_group(group, batch, &boundaries, s, &mut cost);
                }
            }
            PullLane { scratch, cost }
        };
        let lane_results: Vec<PullLane> = if lanes.len() <= 1 {
            lanes.iter().map(run_lane).collect()
        } else {
            std::thread::scope(|s| {
                let run_lane = &run_lane;
                let handles: Vec<_> = lanes.iter().map(|r| s.spawn(move || run_lane(r))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pull lane panicked"))
                    .collect()
            })
        };

        // Lane costs compose max-over-lanes for parallelizable kinds,
        // sum for serialized/bandwidth-contended ones.
        let mut par = Cost::new();
        for lane in &lane_results {
            par.merge_parallel(&lane.cost);
        }
        self.phases.record_ns(Phase::Execute, par.total_ns());
        cost.merge(&par);

        // Merge: fan each deduped payload out to its original request
        // positions, append the access queue once per unique (in stable
        // group order, so maintenance is identical at any lane count),
        // and settle occurrence-weighted stats.
        let merge_ns = FANOUT_KEY_NS * plan.total_keys as u64;
        cost.charge(CostKind::Cpu, merge_ns);
        let base = out.len();
        out.resize(base + keys.len() * dim, 0.0);
        for (lane, range) in lane_results.iter().zip(&lanes) {
            let mut ul = 0; // unique cursor within the lane
            for group in &plan.groups[range.clone()] {
                for (ui, &key) in group.uniques.iter().enumerate() {
                    let w = &lane.scratch.rows[ul * dim..(ul + 1) * dim];
                    let cnt = group.occs[ui].len() as u64;
                    for &pos in &group.occs[ui] {
                        let dst = base + pos as usize * dim;
                        out[dst..dst + dim].copy_from_slice(w);
                    }
                    match PullOutcome::from_code(lane.scratch.tags[ul]) {
                        PullOutcome::Hit => EngineStats::add(&self.stats.hits, cnt),
                        PullOutcome::Miss => EngineStats::add(&self.stats.misses, cnt),
                        PullOutcome::NewAdmitted => {
                            EngineStats::add(&self.stats.new_entries, 1);
                            // Repeat occurrences read the just-inserted
                            // DRAM entry: cache hits.
                            EngineStats::add(&self.stats.hits, cnt - 1);
                        }
                        PullOutcome::NewDeclined => {
                            EngineStats::add(&self.stats.new_entries, 1);
                            // Repeat occurrences read the PMem copy.
                            EngineStats::add(&self.stats.misses, cnt - 1);
                        }
                    }
                    self.access_queue.push(key);
                    ul += 1;
                }
            }
        }
        EngineStats::add(&self.stats.pulls, plan.total_keys as u64);
        self.phases.record_ns(Phase::Merge, merge_ns);

        if !self.cfg.enable_pipeline {
            self.maintain_inline(batch, cost);
        }
    }

    /// Apply every occurrence's gradient to `payload`. Optimizers whose
    /// update is linear in the gradient coalesce duplicates into one
    /// summed apply; stateful optimizers fall back to ordered sequential
    /// applies, bit-identical to separate pushes.
    fn apply_occurrences(
        &self,
        payload: &mut [f32],
        grads: &[f32],
        occs: &[u32],
        gsum: &mut [f32],
        cost: &mut Cost,
    ) {
        let dim = self.cfg.dim;
        let grad_at = |pos: u32| {
            let p = pos as usize;
            &grads[p * dim..(p + 1) * dim]
        };
        if self.opt.coalescible() && occs.len() > 1 {
            gsum.copy_from_slice(grad_at(occs[0]));
            for &pos in &occs[1..] {
                for (s, g) in gsum.iter_mut().zip(grad_at(pos)) {
                    *s += g;
                }
            }
            // (n-1) vector adds + one optimizer apply, one row write.
            cost.charge(
                CostKind::Cpu,
                occs.len() as u64 * dim as u64 * OPT_FLOP_NS_PER_F32,
            );
            cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
            self.opt.apply(dim, payload, gsum);
        } else {
            for &pos in occs {
                cost.charge(CostKind::Cpu, dim as u64 * OPT_FLOP_NS_PER_F32);
                cost.charge(CostKind::DramTransfer, self.dram.write_ns((dim * 4) as u64));
                self.opt.apply(dim, payload, grad_at(pos));
            }
        }
    }

    /// Apply one batched optimizer kernel over the pending run of
    /// contiguous PMem-resident uniques gathered in `s` (payload rows in
    /// `s.rows`, one effective gradient row each in `s.grad_rows`,
    /// unique indices in `s.run`), then flush the rows in original
    /// unique order. The run only ever reorders PMem *reads* ahead of
    /// flushes; reads are not persistence events, so the recovery
    /// protocol's event stream is identical to the one-key-at-a-time
    /// path. All virtual cost was charged at gather time.
    fn flush_pmem_run(
        &self,
        g: &mut Shard,
        group: &ShardGroup,
        batch: BatchId,
        boundaries: &[BatchId],
        s: &mut Scratch,
        cost: &mut Cost,
    ) {
        let n = s.run.len();
        if n == 0 {
            return;
        }
        let dim = self.cfg.dim;
        let stride = self.cfg.payload_f32s();
        self.opt
            .apply_batch(dim, &mut s.rows, &s.grad_rows, n)
            .expect("run buffers are sized by construction");
        for (j, &ui) in s.run.iter().enumerate() {
            let key = group.uniques[ui as usize];
            let row = &s.rows[j * stride..(j + 1) * stride];
            let e = g.index.get_mut(key).expect("indexed");
            self.flush_payload(key, batch, row, &mut e.chain, boundaries, cost);
            let (newest, _) = e.chain.newest().expect("just flushed");
            e.loc = TaggedLoc::pmem(newest);
            e.version = batch;
        }
        s.run.clear();
        s.rows.clear();
        s.grad_rows.clear();
    }

    /// Execute one shard group of a planned push under a single write
    /// lock acquisition. Contiguous runs of PMem-resident uniques are
    /// read up front and updated by one multi-row optimizer kernel
    /// ([`Optimizer::apply_batch`]); DRAM-resident keys apply in place
    /// and act as run boundaries so per-key flush order is unchanged.
    #[allow(clippy::too_many_arguments)]
    fn push_group(
        &self,
        group: &ShardGroup,
        grads: &[f32],
        batch: BatchId,
        boundaries: &[BatchId],
        protect_max: BatchId,
        s: &mut Scratch,
        cost: &mut Cost,
    ) {
        let dim = self.cfg.dim;
        let stride = self.cfg.payload_f32s();
        cost.charge(CostKind::Cpu, SHARD_LOCK_NS);
        let mut g = self.shards[group.shard].write();
        debug_assert!(s.run.is_empty() && s.rows.is_empty() && s.grad_rows.is_empty());
        for (ui, &key) in group.uniques.iter().enumerate() {
            cost.charge(CostKind::Cpu, HASH_PROBE_NS);
            let occs = &group.occs[ui];
            let loc = g.index.get(key).expect("pushed key must exist").loc;
            match loc.as_dram() {
                Some(slot) => {
                    // A DRAM-resident key bounds the pending PMem run:
                    // settle it first so flushes stay in unique order.
                    self.flush_pmem_run(&mut g, group, batch, boundaries, s, cost);
                    let v = g.arena.version(slot);
                    let Shard { index, arena, .. } = &mut *g;
                    let e = index.get_mut(key).expect("indexed");
                    if v <= protect_max && v < batch && arena.is_dirty(slot) {
                        self.flush_payload(
                            key,
                            v,
                            arena.payload(slot),
                            &mut e.chain,
                            boundaries,
                            cost,
                        );
                    }
                    arena.set_version(slot, batch);
                    e.version = batch;
                    self.apply_occurrences(arena.payload_mut(slot), grads, occs, &mut s.acc, cost);
                    arena.set_dirty(slot, true);
                }
                None => {
                    // PMem-resident: read now, join the batched run. The
                    // row's effective gradient lands in `s.grad_rows`;
                    // stateful duplicates apply all but their last
                    // occurrence in order here, so every run row takes
                    // exactly one kernel step. Charges mirror
                    // `apply_occurrences` exactly.
                    let pm_slot = loc.as_pmem().expect("tagged loc");
                    let j = s.run.len();
                    s.rows.resize((j + 1) * stride, 0.0);
                    s.grad_rows.resize((j + 1) * dim, 0.0);
                    let row = &mut s.rows[j * stride..(j + 1) * stride];
                    let grow = &mut s.grad_rows[j * dim..(j + 1) * dim];
                    self.store
                        .read_slot(pm_slot, row, cost)
                        .expect("indexed slot valid");
                    let grad_at = |pos: u32| {
                        let p = pos as usize;
                        &grads[p * dim..(p + 1) * dim]
                    };
                    let row_write = self.dram.write_ns((dim * 4) as u64);
                    if self.opt.coalescible() && occs.len() > 1 {
                        grow.copy_from_slice(grad_at(occs[0]));
                        for &pos in &occs[1..] {
                            for (sg, gv) in grow.iter_mut().zip(grad_at(pos)) {
                                *sg += gv;
                            }
                        }
                        cost.charge(
                            CostKind::Cpu,
                            occs.len() as u64 * dim as u64 * OPT_FLOP_NS_PER_F32,
                        );
                        cost.charge(CostKind::DramTransfer, row_write);
                    } else {
                        for &pos in &occs[..occs.len() - 1] {
                            cost.charge(CostKind::Cpu, dim as u64 * OPT_FLOP_NS_PER_F32);
                            cost.charge(CostKind::DramTransfer, row_write);
                            self.opt.apply(dim, row, grad_at(pos));
                        }
                        grow.copy_from_slice(grad_at(occs[occs.len() - 1]));
                        cost.charge(CostKind::Cpu, dim as u64 * OPT_FLOP_NS_PER_F32);
                        cost.charge(CostKind::DramTransfer, row_write);
                    }
                    s.run.push(ui as u32);
                }
            }
            EngineStats::add(&self.stats.pushes, occs.len() as u64);
        }
        self.flush_pmem_run(&mut g, group, batch, boundaries, s, cost);
    }

    /// Shard-plan push: bucket → dedup → parallel lane execute. Final
    /// weights match the per-key path (coalescing is gated on gradient
    /// linearity; stateful optimizers apply sequentially in request
    /// order within each key).
    fn push_planned(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let dim = self.cfg.dim;
        let plan = self.build_plan(keys, cost);
        let (boundaries, _, protect_max) = self.boundaries();
        let lanes = plan.partition(self.cfg.parallelism);

        let payload_f32s = self.cfg.payload_f32s();
        let run_lane = |range: &Range<usize>| -> Cost {
            let mut lcost = Cost::new();
            let mut scratch = self.scratch.acquire(Shape::lane(payload_f32s));
            let s = &mut *scratch;
            s.acc.resize(dim, 0.0);
            for group in &plan.groups[range.clone()] {
                self.push_group(group, grads, batch, &boundaries, protect_max, s, &mut lcost);
            }
            lcost
        };
        let lane_costs: Vec<Cost> = if lanes.len() <= 1 {
            lanes.iter().map(run_lane).collect()
        } else {
            std::thread::scope(|s| {
                let run_lane = &run_lane;
                let handles: Vec<_> = lanes.iter().map(|r| s.spawn(move || run_lane(r))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("push lane panicked"))
                    .collect()
            })
        };

        let mut par = Cost::new();
        for lane in &lane_costs {
            par.merge_parallel(lane);
        }
        self.phases.record_ns(Phase::Execute, par.total_ns());
        cost.merge(&par);
    }
}

impl PsEngine for PsNode {
    fn name(&self) -> &'static str {
        "PMem-OE"
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let t0 = cost.total_ns();
        out.reserve(keys.len() * self.cfg.dim);
        if self.cfg.enable_cache {
            if self.cfg.parallelism == 0 {
                self.pull_cached_legacy(keys, batch, out, cost);
            } else {
                self.pull_planned(keys, batch, out, cost);
            }
        } else {
            self.pull_uncached(keys, batch, out, cost);
        }
        self.phases
            .record_ns(Phase::Pull, cost.total_ns().saturating_sub(t0));
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        if !self.cfg.enable_pipeline {
            // Work already done inline during pull.
            return MaintenanceReport::default();
        }
        let mut cost = Cost::new();
        let (processed, commits) = self.run_maintenance(batch, &mut cost);
        MaintenanceReport {
            cost,
            entries_processed: processed,
            ckpt_commits: commits,
        }
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        assert_eq!(grads.len(), keys.len() * self.cfg.dim, "grad shape");
        let t0 = cost.total_ns();
        if self.cfg.enable_cache {
            if self.cfg.parallelism == 0 {
                self.push_cached_legacy(keys, grads, batch, cost);
            } else {
                self.push_planned(keys, grads, batch, cost);
            }
        } else {
            self.push_uncached(keys, grads, batch, cost);
        }
        self.phases
            .record_ns(Phase::Push, cost.total_ns().saturating_sub(t0));
    }

    fn push_async(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        // Identical state transition to `push` — bit-identity of the
        // pipelined trainer depends on it — plus a telemetry counter so
        // the exposition separates out-of-band applies from critical-
        // path pushes.
        self.registry
            .counter("oe_async_applied_keys_total")
            .add(keys.len() as u64);
        PsEngine::push(self, keys, grads, batch, cost);
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut cost = Cost::new();
        cost.charge(CostKind::Cpu, 100);
        let mut q = self.ckpt_pending.lock();
        if q.back().is_some_and(|&b| b >= batch) {
            return cost; // stale or duplicate request
        }
        if q.len() == MAX_PENDING_CKPTS {
            q.pop_back();
        }
        q.push_back(batch);
        cost
    }

    fn committed_checkpoint(&self) -> BatchId {
        self.committed.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        let sid = self.shard_of(key);
        let g = self.shards[sid].read();
        let e = g.index.get(key)?;
        let dim = self.cfg.dim;
        if let Some(slot) = e.loc.as_dram() {
            Some(g.arena.payload(slot)[..dim].to_vec())
        } else {
            let mut scratch = vec![0f32; self.cfg.payload_f32s()];
            let mut cost = Cost::new();
            self.store
                .read_slot(e.loc.as_pmem().unwrap(), &mut scratch, &mut cost)?;
            scratch.truncate(dim);
            Some(scratch)
        }
    }

    fn num_keys(&self) -> usize {
        self.shards.iter().map(|s| s.read().index.len()).sum()
    }

    fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    fn export_entry(&self, key: Key, cost: &mut Cost) -> Option<(BatchId, Vec<f32>)> {
        cost.charge(CostKind::Cpu, HASH_PROBE_NS + SHARD_LOCK_NS);
        let sid = self.shard_of(key);
        let g = self.shards[sid].read();
        let e = g.index.get(key)?;
        let mut payload = vec![0f32; self.cfg.payload_f32s()];
        if let Some(slot) = e.loc.as_dram() {
            // Full payload: weights + optimizer slots, not the
            // dim-truncated view `read_weights` serves.
            payload.copy_from_slice(g.arena.payload(slot));
            cost.charge(
                CostKind::DramTransfer,
                self.dram.read_ns((payload.len() * 4) as u64),
            );
            Some((g.arena.version(slot), payload))
        } else {
            self.store
                .read_slot(e.loc.as_pmem().expect("tagged loc"), &mut payload, cost)
                .expect("indexed slot valid");
            Some((e.version, payload))
        }
    }

    fn import_entry(&self, key: Key, version: BatchId, payload: &[f32], cost: &mut Cost) -> bool {
        assert_eq!(
            payload.len(),
            self.cfg.payload_f32s(),
            "import carries the full payload (weights + optimizer state)"
        );
        cost.charge(CostKind::Cpu, HASH_PROBE_NS + SHARD_LOCK_NS);
        let sid = self.shard_of(key);
        // Replace any existing entry (repeated migrations), releasing
        // its slots first.
        if self.shards[sid].read().index.get(key).is_some() {
            self.discard_entry(key, cost);
        }
        // Land in PMem; the destination's cache promotes it through
        // normal maintenance once it proves hot there. Deliberately no
        // `new_entries` bump: migration is placement plumbing, not a
        // first touch.
        let slot = self.store.alloc(cost);
        self.store.write_slot(slot, key, version, payload, cost);
        let mut g = self.shards[sid].write();
        g.index.insert_recovered(key, slot, version);
        true
    }

    fn discard_entry(&self, key: Key, cost: &mut Cost) -> bool {
        cost.charge(CostKind::Cpu, HASH_PROBE_NS + SHARD_LOCK_NS + LRU_OP_NS);
        let sid = self.shard_of(key);
        let mut g = self.shards[sid].write();
        let Some(mut e) = g.index.remove(key) else {
            return false;
        };
        if let Some(slot) = e.loc.as_dram() {
            g.policy.remove(slot);
            g.arena.remove(slot);
        }
        let mut freed = Vec::new();
        e.chain.clear_into(&mut freed);
        for s in freed {
            self.store.free(s, cost);
            EngineStats::add(&self.stats.slots_recycled, 1);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerKind;

    fn node(cache_entries: usize) -> PsNode {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
        PsNode::new(cfg)
    }

    fn pull1(n: &PsNode, key: Key, batch: BatchId) -> Vec<f32> {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[key], batch, &mut out, &mut cost);
        out
    }

    #[test]
    fn pull_initializes_deterministically() {
        let n = node(16);
        let w1 = pull1(&n, 7, 1);
        let w2 = pull1(&n, 7, 1);
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 4);
        let other = pull1(&n, 8, 1);
        assert_ne!(w1, other);
        assert_eq!(n.num_keys(), 2);
        assert_eq!(n.stats().new_entries, 1 + 1);
        assert_eq!(n.stats().hits, 1, "second pull of key 7 hits cache");
    }

    #[test]
    fn push_applies_gradient() {
        let n = node(16);
        let w = pull1(&n, 1, 1);
        let mut cost = Cost::new();
        n.end_pull_phase(1);
        n.push(&[1], &[1.0, 2.0, 3.0, 4.0], 1, &mut cost);
        let w2 = n.read_weights(1).unwrap();
        for i in 0..4 {
            assert!((w2[i] - (w[i] - (i as f32 + 1.0))).abs() < 1e-6);
        }
    }

    #[test]
    fn eviction_roundtrip_preserves_weights() {
        // Cache of 2 entries, touch 5 keys: some must be evicted to PMem
        // and read back identically.
        let n = node(2);
        let mut originals = Vec::new();
        for k in 0..5u64 {
            originals.push(pull1(&n, k, 1));
        }
        n.end_pull_phase(1);
        for k in 0..5u64 {
            let w = n.read_weights(k).expect("key known");
            assert_eq!(w, originals[k as usize], "key {k}");
        }
        assert!(n.stats().evictions > 0);
    }

    #[test]
    fn maintenance_moves_pmem_entries_back_to_dram() {
        let n = node(2);
        for k in 0..4u64 {
            pull1(&n, k, 1);
        }
        n.end_pull_phase(1);
        // Keys 0.. were partly evicted; pulling key 0 again misses,
        // maintenance loads it back.
        let before = n.stats().misses;
        pull1(&n, 0, 2);
        n.end_pull_phase(2);
        assert!(n.stats().misses > before || n.stats().hits > 0);
        let _ = pull1(&n, 0, 3);
        // After maintenance of batch 2, key 0 is cached: pull 3 hits.
        assert!(n.stats().hits >= 1);
    }

    #[test]
    fn checkpoint_commits_within_one_maintenance() {
        let n = node(16);
        let mut cost = Cost::new();
        pull1(&n, 1, 1);
        n.end_pull_phase(1);
        n.push(&[1], &[0.1; 4], 1, &mut cost);
        let c = n.request_checkpoint(1);
        assert!(c.total_ns() < 10_000, "request is near-free: {c}");
        assert_eq!(n.committed_checkpoint(), 0);
        pull1(&n, 1, 2);
        let report = n.end_pull_phase(2);
        assert_eq!(report.ckpt_commits, 1);
        assert_eq!(n.committed_checkpoint(), 1);
        assert_eq!(n.stats().ckpt_commits, 1);
    }

    #[test]
    fn stale_checkpoint_requests_ignored() {
        let n = node(16);
        n.request_checkpoint(5);
        n.request_checkpoint(5);
        n.request_checkpoint(3);
        assert_eq!(n.ckpt_pending.lock().len(), 1);
    }

    #[test]
    fn pending_queue_bounded() {
        let n = node(16);
        for b in 1..=10 {
            n.request_checkpoint(b);
        }
        assert!(n.ckpt_pending.lock().len() <= MAX_PENDING_CKPTS);
        // Newest request is retained.
        assert_eq!(n.ckpt_pending.lock().back().copied(), Some(10));
    }

    #[test]
    fn uncached_mode_roundtrip() {
        let mut cfg = NodeConfig::small(4);
        cfg.enable_cache = false;
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let n = PsNode::new(cfg);
        let w = pull1(&n, 9, 1);
        let mut cost = Cost::new();
        n.push(&[9], &[1.0; 4], 1, &mut cost);
        let w2 = n.read_weights(9).unwrap();
        for i in 0..4 {
            assert!((w2[i] - (w[i] - 1.0)).abs() < 1e-6);
        }
        assert_eq!(n.stats().misses, 0);
        // Second pull is a PMem read.
        pull1(&n, 9, 2);
        assert_eq!(n.stats().misses, 1);
        // Checkpoint commits at end_pull_phase.
        n.request_checkpoint(2);
        n.end_pull_phase(3);
        assert_eq!(n.committed_checkpoint(), 2);
    }

    #[test]
    fn non_pipelined_mode_charges_pull_path() {
        let mut cfg = NodeConfig::small(4);
        cfg.enable_pipeline = false;
        cfg.cache_bytes = 2 * cfg.bytes_per_cached_entry();
        let n = PsNode::new(cfg);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[1, 2, 3, 4], 1, &mut out, &mut cost);
        // Maintenance ran inline: the report is empty.
        let report = n.end_pull_phase(1);
        assert_eq!(report.entries_processed, 0);
        assert!(cost.ns(CostKind::Serialized) > 0);
    }

    #[test]
    fn pipelined_pull_has_no_serialized_cost_after_warmup() {
        let n = node(16);
        pull1(&n, 1, 1);
        n.end_pull_phase(1);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[1], 2, &mut out, &mut cost);
        assert_eq!(
            cost.ns(CostKind::Serialized),
            0,
            "steady-state pulls take only the read lock"
        );
    }

    #[test]
    fn telemetry_records_phase_latencies() {
        let n = node(2);
        let mut cost = Cost::new();
        let mut out = Vec::new();
        n.pull(&(0..8u64).collect::<Vec<_>>(), 1, &mut out, &mut cost);
        n.end_pull_phase(1);
        n.push(&[0, 1], &[0.5; 8], 1, &mut cost);
        n.request_checkpoint(1);
        n.pull(&[0], 2, &mut out, &mut cost);
        n.end_pull_phase(2);

        let snap = n.registry().snapshot();
        let pull = snap.histogram("oe_pull_latency_ns").expect("registered");
        assert_eq!(pull.count(), 2, "one sample per pull burst");
        assert!(pull.max() > 0, "virtual pull time recorded");
        let maintain = snap.histogram("oe_maintain_latency_ns").unwrap();
        assert!(maintain.count() >= 2);
        assert!(snap.histogram("oe_push_latency_ns").unwrap().count() == 1);
        assert!(snap.histogram("oe_flush_latency_ns").unwrap().count() >= n.stats().flushes);
        assert_eq!(
            snap.histogram("oe_ckpt_commit_latency_ns").unwrap().count(),
            1
        );
        assert_eq!(snap.gauge("oe_committed_batch"), Some(1));
        assert_eq!(snap.counter("oe_pulls_total"), Some(n.stats().pulls));

        let text = n.metrics_text();
        assert!(text.contains("oe_pulls_total"));
        assert!(text.contains("oe_pull_latency_ns{quantile=\"0.99\"}"));

        // Shard-plan stages record one sample per planned request
        // (2 pulls + 1 push); merge only runs on pulls.
        for h in [
            "oe_plan_latency_ns",
            "oe_dedup_latency_ns",
            "oe_execute_latency_ns",
        ] {
            assert_eq!(snap.histogram(h).unwrap().count(), 3, "{h}");
        }
        assert_eq!(snap.histogram("oe_merge_latency_ns").unwrap().count(), 2);
    }

    #[test]
    fn duplicate_pulls_coalesce_to_one_entry() {
        let n = node(16);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[5, 5, 5], 1, &mut out, &mut cost);
        // One first-touch init, two occurrence fan-outs counted as hits.
        let s = n.stats();
        assert_eq!(s.pulls, 3);
        assert_eq!(s.new_entries, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(&out[0..4], &out[4..8]);
        assert_eq!(&out[0..4], &out[8..12]);
        // Exactly one Serialized init despite three occurrences.
        assert_eq!(cost.ops(CostKind::Serialized), 1);
    }

    #[test]
    fn planned_matches_legacy_on_distinct_keys() {
        let mk = |parallelism: usize| {
            let mut cfg = NodeConfig::small(4);
            cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
            cfg.cache_bytes = 8 * cfg.bytes_per_cached_entry();
            cfg.shards = 4;
            cfg.parallelism = parallelism;
            PsNode::new(cfg)
        };
        let legacy = mk(0);
        let planned = mk(1);
        let keys: Vec<u64> = (0..32).collect();
        let grads: Vec<f32> = (0..32 * 4).map(|i| (i % 7) as f32 * 0.125).collect();
        for n in [&legacy, &planned] {
            let mut out = Vec::new();
            let mut cost = Cost::new();
            n.pull(&keys, 1, &mut out, &mut cost);
            n.end_pull_phase(1);
            n.push(&keys, &grads, 1, &mut cost);
        }
        for &k in &keys {
            assert_eq!(legacy.read_weights(k), planned.read_weights(k), "key {k}");
        }
        assert_eq!(legacy.stats(), planned.stats());
    }

    #[test]
    fn parallel_lanes_match_single_lane() {
        let mk = |parallelism: usize| {
            let mut cfg = NodeConfig::small(4);
            cfg.cache_bytes = 16 * cfg.bytes_per_cached_entry();
            cfg.shards = 8;
            cfg.parallelism = parallelism;
            PsNode::new(cfg)
        };
        let serial = mk(1);
        let parallel = mk(4);
        // Skewed batch with duplicates scattered across shards.
        let keys: Vec<u64> = (0..64).map(|i| (i * i) % 24).collect();
        let grads: Vec<f32> = (0..64 * 4).map(|i| ((i % 5) as f32 - 2.0) * 0.25).collect();
        for n in [&serial, &parallel] {
            let mut out = Vec::new();
            let mut cost = Cost::new();
            n.pull(&keys, 1, &mut out, &mut cost);
            n.end_pull_phase(1);
            n.push(&keys, &grads, 1, &mut cost);
        }
        let mut so = Vec::new();
        let mut po = Vec::new();
        let mut sc = Cost::new();
        let mut pc = Cost::new();
        serial.pull(&keys, 2, &mut so, &mut sc);
        parallel.pull(&keys, 2, &mut po, &mut pc);
        assert_eq!(so, po, "weights identical across lane counts");
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(
            sc.ns(CostKind::Serialized),
            pc.ns(CostKind::Serialized),
            "Serialized never parallelizes"
        );
        // The parallel request simulates faster on a skewed batch.
        assert!(pc.total_ns() <= sc.total_ns());
    }

    #[test]
    fn export_import_carries_optimizer_state() {
        // AdaGrad keeps per-key accumulators in the payload tail; a
        // migration that only copied the dim-truncated weights would
        // diverge on the very next push. Export/import must keep the
        // replicas in lockstep.
        let mk = || {
            let mut cfg = NodeConfig::small(4);
            cfg.optimizer = OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 };
            cfg.cache_bytes = 16 * cfg.bytes_per_cached_entry();
            PsNode::new(cfg)
        };
        let (src, dst) = (mk(), mk());
        let mut cost = Cost::new();
        pull1(&src, 7, 1);
        src.end_pull_phase(1);
        src.push(&[7], &[0.5; 4], 1, &mut cost);

        let (ver, payload) = src.export_entry(7, &mut cost).expect("entry exists");
        assert_eq!(payload.len(), src.cfg.payload_f32s(), "full payload");
        assert!(dst.import_entry(7, ver, &payload, &mut cost));
        assert_eq!(dst.read_weights(7), src.read_weights(7));
        assert_eq!(dst.stats().new_entries, 0, "import is not a first touch");

        // Same push on both replicas stays bit-identical (state moved).
        src.push(&[7], &[0.25; 4], 2, &mut cost);
        dst.push(&[7], &[0.25; 4], 2, &mut cost);
        assert_eq!(dst.read_weights(7), src.read_weights(7));
    }

    #[test]
    fn export_missing_key_is_none() {
        let n = node(4);
        let mut cost = Cost::new();
        assert!(n.export_entry(99, &mut cost).is_none());
    }

    #[test]
    fn discard_forgets_key_and_frees_slots() {
        let n = node(2);
        let mut cost = Cost::new();
        for k in 0..5u64 {
            pull1(&n, k, 1); // forces evictions → PMem chains exist
        }
        n.end_pull_phase(1);
        n.push(&(0..5u64).collect::<Vec<_>>(), &[0.1; 20], 1, &mut cost);
        let before = n.num_keys();
        assert!(n.discard_entry(3, &mut cost));
        assert_eq!(n.num_keys(), before - 1);
        assert!(n.read_weights(3).is_none());
        assert!(!n.discard_entry(3, &mut cost), "second discard is a no-op");
        // A later first touch re-initializes deterministically.
        let w = pull1(&n, 3, 2);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn concurrent_pulls_are_consistent() {
        use std::sync::Arc;
        let n = Arc::new(node(64));
        // Warm 32 keys.
        for k in 0..32u64 {
            pull1(&n, k, 1);
        }
        n.end_pull_phase(1);
        let expected: Vec<Vec<f32>> = (0..32u64).map(|k| n.read_weights(k).unwrap()).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let n = Arc::clone(&n);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut cost = Cost::new();
                    for round in 0..50 {
                        out.clear();
                        let keys: Vec<u64> = (0..32).collect();
                        n.pull(&keys, 2 + round, &mut out, &mut cost);
                        for (k, w) in expected.iter().enumerate() {
                            assert_eq!(&out[k * 4..(k + 1) * 4], &w[..]);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
