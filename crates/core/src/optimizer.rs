//! Embedding optimizers executed on the parameter server.
//!
//! DLRM systems apply sparse-feature gradients on the PS so only gradients
//! travel over the wire. Optimizer state lives *inside the entry payload*,
//! immediately after the weights, so flush-backs and checkpoints capture
//! the exact training state and recovery resumes bit-identically.
//!
//! Payload layout: `[w_0..w_dim | state...]` where state is
//! - SGD: empty,
//! - AdaGrad: `dim` accumulator values,
//! - Adam: `dim` first moments, `dim` second moments, 1 step counter.
//!
//! # Kernel layout
//!
//! The applies are written as explicit `chunks_exact(KERNEL_LANES)`
//! loops plus a scalar remainder, the shape LLVM reliably turns into
//! SIMD (the fixed-width inner loop has no bounds checks and no
//! cross-iteration dependence). No fma intrinsics: every per-element
//! operation is the *same* correctly-rounded IEEE op the scalar
//! reference performs, in the same order, so the vectorized kernels are
//! bit-identical to [`Optimizer::apply_reference`] — the property the
//! `kernel_equiv` sweep and the `parallel_equiv` suite pin down.
//! [`Optimizer::apply_batch`] runs one kernel over `rows` contiguous
//! payload/gradient rows so a coalesced shard group amortizes dispatch
//! (and, for stateless SGD, collapses to a single flat kernel over the
//! whole run).

use serde::Serialize;

/// SIMD-friendly inner-loop width (f32 lanes per unrolled step).
pub const KERNEL_LANES: usize = 8;

/// Optimizer selection + hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD: `w -= lr * g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// AdaGrad: `acc += g²; w -= lr * g / (√acc + eps)`. The standard
    /// choice for sparse embeddings (per-coordinate rates).
    Adagrad {
        /// Learning rate.
        lr: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
    /// Adam with bias correction; step counter stored per entry.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Extra `f32`s of per-entry state for dimension `dim`.
    pub fn state_f32s(&self, dim: usize) -> usize {
        match self {
            OptimizerKind::Sgd { .. } => 0,
            OptimizerKind::Adagrad { .. } => dim,
            OptimizerKind::Adam { .. } => 2 * dim + 1,
        }
    }

    /// Build the stateless applier (vectorized kernels).
    pub fn build(self) -> Optimizer {
        Optimizer {
            kind: self,
            scalar: false,
        }
    }

    /// Build an applier pinned to the scalar reference loops. Kept as
    /// the A/B baseline for the `kernels` bench and the bit-identity
    /// sweep; produces exactly the same bits as [`Self::build`].
    pub fn build_scalar(self) -> Optimizer {
        Optimizer {
            kind: self,
            scalar: true,
        }
    }

    /// True if the update is *linear in the gradient*, so duplicate
    /// gradients for one key may be summed and applied in a single step:
    /// `w -= lr·g₁; w -= lr·g₂` ≡ `w -= lr·(g₁+g₂)` for SGD. Stateful
    /// optimizers (AdaGrad's accumulator, Adam's moments) update their
    /// state *between* applies, so coalescing would change the result —
    /// they fall back to sequential per-occurrence applies.
    pub fn coalescible(&self) -> bool {
        matches!(self, OptimizerKind::Sgd { .. })
    }
}

/// A gradient/payload length mismatch caught before any element is
/// touched. Carried as a structured error (not a `debug_assert`) so a
/// short gradient can never silently update a prefix of the row and
/// leave stale state behind in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    /// Embedding dimension the apply was issued for.
    pub dim: usize,
    /// Gradient f32s actually supplied (wanted `dim` per row).
    pub grad_len: usize,
    /// Payload f32s actually supplied.
    pub payload_len: usize,
    /// Payload f32s the optimizer's state layout requires per row.
    pub payload_expected: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "optimizer shape mismatch: dim {} wants grad {} and payload {}, got grad {} and payload {}",
            self.dim, self.dim, self.payload_expected, self.grad_len, self.payload_len
        )
    }
}

impl std::error::Error for ShapeError {}

/// Applies gradients to an entry payload in place.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    kind: OptimizerKind,
    scalar: bool,
}

impl Optimizer {
    /// The configured kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// See [`OptimizerKind::coalescible`].
    pub fn coalescible(&self) -> bool {
        self.kind.coalescible()
    }

    fn check(&self, dim: usize, payload_len: usize, grad_len: usize) -> Result<(), ShapeError> {
        let payload_expected = dim + self.kind.state_f32s(dim);
        if grad_len != dim || payload_len != payload_expected {
            return Err(ShapeError {
                dim,
                grad_len,
                payload_len,
                payload_expected,
            });
        }
        Ok(())
    }

    /// Apply gradient `grad` (length `dim`) to `payload`
    /// (length `dim + state_f32s(dim)`), updating weights and state.
    /// Panics on a length mismatch; use [`Self::try_apply`] to handle
    /// malformed shapes (e.g. straight off the wire) structurally.
    pub fn apply(&self, dim: usize, payload: &mut [f32], grad: &[f32]) {
        if let Err(e) = self.try_apply(dim, payload, grad) {
            panic!("{e}");
        }
    }

    /// Checked apply: verifies both lengths *before* touching any
    /// element, so a bad shape leaves the payload untouched.
    pub fn try_apply(
        &self,
        dim: usize,
        payload: &mut [f32],
        grad: &[f32],
    ) -> Result<(), ShapeError> {
        self.check(dim, payload.len(), grad.len())?;
        if self.scalar {
            self.row_scalar(dim, payload, grad);
        } else {
            self.row_vectorized(dim, payload, grad);
        }
        Ok(())
    }

    /// One kernel over `rows` contiguous rows: `payloads` is `rows`
    /// payload rows back to back (`stride` f32s each, where
    /// `stride = dim + state_f32s(dim)`) and `grads` is `rows` gradient
    /// rows (`dim` f32s each). Bit-identical to applying each row
    /// separately; for stateless SGD the whole run collapses into a
    /// single flat kernel because payload rows are exactly weight rows.
    pub fn apply_batch(
        &self,
        dim: usize,
        payloads: &mut [f32],
        grads: &[f32],
        rows: usize,
    ) -> Result<(), ShapeError> {
        let stride = dim + self.kind.state_f32s(dim);
        if payloads.len() != rows * stride || grads.len() != rows * dim {
            return Err(ShapeError {
                dim,
                grad_len: grads.len(),
                payload_len: payloads.len(),
                payload_expected: rows * stride,
            });
        }
        if let (OptimizerKind::Sgd { lr }, false) = (self.kind, self.scalar) {
            // stride == dim: the run is one contiguous weight/grad pair.
            sgd_kernel(lr, payloads, grads);
            return Ok(());
        }
        for (p, g) in payloads
            .chunks_exact_mut(stride)
            .zip(grads.chunks_exact(dim))
        {
            if self.scalar {
                self.row_scalar(dim, p, g);
            } else {
                self.row_vectorized(dim, p, g);
            }
        }
        Ok(())
    }

    /// The scalar reference implementation: one element at a time,
    /// exactly the ops of the vectorized kernels in the same order.
    /// Kept public as the ground truth for the bit-identity sweep and
    /// the scalar arm of the `kernels`/`pullpush` benches.
    pub fn apply_reference(&self, dim: usize, payload: &mut [f32], grad: &[f32]) {
        if let Err(e) = self.check(dim, payload.len(), grad.len()) {
            panic!("{e}");
        }
        self.row_scalar(dim, payload, grad);
    }

    fn row_scalar(&self, dim: usize, payload: &mut [f32], grad: &[f32]) {
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                let (w, _) = payload.split_at_mut(dim);
                for i in 0..dim {
                    w[i] -= lr * grad[i];
                }
            }
            OptimizerKind::Adagrad { lr, eps } => {
                let (w, acc) = payload.split_at_mut(dim);
                for i in 0..dim {
                    let g = grad[i];
                    acc[i] += g * g;
                    w[i] -= lr * g / (acc[i].sqrt() + eps);
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let (w, state) = payload.split_at_mut(dim);
                let (m, rest) = state.split_at_mut(dim);
                let (v, t_slot) = rest.split_at_mut(dim);
                let t = t_slot[0] + 1.0;
                t_slot[0] = t;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for i in 0..dim {
                    let g = grad[i];
                    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                    let m_hat = m[i] / bc1;
                    let v_hat = v[i] / bc2;
                    w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    fn row_vectorized(&self, dim: usize, payload: &mut [f32], grad: &[f32]) {
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                let (w, _) = payload.split_at_mut(dim);
                sgd_kernel(lr, w, grad);
            }
            OptimizerKind::Adagrad { lr, eps } => {
                let (w, acc) = payload.split_at_mut(dim);
                adagrad_kernel(lr, eps, w, acc, grad);
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let (w, state) = payload.split_at_mut(dim);
                let (m, rest) = state.split_at_mut(dim);
                let (v, t_slot) = rest.split_at_mut(dim);
                let t = t_slot[0] + 1.0;
                t_slot[0] = t;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                adam_kernel(lr, beta1, beta2, eps, bc1, bc2, w, m, v, grad);
            }
        }
    }
}

/// `w -= lr * g`, `KERNEL_LANES` elements per unrolled step.
fn sgd_kernel(lr: f32, w: &mut [f32], g: &[f32]) {
    let mut wc = w.chunks_exact_mut(KERNEL_LANES);
    let mut gc = g.chunks_exact(KERNEL_LANES);
    for (wv, gv) in wc.by_ref().zip(gc.by_ref()) {
        for l in 0..KERNEL_LANES {
            wv[l] -= lr * gv[l];
        }
    }
    for (wv, gv) in wc.into_remainder().iter_mut().zip(gc.remainder()) {
        *wv -= lr * gv;
    }
}

/// `acc += g²; w -= lr * g / (√acc + eps)` over lanes. `sqrt`/`div` are
/// correctly-rounded IEEE ops, so SIMD lanes equal the scalar loop bit
/// for bit.
fn adagrad_kernel(lr: f32, eps: f32, w: &mut [f32], acc: &mut [f32], g: &[f32]) {
    let mut wc = w.chunks_exact_mut(KERNEL_LANES);
    let mut ac = acc.chunks_exact_mut(KERNEL_LANES);
    let mut gc = g.chunks_exact(KERNEL_LANES);
    for ((wv, av), gv) in wc.by_ref().zip(ac.by_ref()).zip(gc.by_ref()) {
        for l in 0..KERNEL_LANES {
            let g = gv[l];
            av[l] += g * g;
            wv[l] -= lr * g / (av[l].sqrt() + eps);
        }
    }
    for ((wv, av), gv) in wc
        .into_remainder()
        .iter_mut()
        .zip(ac.into_remainder().iter_mut())
        .zip(gc.remainder())
    {
        let g = *gv;
        *av += g * g;
        *wv -= lr * g / (av.sqrt() + eps);
    }
}

/// Adam inner loop with the bias corrections precomputed per row (the
/// `powf` runs once per apply in both the scalar and vector paths).
#[allow(clippy::too_many_arguments)]
fn adam_kernel(
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
    w: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
) {
    let mut wc = w.chunks_exact_mut(KERNEL_LANES);
    let mut mc = m.chunks_exact_mut(KERNEL_LANES);
    let mut vc = v.chunks_exact_mut(KERNEL_LANES);
    let mut gc = g.chunks_exact(KERNEL_LANES);
    for (((wv, mv), vv), gv) in wc
        .by_ref()
        .zip(mc.by_ref())
        .zip(vc.by_ref())
        .zip(gc.by_ref())
    {
        for l in 0..KERNEL_LANES {
            let g = gv[l];
            mv[l] = beta1 * mv[l] + (1.0 - beta1) * g;
            vv[l] = beta2 * vv[l] + (1.0 - beta2) * g * g;
            let m_hat = mv[l] / bc1;
            let v_hat = vv[l] / bc2;
            wv[l] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
    for (((wv, mv), vv), gv) in wc
        .into_remainder()
        .iter_mut()
        .zip(mc.into_remainder().iter_mut())
        .zip(vc.into_remainder().iter_mut())
        .zip(gc.remainder())
    {
        let g = *gv;
        *mv = beta1 * *mv + (1.0 - beta1) * g;
        *vv = beta2 * *vv + (1.0 - beta2) * g * g;
        let m_hat = *mv / bc1;
        let v_hat = *vv / bc2;
        *wv -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step() {
        let opt = OptimizerKind::Sgd { lr: 0.5 }.build();
        let mut p = vec![1.0f32, 2.0];
        opt.apply(2, &mut p, &[0.2, -0.4]);
        assert_eq!(p, vec![0.9, 2.2]);
    }

    #[test]
    fn adagrad_accumulates_and_shrinks_steps() {
        let opt = OptimizerKind::Adagrad { lr: 1.0, eps: 0.0 }.build();
        let mut p = vec![0.0f32, 0.0]; // dim=1: [w, acc]
        opt.apply(1, &mut p, &[2.0]);
        // acc = 4, step = 1*2/2 = 1.
        assert!((p[0] + 1.0).abs() < 1e-6);
        assert!((p[1] - 4.0).abs() < 1e-6);
        let w_before = p[0];
        opt.apply(1, &mut p, &[2.0]);
        // Second identical gradient takes a *smaller* step.
        let step2 = (w_before - p[0]).abs();
        assert!(step2 < 1.0);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        let (lr, b1, b2, eps) = (0.1, 0.9, 0.999, 1e-8);
        let opt = OptimizerKind::Adam {
            lr,
            beta1: b1,
            beta2: b2,
            eps,
        }
        .build();
        let mut p = vec![0.0f32; 1 + 2 + 1]; // w, m, v, t
        opt.apply(1, &mut p, &[1.0]);
        // After bias correction the first step is ≈ lr regardless of betas.
        assert!((p[0] + lr).abs() < 1e-4, "w={}", p[0]);
        assert_eq!(p[3], 1.0, "step counter advanced");
        opt.apply(1, &mut p, &[1.0]);
        assert_eq!(p[3], 2.0);
    }

    #[test]
    fn coalescibility_gate() {
        assert!(OptimizerKind::Sgd { lr: 0.1 }.coalescible());
        assert!(!OptimizerKind::Adagrad { lr: 0.1, eps: 0.0 }.coalescible());
        assert!(!OptimizerKind::Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8
        }
        .coalescible());
    }

    #[test]
    fn sgd_coalesced_matches_sequential_exactly() {
        // Power-of-two values: both orders of summation are exact in f32,
        // so coalescing must be *bit-identical* to sequential applies.
        let opt = OptimizerKind::Sgd { lr: 1.0 }.build();
        let g1 = [0.5f32, -0.25];
        let g2 = [0.25f32, 0.5];
        let mut seq = vec![2.0f32, -4.0];
        opt.apply(2, &mut seq, &g1);
        opt.apply(2, &mut seq, &g2);
        let mut coalesced = vec![2.0f32, -4.0];
        let sum: Vec<f32> = g1.iter().zip(&g2).map(|(a, b)| a + b).collect();
        opt.apply(2, &mut coalesced, &sum);
        assert_eq!(seq, coalesced);
    }

    #[test]
    fn state_sizes() {
        assert_eq!(OptimizerKind::Sgd { lr: 0.1 }.state_f32s(8), 0);
        assert_eq!(
            OptimizerKind::Adagrad { lr: 0.1, eps: 0.0 }.state_f32s(8),
            8
        );
        assert_eq!(
            OptimizerKind::Adam {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8
            }
            .state_f32s(8),
            17
        );
    }

    #[test]
    fn gradient_descent_reduces_quadratic_loss() {
        // Minimize f(w) = (w - 3)² with each optimizer.
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Adagrad { lr: 0.8, eps: 1e-8 },
            OptimizerKind::Adam {
                lr: 0.3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ] {
            let opt = kind.build();
            let mut p = vec![0.0f32; 1 + kind.state_f32s(1)];
            for _ in 0..200 {
                let g = 2.0 * (p[0] - 3.0);
                opt.apply(1, &mut p, &[g]);
            }
            assert!(
                (p[0] - 3.0).abs() < 0.2,
                "{kind:?} failed to converge: w={}",
                p[0]
            );
        }
    }

    #[test]
    fn short_gradient_is_a_structured_error_and_leaves_state_untouched() {
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 },
            OptimizerKind::Adam {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ] {
            let opt = kind.build();
            let dim = 4;
            let before: Vec<f32> = (0..dim + kind.state_f32s(dim))
                .map(|i| i as f32 * 0.5)
                .collect();
            let mut p = before.clone();
            let err = opt
                .try_apply(dim, &mut p, &[1.0, 2.0]) // short gradient
                .expect_err("short gradient must not apply");
            assert_eq!(err.dim, dim);
            assert_eq!(err.grad_len, 2);
            assert_eq!(p, before, "{kind:?}: no element may move on a bad shape");
            // Payload length mismatches are caught the same way.
            let mut short_payload = vec![0.0f32; dim];
            if kind.state_f32s(dim) > 0 {
                opt.try_apply(dim, &mut short_payload, &[1.0; 4])
                    .expect_err("short payload must not apply");
            }
        }
    }

    #[test]
    fn batch_apply_matches_per_row() {
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 },
            OptimizerKind::Adam {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ] {
            let opt = kind.build();
            let dim = 5; // odd: exercises the remainder path
            let stride = dim + kind.state_f32s(dim);
            let rows = 3;
            let mut batch: Vec<f32> = (0..rows * stride).map(|i| (i as f32).sin()).collect();
            let grads: Vec<f32> = (0..rows * dim).map(|i| (i as f32).cos()).collect();
            let mut per_row = batch.clone();
            for r in 0..rows {
                opt.apply(
                    dim,
                    &mut per_row[r * stride..(r + 1) * stride],
                    &grads[r * dim..(r + 1) * dim],
                );
            }
            opt.apply_batch(dim, &mut batch, &grads, rows).unwrap();
            let a: Vec<u32> = batch.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u32> = per_row.iter().map(|f| f.to_bits()).collect();
            assert_eq!(a, b, "{kind:?}: batched kernel must be bit-identical");
        }
    }

    #[test]
    fn batch_apply_rejects_bad_shapes() {
        let opt = OptimizerKind::Sgd { lr: 0.1 }.build();
        let mut p = vec![0.0f32; 8];
        assert!(opt.apply_batch(4, &mut p, &[0.0; 7], 2).is_err());
        assert!(opt.apply_batch(4, &mut p[..7], &[0.0; 8], 2).is_err());
    }
}
