//! Embedding optimizers executed on the parameter server.
//!
//! DLRM systems apply sparse-feature gradients on the PS so only gradients
//! travel over the wire. Optimizer state lives *inside the entry payload*,
//! immediately after the weights, so flush-backs and checkpoints capture
//! the exact training state and recovery resumes bit-identically.
//!
//! Payload layout: `[w_0..w_dim | state...]` where state is
//! - SGD: empty,
//! - AdaGrad: `dim` accumulator values,
//! - Adam: `dim` first moments, `dim` second moments, 1 step counter.

use serde::Serialize;

/// Optimizer selection + hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum OptimizerKind {
    /// Plain SGD: `w -= lr * g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// AdaGrad: `acc += g²; w -= lr * g / (√acc + eps)`. The standard
    /// choice for sparse embeddings (per-coordinate rates).
    Adagrad {
        /// Learning rate.
        lr: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
    /// Adam with bias correction; step counter stored per entry.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabilizer.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Extra `f32`s of per-entry state for dimension `dim`.
    pub fn state_f32s(&self, dim: usize) -> usize {
        match self {
            OptimizerKind::Sgd { .. } => 0,
            OptimizerKind::Adagrad { .. } => dim,
            OptimizerKind::Adam { .. } => 2 * dim + 1,
        }
    }

    /// Build the stateless applier.
    pub fn build(self) -> Optimizer {
        Optimizer { kind: self }
    }

    /// True if the update is *linear in the gradient*, so duplicate
    /// gradients for one key may be summed and applied in a single step:
    /// `w -= lr·g₁; w -= lr·g₂` ≡ `w -= lr·(g₁+g₂)` for SGD. Stateful
    /// optimizers (AdaGrad's accumulator, Adam's moments) update their
    /// state *between* applies, so coalescing would change the result —
    /// they fall back to sequential per-occurrence applies.
    pub fn coalescible(&self) -> bool {
        matches!(self, OptimizerKind::Sgd { .. })
    }
}

/// Applies gradients to an entry payload in place.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    kind: OptimizerKind,
}

impl Optimizer {
    /// The configured kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// See [`OptimizerKind::coalescible`].
    pub fn coalescible(&self) -> bool {
        self.kind.coalescible()
    }

    /// Apply gradient `grad` (length `dim`) to `payload`
    /// (length `dim + state_f32s(dim)`), updating weights and state.
    pub fn apply(&self, dim: usize, payload: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(grad.len(), dim);
        debug_assert_eq!(payload.len(), dim + self.kind.state_f32s(dim));
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                let (w, _) = payload.split_at_mut(dim);
                for i in 0..dim {
                    w[i] -= lr * grad[i];
                }
            }
            OptimizerKind::Adagrad { lr, eps } => {
                let (w, acc) = payload.split_at_mut(dim);
                for i in 0..dim {
                    let g = grad[i];
                    acc[i] += g * g;
                    w[i] -= lr * g / (acc[i].sqrt() + eps);
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let (w, state) = payload.split_at_mut(dim);
                let (m, rest) = state.split_at_mut(dim);
                let (v, t_slot) = rest.split_at_mut(dim);
                let t = t_slot[0] + 1.0;
                t_slot[0] = t;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for i in 0..dim {
                    let g = grad[i];
                    m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                    let m_hat = m[i] / bc1;
                    let v_hat = v[i] / bc2;
                    w[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step() {
        let opt = OptimizerKind::Sgd { lr: 0.5 }.build();
        let mut p = vec![1.0f32, 2.0];
        opt.apply(2, &mut p, &[0.2, -0.4]);
        assert_eq!(p, vec![0.9, 2.2]);
    }

    #[test]
    fn adagrad_accumulates_and_shrinks_steps() {
        let opt = OptimizerKind::Adagrad { lr: 1.0, eps: 0.0 }.build();
        let mut p = vec![0.0f32, 0.0]; // dim=1: [w, acc]
        opt.apply(1, &mut p, &[2.0]);
        // acc = 4, step = 1*2/2 = 1.
        assert!((p[0] + 1.0).abs() < 1e-6);
        assert!((p[1] - 4.0).abs() < 1e-6);
        let w_before = p[0];
        opt.apply(1, &mut p, &[2.0]);
        // Second identical gradient takes a *smaller* step.
        let step2 = (w_before - p[0]).abs();
        assert!(step2 < 1.0);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        let (lr, b1, b2, eps) = (0.1, 0.9, 0.999, 1e-8);
        let opt = OptimizerKind::Adam {
            lr,
            beta1: b1,
            beta2: b2,
            eps,
        }
        .build();
        let mut p = vec![0.0f32; 1 + 2 + 1]; // w, m, v, t
        opt.apply(1, &mut p, &[1.0]);
        // After bias correction the first step is ≈ lr regardless of betas.
        assert!((p[0] + lr).abs() < 1e-4, "w={}", p[0]);
        assert_eq!(p[3], 1.0, "step counter advanced");
        opt.apply(1, &mut p, &[1.0]);
        assert_eq!(p[3], 2.0);
    }

    #[test]
    fn coalescibility_gate() {
        assert!(OptimizerKind::Sgd { lr: 0.1 }.coalescible());
        assert!(!OptimizerKind::Adagrad { lr: 0.1, eps: 0.0 }.coalescible());
        assert!(!OptimizerKind::Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8
        }
        .coalescible());
    }

    #[test]
    fn sgd_coalesced_matches_sequential_exactly() {
        // Power-of-two values: both orders of summation are exact in f32,
        // so coalescing must be *bit-identical* to sequential applies.
        let opt = OptimizerKind::Sgd { lr: 1.0 }.build();
        let g1 = [0.5f32, -0.25];
        let g2 = [0.25f32, 0.5];
        let mut seq = vec![2.0f32, -4.0];
        opt.apply(2, &mut seq, &g1);
        opt.apply(2, &mut seq, &g2);
        let mut coalesced = vec![2.0f32, -4.0];
        let sum: Vec<f32> = g1.iter().zip(&g2).map(|(a, b)| a + b).collect();
        opt.apply(2, &mut coalesced, &sum);
        assert_eq!(seq, coalesced);
    }

    #[test]
    fn state_sizes() {
        assert_eq!(OptimizerKind::Sgd { lr: 0.1 }.state_f32s(8), 0);
        assert_eq!(
            OptimizerKind::Adagrad { lr: 0.1, eps: 0.0 }.state_f32s(8),
            8
        );
        assert_eq!(
            OptimizerKind::Adam {
                lr: 0.1,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8
            }
            .state_f32s(8),
            17
        );
    }

    #[test]
    fn gradient_descent_reduces_quadratic_loss() {
        // Minimize f(w) = (w - 3)² with each optimizer.
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Adagrad { lr: 0.8, eps: 1e-8 },
            OptimizerKind::Adam {
                lr: 0.3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ] {
            let opt = kind.build();
            let mut p = vec![0.0f32; 1 + kind.state_f32s(1)];
            for _ in 0..200 {
                let g = 2.0 * (p[0] - 3.0);
                opt.apply(1, &mut p, &[g]);
            }
            assert!(
                (p[0] - 3.0).abs() < 0.2,
                "{kind:?} failed to converge: w={}",
                p[0]
            );
        }
    }
}
