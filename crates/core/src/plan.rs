//! Per-request shard plans for the pull/push hot path.
//!
//! DLRM batches are heavily skewed (paper Table II: the top 0.1 % of
//! keys take ~90 % of accesses), so a request's key list contains the
//! same hot keys many times and scatters the rest across shards. The
//! per-key execution model pays one lock acquisition and one payload
//! access per *occurrence*. A [`ShardPlan`] restructures the request
//! once up front:
//!
//! 1. **bucket** — group the keys by shard, preserving request order
//!    within each group;
//! 2. **coalesce** — deduplicate within each group, remembering every
//!    occurrence position so pulls fan one payload read out to all
//!    positions and pushes can sum duplicate gradients (when the
//!    optimizer is linear in the gradient, see
//!    [`crate::OptimizerKind::coalescible`]);
//! 3. **partition** — split the groups into contiguous lane ranges
//!    balanced by unique-key count, for parallel execution with one
//!    lock acquisition per shard per request.
//!
//! The plan is pure data: the node executes it (`PsNode::pull`/`push`)
//! and the cost model prices it (`oe_simdevice::Cost::merge_parallel`).

use crate::Key;
use std::collections::HashMap;
use std::ops::Range;

/// One shard's slice of a request after duplicate coalescing.
#[derive(Debug)]
pub struct ShardGroup {
    /// Shard index in the node's shard vector.
    pub shard: usize,
    /// Distinct keys of this group, in first-occurrence order.
    pub uniques: Vec<Key>,
    /// For each unique key, the positions it occupies in the original
    /// request, in request order (`occs[i]` is never empty).
    pub occs: Vec<Vec<u32>>,
}

impl ShardGroup {
    /// Flatten the group back to its `(position, key)` occurrence list
    /// in original request order — the inverse of coalescing. Used when
    /// a router buckets a request but must keep per-occurrence payloads
    /// on the wire (e.g. gradient pushes whose coalescibility only the
    /// owning node's optimizer can decide).
    pub fn occurrences_in_request_order(&self) -> Vec<(u32, Key)> {
        let mut v: Vec<(u32, Key)> = Vec::with_capacity(self.occs.iter().map(Vec::len).sum());
        for (ui, occ) in self.occs.iter().enumerate() {
            for &pos in occ {
                v.push((pos, self.uniques[ui]));
            }
        }
        v.sort_unstable_by_key(|&(pos, _)| pos);
        v
    }
}

/// A batched request bucketed by shard and coalesced per group.
#[derive(Debug)]
pub struct ShardPlan {
    /// Non-empty shard groups, ascending by shard index.
    pub groups: Vec<ShardGroup>,
    /// Total key occurrences in the request.
    pub total_keys: usize,
    /// Total distinct keys across all groups.
    pub total_uniques: usize,
}

/// Intermediate result of the bucketing stage, before coalescing.
#[derive(Debug)]
pub struct ShardBuckets {
    /// `(position, key)` pairs per shard, request order preserved.
    buckets: Vec<Vec<(u32, Key)>>,
    total_keys: usize,
}

impl ShardBuckets {
    /// Stage 1: bucket `keys` by shard. `shard_of` must be a pure
    /// function of the key.
    pub fn bucket(keys: &[Key], shards: usize, shard_of: impl Fn(Key) -> usize) -> Self {
        Self::bucket_from(keys.iter().copied(), shards, shard_of)
    }

    /// Stage 1 over any key producer: scatter keys straight into shard
    /// buckets without requiring a materialized slice. This is the
    /// zero-copy entry point — a borrowed wire view (e.g.
    /// `oe_net::codec` key slices over the frame bytes) can feed the
    /// plan directly, so the only copy a request's keys ever take is
    /// wire → per-shard scratch.
    pub fn bucket_from(
        keys: impl Iterator<Item = Key>,
        shards: usize,
        shard_of: impl Fn(Key) -> usize,
    ) -> Self {
        let mut buckets: Vec<Vec<(u32, Key)>> = vec![Vec::new(); shards];
        let mut total_keys = 0usize;
        for (pos, key) in keys.enumerate() {
            buckets[shard_of(key)].push((pos as u32, key));
            total_keys += 1;
        }
        Self {
            buckets,
            total_keys,
        }
    }

    /// Stage 2: coalesce duplicates within each bucket into a
    /// [`ShardPlan`].
    pub fn coalesce(self) -> ShardPlan {
        let mut groups = Vec::new();
        let mut total_uniques = 0;
        for (shard, bucket) in self.buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut uniques: Vec<Key> = Vec::new();
            let mut occs: Vec<Vec<u32>> = Vec::new();
            let mut seen: HashMap<Key, usize> = HashMap::with_capacity(bucket.len());
            for (pos, key) in bucket {
                match seen.get(&key) {
                    Some(&ui) => occs[ui].push(pos),
                    None => {
                        seen.insert(key, uniques.len());
                        uniques.push(key);
                        occs.push(vec![pos]);
                    }
                }
            }
            total_uniques += uniques.len();
            groups.push(ShardGroup {
                shard,
                uniques,
                occs,
            });
        }
        ShardPlan {
            groups,
            total_keys: self.total_keys,
            total_uniques,
        }
    }
}

impl ShardPlan {
    /// Duplicate-key coalescing ratio: occurrences per unique key.
    pub fn dedup_ratio(&self) -> f64 {
        if self.total_uniques == 0 {
            1.0
        } else {
            self.total_keys as f64 / self.total_uniques as f64
        }
    }

    /// Stage 3: split the groups into at most `lanes` contiguous,
    /// non-empty ranges, balanced by unique-key count. Deterministic in
    /// the plan alone, so lane assignment (and therefore the per-lane
    /// simulated cost) is reproducible.
    pub fn partition(&self, lanes: usize) -> Vec<Range<usize>> {
        let lanes = lanes.max(1).min(self.groups.len().max(1));
        if self.groups.is_empty() {
            return Vec::new();
        }
        let total: usize = self.groups.iter().map(|g| g.uniques.len()).sum();
        let mut ranges = Vec::with_capacity(lanes);
        let mut start = 0usize;
        let mut remaining = total;
        for lane in 0..lanes {
            let lanes_left = lanes - lane;
            // Leave at least one group for each remaining lane.
            let max_end = self.groups.len() - (lanes_left - 1);
            let target = remaining.div_ceil(lanes_left);
            let mut end = start;
            let mut acc = 0usize;
            while end < max_end && (acc < target || end == start) {
                acc += self.groups[end].uniques.len();
                end += 1;
            }
            remaining -= acc;
            ranges.push(start..end);
            start = end;
        }
        debug_assert_eq!(start, self.groups.len());
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(keys: &[Key], shards: usize) -> ShardPlan {
        ShardBuckets::bucket(keys, shards, |k| (k % shards as u64) as usize).coalesce()
    }

    #[test]
    fn buckets_preserve_order_and_coalesce_duplicates() {
        // Shard 0: 4, 2, 4, 2, 4 · shard 1: 7, 7.
        let p = plan(&[4, 7, 2, 4, 2, 7, 4], 2);
        assert_eq!(p.total_keys, 7);
        assert_eq!(p.total_uniques, 3);
        assert_eq!(p.groups.len(), 2);
        let g0 = &p.groups[0];
        assert_eq!(g0.shard, 0);
        assert_eq!(g0.uniques, vec![4, 2]);
        assert_eq!(g0.occs, vec![vec![0, 3, 6], vec![2, 4]]);
        let g1 = &p.groups[1];
        assert_eq!(g1.uniques, vec![7]);
        assert_eq!(g1.occs, vec![vec![1, 5]]);
        assert!((p.dedup_ratio() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn occurrences_round_trip_through_coalescing() {
        let keys = [4u64, 7, 2, 4, 2, 7, 4];
        let p = plan(&keys, 2);
        // Group 0 holds positions {0,2,3,4,6}, group 1 holds {1,5};
        // flattening each group reproduces the original (pos, key)
        // pairs in request order.
        let g0 = p.groups[0].occurrences_in_request_order();
        assert_eq!(g0, vec![(0, 4), (2, 2), (3, 4), (4, 2), (6, 4)]);
        let g1 = p.groups[1].occurrences_in_request_order();
        assert_eq!(g1, vec![(1, 7), (5, 7)]);
        let mut all: Vec<(u32, u64)> = p
            .groups
            .iter()
            .flat_map(|g| g.occurrences_in_request_order())
            .collect();
        all.sort_unstable_by_key(|&(pos, _)| pos);
        let rebuilt: Vec<u64> = all.iter().map(|&(_, k)| k).collect();
        assert_eq!(rebuilt, keys);
    }

    #[test]
    fn empty_shards_are_skipped() {
        let p = plan(&[8, 8, 8], 4); // all land on shard 0
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].uniques, vec![8]);
    }

    #[test]
    fn partition_covers_all_groups_exactly_once() {
        let p = plan(&(0..97u64).collect::<Vec<_>>(), 16);
        for lanes in [1usize, 2, 3, 4, 16, 100] {
            let ranges = p.partition(lanes);
            assert!(ranges.len() <= lanes.min(p.groups.len()));
            let mut covered = 0;
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous");
                assert!(!r.is_empty(), "no empty lane");
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, p.groups.len(), "lanes={lanes}");
        }
    }

    #[test]
    fn partition_balances_by_uniques() {
        // One huge group + 7 tiny ones: the huge group must not drag
        // every other group into its lane.
        let mut keys: Vec<u64> = (0..800u64).map(|i| i * 8).collect(); // shard 0
        keys.extend(1..8u64); // shards 1..7, one key each
        let p = plan(&keys, 8);
        let ranges = p.partition(4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..1, "hot shard gets its own lane");
    }

    #[test]
    fn bucket_from_iterator_matches_slice_bucketing() {
        let keys = [4u64, 7, 2, 4, 2, 7, 4, 9, 0];
        let a = ShardBuckets::bucket(&keys, 3, |k| (k % 3) as usize).coalesce();
        let b = ShardBuckets::bucket_from(keys.iter().copied(), 3, |k| (k % 3) as usize).coalesce();
        assert_eq!(a.total_keys, b.total_keys);
        assert_eq!(a.total_uniques, b.total_uniques);
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.shard, gb.shard);
            assert_eq!(ga.uniques, gb.uniques);
            assert_eq!(ga.occs, gb.occs);
        }
    }

    #[test]
    fn empty_request_yields_empty_plan() {
        let p = plan(&[], 4);
        assert!(p.groups.is_empty());
        assert_eq!(p.dedup_ratio(), 1.0);
        assert!(p.partition(4).is_empty());
    }
}
