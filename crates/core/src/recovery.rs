//! Failure recovery (paper §V-C / §VI-E).
//!
//! `PMem-OE` recovery: (1) scan all embedding slots in PMem, discarding
//! versions newer than the Checkpointed Batch ID, (2) rebuild the DRAM
//! hash index. Entries stay in PMem — no payload copy — which is why the
//! paper measures 380 s vs 751–1513 s for checkpoint-file reload
//! (Fig. 14). The DRAM cache starts cold.

use crate::config::NodeConfig;
use crate::node::PsNode;
use crate::BatchId;
use oe_pmem::scan::{recover as pmem_recover, ScanReport};
use oe_simdevice::{Cost, Media};
use std::sync::Arc;

/// Outcome of a node recovery.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The underlying pool scan outcome.
    pub scan: ScanReport,
    /// Batch id training resumes after (the committed checkpoint).
    pub resume_batch: BatchId,
}

/// Recover a [`PsNode`] from crashed PMem media. Returns `None` if the
/// media holds no initialized pool. The recovery cost (scan + index
/// rebuild) is charged to `cost`.
pub fn recover_node(
    media: Arc<Media>,
    cfg: NodeConfig,
    cost: &mut Cost,
) -> Option<(PsNode, RecoveryReport)> {
    cfg.validate();
    let (pool, scan) = pmem_recover(media, cost)?;
    assert_eq!(
        pool.payload_bytes(),
        cfg.payload_bytes(),
        "recovery config must match the pool layout (dim/optimizer)"
    );
    let node = PsNode::from_recovery(cfg, pool, &scan);
    let resume_batch = scan.checkpoint_id;
    Some((node, RecoveryReport { scan, resume_batch }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PsEngine;
    use crate::optimizer::OptimizerKind;
    use oe_simdevice::Media;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    fn train_step(n: &PsNode, keys: &[u64], batch: u64, grad: f32) {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(keys, batch, &mut out, &mut cost);
        n.end_pull_phase(batch);
        let grads = vec![grad; keys.len() * 4];
        n.push(keys, &grads, batch, &mut cost);
    }

    #[test]
    fn recover_restores_exact_checkpoint_state() {
        let n = PsNode::new(cfg());
        let keys: Vec<u64> = (0..20).collect();
        // Batches 1..=3, checkpoint at 3.
        for b in 1..=3 {
            train_step(&n, &keys, b, 0.5);
        }
        n.request_checkpoint(3);
        train_step(&n, &keys, 4, 0.5); // commits ckpt 3 during maintenance
        assert_eq!(n.committed_checkpoint(), 3);
        let expected: Vec<Vec<f32>> = {
            // State at end of batch 3 = init - 3*0.5 per weight (SGD lr=1).
            keys.iter()
                .map(|&k| {
                    (0..4)
                        .map(|i| crate::init::init_weight(42, k, i, 0.01) - 1.5)
                        .collect()
                })
                .collect()
        };
        // Keep training past the checkpoint, then crash.
        train_step(&n, &keys, 5, 0.5);
        let media = Arc::new(Media::from_crash(n.pool().media().crash(11)));
        let mut cost = Cost::new();
        let (r, report) = recover_node(media, cfg(), &mut cost).expect("recoverable");
        assert_eq!(report.resume_batch, 3);
        assert_eq!(r.num_keys(), 20);
        for (i, &k) in keys.iter().enumerate() {
            let w = r.read_weights(k).expect("recovered key");
            for d in 0..4 {
                assert!(
                    (w[d] - expected[i][d]).abs() < 1e-5,
                    "key {k} dim {d}: {} vs {}",
                    w[d],
                    expected[i][d]
                );
            }
        }
        assert!(cost.total_ns() > 0, "recovery charges time");
    }

    #[test]
    fn recover_then_resume_training() {
        let n = PsNode::new(cfg());
        let keys: Vec<u64> = (0..8).collect();
        train_step(&n, &keys, 1, 0.25);
        n.request_checkpoint(1);
        train_step(&n, &keys, 2, 0.25);
        let media = Arc::new(Media::from_crash(n.pool().media().crash(5)));
        let mut cost = Cost::new();
        let (r, report) = recover_node(media, cfg(), &mut cost).unwrap();
        // Resume from batch 2 (redo it), then continue.
        for b in (report.resume_batch + 1)..=4 {
            train_step(&r, &keys, b, 0.25);
        }
        r.request_checkpoint(4);
        train_step(&r, &keys, 5, 0.25);
        assert_eq!(r.committed_checkpoint(), 4);
        // Final state: init - 5 * 0.25 (batches 1..=5 each applied once
        // in the surviving timeline).
        let w = r.read_weights(3).unwrap();
        let expect = crate::init::init_weight(42, 3, 0, 0.01) - 1.25;
        assert!((w[0] - expect).abs() < 1e-5, "{} vs {expect}", w[0]);
    }

    #[test]
    fn uninitialized_media_is_unrecoverable() {
        let media = Arc::new(Media::new(oe_simdevice::MediaConfig::pmem(1024)));
        let mut cost = Cost::new();
        assert!(recover_node(media, cfg(), &mut cost).is_none());
    }

    #[test]
    #[should_panic(expected = "recovery config must match")]
    fn mismatched_config_rejected() {
        let n = PsNode::new(cfg());
        train_step(&n, &[1], 1, 0.1);
        let media = Arc::new(Media::from_crash(n.pool().media().crash(1)));
        let mut wrong = cfg();
        wrong.dim = 8;
        let mut cost = Cost::new();
        let _ = recover_node(media, wrong, &mut cost);
    }
}
