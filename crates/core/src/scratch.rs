//! Pooled per-request scratch arenas for the pull/push hot paths.
//!
//! Steady-state training issues millions of identically-shaped requests
//! (fixed batch size, fixed embedding dimension). Before this module,
//! every request paid a handful of heap allocations: the decoded key and
//! gradient vectors on the server, and one payload-sized scratch buffer
//! plus one gradient accumulator *per lane* on the node. A [`Scratch`]
//! bundles all of those per-request buffers into one arena; a
//! [`ScratchPool`] recycles arenas keyed by request shape so a shape
//! seen twice never allocates again (the `Vec`s keep their capacity
//! across uses — `clear()` is free).
//!
//! The pool is a small sharded-by-shape shelf behind one mutex: acquire
//! and release are two short critical sections per request (or per
//! lane), far from contended next to the work a request performs.
//! Bounded shelves keep a pathological shape churn from hoarding memory.

use crate::Key;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};

/// Most-distinct request shapes the pool remembers.
const MAX_SHAPES: usize = 16;
/// Arenas kept per shape (≥ the lane count of a planned request).
const MAX_PER_SHAPE: usize = 32;

/// The shape of a request, used as the pool key: how many keys it
/// carries and how many f32s ride along (gradients, payloads, output
/// rows). Shapes only key the shelf — an arena acquired under one shape
/// may be grown freely; its capacity survives back into the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Keys in the request (0 for lane-local scratch).
    pub keys: usize,
    /// f32 payload of the request (grads, weights out, …).
    pub f32s: usize,
}

impl Shape {
    /// Shape of a wire request: `keys` keys and `f32s` gradient/weight
    /// f32s.
    pub fn request(keys: usize, f32s: usize) -> Self {
        Self { keys, f32s }
    }

    /// Shape of one execution lane's scratch on a node with the given
    /// payload width (keys don't key lane scratch; every lane of every
    /// request reuses the same shelf).
    pub fn lane(payload_f32s: usize) -> Self {
        Self {
            keys: 0,
            f32s: payload_f32s,
        }
    }
}

/// One request's (or one lane's) worth of reusable buffers. All start
/// empty; users `clear()`-free extend/resize them. Which fields a code
/// path uses is up to it — unused fields cost nothing.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Decoded request keys.
    pub keys: Vec<Key>,
    /// Large f32 buffer: decoded gradients, pulled weights, or the
    /// batched-kernel payload rows of a contiguous PMem run.
    pub rows: Vec<f32>,
    /// Second large f32 buffer: gathered gradient rows for the batched
    /// kernel (lives beside `rows` so one arena serves both sides).
    pub grad_rows: Vec<f32>,
    /// One payload-sized (`dim + state`) read/write scratch row.
    pub payload: Vec<f32>,
    /// One dim-sized gradient accumulator (duplicate coalescing).
    pub acc: Vec<f32>,
    /// Per-unique outcome tags (pull lanes record hit/miss codes here).
    pub tags: Vec<u8>,
    /// Unique-key indices of the current batched-kernel run (push lanes
    /// collect contiguous PMem-resident rows here, then apply one
    /// multi-row kernel and flush in order).
    pub run: Vec<u32>,
}

impl Scratch {
    fn clear(&mut self) {
        self.keys.clear();
        self.rows.clear();
        self.grad_rows.clear();
        self.payload.clear();
        self.acc.clear();
        self.tags.clear();
        self.run.clear();
    }
}

/// A [`Scratch`] checked out of a [`ScratchPool`]; returns itself to
/// the pool (cleared, capacity intact) on drop.
pub struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    shape: Shape,
    inner: Option<Scratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.inner.as_ref().expect("live until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.inner.as_mut().expect("live until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(mut s) = self.inner.take() {
            s.clear();
            self.pool.release(self.shape, s);
        }
    }
}

/// Shape-keyed recycling pool of [`Scratch`] arenas.
#[derive(Debug, Default)]
pub struct ScratchPool {
    shelves: Mutex<Vec<(Shape, Vec<Scratch>)>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out an arena for `shape`: recycled if this shape has been
    /// seen (zero allocations), freshly default-constructed otherwise.
    pub fn acquire(&self, shape: Shape) -> PooledScratch<'_> {
        let recycled = {
            let mut shelves = self.shelves.lock();
            shelves
                .iter_mut()
                .find(|(s, _)| *s == shape)
                .and_then(|(_, v)| v.pop())
        };
        PooledScratch {
            pool: self,
            shape,
            inner: Some(recycled.unwrap_or_default()),
        }
    }

    fn release(&self, shape: Shape, scratch: Scratch) {
        let mut shelves = self.shelves.lock();
        if let Some((_, v)) = shelves.iter_mut().find(|(s, _)| *s == shape) {
            if v.len() < MAX_PER_SHAPE {
                v.push(scratch);
            }
            return;
        }
        if shelves.len() < MAX_SHAPES {
            shelves.push((shape, vec![scratch]));
        }
        // Shape table full: let the arena drop. A workload cycling
        // through more than MAX_SHAPES shapes is not steady-state.
    }

    /// Arenas currently parked (test/diagnostic visibility).
    pub fn parked(&self) -> usize {
        self.shelves.lock().iter().map(|(_, v)| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_the_pool() {
        let pool = ScratchPool::new();
        let shape = Shape::request(128, 4096);
        let keys_ptr;
        {
            let mut s = pool.acquire(shape);
            s.keys.extend(0..128u64);
            s.rows.resize(4096, 0.0);
            keys_ptr = s.keys.as_ptr();
        }
        assert_eq!(pool.parked(), 1);
        let s = pool.acquire(shape);
        assert!(s.keys.is_empty() && s.rows.is_empty(), "cleared on return");
        assert!(s.keys.capacity() >= 128, "capacity retained");
        assert_eq!(s.keys.as_ptr(), keys_ptr, "same allocation reused");
    }

    #[test]
    fn shapes_do_not_mix() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.acquire(Shape::request(8, 64));
            a.rows.resize(64, 1.0);
        }
        // A different shape gets a fresh arena; the first stays parked.
        let b = pool.acquire(Shape::lane(40));
        assert!(b.rows.is_empty());
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn shelves_are_bounded() {
        let pool = ScratchPool::new();
        for i in 0..2 * MAX_SHAPES {
            let _ = pool.acquire(Shape::request(i, i));
        }
        assert!(pool.parked() <= MAX_SHAPES * MAX_PER_SHAPE);
        // A shape arriving after the table is full is simply dropped.
        assert!(pool
            .shelves
            .lock()
            .iter()
            .all(|(s, _)| *s != Shape::lane(8)));
        // Same shape many times in flight at once: shelf caps at
        // MAX_PER_SHAPE on the way back.
        let pool = ScratchPool::new();
        let held: Vec<_> = (0..2 * MAX_PER_SHAPE)
            .map(|_| pool.acquire(Shape::lane(8)))
            .collect();
        drop(held);
        let lane_parked = pool
            .shelves
            .lock()
            .iter()
            .find(|(s, _)| *s == Shape::lane(8))
            .map(|(_, v)| v.len())
            .unwrap();
        assert_eq!(lane_parked, MAX_PER_SHAPE);
    }
}
