//! Engine statistics: lock-free counters sampled by the trainer and the
//! figure harness (miss rates for Fig. 11, flush/commit counts for the
//! checkpoint experiments).
//!
//! Since the telemetry subsystem (S25) landed, the counters are
//! [`oe_telemetry::Counter`] handles. A default `EngineStats` is
//! detached (standalone atomics, exactly the old behaviour); an engine
//! that owns a [`Registry`] constructs them with
//! [`EngineStats::registered`] so the same counts show up in the
//! Prometheus-style exposition without double bookkeeping.
//! [`StatsSnapshot`] stays the stable point-in-time view.

use oe_telemetry::{Counter, Registry};
use serde::Serialize;

/// Lock-free counters updated by the hot paths.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Keys served by pulls.
    pub pulls: Counter,
    /// Pulls served from the DRAM cache.
    pub hits: Counter,
    /// Pulls served from PMem.
    pub misses: Counter,
    /// Brand-new entries initialized.
    pub new_entries: Counter,
    /// Keys updated by pushes.
    pub pushes: Counter,
    /// Cache evictions performed.
    pub evictions: Counter,
    /// Entry flushes to PMem (write-backs, incl. checkpoint-motivated).
    pub flushes: Counter,
    /// Entry loads from PMem into the cache.
    pub loads: Counter,
    /// Checkpoints committed (CBI advanced).
    pub ckpt_commits: Counter,
    /// Entries written by explicit checkpoint dumps (incremental baseline).
    pub ckpt_entries_written: Counter,
    /// PMem slots recycled by version-chain pruning.
    pub slots_recycled: Counter,
}

/// Point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Keys served by pulls.
    pub pulls: u64,
    /// Pulls served from the DRAM cache.
    pub hits: u64,
    /// Pulls served from PMem.
    pub misses: u64,
    /// Brand-new entries initialized.
    pub new_entries: u64,
    /// Keys updated by pushes.
    pub pushes: u64,
    /// Cache evictions performed.
    pub evictions: u64,
    /// Entry flushes to PMem.
    pub flushes: u64,
    /// Entry loads from PMem into the cache.
    pub loads: u64,
    /// Checkpoints committed.
    pub ckpt_commits: u64,
    /// Entries written by explicit checkpoint dumps.
    pub ckpt_entries_written: u64,
    /// PMem slots recycled by pruning.
    pub slots_recycled: u64,
}

impl EngineStats {
    /// Counters registered in `registry` under stable
    /// `oe_*_total` names, so engine stats and text exposition share
    /// one set of atomics.
    pub fn registered(registry: &Registry) -> Self {
        Self {
            pulls: registry.counter("oe_pulls_total"),
            hits: registry.counter("oe_cache_hits_total"),
            misses: registry.counter("oe_cache_misses_total"),
            new_entries: registry.counter("oe_new_entries_total"),
            pushes: registry.counter("oe_pushes_total"),
            evictions: registry.counter("oe_evictions_total"),
            flushes: registry.counter("oe_flushes_total"),
            loads: registry.counter("oe_loads_total"),
            ckpt_commits: registry.counter("oe_ckpt_commits_total"),
            ckpt_entries_written: registry.counter("oe_ckpt_entries_written_total"),
            slots_recycled: registry.counter("oe_slots_recycled_total"),
        }
    }

    /// Bump a counter.
    #[inline]
    pub fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pulls: self.pulls.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            new_entries: self.new_entries.get(),
            pushes: self.pushes.get(),
            evictions: self.evictions.get(),
            flushes: self.flushes.get(),
            loads: self.loads.get(),
            ckpt_commits: self.ckpt_commits.get(),
            ckpt_entries_written: self.ckpt_entries_written.get(),
            slots_recycled: self.slots_recycled.get(),
        }
    }
}

impl StatsSnapshot {
    /// Cache miss rate over pulls of *known* entries (new-entry
    /// initializations are not misses — nothing could have been cached).
    pub fn miss_rate(&self) -> f64 {
        let known = self.hits + self.misses;
        if known == 0 {
            0.0
        } else {
            self.misses as f64 / known as f64
        }
    }

    /// Difference of two snapshots (for per-phase deltas). Saturating:
    /// `Relaxed` counters loaded while hot paths run can be observed
    /// out of order across fields, so a later snapshot may appear to
    /// lag an earlier one — clamp to zero instead of panicking on
    /// underflow in debug builds.
    pub fn delta_since(&self, base: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pulls: self.pulls.saturating_sub(base.pulls),
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            new_entries: self.new_entries.saturating_sub(base.new_entries),
            pushes: self.pushes.saturating_sub(base.pushes),
            evictions: self.evictions.saturating_sub(base.evictions),
            flushes: self.flushes.saturating_sub(base.flushes),
            loads: self.loads.saturating_sub(base.loads),
            ckpt_commits: self.ckpt_commits.saturating_sub(base.ckpt_commits),
            ckpt_entries_written: self
                .ckpt_entries_written
                .saturating_sub(base.ckpt_entries_written),
            slots_recycled: self.slots_recycled.saturating_sub(base.slots_recycled),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_miss_rate() {
        let s = EngineStats::default();
        EngineStats::add(&s.hits, 90);
        EngineStats::add(&s.misses, 10);
        EngineStats::add(&s.pulls, 100);
        let snap = s.snapshot();
        assert!((snap.miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_miss_rate_is_zero() {
        assert_eq!(StatsSnapshot::default().miss_rate(), 0.0);
    }

    #[test]
    fn delta() {
        let s = EngineStats::default();
        EngineStats::add(&s.flushes, 5);
        let base = s.snapshot();
        EngineStats::add(&s.flushes, 3);
        let d = s.snapshot().delta_since(&base);
        assert_eq!(d.flushes, 3);
    }

    #[test]
    fn delta_saturates_instead_of_panicking() {
        let newer = StatsSnapshot {
            pulls: 5,
            ..Default::default()
        };
        let older = StatsSnapshot {
            pulls: 9,
            hits: 1,
            ..Default::default()
        };
        let d = newer.delta_since(&older);
        assert_eq!(d.pulls, 0);
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn registered_counters_feed_the_exposition() {
        let reg = Registry::new();
        let s = EngineStats::registered(&reg);
        EngineStats::add(&s.pulls, 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("oe_pulls_total"), Some(7));
        assert_eq!(s.snapshot().pulls, 7);
    }
}
