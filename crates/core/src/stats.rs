//! Engine statistics: lock-free counters sampled by the trainer and the
//! figure harness (miss rates for Fig. 11, flush/commit counts for the
//! checkpoint experiments).

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by the hot paths.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Keys served by pulls.
    pub pulls: AtomicU64,
    /// Pulls served from the DRAM cache.
    pub hits: AtomicU64,
    /// Pulls served from PMem.
    pub misses: AtomicU64,
    /// Brand-new entries initialized.
    pub new_entries: AtomicU64,
    /// Keys updated by pushes.
    pub pushes: AtomicU64,
    /// Cache evictions performed.
    pub evictions: AtomicU64,
    /// Entry flushes to PMem (write-backs, incl. checkpoint-motivated).
    pub flushes: AtomicU64,
    /// Entry loads from PMem into the cache.
    pub loads: AtomicU64,
    /// Checkpoints committed (CBI advanced).
    pub ckpt_commits: AtomicU64,
    /// Entries written by explicit checkpoint dumps (incremental baseline).
    pub ckpt_entries_written: AtomicU64,
    /// PMem slots recycled by version-chain pruning.
    pub slots_recycled: AtomicU64,
}

/// Point-in-time copy of [`EngineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StatsSnapshot {
    /// Keys served by pulls.
    pub pulls: u64,
    /// Pulls served from the DRAM cache.
    pub hits: u64,
    /// Pulls served from PMem.
    pub misses: u64,
    /// Brand-new entries initialized.
    pub new_entries: u64,
    /// Keys updated by pushes.
    pub pushes: u64,
    /// Cache evictions performed.
    pub evictions: u64,
    /// Entry flushes to PMem.
    pub flushes: u64,
    /// Entry loads from PMem into the cache.
    pub loads: u64,
    /// Checkpoints committed.
    pub ckpt_commits: u64,
    /// Entries written by explicit checkpoint dumps.
    pub ckpt_entries_written: u64,
    /// PMem slots recycled by pruning.
    pub slots_recycled: u64,
}

impl EngineStats {
    /// Bump a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pulls: self.pulls.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            new_entries: self.new_entries.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            ckpt_commits: self.ckpt_commits.load(Ordering::Relaxed),
            ckpt_entries_written: self.ckpt_entries_written.load(Ordering::Relaxed),
            slots_recycled: self.slots_recycled.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Cache miss rate over pulls of *known* entries (new-entry
    /// initializations are not misses — nothing could have been cached).
    pub fn miss_rate(&self) -> f64 {
        let known = self.hits + self.misses;
        if known == 0 {
            0.0
        } else {
            self.misses as f64 / known as f64
        }
    }

    /// Difference of two snapshots (for per-phase deltas).
    pub fn delta_since(&self, base: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pulls: self.pulls - base.pulls,
            hits: self.hits - base.hits,
            misses: self.misses - base.misses,
            new_entries: self.new_entries - base.new_entries,
            pushes: self.pushes - base.pushes,
            evictions: self.evictions - base.evictions,
            flushes: self.flushes - base.flushes,
            loads: self.loads - base.loads,
            ckpt_commits: self.ckpt_commits - base.ckpt_commits,
            ckpt_entries_written: self.ckpt_entries_written - base.ckpt_entries_written,
            slots_recycled: self.slots_recycled - base.slots_recycled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_miss_rate() {
        let s = EngineStats::default();
        EngineStats::add(&s.hits, 90);
        EngineStats::add(&s.misses, 10);
        EngineStats::add(&s.pulls, 100);
        let snap = s.snapshot();
        assert!((snap.miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_miss_rate_is_zero() {
        assert_eq!(StatsSnapshot::default().miss_rate(), 0.0);
    }

    #[test]
    fn delta() {
        let s = EngineStats::default();
        EngineStats::add(&s.flushes, 5);
        let base = s.snapshot();
        EngineStats::add(&s.flushes, 3);
        let d = s.snapshot().delta_since(&base);
        assert_eq!(d.flushes, 3);
    }
}
