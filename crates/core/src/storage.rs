//! The storage-backend seam: where a [`PsNode`]'s durable slots live.
//!
//! The paper's Table V price-performance argument — and TrainingCXL's
//! disaggregated extension of it — hinge on *where* embedding state
//! physically resides. [`StorageBackend`] makes that a pluggable axis:
//! the node charges every slot operation through the trait, so a media
//! topology is one impl, not a node rewrite.
//!
//! Three arms ship:
//!
//! - [`LocalPmem`]: today's path — a [`PmemPool`] over local Optane
//!   media. The default trait methods delegate straight to the pool,
//!   so this arm is **bit-identical** to the pre-trait node (the
//!   crashmc sweep runs unchanged against it).
//! - [`DramStore`]: the volatile baseline — the same pool layout over
//!   DRAM media. Fast, but a crash loses everything (the recovery
//!   tests demonstrate exactly that).
//! - `RemotePool` (in the `oe-pool` crate): the pool layout over
//!   fabric-attached PMem shared by many nodes, with every operation
//!   paying a fabric surcharge and recovery running *near the pool*.
//!
//! [`PsNode`]: crate::node::PsNode

use oe_pmem::{PmemPool, PoolConfig, SlotHeader, SlotId};
use oe_simdevice::{Cost, Media, MediaConfig};
use std::sync::Arc;

/// Where a node's durable slots live. Every slot operation the node
/// performs goes through these methods; the default bodies delegate to
/// the wrapped [`PmemPool`] unchanged, so an arm that adds no transport
/// cost (local PMem, DRAM) is charge-for-charge identical to calling
/// the pool directly.
///
/// Arms that interpose a transport (the remote pool) override the five
/// slot ops to add their surcharges *around* the delegated call — the
/// pool's own media events stay identical, which is what keeps
/// recovery and crash enumeration honest across arms.
pub trait StorageBackend: Send + Sync {
    /// The slot pool this backend wraps. Crash tooling, recovery and
    /// telemetry reach the media through here.
    fn pool(&self) -> &PmemPool;

    /// Stable short name for reports ("pmem", "dram", "pool").
    fn label(&self) -> &'static str;

    /// Allocate a slot.
    fn alloc(&self, cost: &mut Cost) -> SlotId {
        self.pool().alloc(cost)
    }

    /// Durably mark a slot free.
    fn free(&self, id: SlotId, cost: &mut Cost) {
        self.pool().free(id, cost)
    }

    /// Two-phase durable slot write (payload then valid-flip).
    fn write_slot(&self, id: SlotId, key: u64, version: u64, payload: &[f32], cost: &mut Cost) {
        self.pool().write_slot(id, key, version, payload, cost)
    }

    /// Read a slot's payload; `None` if the slot is not valid.
    fn read_slot(&self, id: SlotId, out: &mut [f32], cost: &mut Cost) -> Option<SlotHeader> {
        self.pool().read_slot(id, out, cost)
    }

    /// Durably advance the Checkpointed Batch ID in the pool root.
    fn set_checkpoint_id(&self, id: u64, cost: &mut Cost) {
        self.pool().set_checkpoint_id(id, cost)
    }
}

/// Local Optane PMem — the paper's configuration and the bit-identical
/// default. Pure delegation: no method overrides.
pub struct LocalPmem {
    pool: PmemPool,
}

impl LocalPmem {
    /// Wrap an existing pool (freshly created or recovered).
    pub fn new(pool: PmemPool) -> Self {
        Self { pool }
    }

    /// Create a fresh pool on new PMem media.
    pub fn create(cfg: PoolConfig, cost: &mut Cost) -> Self {
        Self::new(PmemPool::create(cfg, cost))
    }
}

impl StorageBackend for LocalPmem {
    fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn label(&self) -> &'static str {
        "pmem"
    }
}

/// Volatile DRAM baseline: the same slot layout over DRAM media.
/// Stores apply directly (no flush events), reads charge DRAM time —
/// and a crash wipes the lot, so "recovery" restores an empty node.
pub struct DramStore {
    pool: PmemPool,
}

impl DramStore {
    /// Create a fresh pool over new DRAM media sized like `cfg`.
    pub fn create(cfg: PoolConfig, cost: &mut Cost) -> Self {
        let media = Arc::new(Media::new(MediaConfig::dram(cfg.capacity)));
        Self {
            pool: PmemPool::create_on(media, cfg.payload_bytes, cost),
        }
    }
}

impl StorageBackend for DramStore {
    fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn label(&self) -> &'static str {
        "dram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::{CostKind, DeviceKind};

    fn cfg() -> PoolConfig {
        PoolConfig {
            payload_bytes: 32,
            capacity: 64,
        }
    }

    /// The local arm's charge stream is the pool's own, untouched:
    /// same ops, same nanoseconds, same media event count.
    #[test]
    fn local_arm_is_bit_identical_to_direct_pool_use() {
        let mut direct_cost = Cost::new();
        let direct = PmemPool::create(cfg(), &mut direct_cost);
        let mut trait_cost = Cost::new();
        let backend = LocalPmem::create(cfg(), &mut trait_cost);
        assert_eq!(direct_cost, trait_cost);

        let mut a = Cost::new();
        let id = direct.alloc(&mut a);
        direct.write_slot(id, 7, 3, &[1.0; 8], &mut a);
        let mut out = [0f32; 8];
        direct.read_slot(id, &mut out, &mut a).unwrap();
        direct.set_checkpoint_id(3, &mut a);
        direct.free(id, &mut a);

        let mut b = Cost::new();
        let tid = backend.alloc(&mut b);
        backend.write_slot(tid, 7, 3, &[1.0; 8], &mut b);
        let mut tout = [0f32; 8];
        backend.read_slot(tid, &mut tout, &mut b).unwrap();
        backend.set_checkpoint_id(3, &mut b);
        backend.free(tid, &mut b);

        assert_eq!(id, tid);
        assert_eq!(out, tout);
        assert_eq!(a, b);
        assert_eq!(
            direct.media().persistence_events(),
            backend.pool().media().persistence_events()
        );
    }

    /// DRAM arm: correct reads while up, zero PMem charges, nothing
    /// durable after a crash.
    #[test]
    fn dram_arm_is_volatile_and_charges_dram() {
        let mut cost = Cost::new();
        let backend = DramStore::create(cfg(), &mut cost);
        assert_eq!(backend.pool().media().timing().kind, DeviceKind::Dram);

        let id = backend.alloc(&mut cost);
        backend.write_slot(id, 42, 1, &[2.5; 8], &mut cost);
        let mut out = [0f32; 8];
        let h = backend.read_slot(id, &mut out, &mut cost).unwrap();
        assert_eq!(h.key, 42);
        assert_eq!(out, [2.5; 8]);
        assert_eq!(cost.ns(CostKind::PmemWrite), 0);
        assert_eq!(cost.ns(CostKind::PmemRead), 0);
        assert!(cost.ns(CostKind::DramTransfer) > 0);

        let image = backend.pool().media().crash(1);
        assert!(image.bytes().iter().all(|&b| b == 0), "DRAM crash wipes");
    }
}
