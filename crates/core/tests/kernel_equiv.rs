//! Bit-identity sweep for the vectorized optimizer kernels.
//!
//! The `chunks_exact(KERNEL_LANES)` kernels must produce *exactly* the
//! bits of the scalar reference loop — not approximately: checkpoint
//! digests, crash-recovery comparisons, and the `parallel_equiv` suite
//! all compare payloads bit for bit, so a single differently-rounded
//! lane would surface as corruption. This sweep drives every optimizer
//! across dimensions that exercise the full-lane, remainder-only, and
//! mixed paths, over many seeded random payload/gradient streams, and
//! compares `to_bits()` after every step. The batched multi-row kernel
//! is held to the same standard against per-row applies.

use oe_core::optimizer::{Optimizer, OptimizerKind, KERNEL_LANES};

/// Dimensions straddling the lane width: below, at, above, multiples,
/// and off-by-one around multiples — every mix of vector body and
/// scalar remainder.
const DIMS: &[usize] = &[1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 40, 64];

const SEEDS: &[u64] = &[1, 2, 3, 0xDEAD_BEEF, 0x5EED_CAFE];

/// splitmix64: tiny, seedable, and good enough to exercise every
/// rounding path (no external RNG crates on the test path).
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in [-1, 1).
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    /// Uniform f32 in [0, 1) — for state that must stay non-negative
    /// (AdaGrad accumulators, Adam second moments).
    fn next_pos_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

fn kinds() -> Vec<OptimizerKind> {
    vec![
        OptimizerKind::Sgd { lr: 0.05 },
        OptimizerKind::Sgd { lr: 1.0 },
        OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 },
        OptimizerKind::Adagrad { lr: 0.9, eps: 1e-4 },
        OptimizerKind::Adam {
            lr: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        OptimizerKind::Adam {
            lr: 0.1,
            beta1: 0.8,
            beta2: 0.99,
            eps: 1e-6,
        },
    ]
}

/// A payload whose state region respects each optimizer's invariants
/// (accumulators and second moments non-negative, step counter a small
/// whole number) so the sweep exercises realistic value ranges.
fn random_payload(kind: OptimizerKind, dim: usize, rng: &mut SplitMix) -> Vec<f32> {
    let mut p: Vec<f32> = (0..dim).map(|_| rng.next_f32() * 2.0).collect();
    match kind {
        OptimizerKind::Sgd { .. } => {}
        OptimizerKind::Adagrad { .. } => {
            p.extend((0..dim).map(|_| rng.next_pos_f32() * 4.0));
        }
        OptimizerKind::Adam { .. } => {
            p.extend((0..dim).map(|_| rng.next_f32())); // m
            p.extend((0..dim).map(|_| rng.next_pos_f32())); // v ≥ 0
            p.push((rng.next_u64() % 64) as f32); // t
        }
    }
    p
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

#[test]
fn vectorized_matches_scalar_reference_bit_for_bit() {
    for kind in kinds() {
        let vec_opt = kind.build();
        let ref_opt = kind.build_scalar();
        for &dim in DIMS {
            for &seed in SEEDS {
                let mut rng = SplitMix(seed ^ (dim as u64) << 32);
                let mut a = random_payload(kind, dim, &mut rng);
                let mut b = a.clone();
                // Several steps: state evolved by the kernel feeds back
                // into the next step, so drift would compound and show.
                for step in 0..8 {
                    let grad: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
                    vec_opt.apply(dim, &mut a, &grad);
                    ref_opt.apply_reference(dim, &mut b, &grad);
                    assert_eq!(
                        bits(&a),
                        bits(&b),
                        "{kind:?} dim={dim} seed={seed} step={step}: \
                         vectorized kernel diverged from scalar reference"
                    );
                }
            }
        }
    }
}

#[test]
fn build_scalar_and_build_agree() {
    // The scalar-pinned applier (the bench baseline and the
    // `scalar_kernels` config escape hatch) is the same math, so the
    // two builders must be interchangeable bit for bit.
    for kind in kinds() {
        let fast = kind.build();
        let slow = kind.build_scalar();
        for &dim in &[7usize, 8, 33] {
            let mut rng = SplitMix(99 + dim as u64);
            let mut a = random_payload(kind, dim, &mut rng);
            let mut b = a.clone();
            let grad: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
            fast.apply(dim, &mut a, &grad);
            slow.apply(dim, &mut b, &grad);
            assert_eq!(bits(&a), bits(&b), "{kind:?} dim={dim}");
        }
    }
}

#[test]
fn batched_kernel_matches_per_row_applies() {
    for kind in kinds() {
        let opt = kind.build();
        for &dim in &[1usize, 5, 8, 17, 32] {
            let stride = dim + kind.state_f32s(dim);
            for rows in [1usize, 2, 7, 16] {
                let mut rng = SplitMix(0xAB5E * (dim as u64 + 1) + rows as u64);
                let mut batch = Vec::with_capacity(rows * stride);
                for _ in 0..rows {
                    batch.extend(random_payload(kind, dim, &mut rng));
                }
                let grads: Vec<f32> = (0..rows * dim).map(|_| rng.next_f32()).collect();
                let mut per_row = batch.clone();
                for r in 0..rows {
                    opt.apply(
                        dim,
                        &mut per_row[r * stride..(r + 1) * stride],
                        &grads[r * dim..(r + 1) * dim],
                    );
                }
                opt.apply_batch(dim, &mut batch, &grads, rows).unwrap();
                assert_eq!(
                    bits(&batch),
                    bits(&per_row),
                    "{kind:?} dim={dim} rows={rows}: batched kernel diverged"
                );
            }
        }
    }
}

#[test]
fn shape_errors_are_structured_and_nonmutating() {
    for kind in kinds() {
        let opt: Optimizer = kind.build();
        let dim = KERNEL_LANES + 1;
        let expected = dim + kind.state_f32s(dim);
        let mut rng = SplitMix(7);
        let before = random_payload(kind, dim, &mut rng);

        // Short gradient.
        let mut p = before.clone();
        let err = opt
            .try_apply(dim, &mut p, &vec![0.5; dim - 1])
            .expect_err("short gradient must be rejected");
        assert_eq!(
            (err.dim, err.grad_len, err.payload_len, err.payload_expected),
            (dim, dim - 1, expected, expected)
        );
        assert_eq!(bits(&p), bits(&before), "payload untouched on error");

        // Long gradient.
        assert!(opt.try_apply(dim, &mut p, &vec![0.5; dim + 1]).is_err());

        // Wrong payload length (off by one either way).
        let mut long = before.clone();
        long.push(0.0);
        assert!(opt.try_apply(dim, &mut long, &vec![0.5; dim]).is_err());
        let mut short = before.clone();
        short.pop();
        assert!(opt.try_apply(dim, &mut short, &vec![0.5; dim]).is_err());

        // Batched shape mismatches.
        let mut rows2 = [before.clone(), before.clone()].concat();
        assert!(opt
            .apply_batch(dim, &mut rows2, &vec![0.0; 2 * dim - 1], 2)
            .is_err());
        assert!(opt
            .apply_batch(dim, &mut rows2[..2 * expected - 1], &vec![0.0; 2 * dim], 2)
            .is_err());

        // The error renders the mismatch for humans.
        let text = err.to_string();
        assert!(text.contains("shape mismatch"), "{text}");
    }
}
