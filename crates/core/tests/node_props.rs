//! Property tests over the PS node's operational envelope: arbitrary
//! interleavings of pulls, pushes, maintenance, and checkpoint requests
//! must preserve the node's structural invariants regardless of cache
//! size, shard count, or policy.

use oe_cache::{AdmissionKind, PolicyKind};
use oe_core::engine::PsEngine;
use oe_core::{NodeConfig, OptimizerKind, PsNode};
use oe_simdevice::Cost;
use proptest::prelude::*;

const DIM: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    Pull { keys: Vec<u64>, advance: bool },
    Push { keys: Vec<u64> },
    Maintain,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let keys = prop::collection::vec(0u64..40, 1..12);
    prop_oneof![
        4 => (keys.clone(), prop::bool::ANY).prop_map(|(keys, advance)| Op::Pull { keys, advance }),
        3 => keys.prop_map(|keys| Op::Push { keys }),
        2 => Just(Op::Maintain),
        1 => Just(Op::Checkpoint),
    ]
}

fn node_cfg(
    cache_entries: usize,
    shards: usize,
    policy: PolicyKind,
    adm: AdmissionKind,
) -> NodeConfig {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg.shards = shards;
    cfg.replacement = policy;
    cfg.admission = adm;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants under arbitrary op interleavings:
    /// - every pulled key becomes readable and stays finite,
    /// - num_keys only grows and equals the distinct pulled set,
    /// - the committed checkpoint never exceeds the latest batch,
    /// - stats counters are internally consistent.
    #[test]
    fn node_invariants_hold(
        ops in prop::collection::vec(op_strategy(), 1..50),
        cache_entries in 2usize..32,
        shards in 1usize..4,
        policy_pick in 0u8..3,
        doorkeeper in prop::bool::ANY,
    ) {
        let policy = [PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Clock][policy_pick as usize];
        let adm = if doorkeeper { AdmissionKind::SecondTouch } else { AdmissionKind::Always };
        let node = PsNode::new(node_cfg(cache_entries, shards, policy, adm));

        let mut batch = 1u64;
        let mut known = std::collections::BTreeSet::new();
        let mut pulled_this_batch: std::collections::BTreeSet<u64> = Default::default();
        let mut cost = Cost::new();
        let mut out = Vec::new();

        for op in ops {
            match op {
                Op::Pull { mut keys, advance } => {
                    keys.sort_unstable();
                    keys.dedup();
                    out.clear();
                    node.pull(&keys, batch, &mut out, &mut cost);
                    prop_assert_eq!(out.len(), keys.len() * DIM);
                    prop_assert!(out.iter().all(|v| v.is_finite()));
                    known.extend(keys.iter().copied());
                    pulled_this_batch.extend(keys.iter().copied());
                    if advance {
                        node.end_pull_phase(batch);
                        batch += 1;
                        pulled_this_batch.clear();
                    }
                }
                Op::Push { mut keys } => {
                    keys.sort_unstable();
                    keys.dedup();
                    // Only push keys that exist (the engine contract).
                    keys.retain(|k| known.contains(k));
                    if keys.is_empty() {
                        continue;
                    }
                    let grads = vec![0.01f32; keys.len() * DIM];
                    node.push(&keys, &grads, batch, &mut cost);
                }
                Op::Maintain => {
                    node.end_pull_phase(batch);
                }
                Op::Checkpoint => {
                    // Synchronous checkpointing contract: request at a
                    // batch boundary with the latest completed batch.
                    node.end_pull_phase(batch);
                    node.request_checkpoint(batch);
                    batch += 1;
                    pulled_this_batch.clear();
                }
            }
            prop_assert_eq!(node.num_keys(), known.len());
            prop_assert!(node.committed_checkpoint() <= batch);
        }
        // Final consistency: every known key is readable and finite.
        for &k in &known {
            let w = node.read_weights(k);
            prop_assert!(w.is_some(), "key {} readable", k);
            prop_assert!(w.unwrap().iter().all(|v| v.is_finite()));
        }
        let s = node.stats();
        prop_assert!(s.hits + s.misses + s.new_entries == s.pulls,
            "pull accounting: {} + {} + {} vs {}", s.hits, s.misses, s.new_entries, s.pulls);
    }
}
