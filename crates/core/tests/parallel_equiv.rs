//! Shard-parallel execution equivalence: the shard-plan pull/push path
//! must be a pure *performance* transform. These tests sweep
//! deterministic skewed workloads (splitmix64-derived, multiple seeds —
//! a property sweep without an external generator dependency) and
//! assert, for every parallelism level:
//!
//! - bit-identical weights after interleaved pull/maintain/push epochs;
//! - identical [`StatsSnapshot`]s (the occurrence-weighted accounting
//!   preserves `hits + misses + new_entries == pulls` exactly);
//! - identical `Serialized` virtual time (a global-lock critical
//!   section never parallelizes, whatever the lane count).
//!
//! Duplicate-key semantics get their own tests: SGD (linear in the
//! gradient) coalesces duplicates into one summed apply and must match
//! sequential applies bit-exactly on exactly-representable values;
//! AdaGrad (stateful) must fall back to per-occurrence applies and match
//! separate pushes bit-exactly on *arbitrary* values.

use oe_core::{NodeConfig, OptimizerKind, PsEngine, PsNode};
use oe_simdevice::{Cost, CostKind};

/// SplitMix64, the same mixer the node uses for sharding — reused here
/// as a tiny deterministic RNG so the sweep needs no external crate.
fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Skewed batch: ~50% of draws hit a small hot set (duplicates within
/// the batch guaranteed), the rest spread over a large cold range.
fn skewed_batch(seed: u64, len: usize, hot: u64, cold: u64) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let r = mix(seed ^ (i as u64).wrapping_mul(0x9E37));
            if r.is_multiple_of(2) {
                r % hot
            } else {
                hot + (r / 2) % cold
            }
        })
        .collect()
}

fn grads_for(keys: &[u64], dim: usize, seed: u64) -> Vec<f32> {
    (0..keys.len() * dim)
        .map(|i| {
            // Exactly-representable small multiples of 2⁻⁴ keep SGD
            // coalescing comparisons meaningful but non-trivial.
            let r = mix(seed ^ (i as u64) << 17);
            ((r % 33) as f32 - 16.0) * 0.0625
        })
        .collect()
}

fn node_with(optimizer: OptimizerKind, parallelism: usize, cache_entries: usize) -> PsNode {
    let mut cfg = NodeConfig::small(8);
    cfg.optimizer = optimizer;
    cfg.shards = 8;
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg.parallelism = parallelism;
    PsNode::new(cfg)
}

/// Drive `epochs` pull → maintain → push rounds of a skewed workload and
/// return (per-key weights, stats, total Serialized ns across requests).
fn run_epochs(node: &PsNode, seed: u64, epochs: u64) -> (Vec<(u64, Vec<f32>)>, u64) {
    let dim = node.config().dim;
    let mut serialized = 0;
    for e in 0..epochs {
        let keys = skewed_batch(seed.wrapping_add(e), 96, 12, 64);
        let grads = grads_for(&keys, dim, seed ^ e);
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&keys, e + 1, &mut out, &mut cost);
        node.end_pull_phase(e + 1);
        node.push(&keys, &grads, e + 1, &mut cost);
        if e % 3 == 2 {
            node.request_checkpoint(e + 1);
        }
        serialized += cost.ns(CostKind::Serialized);
    }
    let mut weights: Vec<(u64, Vec<f32>)> = (0..76u64)
        .filter_map(|k| node.read_weights(k).map(|w| (k, w)))
        .collect();
    weights.sort_by_key(|(k, _)| *k);
    (weights, serialized)
}

#[test]
fn parallelism_levels_are_bit_identical_for_sgd() {
    for seed in [1u64, 99, 2024] {
        let reference = node_with(OptimizerKind::Sgd { lr: 0.5 }, 1, 24);
        let (ref_w, ref_ser) = run_epochs(&reference, seed, 6);
        for parallelism in [4usize, 8] {
            let n = node_with(OptimizerKind::Sgd { lr: 0.5 }, parallelism, 24);
            let (w, ser) = run_epochs(&n, seed, 6);
            assert_eq!(ref_w, w, "seed {seed} parallelism {parallelism}");
            assert_eq!(
                reference.stats(),
                n.stats(),
                "seed {seed} parallelism {parallelism}"
            );
            assert_eq!(
                ref_ser, ser,
                "Serialized time must not depend on lane count"
            );
        }
    }
}

#[test]
fn parallelism_levels_are_bit_identical_for_adagrad() {
    let opt = OptimizerKind::Adagrad { lr: 0.1, eps: 1e-8 };
    for seed in [7u64, 4242] {
        let reference = node_with(opt, 1, 24);
        let (ref_w, ref_ser) = run_epochs(&reference, seed, 5);
        for parallelism in [4usize, 8] {
            let n = node_with(opt, parallelism, 24);
            let (w, ser) = run_epochs(&n, seed, 5);
            assert_eq!(ref_w, w, "seed {seed} parallelism {parallelism}");
            assert_eq!(reference.stats(), n.stats());
            assert_eq!(ref_ser, ser);
        }
    }
}

#[test]
fn plan_path_matches_legacy_on_duplicate_free_batches() {
    // With no duplicates, the plan path must reproduce the per-key
    // path's weights AND stats exactly (same reads, same accounting).
    for seed in [3u64, 77] {
        let legacy = node_with(OptimizerKind::Sgd { lr: 0.25 }, 0, 24);
        let planned = node_with(OptimizerKind::Sgd { lr: 0.25 }, 1, 24);
        let dim = 8;
        for e in 0..5u64 {
            let mut keys = skewed_batch(seed.wrapping_add(e), 96, 12, 64);
            keys.sort_unstable();
            keys.dedup();
            let grads = grads_for(&keys, dim, seed ^ e);
            for n in [&legacy, &planned] {
                let mut out = Vec::new();
                let mut cost = Cost::new();
                n.pull(&keys, e + 1, &mut out, &mut cost);
                n.end_pull_phase(e + 1);
                n.push(&keys, &grads, e + 1, &mut cost);
            }
        }
        for k in 0..76u64 {
            assert_eq!(legacy.read_weights(k), planned.read_weights(k), "key {k}");
        }
        assert_eq!(legacy.stats(), planned.stats(), "seed {seed}");
    }
}

#[test]
fn sgd_coalescing_matches_sequential_applies() {
    // Power-of-two gradient values make f32 summation exact, so the
    // coalesced duplicate apply must be bit-identical to pushing each
    // occurrence separately.
    let coalesced = node_with(OptimizerKind::Sgd { lr: 1.0 }, 1, 24);
    let separate = node_with(OptimizerKind::Sgd { lr: 1.0 }, 1, 24);
    let dim = 8;
    let key = 5u64;
    let g1: Vec<f32> = (0..dim).map(|i| 0.25 * (i as f32 + 1.0)).collect();
    let g2: Vec<f32> = (0..dim).map(|i| -0.5 * (i as f32)).collect();
    let g3: Vec<f32> = (0..dim).map(|_| 0.125).collect();
    for n in [&coalesced, &separate] {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[key], 1, &mut out, &mut cost);
        n.end_pull_phase(1);
        // Zero the weights exactly (SGD, lr = 1: w − w = 0), so every
        // later intermediate is an exact dyadic rational and f32
        // summation order cannot introduce rounding differences.
        n.push(&[key], &out, 1, &mut cost);
        assert_eq!(n.read_weights(key).unwrap(), vec![0.0; dim]);
    }
    let mut cost = Cost::new();
    // One request with the key three times → one summed apply...
    let batch_grads: Vec<f32> = [g1.clone(), g2.clone(), g3.clone()].concat();
    coalesced.push(&[key, key, key], &batch_grads, 1, &mut cost);
    // ...versus three single-occurrence pushes (no coalescing possible).
    separate.push(&[key], &g1, 1, &mut cost);
    separate.push(&[key], &g2, 1, &mut cost);
    separate.push(&[key], &g3, 1, &mut cost);
    assert_eq!(coalesced.read_weights(key), separate.read_weights(key));
    // Pushes count occurrences, not applies: 1 zeroing + 3 occurrences.
    assert_eq!(coalesced.stats().pushes, 4);
    assert_eq!(separate.stats().pushes, 4);
}

#[test]
fn stateful_optimizer_falls_back_to_sequential_applies() {
    // AdaGrad's accumulator updates between applies; the plan path must
    // NOT coalesce. Arbitrary (non-representable-sum) values: bit
    // equality holds only because both sides apply sequentially in
    // occurrence order.
    let opt = OptimizerKind::Adagrad { lr: 0.3, eps: 1e-8 };
    let duplicated = node_with(opt, 1, 24);
    let separate = node_with(opt, 1, 24);
    let dim = 8;
    let key = 11u64;
    let g1: Vec<f32> = (0..dim).map(|i| 0.1 + 0.017 * i as f32).collect();
    let g2: Vec<f32> = (0..dim).map(|i| -0.23 + 0.003 * i as f32).collect();
    for n in [&duplicated, &separate] {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(&[key], 1, &mut out, &mut cost);
        n.end_pull_phase(1);
    }
    let mut cost = Cost::new();
    duplicated.push(
        &[key, key],
        &[g1.clone(), g2.clone()].concat(),
        1,
        &mut cost,
    );
    separate.push(&[key], &g1, 1, &mut cost);
    separate.push(&[key], &g2, 1, &mut cost);
    assert_eq!(duplicated.read_weights(key), separate.read_weights(key));
    // And the state (accumulator) matches too: one more identical
    // gradient must produce identical next steps.
    let g3: Vec<f32> = (0..dim).map(|_| 0.5).collect();
    duplicated.push(&[key], &g3, 2, &mut cost);
    separate.push(&[key], &g3, 2, &mut cost);
    assert_eq!(duplicated.read_weights(key), separate.read_weights(key));
}

#[test]
fn accounting_identity_holds_with_duplicates() {
    // hits + misses + new_entries == pulls, even with heavy duplication
    // and across parallelism levels.
    for parallelism in [1usize, 4, 8] {
        let n = node_with(OptimizerKind::Sgd { lr: 0.5 }, parallelism, 8);
        for e in 0..4u64 {
            let keys = skewed_batch(e, 128, 6, 40);
            let mut out = Vec::new();
            let mut cost = Cost::new();
            n.pull(&keys, e + 1, &mut out, &mut cost);
            n.end_pull_phase(e + 1);
        }
        let s = n.stats();
        assert_eq!(
            s.hits + s.misses + s.new_entries,
            s.pulls,
            "parallelism {parallelism}: {s:?}"
        );
        assert_eq!(s.pulls, 4 * 128);
    }
}
