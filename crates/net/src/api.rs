//! The backend-agnostic PS client interface.
//!
//! [`PsClient`] is what `train` and `serve` program against: the same
//! pull/push/flush/metrics surface whether the parameter server is an
//! in-process [`PsNode`], a [`crate::RemotePs`] on the far side of a
//! (possibly fault-injected) wire, or any other [`PsEngine`] behind an
//! [`EngineClient`] adapter. Every operation returns a structured
//! [`Error`] instead of panicking, so the fault-injection suite can run
//! the identical driver against either backend and failures surface as
//! values.
//!
//! Method names are deliberately distinct from [`PsEngine`]'s
//! (`pull_batch` vs `pull`, …): `RemotePs` and `PsNode` implement both
//! traits, and identical names would make every call ambiguous at use
//! sites that import both.

use crate::error::Error;
use crate::failover::FailoverEvent;
use bytes::Bytes;
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key, PsNode};
use oe_simdevice::Cost;
use std::sync::Arc;

/// An issued-but-not-completed pull: the pipelined trainer splits a
/// pull into *issue* (during batch t's GPU compute) and *complete*
/// (before batch t+1 consumes the weights). In-process backends defer
/// everything to completion; `RemotePs` does the real issue-side work —
/// minting the idempotence token and borrow-encoding the wire frame —
/// at issue time, so retries of a pipelined pull resend byte-identical
/// frames exactly like the synchronous path.
#[derive(Debug)]
pub struct PullTicket {
    keys: Vec<Key>,
    batch: BatchId,
    /// Pre-encoded `(seq, frame)` for wire backends; `None` defers the
    /// whole pull to completion.
    wire: Option<(u64, Bytes)>,
}

impl PullTicket {
    /// A ticket that defers all work to completion (in-process path).
    pub fn deferred(keys: Vec<Key>, batch: BatchId) -> Self {
        Self {
            keys,
            batch,
            wire: None,
        }
    }

    /// A ticket whose request frame (and idempotence token `seq`) was
    /// already encoded at issue time (wire path).
    pub fn encoded(keys: Vec<Key>, batch: BatchId, seq: u64, frame: Bytes) -> Self {
        Self {
            keys,
            batch,
            wire: Some((seq, frame)),
        }
    }

    /// Keys this pull covers, in request order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Batch the pulled weights are destined for.
    pub fn batch(&self) -> BatchId {
        self.batch
    }

    /// The pre-encoded wire state, if the issue side produced one.
    pub fn wire(&self) -> Option<(u64, &Bytes)> {
        self.wire.as_ref().map(|(seq, frame)| (*seq, frame))
    }
}

/// A fallible, backend-agnostic parameter-server client.
pub trait PsClient: Send + Sync {
    /// Engine identity ("PMem-OE", "DRAM-PS", …).
    fn backend_name(&self) -> String;

    /// Embedding dimension served.
    fn embed_dim(&self) -> usize;

    /// Fetch weights for `keys` into `out` (appended, request order).
    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error>;

    /// Issue a pull without waiting for its result: the pipelined
    /// trainer calls this while a *previous* batch's GPU compute is
    /// still in flight. The default defers everything to
    /// [`PsClient::pull_complete`], which is always correct; wire
    /// backends override to do the retry-sensitive issue-side work
    /// (idempotence token, frame encoding) eagerly.
    fn pull_issue(&self, keys: &[Key], batch: BatchId) -> Result<PullTicket, Error> {
        Ok(PullTicket::deferred(keys.to_vec(), batch))
    }

    /// Complete a pull issued by [`PsClient::pull_issue`], appending the
    /// weights to `out` in ticket key order. `issue` + `complete` must
    /// produce byte-identical weights and cost to a single
    /// [`PsClient::pull_batch`] call over the same keys.
    fn pull_complete(
        &self,
        ticket: PullTicket,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.pull_batch(ticket.keys(), ticket.batch(), out, cost)
    }

    /// All pulls for `batch` done: run deferred maintenance.
    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error>;

    /// Apply pre-aggregated gradients.
    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error>;

    /// Request a checkpoint up to `batch`; returns the inline cost.
    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error>;

    /// The committed checkpoint id.
    fn committed(&self) -> Result<BatchId, Error>;

    /// Engine counters.
    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error>;

    /// One key's weights, if known (diagnostics).
    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error>;

    /// Number of known keys.
    fn key_count(&self) -> Result<usize, Error>;

    /// Telemetry exposition text.
    fn metrics(&self) -> Result<String, Error>;

    /// Collect (and clear) the pending failover event, if the last
    /// error was a completed failover. Backends that cannot fail over
    /// never return one.
    fn failover_resume(&self) -> Option<FailoverEvent> {
        None
    }
}

/// Adapter: any [`PsEngine`] as an (infallible-in-practice)
/// [`PsClient`]. In-process engines have no wire to fail on, so every
/// operation simply succeeds.
pub struct EngineClient {
    engine: Arc<dyn PsEngine>,
}

impl EngineClient {
    /// Wrap an engine.
    pub fn new(engine: Arc<dyn PsEngine>) -> Self {
        Self { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<dyn PsEngine> {
        &self.engine
    }
}

impl PsClient for EngineClient {
    fn backend_name(&self) -> String {
        self.engine.name().to_string()
    }

    fn embed_dim(&self) -> usize {
        self.engine.dim()
    }

    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.engine.pull(keys, batch, out, cost);
        Ok(())
    }

    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error> {
        Ok(self.engine.end_pull_phase(batch))
    }

    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.engine.push(keys, grads, batch, cost);
        Ok(())
    }

    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error> {
        Ok(self.engine.request_checkpoint(batch))
    }

    fn committed(&self) -> Result<BatchId, Error> {
        Ok(self.engine.committed_checkpoint())
    }

    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error> {
        Ok(self.engine.stats())
    }

    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error> {
        Ok(self.engine.read_weights(key))
    }

    fn key_count(&self) -> Result<usize, Error> {
        Ok(self.engine.num_keys())
    }

    fn metrics(&self) -> Result<String, Error> {
        Ok(self.engine.metrics_text())
    }
}

/// The in-process node is a first-class client backend: the trainer
/// runs against a local `PsNode` and a `RemotePs` through the same
/// interface.
impl PsClient for PsNode {
    fn backend_name(&self) -> String {
        PsEngine::name(self).to_string()
    }

    fn embed_dim(&self) -> usize {
        PsEngine::dim(self)
    }

    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        PsEngine::pull(self, keys, batch, out, cost);
        Ok(())
    }

    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error> {
        Ok(PsEngine::end_pull_phase(self, batch))
    }

    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        PsEngine::push(self, keys, grads, batch, cost);
        Ok(())
    }

    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error> {
        Ok(PsEngine::request_checkpoint(self, batch))
    }

    fn committed(&self) -> Result<BatchId, Error> {
        Ok(PsEngine::committed_checkpoint(self))
    }

    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error> {
        Ok(PsEngine::stats(self))
    }

    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error> {
        Ok(PsEngine::read_weights(self, key))
    }

    fn key_count(&self) -> Result<usize, Error> {
        Ok(PsEngine::num_keys(self))
    }

    fn metrics(&self) -> Result<String, Error> {
        Ok(PsEngine::metrics_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind};

    fn node() -> PsNode {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        PsNode::new(cfg)
    }

    fn drive(client: &dyn PsClient) -> Vec<f32> {
        let keys = [1u64, 2, 3];
        let mut cost = Cost::new();
        let mut out = Vec::new();
        client.pull_batch(&keys, 1, &mut out, &mut cost).unwrap();
        client.flush_batch(1).unwrap();
        client.push_batch(&keys, &[0.25; 12], 1, &mut cost).unwrap();
        client.weights_of(2).unwrap().expect("key known")
    }

    #[test]
    fn node_and_adapter_agree() {
        let direct = node();
        let adapted = EngineClient::new(Arc::new(node()));
        assert_eq!(drive(&direct), drive(&adapted));
        assert_eq!(direct.backend_name(), adapted.backend_name());
        assert_eq!(direct.embed_dim(), 4);
        assert_eq!(direct.key_count().unwrap(), 3);
        assert!(direct.failover_resume().is_none());
        assert!(direct.metrics().unwrap().contains("oe_pulls_total"));
    }

    #[test]
    fn issue_complete_matches_pull_batch() {
        let a = node();
        let b = node();
        let keys = [7u64, 3, 11];
        let mut out_sync = Vec::new();
        let mut cost_sync = Cost::new();
        a.pull_batch(&keys, 1, &mut out_sync, &mut cost_sync)
            .unwrap();

        let mut out_split = Vec::new();
        let mut cost_split = Cost::new();
        let ticket = b.pull_issue(&keys, 1).unwrap();
        assert_eq!(ticket.keys(), &keys);
        assert_eq!(ticket.batch(), 1);
        assert!(ticket.wire().is_none(), "in-process path defers encoding");
        b.pull_complete(ticket, &mut out_split, &mut cost_split)
            .unwrap();

        assert_eq!(out_sync, out_split);
        assert_eq!(cost_sync.total_ns(), cost_split.total_ns());
    }

    #[test]
    fn client_is_object_safe() {
        let boxed: Box<dyn PsClient> = Box::new(node());
        assert_eq!(boxed.embed_dim(), 4);
        let arc: Arc<dyn PsClient> = Arc::new(EngineClient::new(Arc::new(node())));
        assert_eq!(arc.committed().unwrap(), 0);
    }
}
