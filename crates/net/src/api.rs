//! The backend-agnostic PS client interface.
//!
//! [`PsClient`] is what `train` and `serve` program against: the same
//! pull/push/flush/metrics surface whether the parameter server is an
//! in-process [`PsNode`], a [`crate::RemotePs`] on the far side of a
//! (possibly fault-injected) wire, or any other [`PsEngine`] behind an
//! [`EngineClient`] adapter. Every operation returns a structured
//! [`Error`] instead of panicking, so the fault-injection suite can run
//! the identical driver against either backend and failures surface as
//! values.
//!
//! Method names are deliberately distinct from [`PsEngine`]'s
//! (`pull_batch` vs `pull`, …): `RemotePs` and `PsNode` implement both
//! traits, and identical names would make every call ambiguous at use
//! sites that import both.

use crate::error::Error;
use crate::failover::FailoverEvent;
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key, PsNode};
use oe_simdevice::Cost;
use std::sync::Arc;

/// A fallible, backend-agnostic parameter-server client.
pub trait PsClient: Send + Sync {
    /// Engine identity ("PMem-OE", "DRAM-PS", …).
    fn backend_name(&self) -> String;

    /// Embedding dimension served.
    fn embed_dim(&self) -> usize;

    /// Fetch weights for `keys` into `out` (appended, request order).
    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error>;

    /// All pulls for `batch` done: run deferred maintenance.
    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error>;

    /// Apply pre-aggregated gradients.
    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error>;

    /// Request a checkpoint up to `batch`; returns the inline cost.
    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error>;

    /// The committed checkpoint id.
    fn committed(&self) -> Result<BatchId, Error>;

    /// Engine counters.
    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error>;

    /// One key's weights, if known (diagnostics).
    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error>;

    /// Number of known keys.
    fn key_count(&self) -> Result<usize, Error>;

    /// Telemetry exposition text.
    fn metrics(&self) -> Result<String, Error>;

    /// Collect (and clear) the pending failover event, if the last
    /// error was a completed failover. Backends that cannot fail over
    /// never return one.
    fn failover_resume(&self) -> Option<FailoverEvent> {
        None
    }
}

/// Adapter: any [`PsEngine`] as an (infallible-in-practice)
/// [`PsClient`]. In-process engines have no wire to fail on, so every
/// operation simply succeeds.
pub struct EngineClient {
    engine: Arc<dyn PsEngine>,
}

impl EngineClient {
    /// Wrap an engine.
    pub fn new(engine: Arc<dyn PsEngine>) -> Self {
        Self { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<dyn PsEngine> {
        &self.engine
    }
}

impl PsClient for EngineClient {
    fn backend_name(&self) -> String {
        self.engine.name().to_string()
    }

    fn embed_dim(&self) -> usize {
        self.engine.dim()
    }

    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.engine.pull(keys, batch, out, cost);
        Ok(())
    }

    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error> {
        Ok(self.engine.end_pull_phase(batch))
    }

    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.engine.push(keys, grads, batch, cost);
        Ok(())
    }

    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error> {
        Ok(self.engine.request_checkpoint(batch))
    }

    fn committed(&self) -> Result<BatchId, Error> {
        Ok(self.engine.committed_checkpoint())
    }

    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error> {
        Ok(self.engine.stats())
    }

    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error> {
        Ok(self.engine.read_weights(key))
    }

    fn key_count(&self) -> Result<usize, Error> {
        Ok(self.engine.num_keys())
    }

    fn metrics(&self) -> Result<String, Error> {
        Ok(self.engine.metrics_text())
    }
}

/// The in-process node is a first-class client backend: the trainer
/// runs against a local `PsNode` and a `RemotePs` through the same
/// interface.
impl PsClient for PsNode {
    fn backend_name(&self) -> String {
        PsEngine::name(self).to_string()
    }

    fn embed_dim(&self) -> usize {
        PsEngine::dim(self)
    }

    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        PsEngine::pull(self, keys, batch, out, cost);
        Ok(())
    }

    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error> {
        Ok(PsEngine::end_pull_phase(self, batch))
    }

    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        PsEngine::push(self, keys, grads, batch, cost);
        Ok(())
    }

    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error> {
        Ok(PsEngine::request_checkpoint(self, batch))
    }

    fn committed(&self) -> Result<BatchId, Error> {
        Ok(PsEngine::committed_checkpoint(self))
    }

    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error> {
        Ok(PsEngine::stats(self))
    }

    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error> {
        Ok(PsEngine::read_weights(self, key))
    }

    fn key_count(&self) -> Result<usize, Error> {
        Ok(PsEngine::num_keys(self))
    }

    fn metrics(&self) -> Result<String, Error> {
        Ok(PsEngine::metrics_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind};

    fn node() -> PsNode {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        PsNode::new(cfg)
    }

    fn drive(client: &dyn PsClient) -> Vec<f32> {
        let keys = [1u64, 2, 3];
        let mut cost = Cost::new();
        let mut out = Vec::new();
        client.pull_batch(&keys, 1, &mut out, &mut cost).unwrap();
        client.flush_batch(1).unwrap();
        client.push_batch(&keys, &[0.25; 12], 1, &mut cost).unwrap();
        client.weights_of(2).unwrap().expect("key known")
    }

    #[test]
    fn node_and_adapter_agree() {
        let direct = node();
        let adapted = EngineClient::new(Arc::new(node()));
        assert_eq!(drive(&direct), drive(&adapted));
        assert_eq!(direct.backend_name(), adapted.backend_name());
        assert_eq!(direct.embed_dim(), 4);
        assert_eq!(direct.key_count().unwrap(), 3);
        assert!(direct.failover_resume().is_none());
        assert!(direct.metrics().unwrap().contains("oe_pulls_total"));
    }

    #[test]
    fn client_is_object_safe() {
        let boxed: Box<dyn PsClient> = Box::new(node());
        assert_eq!(boxed.embed_dim(), 4);
        let arc: Arc<dyn PsClient> = Arc::new(EngineClient::new(Arc::new(node())));
        assert_eq!(arc.committed().unwrap(), 0);
    }
}
