//! The remote PS client: [`RemotePs`] implements
//! [`oe_core::engine::PsEngine`] (and the backend-agnostic
//! [`crate::api::PsClient`]) over a [`Transport`], so a trainer (or
//! example, or test) can swap a local node for a server on the other
//! side of a wire without any code change — the reproduction of the
//! paper's TensorFlow operators (`PullWeights`, `PushGradients`, …)
//! talking RPC to the backend PS (§V-C).
//!
//! Fault tolerance lives here:
//!
//! - every request carries a fresh `(client, seq)` idempotence token;
//!   **retries reuse the token** (the frame is byte-identical), so the
//!   server's replay cache applies each logical request exactly once;
//! - retryable failures (timeout, corrupt, busy) are retried under the
//!   [`crate::RetryPolicy`] with exponential backoff + seeded jitter,
//!   charged to the caller's virtual-time sink;
//! - a dead primary (`Disconnected`) triggers failover: the next
//!   [`Standby`] in the ordered endpoint list is promoted through
//!   `core::recovery`, and the failing call returns a structured
//!   `Busy` error carrying the rewind point — see
//!   [`crate::failover`] for why failover is not transparent;
//! - a failover *fences* the dead primary's tokens: the swap bumps a
//!   transport generation, so a concurrent call whose token was minted
//!   against the old primary returns `Busy` instead of retrying it
//!   against the rewound standby, and a [`Request::SeqFence`] teaches
//!   the promoted server to reject any straggler outright — a push the
//!   dead primary applied but never acknowledged cannot apply a second
//!   time after the trainer's replay;
//! - retries, timeouts, corrupt frames, failovers, backoff waits, and
//!   recovery latency all land in the client's telemetry registry,
//!   prepended to [`PsEngine::metrics_text`] exposition.
//!
//! Virtual-time accounting stays exact: server-side storage charges ride
//! back inside each response and are merged into the caller's sink, and
//! the client additionally charges `Net` time per frame byte using the
//! paper's 30 Gb intranet model.

use crate::api::{PsClient, PullTicket};
use crate::codec::{validate_frame, Frame, FrameMeta, Packet, Request, Response, ResponseView};
use crate::config::NetConfig;
use crate::error::{Error, ErrorKind};
use crate::failover::{FailoverEvent, Standby};
use crate::transport::Transport;
use bytes::Bytes;
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key};
use oe_simdevice::{Cost, CostKind};
use oe_telemetry::{Counter, Phase, PhaseTimes, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-global client id allocator: distinct `RemotePs` instances
/// never collide in a server's replay cache.
static NEXT_CLIENT_ID: AtomicU32 = AtomicU32::new(1);

/// A PS engine on the far side of a transport.
pub struct RemotePs {
    transport: Mutex<Arc<dyn Transport>>,
    /// Bumped (under the transport lock) every time a failover swaps
    /// the transport. A call records the generation when it mints its
    /// idempotence token; if the generation moved before any attempt,
    /// the token belongs to the dead primary's timeline and must not be
    /// (re)sent — the promoted node was rolled back, the trainer will
    /// replay, and a straggling retry would double-apply.
    transport_gen: AtomicU64,
    standbys: Mutex<VecDeque<Arc<dyn Standby>>>,
    cfg: NetConfig,
    client_id: u32,
    seq: AtomicU64,
    /// Placement epoch this client routes under; stamped on every
    /// pull/push so the server can fence bursts routed by a
    /// pre-migration table. Ratchets up via
    /// [`RemotePs::set_placement_epoch`].
    placement_epoch: AtomicU64,
    dim: usize,
    name: &'static str,
    pending_failover: Mutex<Option<FailoverEvent>>,
    registry: Arc<Registry>,
    retries: Counter,
    timeouts: Counter,
    corrupt: Counter,
    failovers: Counter,
    phases: PhaseTimes,
}

impl std::fmt::Debug for RemotePs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePs")
            .field("name", &self.name)
            .field("client_id", &self.client_id)
            .field("dim", &self.dim)
            .field("standbys", &self.standbys.lock().len())
            .finish_non_exhaustive()
    }
}

impl RemotePs {
    /// Connect: performs the `Hello` handshake to learn the engine's
    /// dimension and identity. Panics if the server is unreachable or
    /// speaks a different protocol — a remote PS you cannot reach is a
    /// deployment error, not a recoverable condition for training.
    pub fn connect(transport: Arc<dyn Transport>, cfg: NetConfig) -> Self {
        Self::try_connect(transport, cfg).expect("PS handshake failed")
    }

    /// Fallible connect for callers that own failure handling.
    pub fn try_connect(transport: Arc<dyn Transport>, cfg: NetConfig) -> Result<Self, Error> {
        let registry = Arc::new(Registry::new());
        let retries = registry.counter("client_rpc_retries_total");
        let timeouts = registry.counter("client_rpc_timeouts_total");
        let corrupt = registry.counter("client_rpc_corrupt_total");
        let failovers = registry.counter("client_rpc_failovers_total");
        let phases = PhaseTimes::new(
            &registry,
            "client",
            &[Phase::RetryBackoff, Phase::FailoverRecovery],
        );
        let this = Self {
            transport: Mutex::new(transport),
            transport_gen: AtomicU64::new(0),
            standbys: Mutex::new(VecDeque::new()),
            cfg,
            client_id: NEXT_CLIENT_ID.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(1),
            placement_epoch: AtomicU64::new(0),
            dim: 0,
            name: "",
            pending_failover: Mutex::new(None),
            registry,
            retries,
            timeouts,
            corrupt,
            failovers,
            phases,
        };
        let mut scratch = Cost::new();
        let resp = this.call_result(Request::Hello, &mut scratch)?;
        let Response::HelloOk { dim, name } = resp else {
            return Err(Error::rejected(format!(
                "handshake failed: unexpected response {resp:?}"
            )));
        };
        // Engine names are a small closed set; leak once for &'static.
        let name: &'static str = Box::leak(name.into_boxed_str());
        Ok(Self {
            dim: dim as usize,
            name,
            ..this
        })
    }

    /// Append a standby to the ordered failover endpoint list.
    pub fn with_standby(self, standby: Arc<dyn Standby>) -> Self {
        self.standbys.lock().push_back(standby);
        self
    }

    /// The client-side telemetry registry (retry/timeout/corrupt/
    /// failover counters, backoff + recovery histograms).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// This client's id in request idempotence tokens.
    pub fn client_id(&self) -> u32 {
        self.client_id
    }

    /// The placement epoch stamped on this client's pull/push bursts.
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch.load(Ordering::Relaxed)
    }

    /// Announce a placement cutover: ratchet the local epoch and push a
    /// [`Request::PlacementUpdate`] to the server so it starts fencing
    /// bursts still routed under the pre-migration table. Both sides
    /// ratchet upward (`fetch_max`), so a delayed or replayed update for
    /// an older epoch can never roll the fence back. The rebalancer
    /// calls this once per client after the cutover batch completes.
    pub fn set_placement_epoch(&self, epoch: u64) -> Result<(), Error> {
        self.placement_epoch.fetch_max(epoch, Ordering::Relaxed);
        let mut scratch = Cost::new();
        match self.call_result(Request::PlacementUpdate { epoch }, &mut scratch)? {
            Response::Ack { .. } => Ok(()),
            other => Err(Error::rejected(format!(
                "placement update: unexpected response {other:?}"
            ))),
        }
    }

    /// Promote the next standby. On success the current transport is
    /// swapped and a [`FailoverEvent`] is left for the trainer to
    /// collect via [`PsClient::failover_resume`].
    fn failover(&self) -> Result<FailoverEvent, Error> {
        loop {
            let standby = self
                .standbys
                .lock()
                .pop_front()
                .ok_or_else(|| Error::disconnected("primary dead and no standby left"))?;
            match standby.promote() {
                Ok(promo) => {
                    // Fence this client's entire pre-failover sequence
                    // space on the promoted server before exposing the
                    // transport: a token minted against the dead primary
                    // (possibly applied there, and unknown to the fresh
                    // replay cache) must never execute on the rewound
                    // node. Defense in depth alongside the generation
                    // check in `call_result` — it also covers frames
                    // already past that check and sitting in a queue.
                    let floor = self.seq.load(Ordering::Relaxed).saturating_sub(1);
                    let fence_seq = self.seq.fetch_add(1, Ordering::Relaxed);
                    let fence =
                        Packet::request(self.client_id, fence_seq, Request::SeqFence { floor })
                            .encode();
                    let _ = promo.transport.call(fence, self.cfg.deadline);
                    {
                        let mut guard = self.transport.lock();
                        *guard = Arc::clone(&promo.transport);
                        self.transport_gen.fetch_add(1, Ordering::Release);
                    }
                    self.failovers.inc();
                    self.phases
                        .record_ns(Phase::FailoverRecovery, promo.recovery_ns);
                    let event = FailoverEvent {
                        resume_batch: promo.resume_batch,
                        recovery_ns: promo.recovery_ns,
                        recovered_keys: promo.recovered_keys,
                    };
                    *self.pending_failover.lock() = Some(event);
                    return Ok(event);
                }
                // A standby that cannot promote (e.g. media never
                // initialized) is skipped; try the next one.
                Err(_) => continue,
            }
        }
    }

    /// One logical RPC: fresh idempotence token, deadline per attempt,
    /// retry with backoff on retryable failures (same token each time),
    /// failover on a dead primary. The owned-decode path for every
    /// request outside the pull/push hot loop.
    fn call_result(&self, req: Request, cost: &mut Cost) -> Result<Response, Error> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let frame = Packet::request(self.client_id, seq, req).encode();
        let (_, reply) = self.call_raw(seq, frame, cost)?;
        match Packet::decode(reply)?.frame {
            Frame::Response(r) => Ok(r),
            // Unreachable: `call_raw` already rejected request-typed
            // replies; kept so the match stays total.
            Frame::Request(_) => Err(Error::corrupt("server sent a request")),
        }
    }

    /// The retry loop shared by owned and zero-copy RPCs: send `frame`
    /// (its token already minted as `seq`), validate each reply frame,
    /// surface structured error replies, and hand the validated bytes
    /// back for the caller to decode — owned or borrowed. Retries
    /// resend the identical bytes, so the server's replay cache sees a
    /// byte-identical token on every attempt.
    fn call_raw(
        &self,
        seq: u64,
        frame: Bytes,
        cost: &mut Cost,
    ) -> Result<(FrameMeta, Bytes), Error> {
        let birth_gen = self.transport_gen.load(Ordering::Acquire);
        let mut attempt = 0u32;
        loop {
            // Read the transport and its generation as one consistent
            // pair (the failover swap bumps the generation under the
            // same lock).
            let (transport, gen) = {
                let guard = self.transport.lock();
                (
                    Arc::clone(&*guard),
                    self.transport_gen.load(Ordering::Acquire),
                )
            };
            if gen != birth_gen {
                // Another thread failed over while this token was alive.
                // Its timeline died with the primary: the promoted node
                // is rolled back to the committed checkpoint and the
                // trainer replays the lost batches with fresh tokens, so
                // retrying this token (which the dead primary may
                // already have applied) would double-apply the update.
                return Err(self.stale_after_failover(seq));
            }
            let outcome = match transport.call(frame.clone(), self.cfg.deadline) {
                Ok(reply) => {
                    self.cfg.charge.charge(frame.len() + reply.len(), cost);
                    match validate_frame(&reply) {
                        // A structured error reply is ours even when
                        // the token is (0,0): the server could not
                        // attribute a corrupted request, but the
                        // per-call reply channel ties it to us.
                        Ok(meta) if meta.msg_type == 0x8F => {
                            match ResponseView::decode(meta, &reply) {
                                Ok(ResponseView::Other(Response::Error { kind, message })) => {
                                    Err(Error::new(kind, message))
                                }
                                Ok(_) => Err(Error::corrupt("malformed error frame")),
                                Err(e) => Err(e),
                            }
                        }
                        Ok(meta) if meta.msg_type < 0x80 => {
                            Err(Error::corrupt("server sent a request"))
                        }
                        Ok(meta) if meta.client == self.client_id && meta.seq == seq => {
                            Ok((meta, reply))
                        }
                        Ok(meta) => Err(Error::corrupt(format!(
                            "response token ({}, {}) does not match request ({}, {seq})",
                            meta.client, meta.seq, self.client_id
                        ))),
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            };
            let err = match outcome {
                Ok(reply) => return Ok(reply),
                Err(err) => err,
            };
            match err.kind() {
                ErrorKind::Timeout => self.timeouts.inc(),
                ErrorKind::Corrupt => self.corrupt.inc(),
                _ => {}
            }
            if err.kind() == ErrorKind::Disconnected {
                // The primary is gone: promote a standby. The promoted
                // node is rolled back to the committed checkpoint, so
                // this call must NOT be retried against it — surface a
                // Busy error carrying the rewind point instead.
                //
                // Unless another thread got there first: then the swap
                // already happened and burning a second standby for the
                // same dead primary would be wrong.
                if self.transport_gen.load(Ordering::Acquire) != birth_gen {
                    return Err(self.stale_after_failover(seq).with_source(err));
                }
                let event = self.failover().map_err(|fe| fe.with_source(err.clone()))?;
                return Err(Error::busy(format!(
                    "failed over to standby; state rolled back to committed checkpoint, \
                     resume from batch {}",
                    event.resume_batch
                ))
                .with_source(err));
            }
            if !err.is_retryable() || attempt >= self.cfg.retry.max_retries {
                return Err(if attempt > 0 {
                    Error::new(
                        err.kind(),
                        format!("retry budget ({attempt} retries) exhausted"),
                    )
                    .with_source(err)
                } else {
                    err
                });
            }
            let backoff = self.cfg.retry.backoff_ns(attempt, seq);
            cost.charge(CostKind::Net, backoff);
            self.phases.record_ns(Phase::RetryBackoff, backoff);
            self.retries.inc();
            attempt += 1;
        }
    }

    /// The structured verdict for a token orphaned by a failover that
    /// happened underneath it: `Busy` (the trainer treats it exactly
    /// like the error the failing-over thread itself received —
    /// collect [`PsClient::failover_resume`], rewind, replay).
    fn stale_after_failover(&self, seq: u64) -> Error {
        match (*self.pending_failover.lock()).map(|e| e.resume_batch) {
            Some(b) => Error::busy(format!(
                "failed over while seq {seq} was in flight; state rolled back to the \
                 committed checkpoint, resume from batch {b}"
            )),
            None => Error::busy(format!(
                "failed over while seq {seq} was in flight; state rolled back to the \
                 committed checkpoint"
            )),
        }
    }

    /// Fallible entry export (migration plane): the structured-error
    /// twin of [`PsEngine::export_entry`]. A timeout, corrupt frame, or
    /// failover comes back as an [`Error`] with its [`ErrorKind`]
    /// intact instead of tearing the process down.
    pub fn try_export_entry(
        &self,
        key: Key,
        cost: &mut Cost,
    ) -> Result<Option<(BatchId, Vec<f32>)>, Error> {
        match self.call_result(Request::ExportEntry { key }, cost)? {
            Response::Entry(e) => Ok(e),
            other => Err(Error::rejected(format!(
                "export_entry: unexpected {other:?}"
            ))),
        }
    }

    /// Fallible entry import (migration plane): the structured-error
    /// twin of [`PsEngine::import_entry`].
    pub fn try_import_entry(
        &self,
        key: Key,
        version: BatchId,
        payload: &[f32],
        cost: &mut Cost,
    ) -> Result<bool, Error> {
        let req = Request::ImportEntry {
            key,
            version,
            payload: payload.to_vec(),
        };
        match self.call_result(req, cost)? {
            Response::Ack { cost: c } => {
                cost.merge(&c);
                Ok(true)
            }
            other => Err(Error::rejected(format!(
                "import_entry: unexpected {other:?}"
            ))),
        }
    }

    /// Fallible entry discard (migration plane): the structured-error
    /// twin of [`PsEngine::discard_entry`].
    pub fn try_discard_entry(&self, key: Key, cost: &mut Cost) -> Result<bool, Error> {
        match self.call_result(Request::DiscardEntry { key }, cost)? {
            Response::Ack { cost: c } => {
                cost.merge(&c);
                Ok(true)
            }
            other => Err(Error::rejected(format!(
                "discard_entry: unexpected {other:?}"
            ))),
        }
    }

    /// Zero-copy pull: borrow-encode the key burst straight from the
    /// caller's slice (no owned `Request` materialized), view-decode
    /// the weights reply, and append the weights directly into `out`.
    fn pull_impl(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let epoch = self.placement_epoch.load(Ordering::Relaxed);
        let frame = Packet::encode_pull(self.client_id, seq, epoch, batch, keys);
        let (meta, reply) = self.call_raw(seq, frame, cost)?;
        match ResponseView::decode(meta, &reply)? {
            ResponseView::Weights { weights, cost: c } => {
                cost.merge(&c);
                weights.extend_into(out);
                Ok(())
            }
            ResponseView::Other(other) => {
                Err(Error::rejected(format!("pull: unexpected {other:?}")))
            }
        }
    }

    /// Zero-copy push: borrow-encode the key/gradient burst straight
    /// from the caller's slices.
    fn push_impl(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let epoch = self.placement_epoch.load(Ordering::Relaxed);
        let frame = Packet::encode_push(self.client_id, seq, epoch, batch, keys, grads);
        let (meta, reply) = self.call_raw(seq, frame, cost)?;
        match ResponseView::decode(meta, &reply)? {
            ResponseView::Other(Response::Ack { cost: c }) => {
                cost.merge(&c);
                Ok(())
            }
            other => Err(Error::rejected(format!("push: unexpected {other:?}"))),
        }
    }
}

/// Unwrap for the infallible [`PsEngine`] facade: any terminal failure
/// (including a successful failover, whose rewind contract the
/// `PsEngine` interface cannot express) is fatal, but the panic names
/// the RPC and carries the structured [`ErrorKind`] so a crash log
/// distinguishes a timeout from a rejection. Callers that own failure
/// handling use the [`PsClient`] / `try_*` surface instead — every
/// facade method below is a thin wrapper over it.
fn fatal<T>(what: &str, r: Result<T, Error>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("PS RPC {what} failed ({:?}): {e}", e.kind()),
    }
}

impl PsEngine for RemotePs {
    fn name(&self) -> &'static str {
        self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        fatal("pull", self.pull_impl(keys, batch, out, cost));
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        fatal("end_pull_phase", self.flush_batch(batch))
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        fatal("push", self.push_impl(keys, grads, batch, cost));
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        fatal("checkpoint", self.checkpoint(batch))
    }

    fn committed_checkpoint(&self) -> BatchId {
        fatal("committed", self.committed())
    }

    fn stats(&self) -> StatsSnapshot {
        fatal("stats", self.snapshot_stats())
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        fatal("read_weights", self.weights_of(key))
    }

    fn num_keys(&self) -> usize {
        fatal("num_keys", self.key_count())
    }

    fn metrics_text(&self) -> String {
        fatal("metrics", self.metrics())
    }

    fn export_entry(&self, key: Key, cost: &mut Cost) -> Option<(BatchId, Vec<f32>)> {
        fatal("export_entry", self.try_export_entry(key, cost))
    }

    fn import_entry(&self, key: Key, version: BatchId, payload: &[f32], cost: &mut Cost) -> bool {
        fatal(
            "import_entry",
            self.try_import_entry(key, version, payload, cost),
        )
    }

    fn discard_entry(&self, key: Key, cost: &mut Cost) -> bool {
        fatal("discard_entry", self.try_discard_entry(key, cost))
    }
}

impl PsClient for RemotePs {
    fn backend_name(&self) -> String {
        self.name.to_string()
    }

    fn embed_dim(&self) -> usize {
        self.dim
    }

    fn pull_batch(
        &self,
        keys: &[Key],
        batch: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.pull_impl(keys, batch, out, cost)
    }

    fn pull_issue(&self, keys: &[Key], batch: BatchId) -> Result<PullTicket, Error> {
        // Mirror `pull_impl`'s issue half exactly: mint the idempotence
        // token and borrow-encode the frame *now*, so a retry of the
        // completion resends the byte-identical frame the synchronous
        // path would have sent.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let epoch = self.placement_epoch.load(Ordering::Relaxed);
        let frame = Packet::encode_pull(self.client_id, seq, epoch, batch, keys);
        Ok(PullTicket::encoded(keys.to_vec(), batch, seq, frame))
    }

    fn pull_complete(
        &self,
        ticket: PullTicket,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        let Some((seq, frame)) = ticket.wire() else {
            return self.pull_impl(ticket.keys(), ticket.batch(), out, cost);
        };
        let (meta, reply) = self.call_raw(seq, frame.clone(), cost)?;
        match ResponseView::decode(meta, &reply)? {
            ResponseView::Weights { weights, cost: c } => {
                cost.merge(&c);
                weights.extend_into(out);
                Ok(())
            }
            ResponseView::Other(other) => {
                Err(Error::rejected(format!("pull: unexpected {other:?}")))
            }
        }
    }

    fn flush_batch(&self, batch: BatchId) -> Result<MaintenanceReport, Error> {
        let mut net_cost = Cost::new();
        match self.call_result(Request::EndPullPhase { batch }, &mut net_cost)? {
            Response::Maintenance {
                entries,
                commits,
                cost: mut c,
            } => {
                c.merge(&net_cost);
                Ok(MaintenanceReport {
                    cost: c,
                    entries_processed: entries,
                    ckpt_commits: commits,
                })
            }
            other => Err(Error::rejected(format!(
                "end_pull_phase: unexpected {other:?}"
            ))),
        }
    }

    fn push_batch(
        &self,
        keys: &[Key],
        grads: &[f32],
        batch: BatchId,
        cost: &mut Cost,
    ) -> Result<(), Error> {
        self.push_impl(keys, grads, batch, cost)
    }

    fn checkpoint(&self, batch: BatchId) -> Result<Cost, Error> {
        let mut cost = Cost::new();
        match self.call_result(Request::Checkpoint { batch }, &mut cost)? {
            Response::Ack { cost: c } => {
                cost.merge(&c);
                Ok(cost)
            }
            other => Err(Error::rejected(format!("checkpoint: unexpected {other:?}"))),
        }
    }

    fn committed(&self) -> Result<BatchId, Error> {
        let mut scratch = Cost::new();
        match self.call_result(Request::Committed, &mut scratch)? {
            Response::Committed { batch } => Ok(batch),
            other => Err(Error::rejected(format!("committed: unexpected {other:?}"))),
        }
    }

    fn snapshot_stats(&self) -> Result<StatsSnapshot, Error> {
        let mut scratch = Cost::new();
        match self.call_result(Request::Stats, &mut scratch)? {
            Response::Stats(s) => Ok(s),
            other => Err(Error::rejected(format!("stats: unexpected {other:?}"))),
        }
    }

    fn weights_of(&self, key: Key) -> Result<Option<Vec<f32>>, Error> {
        let mut scratch = Cost::new();
        match self.call_result(Request::ReadWeights { key }, &mut scratch)? {
            Response::MaybeWeights(w) => Ok(w),
            other => Err(Error::rejected(format!(
                "read_weights: unexpected {other:?}"
            ))),
        }
    }

    fn key_count(&self) -> Result<usize, Error> {
        let mut scratch = Cost::new();
        match self.call_result(Request::NumKeys, &mut scratch)? {
            Response::Count(n) => Ok(n as usize),
            other => Err(Error::rejected(format!("num_keys: unexpected {other:?}"))),
        }
    }

    fn metrics(&self) -> Result<String, Error> {
        let mut scratch = Cost::new();
        match self.call_result(Request::Metrics, &mut scratch)? {
            Response::Metrics(text) => Ok(format!("{}{}", self.registry.render_text(), text)),
            other => Err(Error::rejected(format!("metrics: unexpected {other:?}"))),
        }
    }

    fn failover_resume(&self) -> Option<FailoverEvent> {
        self.pending_failover.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use crate::fault::{FaultInjector, FaultSpec};
    use crate::server::PsServer;
    use crate::transport::loopback;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn remote_node() -> (RemotePs, crate::server::ServerHandle) {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client_t, server_t) = loopback(32);
        let handle = PsServer::spawn(engine, server_t, 4);
        let remote = RemotePs::connect(Arc::new(client_t), NetConfig::paper_default());
        (remote, handle)
    }

    #[test]
    fn handshake_learns_identity() {
        let (remote, _h) = remote_node();
        assert_eq!(remote.dim(), 4);
        assert_eq!(remote.name(), "PMem-OE");
        assert!(remote.client_id() > 0);
    }

    #[test]
    fn remote_issue_complete_matches_pull_batch() {
        let (a, _ha) = remote_node();
        let (b, _hb) = remote_node();
        let keys = [9u64, 2, 40];

        let mut out_sync = Vec::new();
        let mut cost_sync = Cost::new();
        a.pull_batch(&keys, 1, &mut out_sync, &mut cost_sync)
            .unwrap();

        let ticket = b.pull_issue(&keys, 1).unwrap();
        let (seq, _frame) = ticket.wire().expect("wire path encodes at issue time");
        let mut out_split = Vec::new();
        let mut cost_split = Cost::new();
        b.pull_complete(ticket, &mut out_split, &mut cost_split)
            .unwrap();

        assert_eq!(out_sync, out_split, "same weights either way");
        assert_eq!(
            cost_sync.total_ns(),
            cost_split.total_ns(),
            "same virtual cost either way"
        );
        // The issue side consumed a seq: the next issue mints a fresh one.
        let next = b.pull_issue(&keys, 2).unwrap();
        assert!(next.wire().unwrap().0 > seq);
    }

    #[test]
    fn remote_training_step_matches_local() {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let local = PsNode::new(cfg);
        let (remote, _h) = remote_node();

        let keys = [1u64, 2, 3];
        let mut lw = Vec::new();
        let mut rw = Vec::new();
        let mut lc = Cost::new();
        let mut rc = Cost::new();
        local.pull(&keys, 1, &mut lw, &mut lc);
        remote.pull(&keys, 1, &mut rw, &mut rc);
        assert_eq!(lw, rw, "identical init over the wire");
        assert!(rc.ns(CostKind::Net) > 0, "network time charged");
        assert!(
            rc.ns(CostKind::DramTransfer) >= lc.ns(CostKind::DramTransfer),
            "server-side charges merged back"
        );

        local.end_pull_phase(1);
        remote.end_pull_phase(1);
        let grads = vec![0.5f32; 12];
        local.push(&keys, &grads, 1, &mut lc);
        remote.push(&keys, &grads, 1, &mut rc);
        for &k in &keys {
            assert_eq!(local.read_weights(k), remote.read_weights(k));
        }
    }

    #[test]
    fn remote_checkpoint_commits() {
        let (remote, _h) = remote_node();
        let keys = [7u64];
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&keys, 1, &mut out, &mut cost);
        remote.end_pull_phase(1);
        remote.push(&keys, &[0.1; 4], 1, &mut cost);
        remote.request_checkpoint(1);
        remote.pull(&keys, 2, &mut out, &mut cost);
        remote.end_pull_phase(2);
        assert_eq!(remote.committed_checkpoint(), 1);
        assert_eq!(remote.num_keys(), 1);
        assert!(remote.stats().pulls >= 2);
    }

    #[test]
    fn stale_placement_epoch_fences_bursts_until_the_client_catches_up() {
        let (remote, _h) = remote_node();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull_batch(&[1], 1, &mut out, &mut cost).unwrap();
        remote.flush_batch(1).unwrap();
        remote.push_batch(&[1], &[0.1; 4], 1, &mut cost).unwrap();

        // The server learns of a cutover this client has not seen yet:
        // its epoch-0 bursts must bounce instead of mutating shards the
        // placement table no longer routes to it.
        let mut scratch = Cost::new();
        remote
            .call_result(Request::PlacementUpdate { epoch: 3 }, &mut scratch)
            .unwrap();
        let err = remote.pull_batch(&[1], 2, &mut out, &mut cost).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Rejected);
        assert!(err.to_string().contains("placement epoch"), "{err}");

        // set_placement_epoch ratchets both sides and bursts flow again.
        remote.set_placement_epoch(3).unwrap();
        assert_eq!(remote.placement_epoch(), 3);
        out.clear();
        remote.pull_batch(&[1], 2, &mut out, &mut cost).unwrap();
        remote.flush_batch(2).unwrap();

        // A delayed update for an older epoch never rolls the fence back.
        remote.set_placement_epoch(1).unwrap();
        assert_eq!(remote.placement_epoch(), 3);
        out.clear();
        remote.pull_batch(&[1], 3, &mut out, &mut cost).unwrap();
    }

    #[test]
    fn migration_rpcs_round_trip_through_the_engine_facade() {
        let (remote, _h) = remote_node();
        let keys = [42u64];
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&keys, 1, &mut out, &mut cost);
        remote.end_pull_phase(1);
        remote.push(&keys, &[0.25; 4], 1, &mut cost);

        let (version, payload) = remote
            .export_entry(42, &mut cost)
            .expect("materialized entry exports");
        assert!(payload.len() >= 4, "weights plus optimizer state");
        assert_eq!(remote.export_entry(999, &mut cost), None);

        assert!(remote.discard_entry(42, &mut cost));
        assert_eq!(remote.read_weights(42), None, "source forgot the key");

        assert!(remote.import_entry(42, version, &payload, &mut cost));
        assert_eq!(
            remote.read_weights(42).expect("entry restored")[..],
            payload[..4]
        );
    }

    #[test]
    fn metrics_text_travels_over_the_wire() {
        let (remote, _h) = remote_node();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&[1, 2], 1, &mut out, &mut cost);
        let text = remote.metrics_text();
        assert!(text.contains("rpc_requests_total"), "server side:\n{text}");
        assert!(text.contains("oe_pulls_total 2"), "engine side:\n{text}");
        // Client-side fault-tolerance counters lead the exposition.
        assert!(
            text.contains("client_rpc_retries_total"),
            "client side:\n{text}"
        );
        assert!(text.contains("client_rpc_failovers_total"));
    }

    #[test]
    fn retries_survive_a_lossy_wire() {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client_t, server_t) = loopback(32);
        let _handle = PsServer::spawn(engine, server_t, 2);
        let faulty = Arc::new(FaultInjector::new(
            Arc::new(client_t),
            FaultSpec::lossy(21, 0.20, 0.05),
        ));
        let remote = RemotePs::connect(faulty, NetConfig::paper_default());
        let keys: Vec<u64> = (0..8).collect();
        let mut cost = Cost::new();
        for b in 1..=20 {
            let mut out = Vec::new();
            remote
                .pull_batch(&keys, b, &mut out, &mut cost)
                .expect("pull survives retries");
            assert_eq!(out.len(), 32);
            remote.flush_batch(b).expect("flush survives");
            remote
                .push_batch(&keys, &[0.1; 32], b, &mut cost)
                .expect("push survives");
        }
        let snap = remote.registry().snapshot();
        let retried = snap.counter("client_rpc_retries_total").unwrap_or(0);
        assert!(retried > 0, "a 20% drop schedule must force retries");
        assert!(
            cost.ns(CostKind::Net) > 0,
            "backoff waits charged to virtual time"
        );
        // Exactly-once despite the storm: every batch's push applied
        // exactly once (SGD lr=1, grad 0.1 × 20 batches).
        let w = remote.read_weights(0).expect("key exists");
        let expect = oe_core::init::init_weight(42, 0, 0, 0.01) - 0.1 * 20.0;
        assert!(
            (w[0] - expect).abs() < 1e-5,
            "{} vs {expect} — retries must not double-apply",
            w[0]
        );
    }

    #[test]
    fn kill_between_send_and_ack_never_double_applies() {
        use crate::failover::CheckpointReplica;
        use std::sync::atomic::AtomicBool;
        use std::sync::mpsc;
        use std::time::Duration;

        // A wire that delivers one doomed push to the primary but loses
        // the ack with the dying machine, then reports the primary dead.
        struct AckEater {
            inner: Arc<dyn Transport>,
            doomed: AtomicBool,
            applied: Mutex<mpsc::Sender<()>>,
            release: Mutex<mpsc::Receiver<()>>,
        }
        impl Transport for AckEater {
            fn call(&self, frame: Bytes, deadline: Option<Duration>) -> Result<Bytes, Error> {
                if let Ok(pkt) = Packet::decode(frame.clone()) {
                    match pkt.frame {
                        Frame::Request(Request::Push { batch: 2, .. })
                            if self.doomed.swap(false, Ordering::SeqCst) =>
                        {
                            // The primary applies the push…
                            let _ = self.inner.call(frame, deadline);
                            // …then dies before the ack gets out. Hold
                            // the caller until the failover elsewhere
                            // completes, then report the lost ack.
                            self.applied.lock().send(()).unwrap();
                            self.release.lock().recv().unwrap();
                            return Err(Error::timeout("ack lost in the crash"));
                        }
                        Frame::Request(Request::Committed) => {
                            return Err(Error::disconnected("primary dead"));
                        }
                        _ => {}
                    }
                }
                self.inner.call(frame, deadline)
            }
        }

        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let node = PsNode::new(cfg.clone());
        let media = Arc::clone(node.pool().media());
        let engine: Arc<dyn PsEngine> = Arc::new(node);
        let (client_t, server_t) = loopback(32);
        let _primary = PsServer::spawn(engine, server_t, 2);
        let (applied_tx, applied_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let eater = Arc::new(AckEater {
            inner: Arc::new(client_t),
            doomed: AtomicBool::new(true),
            applied: Mutex::new(applied_tx),
            release: Mutex::new(release_rx),
        });
        let replica = Arc::new(CheckpointReplica::new(media, cfg, 2, 4, 5));
        let remote = RemotePs::connect(eater, NetConfig::paper_default()).with_standby(replica);

        // Batch 1 trains and checkpoints; batch 2's maintenance commits.
        let keys = [5u64];
        let mut cost = Cost::new();
        let mut out = Vec::new();
        remote.pull_batch(&keys, 1, &mut out, &mut cost).unwrap();
        remote.flush_batch(1).unwrap();
        remote.push_batch(&keys, &[1.0; 4], 1, &mut cost).unwrap();
        remote.checkpoint(1).unwrap();
        out.clear();
        remote.pull_batch(&keys, 2, &mut out, &mut cost).unwrap();
        remote.flush_batch(2).unwrap();
        let w_committed = remote.weights_of(5).unwrap().unwrap();

        // The doomed push: applied by the primary, ack never arrives,
        // primary found dead by a concurrent call, standby promoted.
        std::thread::scope(|s| {
            let doomed = s.spawn(|| {
                let mut cost = Cost::new();
                remote.push_batch(&keys, &[1.0; 4], 2, &mut cost)
            });
            applied_rx.recv().unwrap();
            let err = remote.committed().unwrap_err();
            assert_eq!(
                err.kind(),
                ErrorKind::Busy,
                "failover surfaces rewind: {err}"
            );
            release_tx.send(()).unwrap();
            let err = doomed.join().unwrap().unwrap_err();
            // The regression: this retry used to go out with its old
            // token against the promoted server's empty replay cache
            // and re-execute the already-applied push.
            assert_eq!(
                err.kind(),
                ErrorKind::Busy,
                "stale token must be orphaned, not retried: {err}"
            );
        });
        let event = remote.failover_resume().expect("failover recorded");
        assert_eq!(event.resume_batch, 1);

        // The promoted node holds exactly the committed checkpoint —
        // the doomed push died with the primary.
        assert_eq!(remote.weights_of(5).unwrap().unwrap(), w_committed);

        // The trainer's replay of batch 2 (fresh tokens, past the
        // fence) lands the push exactly once.
        out.clear();
        remote.pull_batch(&keys, 2, &mut out, &mut cost).unwrap();
        remote.flush_batch(2).unwrap();
        remote.push_batch(&keys, &[1.0; 4], 2, &mut cost).unwrap();
        let w = remote.weights_of(5).unwrap().unwrap();
        for d in 0..4 {
            assert!(
                (w[d] - (w_committed[d] - 1.0)).abs() < 1e-6,
                "dim {d}: {} vs {} — the replayed push must apply exactly once",
                w[d],
                w_committed[d] - 1.0
            );
        }
    }

    #[test]
    fn migration_try_api_returns_structured_errors_instead_of_panicking() {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client_t, server_t) = loopback(32);
        let _handle = PsServer::spawn(engine, server_t, 2);
        let inj = Arc::new(FaultInjector::new(Arc::new(client_t), FaultSpec::none(11)));
        let remote = RemotePs::connect(
            Arc::clone(&inj) as Arc<dyn Transport>,
            NetConfig::paper_default(),
        );
        let mut cost = Cost::new();
        assert_eq!(remote.try_export_entry(1, &mut cost).unwrap(), None);

        // Primary dies with no standby configured: the try_* surface
        // hands back the structured verdict the PsEngine facade can
        // only turn into a panic.
        inj.kill();
        let err = remote.try_discard_entry(1, &mut cost).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Disconnected);
        assert!(err.to_string().contains("no standby"), "{err}");
        let err = remote
            .try_import_entry(1, 1, &[0.0; 4], &mut cost)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Disconnected);
    }

    #[test]
    fn retry_budget_exhaustion_is_structured() {
        let (client_t, _server_t) = loopback(4);
        // Server never runs: every call times out. Keep the server half
        // alive so the channel stays open (Timeout, not Disconnected).
        let remote = RemotePs::try_connect(
            Arc::new(client_t),
            NetConfig::paper_default()
                .with_deadline(Some(std::time::Duration::from_millis(10)))
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff_ns: 1_000,
                    max_backoff_ns: 2_000,
                    jitter_seed: 1,
                }),
        );
        let err = remote.expect_err("no server: handshake must fail");
        assert_eq!(err.kind(), ErrorKind::Timeout);
        assert!(err.context().contains("retry budget"), "{err}");
        assert!(err.root_cause().context().contains("no response"), "{err}");
    }
}
