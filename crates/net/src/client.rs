//! The remote PS client: [`RemotePs`] implements
//! [`oe_core::engine::PsEngine`] over a [`Transport`], so a trainer (or
//! example, or test) can swap a local node for a server on the other
//! side of a wire without any code change — the reproduction of the
//! paper's TensorFlow operators (`PullWeights`, `PushGradients`, …)
//! talking RPC to the backend PS (§V-C).
//!
//! Virtual-time accounting stays exact: server-side storage charges ride
//! back inside each response and are merged into the caller's sink, and
//! the client additionally charges `Net` time per frame byte using the
//! paper's 30 Gb intranet model.

use crate::codec::{Frame, Request, Response};
use crate::transport::Transport;
use oe_core::engine::{MaintenanceReport, PsEngine};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key};
use oe_simdevice::{Cost, CostKind};
use std::sync::Arc;

/// Per-frame network cost model (client side).
#[derive(Debug, Clone, Copy)]
pub struct NetCharge {
    /// Fixed RPC overhead per round trip (ns).
    pub rpc_overhead_ns: u64,
    /// Link bandwidth, bytes/ns.
    pub bw_bytes_per_ns: f64,
}

impl NetCharge {
    /// The paper's testbed: 30 Gb intranet, low-overhead RPC.
    pub fn paper_default() -> Self {
        Self {
            rpc_overhead_ns: 15_000,
            bw_bytes_per_ns: 3.75,
        }
    }

    fn charge(&self, bytes: usize, cost: &mut Cost) {
        cost.charge(
            CostKind::Net,
            self.rpc_overhead_ns + (bytes as f64 / self.bw_bytes_per_ns) as u64,
        );
    }
}

/// A PS engine on the far side of a transport.
pub struct RemotePs {
    transport: Arc<dyn Transport>,
    net: NetCharge,
    dim: usize,
    name: &'static str,
}

impl RemotePs {
    /// Connect: performs the `Hello` handshake to learn the engine's
    /// dimension and identity. Panics if the server is unreachable or
    /// speaks a different protocol — a remote PS you cannot reach is a
    /// deployment error, not a recoverable condition for training.
    pub fn connect(transport: Arc<dyn Transport>, net: NetCharge) -> Self {
        let resp = Self::raw_call(&*transport, Request::Hello);
        let Response::HelloOk { dim, name } = resp else {
            panic!("handshake failed: unexpected response {resp:?}");
        };
        // Engine names are a small closed set; leak once for &'static.
        let name: &'static str = Box::leak(name.into_boxed_str());
        Self {
            transport,
            net,
            dim: dim as usize,
            name,
        }
    }

    fn raw_call(transport: &dyn Transport, req: Request) -> Response {
        let frame = Frame::Request(req).encode();
        let reply = transport.call(frame).expect("PS server unreachable");
        match Frame::decode(reply).expect("malformed server response") {
            Frame::Response(r) => r,
            Frame::Request(_) => panic!("server sent a request"),
        }
    }

    /// One RPC with network-cost charging on both directions.
    fn call(&self, req: Request, cost: &mut Cost) -> Response {
        let frame = Frame::Request(req).encode();
        let req_bytes = frame.len();
        let reply = self.transport.call(frame).expect("PS server unreachable");
        self.net.charge(req_bytes + reply.len(), cost);
        match Frame::decode(reply).expect("malformed server response") {
            Frame::Response(r) => r,
            Frame::Request(_) => panic!("server sent a request"),
        }
    }
}

impl PsEngine for RemotePs {
    fn name(&self) -> &'static str {
        self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn pull(&self, keys: &[Key], batch: BatchId, out: &mut Vec<f32>, cost: &mut Cost) {
        let resp = self.call(
            Request::Pull {
                batch,
                keys: keys.to_vec(),
            },
            cost,
        );
        match resp {
            Response::Weights { weights, cost: c } => {
                cost.merge(&c);
                out.extend_from_slice(&weights);
            }
            other => panic!("pull: unexpected {other:?}"),
        }
    }

    fn end_pull_phase(&self, batch: BatchId) -> MaintenanceReport {
        let mut net_cost = Cost::new();
        let resp = self.call(Request::EndPullPhase { batch }, &mut net_cost);
        match resp {
            Response::Maintenance {
                entries,
                commits,
                cost: mut c,
            } => {
                c.merge(&net_cost);
                MaintenanceReport {
                    cost: c,
                    entries_processed: entries,
                    ckpt_commits: commits,
                }
            }
            other => panic!("end_pull_phase: unexpected {other:?}"),
        }
    }

    fn push(&self, keys: &[Key], grads: &[f32], batch: BatchId, cost: &mut Cost) {
        let resp = self.call(
            Request::Push {
                batch,
                keys: keys.to_vec(),
                grads: grads.to_vec(),
            },
            cost,
        );
        match resp {
            Response::Ack { cost: c } => cost.merge(&c),
            other => panic!("push: unexpected {other:?}"),
        }
    }

    fn request_checkpoint(&self, batch: BatchId) -> Cost {
        let mut cost = Cost::new();
        match self.call(Request::Checkpoint { batch }, &mut cost) {
            Response::Ack { cost: c } => {
                cost.merge(&c);
                cost
            }
            other => panic!("checkpoint: unexpected {other:?}"),
        }
    }

    fn committed_checkpoint(&self) -> BatchId {
        match Self::raw_call(&*self.transport, Request::Committed) {
            Response::Committed { batch } => batch,
            other => panic!("committed: unexpected {other:?}"),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        match Self::raw_call(&*self.transport, Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("stats: unexpected {other:?}"),
        }
    }

    fn read_weights(&self, key: Key) -> Option<Vec<f32>> {
        match Self::raw_call(&*self.transport, Request::ReadWeights { key }) {
            Response::MaybeWeights(w) => w,
            other => panic!("read_weights: unexpected {other:?}"),
        }
    }

    fn num_keys(&self) -> usize {
        match Self::raw_call(&*self.transport, Request::NumKeys) {
            Response::Count(n) => n as usize,
            other => panic!("num_keys: unexpected {other:?}"),
        }
    }

    fn metrics_text(&self) -> String {
        match Self::raw_call(&*self.transport, Request::Metrics) {
            Response::Metrics(text) => text,
            other => panic!("metrics: unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::PsServer;
    use crate::transport::loopback;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn remote_node() -> (RemotePs, crate::server::ServerHandle) {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client_t, server_t) = loopback(32);
        let handle = PsServer::spawn(engine, server_t, 4);
        let remote = RemotePs::connect(Arc::new(client_t), NetCharge::paper_default());
        (remote, handle)
    }

    #[test]
    fn handshake_learns_identity() {
        let (remote, _h) = remote_node();
        assert_eq!(remote.dim(), 4);
        assert_eq!(remote.name(), "PMem-OE");
    }

    #[test]
    fn remote_training_step_matches_local() {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let local = PsNode::new(cfg);
        let (remote, _h) = remote_node();

        let keys = [1u64, 2, 3];
        let mut lw = Vec::new();
        let mut rw = Vec::new();
        let mut lc = Cost::new();
        let mut rc = Cost::new();
        local.pull(&keys, 1, &mut lw, &mut lc);
        remote.pull(&keys, 1, &mut rw, &mut rc);
        assert_eq!(lw, rw, "identical init over the wire");
        assert!(rc.ns(CostKind::Net) > 0, "network time charged");
        assert!(
            rc.ns(CostKind::DramTransfer) >= lc.ns(CostKind::DramTransfer),
            "server-side charges merged back"
        );

        local.end_pull_phase(1);
        remote.end_pull_phase(1);
        let grads = vec![0.5f32; 12];
        local.push(&keys, &grads, 1, &mut lc);
        remote.push(&keys, &grads, 1, &mut rc);
        for &k in &keys {
            assert_eq!(local.read_weights(k), remote.read_weights(k));
        }
    }

    #[test]
    fn remote_checkpoint_commits() {
        let (remote, _h) = remote_node();
        let keys = [7u64];
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&keys, 1, &mut out, &mut cost);
        remote.end_pull_phase(1);
        remote.push(&keys, &[0.1; 4], 1, &mut cost);
        remote.request_checkpoint(1);
        remote.pull(&keys, 2, &mut out, &mut cost);
        remote.end_pull_phase(2);
        assert_eq!(remote.committed_checkpoint(), 1);
        assert_eq!(remote.num_keys(), 1);
        assert!(remote.stats().pulls >= 2);
    }

    #[test]
    fn metrics_text_travels_over_the_wire() {
        let (remote, _h) = remote_node();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&[1, 2], 1, &mut out, &mut cost);
        let text = remote.metrics_text();
        assert!(text.contains("rpc_requests_total"), "server side:\n{text}");
        assert!(text.contains("oe_pulls_total 2"), "engine side:\n{text}");
    }

    #[test]
    fn concurrent_remote_workers() {
        let (remote, _h) = remote_node();
        let remote = Arc::new(remote);
        // Warm keys.
        let keys: Vec<u64> = (0..64).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        remote.pull(&keys, 1, &mut out, &mut cost);
        remote.end_pull_phase(1);
        let expected = out.clone();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&remote);
                let keys = keys.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut cost = Cost::new();
                    for b in 2..12 {
                        out.clear();
                        r.pull(&keys, b, &mut out, &mut cost);
                        assert_eq!(out, expected);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
    }
}
