//! Binary wire format for parameter-server RPC.
//!
//! Packet layout (little-endian), protocol version 2:
//!
//! ```text
//! ┌───────┬─────────┬──────────┬────────┬─────┬──────────┬──────────┬────────┐
//! │ magic │ version │ msg type │ client │ seq │ body len │ checksum │ body   │
//! │ u16   │ u8      │ u8       │ u32    │ u64 │ u32      │ u64      │ …      │
//! └───────┴─────────┴──────────┴────────┴─────┴──────────┴──────────┴────────┘
//! ```
//!
//! The `(client, seq)` pair is the idempotence token: every request
//! carries the issuing client's id and a per-client sequence number,
//! retries reuse the *same* pair, and the server's replay cache returns
//! the original response for a pair it has already executed — so
//! duplicated or retried pulls and pushes apply exactly once. The
//! response echoes the pair so a client can match replies to calls.
//!
//! The checksum (FNV-1a 64 over the header-minus-checksum plus the
//! body) turns any in-flight bit flip — even one inside an f32 gradient
//! payload that would otherwise decode cleanly — into a structured
//! [`Error`] of kind `Corrupt` instead of silent weight corruption.
//!
//! Bodies use length-prefixed vectors (`u32` count) of little-endian
//! scalars. Virtual-time [`Cost`]s cross the wire as their raw
//! (ns, ops) arrays so the client can merge server-side charges into
//! its own accounting.
//!
//! Every decode failure — truncation, bad magic/version, checksum
//! mismatch, unknown discriminant, short body — is a structured
//! [`Error`] with kind [`crate::ErrorKind::Corrupt`]; decode never
//! panics on arbitrary bytes.

use crate::error::{Error, ErrorKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key};
use oe_simdevice::Cost;

/// Frame magic ("OE").
pub const MAGIC: u16 = 0x4F45;
/// Wire protocol version (3: v2's `(client, seq)` idempotence token and
/// FNV-1a 64 frame checksum, plus the placement epoch on pull/push and
/// the placement/migration message family — `PlacementUpdate`,
/// `ExportEntry`/`ImportEntry`/`DiscardEntry`).
pub const VERSION: u8 = 3;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;

/// FNV-1a 64 over one byte slice continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// A decoded frame: message type + body.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server.
    Request(Request),
    /// Server → client.
    Response(Response),
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embedding lookup burst.
    Pull {
        /// Placement epoch the client routed this burst under. The
        /// server rejects epochs older than its own (the burst may be
        /// aimed at keys that migrated away); 0 = static placement.
        epoch: u64,
        /// Batch about to train.
        batch: BatchId,
        /// Keys to fetch.
        keys: Vec<Key>,
    },
    /// Gradient burst (pre-aggregated per key).
    Push {
        /// Placement epoch the client routed this burst under.
        epoch: u64,
        /// Batch that produced the gradients.
        batch: BatchId,
        /// Updated keys.
        keys: Vec<Key>,
        /// `keys.len() × dim` gradient values.
        grads: Vec<f32>,
    },
    /// All pulls for `batch` done: run deferred maintenance.
    EndPullPhase {
        /// Completed pull batch.
        batch: BatchId,
    },
    /// Request a checkpoint up to `batch`.
    Checkpoint {
        /// Latest completed batch.
        batch: BatchId,
    },
    /// Read the committed checkpoint id.
    Committed,
    /// Read engine counters.
    Stats,
    /// Read one key's weights (diagnostics).
    ReadWeights {
        /// Key to read.
        key: Key,
    },
    /// Number of known keys.
    NumKeys,
    /// Embedding dimension + engine name probe.
    Hello,
    /// Telemetry exposition: server + engine registries rendered as
    /// Prometheus-style text.
    Metrics,
    /// Idempotence-token fence: the issuing client promises it will
    /// never need a *new* execution for any of its sequence numbers
    /// `<= floor`. The server records the floor and answers every later
    /// mutating request at or below it with a `Rejected` error instead
    /// of executing. Sent by a client right after promoting a standby:
    /// tokens minted against the dead primary must not execute on the
    /// rewound replacement (the trainer replays those batches with
    /// fresh tokens), or a straggling retry would double-apply.
    SeqFence {
        /// Highest fenced-off sequence number (inclusive).
        floor: u64,
    },
    /// Placement-epoch fence: the rebalancer announces that routing
    /// epoch `epoch` is now current. The server ratchets its epoch up
    /// (never down — a replayed stale update is a no-op) and from then
    /// on rejects pull/push bursts routed under an older epoch, so a
    /// client that missed a migration cutover cannot read or write keys
    /// that have moved away.
    PlacementUpdate {
        /// New placement epoch.
        epoch: u64,
    },
    /// Read one key's *full* entry — version plus weights-and-optimizer
    /// payload — for migration seeding (`PsEngine::export_entry`).
    ExportEntry {
        /// Key to export.
        key: Key,
    },
    /// Install a full entry exported from another node
    /// (`PsEngine::import_entry`), replacing any existing entry.
    ImportEntry {
        /// Key to install.
        key: Key,
        /// Entry version (batch id) captured at export.
        version: BatchId,
        /// Full payload: weights + optimizer state.
        payload: Vec<f32>,
    },
    /// Forget a key entirely — migration cutover on the source side
    /// (`PsEngine::discard_entry`).
    DiscardEntry {
        /// Key to discard.
        key: Key,
    },
}

impl Request {
    /// Whether executing this request mutates server state — only
    /// mutating requests enter the replay cache; reads are naturally
    /// idempotent. `SeqFence` and `PlacementUpdate` mutate only fencing
    /// bookkeeping and are idempotent by construction (both only
    /// ratchet up), so they bypass the cache too.
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Request::Pull { .. }
                | Request::Push { .. }
                | Request::EndPullPhase { .. }
                | Request::Checkpoint { .. }
                | Request::ImportEntry { .. }
                | Request::DiscardEntry { .. }
        )
    }
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Pull result.
    Weights {
        /// `keys × dim` weights in request order.
        weights: Vec<f32>,
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Push/checkpoint acknowledgement.
    Ack {
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Maintenance outcome.
    Maintenance {
        /// Access-queue records processed.
        entries: u64,
        /// Checkpoints committed.
        commits: u64,
        /// Deferred-work cost (overlappable).
        cost: Cost,
    },
    /// Committed checkpoint id.
    Committed {
        /// Batch id.
        batch: BatchId,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Weights of one key, if known.
    MaybeWeights(Option<Vec<f32>>),
    /// A count.
    Count(u64),
    /// Hello reply.
    HelloOk {
        /// Embedding dimension served.
        dim: u32,
        /// Engine name.
        name: String,
    },
    /// Rendered telemetry text.
    Metrics(String),
    /// A full entry (version + weights-and-optimizer payload), or
    /// `None` if the key has no entry. Reply to `ExportEntry`.
    Entry(Option<(BatchId, Vec<f32>)>),
    /// The server could not serve the request (e.g. an undecodable
    /// frame). Carrying the structured reason back keeps the client
    /// from blocking forever on a dropped frame and lets it classify
    /// retryability without string matching.
    Error {
        /// Failure classification (travels as its wire code).
        kind: ErrorKind,
        /// Human-readable reason.
        message: String,
    },
}

/// A wire packet: the idempotence token plus the frame it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Issuing client id (0 for server-originated error replies to
    /// unattributable frames).
    pub client: u32,
    /// Per-client sequence number; retries of the same logical request
    /// reuse it.
    pub seq: u64,
    /// The message.
    pub frame: Frame,
}

// --- primitive helpers -------------------------------------------------

fn put_u64s(buf: &mut BytesMut, vals: &[u64]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_u64_le(v);
    }
}

fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

fn truncated() -> Error {
    Error::corrupt("truncated frame")
}

fn get_u64s(buf: &mut Bytes) -> Result<Vec<u64>, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n.saturating_mul(8) {
        return Err(truncated());
    }
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n.saturating_mul(4) {
        return Err(truncated());
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Wire size of a [`Cost`]: 8 ns counters + 8 op counters, 8 bytes each.
const COST_WIRE_LEN: usize = 16 * 8;

fn put_cost(buf: &mut BytesMut, cost: &Cost) {
    let (ns, ops) = cost.raw_parts();
    for v in ns {
        buf.put_u64_le(v);
    }
    for v in ops {
        buf.put_u64_le(v);
    }
}

fn get_cost(buf: &mut Bytes) -> Result<Cost, Error> {
    if buf.remaining() < COST_WIRE_LEN {
        return Err(truncated());
    }
    let mut ns = [0u64; 8];
    let mut ops = [0u64; 8];
    for v in &mut ns {
        *v = buf.get_u64_le();
    }
    for v in &mut ops {
        *v = buf.get_u64_le();
    }
    Ok(Cost::from_raw_parts(ns, ops))
}

fn get_u64(buf: &mut Bytes) -> Result<u64, Error> {
    if buf.remaining() < 8 {
        return Err(truncated());
    }
    Ok(buf.get_u64_le())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(truncated());
    }
    Ok(String::from_utf8_lossy(&buf.copy_to_bytes(n)).into_owned())
}

// --- frame body encode/decode ------------------------------------------

impl Frame {
    fn msg_type(&self) -> u8 {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { .. } => 0x01,
                Request::Push { .. } => 0x02,
                Request::EndPullPhase { .. } => 0x03,
                Request::Checkpoint { .. } => 0x04,
                Request::Committed => 0x05,
                Request::Stats => 0x06,
                Request::ReadWeights { .. } => 0x07,
                Request::NumKeys => 0x08,
                Request::Hello => 0x09,
                Request::Metrics => 0x0A,
                Request::SeqFence { .. } => 0x0B,
                Request::PlacementUpdate { .. } => 0x0C,
                Request::ExportEntry { .. } => 0x0D,
                Request::ImportEntry { .. } => 0x0E,
                Request::DiscardEntry { .. } => 0x0F,
            },
            Frame::Response(r) => match r {
                Response::Weights { .. } => 0x81,
                Response::Ack { .. } => 0x82,
                Response::Maintenance { .. } => 0x83,
                Response::Committed { .. } => 0x84,
                Response::Stats(_) => 0x85,
                Response::MaybeWeights(_) => 0x86,
                Response::Count(_) => 0x87,
                Response::HelloOk { .. } => 0x88,
                Response::Metrics(_) => 0x89,
                Response::Entry(_) => 0x8A,
                Response::Error { .. } => 0x8F,
            },
        }
    }

    /// Exact encoded body size in bytes. Kept in lockstep with
    /// [`Frame::encode_body`] (asserted by the codec tests) so
    /// [`Packet::encoded_len`] and encode pre-sizing never re-encode.
    fn body_len(&self) -> usize {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { keys, .. } => 8 + 8 + 4 + keys.len() * 8,
                Request::Push { keys, grads, .. } => {
                    8 + 8 + 4 + keys.len() * 8 + 4 + grads.len() * 4
                }
                Request::EndPullPhase { .. }
                | Request::Checkpoint { .. }
                | Request::ReadWeights { .. }
                | Request::SeqFence { .. }
                | Request::PlacementUpdate { .. }
                | Request::ExportEntry { .. }
                | Request::DiscardEntry { .. } => 8,
                Request::ImportEntry { payload, .. } => 8 + 8 + 4 + payload.len() * 4,
                Request::Committed
                | Request::Stats
                | Request::NumKeys
                | Request::Hello
                | Request::Metrics => 0,
            },
            Frame::Response(r) => match r {
                Response::Weights { weights, .. } => 4 + weights.len() * 4 + COST_WIRE_LEN,
                Response::Ack { .. } => COST_WIRE_LEN,
                Response::Maintenance { .. } => 8 + 8 + COST_WIRE_LEN,
                Response::Committed { .. } | Response::Count(_) => 8,
                Response::Stats(_) => 11 * 8,
                Response::MaybeWeights(w) => match w {
                    Some(w) => 1 + 4 + w.len() * 4,
                    None => 1,
                },
                Response::HelloOk { name, .. } => 4 + 4 + name.len(),
                Response::Metrics(text) => 4 + text.len(),
                Response::Entry(e) => match e {
                    Some((_, payload)) => 1 + 8 + 4 + payload.len() * 4,
                    None => 1,
                },
                Response::Error { message, .. } => 1 + 4 + message.len(),
            },
        }
    }

    fn encode_body(&self, body: &mut BytesMut) {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { epoch, batch, keys } => {
                    body.put_u64_le(*epoch);
                    body.put_u64_le(*batch);
                    put_u64s(body, keys);
                }
                Request::Push {
                    epoch,
                    batch,
                    keys,
                    grads,
                } => {
                    body.put_u64_le(*epoch);
                    body.put_u64_le(*batch);
                    put_u64s(body, keys);
                    put_f32s(body, grads);
                }
                Request::EndPullPhase { batch } | Request::Checkpoint { batch } => {
                    body.put_u64_le(*batch);
                }
                Request::ReadWeights { key } => body.put_u64_le(*key),
                Request::SeqFence { floor } => body.put_u64_le(*floor),
                Request::PlacementUpdate { epoch } => body.put_u64_le(*epoch),
                Request::ExportEntry { key } | Request::DiscardEntry { key } => {
                    body.put_u64_le(*key)
                }
                Request::ImportEntry {
                    key,
                    version,
                    payload,
                } => {
                    body.put_u64_le(*key);
                    body.put_u64_le(*version);
                    put_f32s(body, payload);
                }
                Request::Committed
                | Request::Stats
                | Request::NumKeys
                | Request::Hello
                | Request::Metrics => {}
            },
            Frame::Response(r) => match r {
                Response::Weights { weights, cost } => {
                    put_f32s(body, weights);
                    put_cost(body, cost);
                }
                Response::Ack { cost } => put_cost(body, cost),
                Response::Maintenance {
                    entries,
                    commits,
                    cost,
                } => {
                    body.put_u64_le(*entries);
                    body.put_u64_le(*commits);
                    put_cost(body, cost);
                }
                Response::Committed { batch } => body.put_u64_le(*batch),
                Response::Stats(s) => {
                    for v in [
                        s.pulls,
                        s.hits,
                        s.misses,
                        s.new_entries,
                        s.pushes,
                        s.evictions,
                        s.flushes,
                        s.loads,
                        s.ckpt_commits,
                        s.ckpt_entries_written,
                        s.slots_recycled,
                    ] {
                        body.put_u64_le(v);
                    }
                }
                Response::MaybeWeights(w) => match w {
                    Some(w) => {
                        body.put_u8(1);
                        put_f32s(body, w);
                    }
                    None => body.put_u8(0),
                },
                Response::Count(n) => body.put_u64_le(*n),
                Response::HelloOk { dim, name } => {
                    body.put_u32_le(*dim);
                    body.put_u32_le(name.len() as u32);
                    body.put_slice(name.as_bytes());
                }
                Response::Metrics(text) => put_str(body, text),
                Response::Entry(e) => match e {
                    Some((version, payload)) => {
                        body.put_u8(1);
                        body.put_u64_le(*version);
                        put_f32s(body, payload);
                    }
                    None => body.put_u8(0),
                },
                Response::Error { kind, message } => {
                    body.put_u8(kind.code());
                    put_str(body, message);
                }
            },
        }
    }

    fn decode_body(msg_type: u8, body: &mut Bytes) -> Result<Frame, Error> {
        let frame = match msg_type {
            0x01 => Frame::Request(Request::Pull {
                epoch: get_u64(body)?,
                batch: get_u64(body)?,
                keys: get_u64s(body)?,
            }),
            0x02 => Frame::Request(Request::Push {
                epoch: get_u64(body)?,
                batch: get_u64(body)?,
                keys: get_u64s(body)?,
                grads: get_f32s(body)?,
            }),
            0x03 => Frame::Request(Request::EndPullPhase {
                batch: get_u64(body)?,
            }),
            0x04 => Frame::Request(Request::Checkpoint {
                batch: get_u64(body)?,
            }),
            0x05 => Frame::Request(Request::Committed),
            0x06 => Frame::Request(Request::Stats),
            0x07 => Frame::Request(Request::ReadWeights {
                key: get_u64(body)?,
            }),
            0x08 => Frame::Request(Request::NumKeys),
            0x09 => Frame::Request(Request::Hello),
            0x0A => Frame::Request(Request::Metrics),
            0x0B => Frame::Request(Request::SeqFence {
                floor: get_u64(body)?,
            }),
            0x0C => Frame::Request(Request::PlacementUpdate {
                epoch: get_u64(body)?,
            }),
            0x0D => Frame::Request(Request::ExportEntry {
                key: get_u64(body)?,
            }),
            0x0E => Frame::Request(Request::ImportEntry {
                key: get_u64(body)?,
                version: get_u64(body)?,
                payload: get_f32s(body)?,
            }),
            0x0F => Frame::Request(Request::DiscardEntry {
                key: get_u64(body)?,
            }),
            0x81 => Frame::Response(Response::Weights {
                weights: get_f32s(body)?,
                cost: get_cost(body)?,
            }),
            0x82 => Frame::Response(Response::Ack {
                cost: get_cost(body)?,
            }),
            0x83 => Frame::Response(Response::Maintenance {
                entries: get_u64(body)?,
                commits: get_u64(body)?,
                cost: get_cost(body)?,
            }),
            0x84 => Frame::Response(Response::Committed {
                batch: get_u64(body)?,
            }),
            0x85 => {
                let mut vals = [0u64; 11];
                for v in &mut vals {
                    *v = get_u64(body)?;
                }
                Frame::Response(Response::Stats(StatsSnapshot {
                    pulls: vals[0],
                    hits: vals[1],
                    misses: vals[2],
                    new_entries: vals[3],
                    pushes: vals[4],
                    evictions: vals[5],
                    flushes: vals[6],
                    loads: vals[7],
                    ckpt_commits: vals[8],
                    ckpt_entries_written: vals[9],
                    slots_recycled: vals[10],
                }))
            }
            0x86 => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let present = body.get_u8() == 1;
                Frame::Response(Response::MaybeWeights(if present {
                    Some(get_f32s(body)?)
                } else {
                    None
                }))
            }
            0x87 => Frame::Response(Response::Count(get_u64(body)?)),
            0x88 => {
                if body.remaining() < 8 {
                    return Err(truncated());
                }
                let dim = body.get_u32_le();
                let n = body.get_u32_le() as usize;
                if body.remaining() < n {
                    return Err(truncated());
                }
                let name = String::from_utf8_lossy(&body.copy_to_bytes(n)).into_owned();
                Frame::Response(Response::HelloOk { dim, name })
            }
            0x89 => Frame::Response(Response::Metrics(get_str(body)?)),
            0x8A => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let present = body.get_u8() == 1;
                Frame::Response(Response::Entry(if present {
                    Some((get_u64(body)?, get_f32s(body)?))
                } else {
                    None
                }))
            }
            0x8F => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let kind = ErrorKind::from_code(body.get_u8());
                Frame::Response(Response::Error {
                    kind,
                    message: get_str(body)?,
                })
            }
            other => return Err(Error::corrupt(format!("unknown message type {other:#04x}"))),
        };
        Ok(frame)
    }
}

// --- packet encode/decode -----------------------------------------------

impl Packet {
    /// Wrap a request with its idempotence token.
    pub fn request(client: u32, seq: u64, req: Request) -> Self {
        Self {
            client,
            seq,
            frame: Frame::Request(req),
        }
    }

    /// Wrap a response, echoing the request's token.
    pub fn response(client: u32, seq: u64, resp: Response) -> Self {
        Self {
            client,
            seq,
            frame: Frame::Response(resp),
        }
    }

    /// Serialize to a wire packet (header + checksum + body). The body
    /// is encoded directly into the packet buffer — no staging buffer,
    /// no body copy — and the length/checksum header fields are patched
    /// in afterwards ([`Packet::seal`]): one allocation, one pass over
    /// the final bytes for the FNV-1a checksum.
    pub fn encode(&self) -> Bytes {
        let mut pkt = BytesMut::with_capacity(HEADER_LEN + self.frame.body_len());
        Self::put_header(&mut pkt, self.frame.msg_type(), self.client, self.seq);
        self.frame.encode_body(&mut pkt);
        Self::seal(pkt)
    }

    /// Write the fixed header with zeroed body-length and checksum
    /// fields; [`Packet::seal`] patches both once the body is in place.
    fn put_header(pkt: &mut BytesMut, msg_type: u8, client: u32, seq: u64) {
        pkt.put_u16_le(MAGIC);
        pkt.put_u8(VERSION);
        pkt.put_u8(msg_type);
        pkt.put_u32_le(client);
        pkt.put_u64_le(seq);
        pkt.put_u32_le(0); // body length, patched by seal()
        pkt.put_u64_le(0); // checksum, patched by seal()
    }

    /// Patch the body length and checksum into a buffer produced by
    /// [`Packet::put_header`] + body writes, and freeze it.
    fn seal(mut pkt: BytesMut) -> Bytes {
        let body_len = (pkt.len() - HEADER_LEN) as u32;
        pkt[16..20].copy_from_slice(&body_len.to_le_bytes());
        let checksum = fnv1a(
            fnv1a(FNV_OFFSET, &pkt[..HEADER_LEN - 8]),
            &pkt[HEADER_LEN..],
        );
        pkt[20..28].copy_from_slice(&checksum.to_le_bytes());
        pkt.freeze()
    }

    /// Encode a pull request straight from a borrowed key slice —
    /// byte-identical to wrapping the keys in [`Request::Pull`] and
    /// calling [`Packet::encode`], without materializing the owned
    /// vector.
    pub fn encode_pull(client: u32, seq: u64, epoch: u64, batch: BatchId, keys: &[Key]) -> Bytes {
        let mut pkt = BytesMut::with_capacity(HEADER_LEN + 20 + keys.len() * 8);
        Self::put_header(&mut pkt, 0x01, client, seq);
        pkt.put_u64_le(epoch);
        pkt.put_u64_le(batch);
        put_u64s(&mut pkt, keys);
        Self::seal(pkt)
    }

    /// Encode a push request straight from borrowed key/gradient slices
    /// — byte-identical to the owned [`Request::Push`] encoding.
    pub fn encode_push(
        client: u32,
        seq: u64,
        epoch: u64,
        batch: BatchId,
        keys: &[Key],
        grads: &[f32],
    ) -> Bytes {
        let mut pkt = BytesMut::with_capacity(HEADER_LEN + 24 + keys.len() * 8 + grads.len() * 4);
        Self::put_header(&mut pkt, 0x02, client, seq);
        pkt.put_u64_le(epoch);
        pkt.put_u64_le(batch);
        put_u64s(&mut pkt, keys);
        put_f32s(&mut pkt, grads);
        Self::seal(pkt)
    }

    /// Encode a weights response straight from a borrowed weight slice —
    /// byte-identical to the owned [`Response::Weights`] encoding. The
    /// server's pull hot path answers from its reusable output buffer
    /// without ever constructing an owned response.
    pub fn encode_weights_response(client: u32, seq: u64, weights: &[f32], cost: &Cost) -> Bytes {
        let mut pkt = BytesMut::with_capacity(HEADER_LEN + 4 + weights.len() * 4 + COST_WIRE_LEN);
        Self::put_header(&mut pkt, 0x81, client, seq);
        put_f32s(&mut pkt, weights);
        put_cost(&mut pkt, cost);
        Self::seal(pkt)
    }

    /// Parse a wire packet. Any malformed input — truncated header or
    /// body, wrong magic/version, checksum mismatch, unknown message
    /// type — returns a structured [`Error`] of kind `Corrupt`; this
    /// function never panics on arbitrary bytes.
    pub fn decode(buf: Bytes) -> Result<Packet, Error> {
        let meta = validate_frame(&buf)?;
        let mut body = buf.slice(HEADER_LEN..HEADER_LEN + meta.body_len);
        let frame = Frame::decode_body(meta.msg_type, &mut body)?;
        Ok(Packet {
            client: meta.client,
            seq: meta.seq,
            frame,
        })
    }

    /// Wire size of the encoded packet (for network-cost charging),
    /// computed without encoding.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.frame.body_len()
    }
}

/// A validated frame header: the idempotence token, message type, and
/// body extent of a wire packet whose magic, version, length, and
/// checksum have all been verified. The body is
/// `buf[HEADER_LEN..HEADER_LEN + body_len]`; borrowed view decoders
/// ([`RequestView`], [`ResponseView`]) parse it in place.
#[derive(Debug, Clone, Copy)]
pub struct FrameMeta {
    /// Message-type discriminant.
    pub msg_type: u8,
    /// Issuing client id from the idempotence token.
    pub client: u32,
    /// Per-client sequence number from the idempotence token.
    pub seq: u64,
    /// Body length in bytes.
    pub body_len: usize,
}

/// Validate a frame's fixed header and checksum without materializing
/// anything: magic, version, body extent, and the FNV-1a 64 over
/// header-minus-checksum plus body. This is the single integrity pass
/// shared by the owned decoder ([`Packet::decode`]) and the borrowed
/// view decoders.
pub fn validate_frame(buf: &[u8]) -> Result<FrameMeta, Error> {
    if buf.len() < HEADER_LEN {
        return Err(truncated());
    }
    if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
        return Err(Error::corrupt("bad magic"));
    }
    let version = buf[2];
    if version != VERSION {
        return Err(Error::corrupt(format!(
            "protocol version {version}, expected {VERSION}"
        )));
    }
    let msg_type = buf[3];
    let client = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let body_len = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize;
    let checksum = u64::from_le_bytes(buf[20..28].try_into().expect("8 bytes"));
    if buf.len() - HEADER_LEN < body_len {
        return Err(truncated());
    }
    let body = &buf[HEADER_LEN..HEADER_LEN + body_len];
    let computed = fnv1a(fnv1a(FNV_OFFSET, &buf[..HEADER_LEN - 8]), body);
    if computed != checksum {
        return Err(Error::corrupt("checksum mismatch"));
    }
    Ok(FrameMeta {
        msg_type,
        client,
        seq,
        body_len,
    })
}

/// A borrowed, length-prefixed vector of little-endian `u64`s viewed
/// directly over frame bytes — the zero-copy decode of a key list. The
/// underlying bytes need not be 8-aligned; element access reads via
/// `from_le_bytes`.
#[derive(Debug, Clone, Copy)]
pub struct U64sView<'a> {
    bytes: &'a [u8],
}

impl<'a> U64sView<'a> {
    /// Split a length-prefixed u64 vector off the front of `buf`.
    fn split(buf: &mut &'a [u8]) -> Result<Self, Error> {
        if buf.len() < 4 {
            return Err(truncated());
        }
        let n = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        let total = n.saturating_mul(8);
        if buf.len() - 4 < total {
            return Err(truncated());
        }
        let (head, rest) = buf[4..].split_at(total);
        *buf = rest;
        Ok(Self { bytes: head })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element; panics if out of range (like slice indexing).
    pub fn get(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"))
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = u64> + 'a {
        self.bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
    }

    /// Append all elements to `out` (the one copy a zero-copy request
    /// takes: wire bytes → reusable scratch).
    pub fn extend_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len());
        out.extend(self.iter());
    }
}

/// A borrowed, length-prefixed vector of little-endian `f32`s viewed
/// directly over frame bytes — the zero-copy decode of a gradient or
/// weight burst.
#[derive(Debug, Clone, Copy)]
pub struct F32sView<'a> {
    bytes: &'a [u8],
}

impl<'a> F32sView<'a> {
    /// Split a length-prefixed f32 vector off the front of `buf`.
    fn split(buf: &mut &'a [u8]) -> Result<Self, Error> {
        if buf.len() < 4 {
            return Err(truncated());
        }
        let n = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        let total = n.saturating_mul(4);
        if buf.len() - 4 < total {
            return Err(truncated());
        }
        let (head, rest) = buf[4..].split_at(total);
        *buf = rest;
        Ok(Self { bytes: head })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.bytes.len() / 4
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The `i`-th element; panics if out of range (like slice indexing).
    pub fn get(&self, i: usize) -> f32 {
        f32::from_le_bytes(self.bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = f32> + 'a {
        self.bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
    }

    /// Append all elements to `out`.
    pub fn extend_into(&self, out: &mut Vec<f32>) {
        out.reserve(self.len());
        out.extend(self.iter());
    }
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, Error> {
    if buf.len() < 8 {
        return Err(truncated());
    }
    let v = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    *buf = &buf[8..];
    Ok(v)
}

/// A request decoded in place over a validated frame: the hot-path
/// bursts (`Pull`, `Push`) keep their key and gradient vectors as
/// borrowed views over the frame bytes; every other request falls back
/// to the owned decoder (they are small and rare).
#[derive(Debug)]
pub enum RequestView<'a> {
    /// Pull burst; `keys` borrows the frame.
    Pull {
        /// Placement epoch the client routed under.
        epoch: u64,
        /// Batch about to train.
        batch: BatchId,
        /// Keys to fetch, viewed over the frame bytes.
        keys: U64sView<'a>,
    },
    /// Push burst; `keys` and `grads` borrow the frame.
    Push {
        /// Placement epoch the client routed under.
        epoch: u64,
        /// Batch that produced the gradients.
        batch: BatchId,
        /// Updated keys, viewed over the frame bytes.
        keys: U64sView<'a>,
        /// Gradient values, viewed over the frame bytes.
        grads: F32sView<'a>,
    },
    /// Any other request, decoded as owned data.
    Other(Request),
}

impl<'a> RequestView<'a> {
    /// Decode the body of a validated request frame. `buf` must be the
    /// same buffer `meta` was validated from.
    pub fn decode(meta: FrameMeta, buf: &'a Bytes) -> Result<Self, Error> {
        let mut body: &[u8] = &buf[HEADER_LEN..HEADER_LEN + meta.body_len];
        match meta.msg_type {
            0x01 => Ok(RequestView::Pull {
                epoch: take_u64(&mut body)?,
                batch: take_u64(&mut body)?,
                keys: U64sView::split(&mut body)?,
            }),
            0x02 => Ok(RequestView::Push {
                epoch: take_u64(&mut body)?,
                batch: take_u64(&mut body)?,
                keys: U64sView::split(&mut body)?,
                grads: F32sView::split(&mut body)?,
            }),
            mt => {
                let mut owned = buf.slice(HEADER_LEN..HEADER_LEN + meta.body_len);
                match Frame::decode_body(mt, &mut owned)? {
                    Frame::Request(r) => Ok(RequestView::Other(r)),
                    Frame::Response(_) => Err(Error::corrupt(format!(
                        "response type {mt:#04x} as request"
                    ))),
                }
            }
        }
    }

    /// Whether executing this request mutates server state (mirrors
    /// [`Request::is_mutating`]).
    pub fn is_mutating(&self) -> bool {
        match self {
            RequestView::Pull { .. } | RequestView::Push { .. } => true,
            RequestView::Other(r) => r.is_mutating(),
        }
    }

    /// The placement epoch this burst was routed under, if it carries
    /// one.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            RequestView::Pull { epoch, .. } | RequestView::Push { epoch, .. } => Some(*epoch),
            RequestView::Other(_) => None,
        }
    }
}

/// A response decoded in place over a validated frame: the hot-path
/// `Weights` burst keeps its weight vector as a borrowed view; every
/// other response falls back to the owned decoder.
#[derive(Debug)]
pub enum ResponseView<'a> {
    /// Pull result; `weights` borrows the frame.
    Weights {
        /// Weights in request order, viewed over the frame bytes.
        weights: F32sView<'a>,
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Any other response, decoded as owned data.
    Other(Response),
}

impl<'a> ResponseView<'a> {
    /// Decode the body of a validated response frame. `buf` must be the
    /// same buffer `meta` was validated from.
    pub fn decode(meta: FrameMeta, buf: &'a Bytes) -> Result<Self, Error> {
        match meta.msg_type {
            0x81 => {
                let mut body: &[u8] = &buf[HEADER_LEN..HEADER_LEN + meta.body_len];
                let weights = F32sView::split(&mut body)?;
                if body.len() < COST_WIRE_LEN {
                    return Err(truncated());
                }
                let mut cost_bytes = buf.slice(HEADER_LEN..HEADER_LEN + meta.body_len);
                cost_bytes.advance(meta.body_len - body.len());
                let cost = get_cost(&mut cost_bytes)?;
                Ok(ResponseView::Weights { weights, cost })
            }
            mt => {
                let mut owned = buf.slice(HEADER_LEN..HEADER_LEN + meta.body_len);
                match Frame::decode_body(mt, &mut owned)? {
                    Frame::Response(r) => Ok(ResponseView::Other(r)),
                    Frame::Request(_) => Err(Error::corrupt(format!(
                        "request type {mt:#04x} as response"
                    ))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::CostKind;

    fn roundtrip(f: Frame) {
        let p = Packet {
            client: 3,
            seq: 99,
            frame: f,
        };
        let enc = p.encode();
        assert_eq!(p.encoded_len(), enc.len(), "analytic length is exact");
        let dec = Packet::decode(enc).expect("decodes");
        assert_eq!(dec, p);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(Frame::Request(Request::Pull {
            epoch: 4,
            batch: 7,
            keys: vec![1, 2, u64::MAX],
        }));
        roundtrip(Frame::Request(Request::Push {
            epoch: u64::MAX,
            batch: 9,
            keys: vec![3],
            grads: vec![0.5, -1.25, f32::MIN_POSITIVE, 0.0],
        }));
        roundtrip(Frame::Request(Request::EndPullPhase { batch: 1 }));
        roundtrip(Frame::Request(Request::Checkpoint { batch: 4 }));
        roundtrip(Frame::Request(Request::Committed));
        roundtrip(Frame::Request(Request::Stats));
        roundtrip(Frame::Request(Request::ReadWeights { key: 42 }));
        roundtrip(Frame::Request(Request::NumKeys));
        roundtrip(Frame::Request(Request::Hello));
        roundtrip(Frame::Request(Request::Metrics));
        roundtrip(Frame::Request(Request::SeqFence { floor: u64::MAX }));
        roundtrip(Frame::Request(Request::PlacementUpdate { epoch: 3 }));
        roundtrip(Frame::Request(Request::ExportEntry { key: 12 }));
        roundtrip(Frame::Request(Request::ImportEntry {
            key: 12,
            version: 40,
            payload: vec![1.5, -0.25, 0.0, 9.75],
        }));
        roundtrip(Frame::Request(Request::DiscardEntry { key: 12 }));
    }

    #[test]
    fn migration_family_cacheability() {
        // Import/discard mutate entry state → replay-cached; export is a
        // read and the epoch fence ratchets idempotently → neither cached.
        assert!(Request::ImportEntry {
            key: 1,
            version: 0,
            payload: vec![]
        }
        .is_mutating());
        assert!(Request::DiscardEntry { key: 1 }.is_mutating());
        assert!(!Request::ExportEntry { key: 1 }.is_mutating());
        assert!(!Request::PlacementUpdate { epoch: 9 }.is_mutating());
    }

    #[test]
    fn seq_fence_bypasses_the_replay_cache() {
        // The fence itself must never be cached: a replayed stale fence
        // could otherwise shadow a later, higher floor.
        assert!(!Request::SeqFence { floor: 7 }.is_mutating());
    }

    #[test]
    fn response_roundtrips() {
        let mut cost = Cost::new();
        cost.charge(CostKind::PmemRead, 305);
        cost.charge(CostKind::Cpu, 45);
        roundtrip(Frame::Response(Response::Weights {
            weights: vec![1.0, 2.5],
            cost: cost.clone(),
        }));
        roundtrip(Frame::Response(Response::Ack { cost: cost.clone() }));
        roundtrip(Frame::Response(Response::Maintenance {
            entries: 100,
            commits: 1,
            cost,
        }));
        roundtrip(Frame::Response(Response::Committed { batch: 3 }));
        roundtrip(Frame::Response(Response::Stats(StatsSnapshot {
            pulls: 1,
            hits: 2,
            misses: 3,
            new_entries: 4,
            pushes: 5,
            evictions: 6,
            flushes: 7,
            loads: 8,
            ckpt_commits: 9,
            ckpt_entries_written: 10,
            slots_recycled: 11,
        })));
        roundtrip(Frame::Response(Response::MaybeWeights(Some(vec![9.0]))));
        roundtrip(Frame::Response(Response::MaybeWeights(None)));
        roundtrip(Frame::Response(Response::Count(77)));
        roundtrip(Frame::Response(Response::HelloOk {
            dim: 64,
            name: "PMem-OE".into(),
        }));
        roundtrip(Frame::Response(Response::Metrics(
            "# TYPE oe_pulls_total counter\noe_pulls_total 7\n".into(),
        )));
        roundtrip(Frame::Response(Response::Metrics(String::new())));
        roundtrip(Frame::Response(Response::Entry(Some((
            17,
            vec![0.5, -2.0, f32::MAX],
        )))));
        roundtrip(Frame::Response(Response::Entry(None)));
        roundtrip(Frame::Response(Response::Error {
            kind: ErrorKind::Corrupt,
            message: "bad magic".into(),
        }));
    }

    #[test]
    fn idempotence_token_roundtrips() {
        let p = Packet::request(0xDEAD_BEEF, u64::MAX - 1, Request::NumKeys);
        let dec = Packet::decode(p.encode()).unwrap();
        assert_eq!(dec.client, 0xDEAD_BEEF);
        assert_eq!(dec.seq, u64::MAX - 1);
        // Same logical request, same token → byte-identical frames
        // (what the replay cache relies on).
        assert_eq!(p.encode(), dec.encode());
        // A different seq changes the bytes (and the checksum).
        let p2 = Packet::request(0xDEAD_BEEF, 0, Request::NumKeys);
        assert_ne!(p.encode(), p2.encode());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = BytesMut::from(&Packet::request(1, 1, Request::Hello).encode()[..]);
        enc[0] = 0;
        let err = Packet::decode(enc.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut enc = BytesMut::from(&Packet::request(1, 1, Request::Hello).encode()[..]);
        enc[2] = VERSION + 1;
        let err = Packet::decode(enc.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(err.context().contains("version"), "{err}");
    }

    #[test]
    fn truncated_rejected() {
        let enc = Packet::request(
            2,
            5,
            Request::Pull {
                epoch: 0,
                batch: 1,
                keys: vec![1, 2, 3],
            },
        )
        .encode();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, enc.len() - 1] {
            let t = enc.slice(0..cut);
            let err = Packet::decode(t).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Corrupt, "cut at {cut}");
        }
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // The checksum catches single bit flips anywhere in the packet —
        // including inside the f32 gradient body, where a flip would
        // otherwise decode cleanly and silently corrupt training.
        let enc = Packet::request(
            1,
            7,
            Request::Push {
                epoch: 0,
                batch: 2,
                keys: vec![10, 11],
                grads: vec![0.25, -0.5, 1.0, 2.0],
            },
        )
        .encode();
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut flipped = BytesMut::from(&enc[..]);
                flipped[byte] ^= 1 << bit;
                let err = Packet::decode(flipped.freeze())
                    .expect_err(&format!("flip {byte}:{bit} must not decode"));
                assert_eq!(err.kind(), ErrorKind::Corrupt, "flip {byte}:{bit}");
            }
        }
    }

    #[test]
    fn unknown_type_rejected() {
        // Rebuild a packet with an unknown msg type and a valid
        // checksum: the type check must still reject it.
        let mut pkt = BytesMut::new();
        pkt.put_u16_le(MAGIC);
        pkt.put_u8(VERSION);
        pkt.put_u8(0x7F);
        pkt.put_u32_le(1);
        pkt.put_u64_le(1);
        pkt.put_u32_le(0);
        let checksum = fnv1a(FNV_OFFSET, &pkt[..]);
        pkt.put_u64_le(checksum);
        let err = Packet::decode(pkt.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(err.context().contains("unknown message type"), "{err}");
    }

    #[test]
    fn borrowed_encoders_match_owned() {
        let keys: Vec<u64> = vec![1, 99, u64::MAX, 7];
        let grads: Vec<f32> = vec![0.5, -1.25, 3.5e-9, 0.0, 1.0, -2.0, 3.25, f32::MAX];
        assert_eq!(
            Packet::encode_pull(3, 41, 5, 9, &keys),
            Packet::request(
                3,
                41,
                Request::Pull {
                    epoch: 5,
                    batch: 9,
                    keys: keys.clone()
                }
            )
            .encode()
        );
        assert_eq!(
            Packet::encode_push(3, 42, 5, 9, &keys, &grads),
            Packet::request(
                3,
                42,
                Request::Push {
                    epoch: 5,
                    batch: 9,
                    keys: keys.clone(),
                    grads: grads.clone()
                }
            )
            .encode()
        );
        let mut cost = Cost::new();
        cost.charge(CostKind::Net, 77);
        cost.charge(CostKind::PmemRead, 305);
        assert_eq!(
            Packet::encode_weights_response(3, 43, &grads, &cost),
            Packet::response(
                3,
                43,
                Response::Weights {
                    weights: grads.clone(),
                    cost
                }
            )
            .encode()
        );
    }

    #[test]
    fn request_views_agree_with_owned_decode() {
        let keys = [4u64, 5, 4, u64::MAX];
        let grads = [1.0f32, 2.0, -3.0, 0.5];
        let enc = Packet::encode_push(9, 11, 2, 3, &keys, &grads);
        let meta = validate_frame(&enc).expect("valid frame");
        assert_eq!((meta.client, meta.seq, meta.msg_type), (9, 11, 0x02));
        let RequestView::Push {
            epoch,
            batch,
            keys: kv,
            grads: gv,
        } = RequestView::decode(meta, &enc).expect("view decodes")
        else {
            panic!("wrong view");
        };
        assert_eq!((epoch, batch), (2, 3));
        assert_eq!(kv.iter().collect::<Vec<_>>(), keys);
        assert_eq!(gv.iter().collect::<Vec<_>>(), grads);
        assert_eq!(kv.get(3), u64::MAX);
        assert_eq!(gv.get(2), -3.0);
        let mut out = Vec::new();
        kv.extend_into(&mut out);
        assert_eq!(out, keys);
        // Owned decode of the same bytes agrees field for field.
        let dec = Packet::decode(enc.clone()).unwrap();
        let Frame::Request(Request::Push {
            keys: ok,
            grads: og,
            ..
        }) = dec.frame
        else {
            panic!("wrong frame");
        };
        assert_eq!(ok, keys);
        assert_eq!(og, grads);
        // Non-hot-path requests fall back to the owned decoder.
        let enc = Packet::request(9, 12, Request::SeqFence { floor: 6 }).encode();
        let meta = validate_frame(&enc).unwrap();
        let view = RequestView::decode(meta, &enc).unwrap();
        assert!(matches!(
            view,
            RequestView::Other(Request::SeqFence { floor: 6 })
        ));
        assert!(!view.is_mutating());
        assert_eq!(view.epoch(), None);
    }

    #[test]
    fn response_view_borrows_weights() {
        let mut cost = Cost::new();
        cost.charge(CostKind::DramTransfer, 12);
        let weights = [0.25f32, -9.5, 3.0];
        let enc = Packet::encode_weights_response(1, 2, &weights, &cost);
        let meta = validate_frame(&enc).unwrap();
        let ResponseView::Weights {
            weights: wv,
            cost: back,
        } = ResponseView::decode(meta, &enc).expect("view decodes")
        else {
            panic!("wrong view");
        };
        assert_eq!(wv.iter().collect::<Vec<_>>(), weights);
        assert_eq!(back, cost);
        // Non-weights responses fall back to the owned decoder.
        let enc = Packet::response(1, 3, Response::Count(7)).encode();
        let meta = validate_frame(&enc).unwrap();
        assert!(matches!(
            ResponseView::decode(meta, &enc).unwrap(),
            ResponseView::Other(Response::Count(7))
        ));
    }

    #[test]
    fn view_decode_rejects_truncated_slices() {
        // A body whose length prefix promises more elements than the
        // frame carries must fail validation or view decode, never
        // panic. Build a push, then corrupt the key-count prefix upward
        // and re-seal so only the view parser can catch it.
        let enc = Packet::encode_push(1, 1, 0, 1, &[1, 2], &[0.5, 1.5]);
        let mut raw = BytesMut::from(&enc[..]);
        let count_at = HEADER_LEN + 16; // epoch + batch, then key count
        raw[count_at..count_at + 4].copy_from_slice(&1000u32.to_le_bytes());
        let checksum = fnv1a(
            fnv1a(FNV_OFFSET, &raw[..HEADER_LEN - 8]),
            &raw[HEADER_LEN..],
        );
        raw[20..28].copy_from_slice(&checksum.to_le_bytes());
        let buf = raw.freeze();
        let meta = validate_frame(&buf).expect("frame-level checks pass");
        let err = RequestView::decode(meta, &buf).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(Packet::decode(buf).is_err(), "owned decode agrees");
    }

    #[test]
    fn cost_survives_the_wire_exactly() {
        let mut cost = Cost::new();
        cost.charge(CostKind::Serialized, 123);
        cost.charge(CostKind::Net, 456);
        cost.charge(CostKind::Net, 1);
        let p = Packet::response(1, 1, Response::Ack { cost: cost.clone() });
        let dec = Packet::decode(p.encode()).unwrap();
        let Frame::Response(Response::Ack { cost: back }) = dec.frame else {
            panic!("wrong frame");
        };
        assert_eq!(back, cost);
        assert_eq!(back.ops(CostKind::Net), 2);
    }
}
