//! Binary wire format for parameter-server RPC.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! ┌───────┬─────────┬──────────┬──────────┬─────────────┐
//! │ magic │ version │ msg type │ body len │ body bytes  │
//! │ u16   │ u8      │ u8       │ u32      │ …           │
//! └───────┴─────────┴──────────┴──────────┴─────────────┘
//! ```
//!
//! Bodies use length-prefixed vectors (`u32` count) of little-endian
//! scalars. Virtual-time [`Cost`]s cross the wire as their raw
//! (ns, ops) arrays so the client can merge server-side charges into
//! its own accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key};
use oe_simdevice::Cost;

/// Frame magic ("OE").
pub const MAGIC: u16 = 0x4F45;
/// Wire protocol version.
pub const VERSION: u8 = 1;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame too short / truncated body.
    Truncated,
    /// Wrong magic or protocol version.
    BadHeader,
    /// Unknown message discriminant.
    UnknownType(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::BadHeader => write!(f, "bad magic/version"),
            CodecError::UnknownType(t) => write!(f, "unknown message type {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A decoded frame: message type + body.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server.
    Request(Request),
    /// Server → client.
    Response(Response),
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embedding lookup burst.
    Pull {
        /// Batch about to train.
        batch: BatchId,
        /// Keys to fetch.
        keys: Vec<Key>,
    },
    /// Gradient burst (pre-aggregated per key).
    Push {
        /// Batch that produced the gradients.
        batch: BatchId,
        /// Updated keys.
        keys: Vec<Key>,
        /// `keys.len() × dim` gradient values.
        grads: Vec<f32>,
    },
    /// All pulls for `batch` done: run deferred maintenance.
    EndPullPhase {
        /// Completed pull batch.
        batch: BatchId,
    },
    /// Request a checkpoint up to `batch`.
    Checkpoint {
        /// Latest completed batch.
        batch: BatchId,
    },
    /// Read the committed checkpoint id.
    Committed,
    /// Read engine counters.
    Stats,
    /// Read one key's weights (diagnostics).
    ReadWeights {
        /// Key to read.
        key: Key,
    },
    /// Number of known keys.
    NumKeys,
    /// Embedding dimension + engine name probe.
    Hello,
    /// Telemetry exposition: server + engine registries rendered as
    /// Prometheus-style text.
    Metrics,
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Pull result.
    Weights {
        /// `keys × dim` weights in request order.
        weights: Vec<f32>,
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Push/checkpoint acknowledgement.
    Ack {
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Maintenance outcome.
    Maintenance {
        /// Access-queue records processed.
        entries: u64,
        /// Checkpoints committed.
        commits: u64,
        /// Deferred-work cost (overlappable).
        cost: Cost,
    },
    /// Committed checkpoint id.
    Committed {
        /// Batch id.
        batch: BatchId,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Weights of one key, if known.
    MaybeWeights(Option<Vec<f32>>),
    /// A count.
    Count(u64),
    /// Hello reply.
    HelloOk {
        /// Embedding dimension served.
        dim: u32,
        /// Engine name.
        name: String,
    },
    /// Rendered telemetry text.
    Metrics(String),
    /// The server could not serve the request (e.g. an undecodable
    /// frame). Carrying the reason back keeps the client from blocking
    /// forever on a dropped frame.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

// --- primitive helpers -------------------------------------------------

fn put_u64s(buf: &mut BytesMut, vals: &[u64]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_u64_le(v);
    }
}

fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

fn get_u64s(buf: &mut Bytes) -> Result<Vec<u64>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(CodecError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(CodecError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

fn put_cost(buf: &mut BytesMut, cost: &Cost) {
    let (ns, ops) = cost.raw_parts();
    for v in ns {
        buf.put_u64_le(v);
    }
    for v in ops {
        buf.put_u64_le(v);
    }
}

fn get_cost(buf: &mut Bytes) -> Result<Cost, CodecError> {
    if buf.remaining() < 14 * 8 {
        return Err(CodecError::Truncated);
    }
    let mut ns = [0u64; 7];
    let mut ops = [0u64; 7];
    for v in &mut ns {
        *v = buf.get_u64_le();
    }
    for v in &mut ops {
        *v = buf.get_u64_le();
    }
    Ok(Cost::from_raw_parts(ns, ops))
}

fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(CodecError::Truncated);
    }
    Ok(String::from_utf8_lossy(&buf.copy_to_bytes(n)).into_owned())
}

// --- frame encode/decode ------------------------------------------------

impl Frame {
    fn msg_type(&self) -> u8 {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { .. } => 0x01,
                Request::Push { .. } => 0x02,
                Request::EndPullPhase { .. } => 0x03,
                Request::Checkpoint { .. } => 0x04,
                Request::Committed => 0x05,
                Request::Stats => 0x06,
                Request::ReadWeights { .. } => 0x07,
                Request::NumKeys => 0x08,
                Request::Hello => 0x09,
                Request::Metrics => 0x0A,
            },
            Frame::Response(r) => match r {
                Response::Weights { .. } => 0x81,
                Response::Ack { .. } => 0x82,
                Response::Maintenance { .. } => 0x83,
                Response::Committed { .. } => 0x84,
                Response::Stats(_) => 0x85,
                Response::MaybeWeights(_) => 0x86,
                Response::Count(_) => 0x87,
                Response::HelloOk { .. } => 0x88,
                Response::Metrics(_) => 0x89,
                Response::Error { .. } => 0x8F,
            },
        }
    }

    /// Serialize to a wire frame.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(64);
        match self {
            Frame::Request(r) => match r {
                Request::Pull { batch, keys } => {
                    body.put_u64_le(*batch);
                    put_u64s(&mut body, keys);
                }
                Request::Push { batch, keys, grads } => {
                    body.put_u64_le(*batch);
                    put_u64s(&mut body, keys);
                    put_f32s(&mut body, grads);
                }
                Request::EndPullPhase { batch } | Request::Checkpoint { batch } => {
                    body.put_u64_le(*batch);
                }
                Request::ReadWeights { key } => body.put_u64_le(*key),
                Request::Committed
                | Request::Stats
                | Request::NumKeys
                | Request::Hello
                | Request::Metrics => {}
            },
            Frame::Response(r) => match r {
                Response::Weights { weights, cost } => {
                    put_f32s(&mut body, weights);
                    put_cost(&mut body, cost);
                }
                Response::Ack { cost } => put_cost(&mut body, cost),
                Response::Maintenance {
                    entries,
                    commits,
                    cost,
                } => {
                    body.put_u64_le(*entries);
                    body.put_u64_le(*commits);
                    put_cost(&mut body, cost);
                }
                Response::Committed { batch } => body.put_u64_le(*batch),
                Response::Stats(s) => {
                    for v in [
                        s.pulls,
                        s.hits,
                        s.misses,
                        s.new_entries,
                        s.pushes,
                        s.evictions,
                        s.flushes,
                        s.loads,
                        s.ckpt_commits,
                        s.ckpt_entries_written,
                        s.slots_recycled,
                    ] {
                        body.put_u64_le(v);
                    }
                }
                Response::MaybeWeights(w) => match w {
                    Some(w) => {
                        body.put_u8(1);
                        put_f32s(&mut body, w);
                    }
                    None => body.put_u8(0),
                },
                Response::Count(n) => body.put_u64_le(*n),
                Response::HelloOk { dim, name } => {
                    body.put_u32_le(*dim);
                    body.put_u32_le(name.len() as u32);
                    body.put_slice(name.as_bytes());
                }
                Response::Metrics(text) => put_str(&mut body, text),
                Response::Error { message } => put_str(&mut body, message),
            },
        }
        let mut frame = BytesMut::with_capacity(8 + body.len());
        frame.put_u16_le(MAGIC);
        frame.put_u8(VERSION);
        frame.put_u8(self.msg_type());
        frame.put_u32_le(body.len() as u32);
        frame.extend_from_slice(&body);
        frame.freeze()
    }

    /// Parse a wire frame.
    pub fn decode(mut buf: Bytes) -> Result<Frame, CodecError> {
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        if buf.get_u16_le() != MAGIC || buf.get_u8() != VERSION {
            return Err(CodecError::BadHeader);
        }
        let msg_type = buf.get_u8();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(CodecError::Truncated);
        }
        let mut body = buf.split_to(len);
        let frame = match msg_type {
            0x01 => Frame::Request(Request::Pull {
                batch: get_u64(&mut body)?,
                keys: get_u64s(&mut body)?,
            }),
            0x02 => Frame::Request(Request::Push {
                batch: get_u64(&mut body)?,
                keys: get_u64s(&mut body)?,
                grads: get_f32s(&mut body)?,
            }),
            0x03 => Frame::Request(Request::EndPullPhase {
                batch: get_u64(&mut body)?,
            }),
            0x04 => Frame::Request(Request::Checkpoint {
                batch: get_u64(&mut body)?,
            }),
            0x05 => Frame::Request(Request::Committed),
            0x06 => Frame::Request(Request::Stats),
            0x07 => Frame::Request(Request::ReadWeights {
                key: get_u64(&mut body)?,
            }),
            0x08 => Frame::Request(Request::NumKeys),
            0x09 => Frame::Request(Request::Hello),
            0x0A => Frame::Request(Request::Metrics),
            0x81 => Frame::Response(Response::Weights {
                weights: get_f32s(&mut body)?,
                cost: get_cost(&mut body)?,
            }),
            0x82 => Frame::Response(Response::Ack {
                cost: get_cost(&mut body)?,
            }),
            0x83 => Frame::Response(Response::Maintenance {
                entries: get_u64(&mut body)?,
                commits: get_u64(&mut body)?,
                cost: get_cost(&mut body)?,
            }),
            0x84 => Frame::Response(Response::Committed {
                batch: get_u64(&mut body)?,
            }),
            0x85 => {
                let mut vals = [0u64; 11];
                for v in &mut vals {
                    *v = get_u64(&mut body)?;
                }
                Frame::Response(Response::Stats(StatsSnapshot {
                    pulls: vals[0],
                    hits: vals[1],
                    misses: vals[2],
                    new_entries: vals[3],
                    pushes: vals[4],
                    evictions: vals[5],
                    flushes: vals[6],
                    loads: vals[7],
                    ckpt_commits: vals[8],
                    ckpt_entries_written: vals[9],
                    slots_recycled: vals[10],
                }))
            }
            0x86 => {
                if body.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let present = body.get_u8() == 1;
                Frame::Response(Response::MaybeWeights(if present {
                    Some(get_f32s(&mut body)?)
                } else {
                    None
                }))
            }
            0x87 => Frame::Response(Response::Count(get_u64(&mut body)?)),
            0x88 => {
                if body.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                let dim = body.get_u32_le();
                let n = body.get_u32_le() as usize;
                if body.remaining() < n {
                    return Err(CodecError::Truncated);
                }
                let name = String::from_utf8_lossy(&body.copy_to_bytes(n)).into_owned();
                Frame::Response(Response::HelloOk { dim, name })
            }
            0x89 => Frame::Response(Response::Metrics(get_str(&mut body)?)),
            0x8F => Frame::Response(Response::Error {
                message: get_str(&mut body)?,
            }),
            other => return Err(CodecError::UnknownType(other)),
        };
        Ok(frame)
    }

    /// Wire size of the encoded frame (for network-cost charging).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::CostKind;

    fn roundtrip(f: Frame) {
        let enc = Frame::encode(&f);
        let dec = Frame::decode(enc).expect("decodes");
        assert_eq!(dec, f);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(Frame::Request(Request::Pull {
            batch: 7,
            keys: vec![1, 2, u64::MAX],
        }));
        roundtrip(Frame::Request(Request::Push {
            batch: 9,
            keys: vec![3],
            grads: vec![0.5, -1.25, f32::MIN_POSITIVE, 0.0],
        }));
        roundtrip(Frame::Request(Request::EndPullPhase { batch: 1 }));
        roundtrip(Frame::Request(Request::Checkpoint { batch: 4 }));
        roundtrip(Frame::Request(Request::Committed));
        roundtrip(Frame::Request(Request::Stats));
        roundtrip(Frame::Request(Request::ReadWeights { key: 42 }));
        roundtrip(Frame::Request(Request::NumKeys));
        roundtrip(Frame::Request(Request::Hello));
        roundtrip(Frame::Request(Request::Metrics));
    }

    #[test]
    fn response_roundtrips() {
        let mut cost = Cost::new();
        cost.charge(CostKind::PmemRead, 305);
        cost.charge(CostKind::Cpu, 45);
        roundtrip(Frame::Response(Response::Weights {
            weights: vec![1.0, 2.5],
            cost: cost.clone(),
        }));
        roundtrip(Frame::Response(Response::Ack { cost: cost.clone() }));
        roundtrip(Frame::Response(Response::Maintenance {
            entries: 100,
            commits: 1,
            cost,
        }));
        roundtrip(Frame::Response(Response::Committed { batch: 3 }));
        roundtrip(Frame::Response(Response::Stats(StatsSnapshot {
            pulls: 1,
            hits: 2,
            misses: 3,
            new_entries: 4,
            pushes: 5,
            evictions: 6,
            flushes: 7,
            loads: 8,
            ckpt_commits: 9,
            ckpt_entries_written: 10,
            slots_recycled: 11,
        })));
        roundtrip(Frame::Response(Response::MaybeWeights(Some(vec![9.0]))));
        roundtrip(Frame::Response(Response::MaybeWeights(None)));
        roundtrip(Frame::Response(Response::Count(77)));
        roundtrip(Frame::Response(Response::HelloOk {
            dim: 64,
            name: "PMem-OE".into(),
        }));
        roundtrip(Frame::Response(Response::Metrics(
            "# TYPE oe_pulls_total counter\noe_pulls_total 7\n".into(),
        )));
        roundtrip(Frame::Response(Response::Metrics(String::new())));
        roundtrip(Frame::Response(Response::Error {
            message: "bad magic/version".into(),
        }));
    }

    #[test]
    fn bad_header_rejected() {
        let mut enc = BytesMut::from(&Frame::Request(Request::Hello).encode()[..]);
        enc[0] = 0; // corrupt magic
        assert_eq!(Frame::decode(enc.freeze()), Err(CodecError::BadHeader));
    }

    #[test]
    fn truncated_rejected() {
        let enc = Frame::Request(Request::Pull {
            batch: 1,
            keys: vec![1, 2, 3],
        })
        .encode();
        for cut in [0, 4, 8, enc.len() - 1] {
            let t = enc.slice(0..cut);
            assert!(Frame::decode(t).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut enc = BytesMut::from(&Frame::Request(Request::Hello).encode()[..]);
        enc[3] = 0x7F;
        assert_eq!(
            Frame::decode(enc.freeze()),
            Err(CodecError::UnknownType(0x7F))
        );
    }

    #[test]
    fn cost_survives_the_wire_exactly() {
        let mut cost = Cost::new();
        cost.charge(CostKind::Serialized, 123);
        cost.charge(CostKind::Net, 456);
        cost.charge(CostKind::Net, 1);
        let f = Frame::Response(Response::Ack { cost: cost.clone() });
        let Frame::Response(Response::Ack { cost: back }) = Frame::decode(f.encode()).unwrap()
        else {
            panic!("wrong frame");
        };
        assert_eq!(back, cost);
        assert_eq!(back.ops(CostKind::Net), 2);
    }
}
