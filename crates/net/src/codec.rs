//! Binary wire format for parameter-server RPC.
//!
//! Packet layout (little-endian), protocol version 2:
//!
//! ```text
//! ┌───────┬─────────┬──────────┬────────┬─────┬──────────┬──────────┬────────┐
//! │ magic │ version │ msg type │ client │ seq │ body len │ checksum │ body   │
//! │ u16   │ u8      │ u8       │ u32    │ u64 │ u32      │ u64      │ …      │
//! └───────┴─────────┴──────────┴────────┴─────┴──────────┴──────────┴────────┘
//! ```
//!
//! The `(client, seq)` pair is the idempotence token: every request
//! carries the issuing client's id and a per-client sequence number,
//! retries reuse the *same* pair, and the server's replay cache returns
//! the original response for a pair it has already executed — so
//! duplicated or retried pulls and pushes apply exactly once. The
//! response echoes the pair so a client can match replies to calls.
//!
//! The checksum (FNV-1a 64 over the header-minus-checksum plus the
//! body) turns any in-flight bit flip — even one inside an f32 gradient
//! payload that would otherwise decode cleanly — into a structured
//! [`Error`] of kind `Corrupt` instead of silent weight corruption.
//!
//! Bodies use length-prefixed vectors (`u32` count) of little-endian
//! scalars. Virtual-time [`Cost`]s cross the wire as their raw
//! (ns, ops) arrays so the client can merge server-side charges into
//! its own accounting.
//!
//! Every decode failure — truncation, bad magic/version, checksum
//! mismatch, unknown discriminant, short body — is a structured
//! [`Error`] with kind [`crate::ErrorKind::Corrupt`]; decode never
//! panics on arbitrary bytes.

use crate::error::{Error, ErrorKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use oe_core::stats::StatsSnapshot;
use oe_core::{BatchId, Key};
use oe_simdevice::Cost;

/// Frame magic ("OE").
pub const MAGIC: u16 = 0x4F45;
/// Wire protocol version (3: v2's `(client, seq)` idempotence token and
/// FNV-1a 64 frame checksum, plus the placement epoch on pull/push and
/// the placement/migration message family — `PlacementUpdate`,
/// `ExportEntry`/`ImportEntry`/`DiscardEntry`).
pub const VERSION: u8 = 3;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;

/// FNV-1a 64 over one byte slice continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// A decoded frame: message type + body.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server.
    Request(Request),
    /// Server → client.
    Response(Response),
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embedding lookup burst.
    Pull {
        /// Placement epoch the client routed this burst under. The
        /// server rejects epochs older than its own (the burst may be
        /// aimed at keys that migrated away); 0 = static placement.
        epoch: u64,
        /// Batch about to train.
        batch: BatchId,
        /// Keys to fetch.
        keys: Vec<Key>,
    },
    /// Gradient burst (pre-aggregated per key).
    Push {
        /// Placement epoch the client routed this burst under.
        epoch: u64,
        /// Batch that produced the gradients.
        batch: BatchId,
        /// Updated keys.
        keys: Vec<Key>,
        /// `keys.len() × dim` gradient values.
        grads: Vec<f32>,
    },
    /// All pulls for `batch` done: run deferred maintenance.
    EndPullPhase {
        /// Completed pull batch.
        batch: BatchId,
    },
    /// Request a checkpoint up to `batch`.
    Checkpoint {
        /// Latest completed batch.
        batch: BatchId,
    },
    /// Read the committed checkpoint id.
    Committed,
    /// Read engine counters.
    Stats,
    /// Read one key's weights (diagnostics).
    ReadWeights {
        /// Key to read.
        key: Key,
    },
    /// Number of known keys.
    NumKeys,
    /// Embedding dimension + engine name probe.
    Hello,
    /// Telemetry exposition: server + engine registries rendered as
    /// Prometheus-style text.
    Metrics,
    /// Idempotence-token fence: the issuing client promises it will
    /// never need a *new* execution for any of its sequence numbers
    /// `<= floor`. The server records the floor and answers every later
    /// mutating request at or below it with a `Rejected` error instead
    /// of executing. Sent by a client right after promoting a standby:
    /// tokens minted against the dead primary must not execute on the
    /// rewound replacement (the trainer replays those batches with
    /// fresh tokens), or a straggling retry would double-apply.
    SeqFence {
        /// Highest fenced-off sequence number (inclusive).
        floor: u64,
    },
    /// Placement-epoch fence: the rebalancer announces that routing
    /// epoch `epoch` is now current. The server ratchets its epoch up
    /// (never down — a replayed stale update is a no-op) and from then
    /// on rejects pull/push bursts routed under an older epoch, so a
    /// client that missed a migration cutover cannot read or write keys
    /// that have moved away.
    PlacementUpdate {
        /// New placement epoch.
        epoch: u64,
    },
    /// Read one key's *full* entry — version plus weights-and-optimizer
    /// payload — for migration seeding (`PsEngine::export_entry`).
    ExportEntry {
        /// Key to export.
        key: Key,
    },
    /// Install a full entry exported from another node
    /// (`PsEngine::import_entry`), replacing any existing entry.
    ImportEntry {
        /// Key to install.
        key: Key,
        /// Entry version (batch id) captured at export.
        version: BatchId,
        /// Full payload: weights + optimizer state.
        payload: Vec<f32>,
    },
    /// Forget a key entirely — migration cutover on the source side
    /// (`PsEngine::discard_entry`).
    DiscardEntry {
        /// Key to discard.
        key: Key,
    },
}

impl Request {
    /// Whether executing this request mutates server state — only
    /// mutating requests enter the replay cache; reads are naturally
    /// idempotent. `SeqFence` and `PlacementUpdate` mutate only fencing
    /// bookkeeping and are idempotent by construction (both only
    /// ratchet up), so they bypass the cache too.
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Request::Pull { .. }
                | Request::Push { .. }
                | Request::EndPullPhase { .. }
                | Request::Checkpoint { .. }
                | Request::ImportEntry { .. }
                | Request::DiscardEntry { .. }
        )
    }
}

/// Server-to-client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Pull result.
    Weights {
        /// `keys × dim` weights in request order.
        weights: Vec<f32>,
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Push/checkpoint acknowledgement.
    Ack {
        /// Server-side virtual-time charges.
        cost: Cost,
    },
    /// Maintenance outcome.
    Maintenance {
        /// Access-queue records processed.
        entries: u64,
        /// Checkpoints committed.
        commits: u64,
        /// Deferred-work cost (overlappable).
        cost: Cost,
    },
    /// Committed checkpoint id.
    Committed {
        /// Batch id.
        batch: BatchId,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Weights of one key, if known.
    MaybeWeights(Option<Vec<f32>>),
    /// A count.
    Count(u64),
    /// Hello reply.
    HelloOk {
        /// Embedding dimension served.
        dim: u32,
        /// Engine name.
        name: String,
    },
    /// Rendered telemetry text.
    Metrics(String),
    /// A full entry (version + weights-and-optimizer payload), or
    /// `None` if the key has no entry. Reply to `ExportEntry`.
    Entry(Option<(BatchId, Vec<f32>)>),
    /// The server could not serve the request (e.g. an undecodable
    /// frame). Carrying the structured reason back keeps the client
    /// from blocking forever on a dropped frame and lets it classify
    /// retryability without string matching.
    Error {
        /// Failure classification (travels as its wire code).
        kind: ErrorKind,
        /// Human-readable reason.
        message: String,
    },
}

/// A wire packet: the idempotence token plus the frame it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Issuing client id (0 for server-originated error replies to
    /// unattributable frames).
    pub client: u32,
    /// Per-client sequence number; retries of the same logical request
    /// reuse it.
    pub seq: u64,
    /// The message.
    pub frame: Frame,
}

// --- primitive helpers -------------------------------------------------

fn put_u64s(buf: &mut BytesMut, vals: &[u64]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_u64_le(v);
    }
}

fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

fn truncated() -> Error {
    Error::corrupt("truncated frame")
}

fn get_u64s(buf: &mut Bytes) -> Result<Vec<u64>, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n.saturating_mul(8) {
        return Err(truncated());
    }
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n.saturating_mul(4) {
        return Err(truncated());
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

fn put_cost(buf: &mut BytesMut, cost: &Cost) {
    let (ns, ops) = cost.raw_parts();
    for v in ns {
        buf.put_u64_le(v);
    }
    for v in ops {
        buf.put_u64_le(v);
    }
}

fn get_cost(buf: &mut Bytes) -> Result<Cost, Error> {
    if buf.remaining() < 14 * 8 {
        return Err(truncated());
    }
    let mut ns = [0u64; 7];
    let mut ops = [0u64; 7];
    for v in &mut ns {
        *v = buf.get_u64_le();
    }
    for v in &mut ops {
        *v = buf.get_u64_le();
    }
    Ok(Cost::from_raw_parts(ns, ops))
}

fn get_u64(buf: &mut Bytes) -> Result<u64, Error> {
    if buf.remaining() < 8 {
        return Err(truncated());
    }
    Ok(buf.get_u64_le())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, Error> {
    if buf.remaining() < 4 {
        return Err(truncated());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(truncated());
    }
    Ok(String::from_utf8_lossy(&buf.copy_to_bytes(n)).into_owned())
}

// --- frame body encode/decode ------------------------------------------

impl Frame {
    fn msg_type(&self) -> u8 {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { .. } => 0x01,
                Request::Push { .. } => 0x02,
                Request::EndPullPhase { .. } => 0x03,
                Request::Checkpoint { .. } => 0x04,
                Request::Committed => 0x05,
                Request::Stats => 0x06,
                Request::ReadWeights { .. } => 0x07,
                Request::NumKeys => 0x08,
                Request::Hello => 0x09,
                Request::Metrics => 0x0A,
                Request::SeqFence { .. } => 0x0B,
                Request::PlacementUpdate { .. } => 0x0C,
                Request::ExportEntry { .. } => 0x0D,
                Request::ImportEntry { .. } => 0x0E,
                Request::DiscardEntry { .. } => 0x0F,
            },
            Frame::Response(r) => match r {
                Response::Weights { .. } => 0x81,
                Response::Ack { .. } => 0x82,
                Response::Maintenance { .. } => 0x83,
                Response::Committed { .. } => 0x84,
                Response::Stats(_) => 0x85,
                Response::MaybeWeights(_) => 0x86,
                Response::Count(_) => 0x87,
                Response::HelloOk { .. } => 0x88,
                Response::Metrics(_) => 0x89,
                Response::Entry(_) => 0x8A,
                Response::Error { .. } => 0x8F,
            },
        }
    }

    fn encode_body(&self, body: &mut BytesMut) {
        match self {
            Frame::Request(r) => match r {
                Request::Pull { epoch, batch, keys } => {
                    body.put_u64_le(*epoch);
                    body.put_u64_le(*batch);
                    put_u64s(body, keys);
                }
                Request::Push {
                    epoch,
                    batch,
                    keys,
                    grads,
                } => {
                    body.put_u64_le(*epoch);
                    body.put_u64_le(*batch);
                    put_u64s(body, keys);
                    put_f32s(body, grads);
                }
                Request::EndPullPhase { batch } | Request::Checkpoint { batch } => {
                    body.put_u64_le(*batch);
                }
                Request::ReadWeights { key } => body.put_u64_le(*key),
                Request::SeqFence { floor } => body.put_u64_le(*floor),
                Request::PlacementUpdate { epoch } => body.put_u64_le(*epoch),
                Request::ExportEntry { key } | Request::DiscardEntry { key } => {
                    body.put_u64_le(*key)
                }
                Request::ImportEntry {
                    key,
                    version,
                    payload,
                } => {
                    body.put_u64_le(*key);
                    body.put_u64_le(*version);
                    put_f32s(body, payload);
                }
                Request::Committed
                | Request::Stats
                | Request::NumKeys
                | Request::Hello
                | Request::Metrics => {}
            },
            Frame::Response(r) => match r {
                Response::Weights { weights, cost } => {
                    put_f32s(body, weights);
                    put_cost(body, cost);
                }
                Response::Ack { cost } => put_cost(body, cost),
                Response::Maintenance {
                    entries,
                    commits,
                    cost,
                } => {
                    body.put_u64_le(*entries);
                    body.put_u64_le(*commits);
                    put_cost(body, cost);
                }
                Response::Committed { batch } => body.put_u64_le(*batch),
                Response::Stats(s) => {
                    for v in [
                        s.pulls,
                        s.hits,
                        s.misses,
                        s.new_entries,
                        s.pushes,
                        s.evictions,
                        s.flushes,
                        s.loads,
                        s.ckpt_commits,
                        s.ckpt_entries_written,
                        s.slots_recycled,
                    ] {
                        body.put_u64_le(v);
                    }
                }
                Response::MaybeWeights(w) => match w {
                    Some(w) => {
                        body.put_u8(1);
                        put_f32s(body, w);
                    }
                    None => body.put_u8(0),
                },
                Response::Count(n) => body.put_u64_le(*n),
                Response::HelloOk { dim, name } => {
                    body.put_u32_le(*dim);
                    body.put_u32_le(name.len() as u32);
                    body.put_slice(name.as_bytes());
                }
                Response::Metrics(text) => put_str(body, text),
                Response::Entry(e) => match e {
                    Some((version, payload)) => {
                        body.put_u8(1);
                        body.put_u64_le(*version);
                        put_f32s(body, payload);
                    }
                    None => body.put_u8(0),
                },
                Response::Error { kind, message } => {
                    body.put_u8(kind.code());
                    put_str(body, message);
                }
            },
        }
    }

    fn decode_body(msg_type: u8, body: &mut Bytes) -> Result<Frame, Error> {
        let frame = match msg_type {
            0x01 => Frame::Request(Request::Pull {
                epoch: get_u64(body)?,
                batch: get_u64(body)?,
                keys: get_u64s(body)?,
            }),
            0x02 => Frame::Request(Request::Push {
                epoch: get_u64(body)?,
                batch: get_u64(body)?,
                keys: get_u64s(body)?,
                grads: get_f32s(body)?,
            }),
            0x03 => Frame::Request(Request::EndPullPhase {
                batch: get_u64(body)?,
            }),
            0x04 => Frame::Request(Request::Checkpoint {
                batch: get_u64(body)?,
            }),
            0x05 => Frame::Request(Request::Committed),
            0x06 => Frame::Request(Request::Stats),
            0x07 => Frame::Request(Request::ReadWeights {
                key: get_u64(body)?,
            }),
            0x08 => Frame::Request(Request::NumKeys),
            0x09 => Frame::Request(Request::Hello),
            0x0A => Frame::Request(Request::Metrics),
            0x0B => Frame::Request(Request::SeqFence {
                floor: get_u64(body)?,
            }),
            0x0C => Frame::Request(Request::PlacementUpdate {
                epoch: get_u64(body)?,
            }),
            0x0D => Frame::Request(Request::ExportEntry {
                key: get_u64(body)?,
            }),
            0x0E => Frame::Request(Request::ImportEntry {
                key: get_u64(body)?,
                version: get_u64(body)?,
                payload: get_f32s(body)?,
            }),
            0x0F => Frame::Request(Request::DiscardEntry {
                key: get_u64(body)?,
            }),
            0x81 => Frame::Response(Response::Weights {
                weights: get_f32s(body)?,
                cost: get_cost(body)?,
            }),
            0x82 => Frame::Response(Response::Ack {
                cost: get_cost(body)?,
            }),
            0x83 => Frame::Response(Response::Maintenance {
                entries: get_u64(body)?,
                commits: get_u64(body)?,
                cost: get_cost(body)?,
            }),
            0x84 => Frame::Response(Response::Committed {
                batch: get_u64(body)?,
            }),
            0x85 => {
                let mut vals = [0u64; 11];
                for v in &mut vals {
                    *v = get_u64(body)?;
                }
                Frame::Response(Response::Stats(StatsSnapshot {
                    pulls: vals[0],
                    hits: vals[1],
                    misses: vals[2],
                    new_entries: vals[3],
                    pushes: vals[4],
                    evictions: vals[5],
                    flushes: vals[6],
                    loads: vals[7],
                    ckpt_commits: vals[8],
                    ckpt_entries_written: vals[9],
                    slots_recycled: vals[10],
                }))
            }
            0x86 => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let present = body.get_u8() == 1;
                Frame::Response(Response::MaybeWeights(if present {
                    Some(get_f32s(body)?)
                } else {
                    None
                }))
            }
            0x87 => Frame::Response(Response::Count(get_u64(body)?)),
            0x88 => {
                if body.remaining() < 8 {
                    return Err(truncated());
                }
                let dim = body.get_u32_le();
                let n = body.get_u32_le() as usize;
                if body.remaining() < n {
                    return Err(truncated());
                }
                let name = String::from_utf8_lossy(&body.copy_to_bytes(n)).into_owned();
                Frame::Response(Response::HelloOk { dim, name })
            }
            0x89 => Frame::Response(Response::Metrics(get_str(body)?)),
            0x8A => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let present = body.get_u8() == 1;
                Frame::Response(Response::Entry(if present {
                    Some((get_u64(body)?, get_f32s(body)?))
                } else {
                    None
                }))
            }
            0x8F => {
                if body.remaining() < 1 {
                    return Err(truncated());
                }
                let kind = ErrorKind::from_code(body.get_u8());
                Frame::Response(Response::Error {
                    kind,
                    message: get_str(body)?,
                })
            }
            other => return Err(Error::corrupt(format!("unknown message type {other:#04x}"))),
        };
        Ok(frame)
    }
}

// --- packet encode/decode -----------------------------------------------

impl Packet {
    /// Wrap a request with its idempotence token.
    pub fn request(client: u32, seq: u64, req: Request) -> Self {
        Self {
            client,
            seq,
            frame: Frame::Request(req),
        }
    }

    /// Wrap a response, echoing the request's token.
    pub fn response(client: u32, seq: u64, resp: Response) -> Self {
        Self {
            client,
            seq,
            frame: Frame::Response(resp),
        }
    }

    /// Serialize to a wire packet (header + checksum + body).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(64);
        self.frame.encode_body(&mut body);
        let mut pkt = BytesMut::with_capacity(HEADER_LEN + body.len());
        pkt.put_u16_le(MAGIC);
        pkt.put_u8(VERSION);
        pkt.put_u8(self.frame.msg_type());
        pkt.put_u32_le(self.client);
        pkt.put_u64_le(self.seq);
        pkt.put_u32_le(body.len() as u32);
        let checksum = fnv1a(fnv1a(FNV_OFFSET, &pkt[..]), &body);
        pkt.put_u64_le(checksum);
        pkt.extend_from_slice(&body);
        pkt.freeze()
    }

    /// Parse a wire packet. Any malformed input — truncated header or
    /// body, wrong magic/version, checksum mismatch, unknown message
    /// type — returns a structured [`Error`] of kind `Corrupt`; this
    /// function never panics on arbitrary bytes.
    pub fn decode(buf: Bytes) -> Result<Packet, Error> {
        if buf.remaining() < HEADER_LEN {
            return Err(truncated());
        }
        let mut hdr = buf.clone();
        if hdr.get_u16_le() != MAGIC {
            return Err(Error::corrupt("bad magic"));
        }
        let version = hdr.get_u8();
        if version != VERSION {
            return Err(Error::corrupt(format!(
                "protocol version {version}, expected {VERSION}"
            )));
        }
        let msg_type = hdr.get_u8();
        let client = hdr.get_u32_le();
        let seq = hdr.get_u64_le();
        let len = hdr.get_u32_le() as usize;
        let checksum = hdr.get_u64_le();
        if hdr.remaining() < len {
            return Err(truncated());
        }
        let body = hdr.split_to(len);
        let computed = fnv1a(fnv1a(FNV_OFFSET, &buf[..HEADER_LEN - 8]), &body);
        if computed != checksum {
            return Err(Error::corrupt("checksum mismatch"));
        }
        let mut body_buf = body;
        let frame = Frame::decode_body(msg_type, &mut body_buf)?;
        Ok(Packet { client, seq, frame })
    }

    /// Wire size of the encoded packet (for network-cost charging).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::CostKind;

    fn roundtrip(f: Frame) {
        let p = Packet {
            client: 3,
            seq: 99,
            frame: f,
        };
        let enc = p.encode();
        let dec = Packet::decode(enc).expect("decodes");
        assert_eq!(dec, p);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip(Frame::Request(Request::Pull {
            epoch: 4,
            batch: 7,
            keys: vec![1, 2, u64::MAX],
        }));
        roundtrip(Frame::Request(Request::Push {
            epoch: u64::MAX,
            batch: 9,
            keys: vec![3],
            grads: vec![0.5, -1.25, f32::MIN_POSITIVE, 0.0],
        }));
        roundtrip(Frame::Request(Request::EndPullPhase { batch: 1 }));
        roundtrip(Frame::Request(Request::Checkpoint { batch: 4 }));
        roundtrip(Frame::Request(Request::Committed));
        roundtrip(Frame::Request(Request::Stats));
        roundtrip(Frame::Request(Request::ReadWeights { key: 42 }));
        roundtrip(Frame::Request(Request::NumKeys));
        roundtrip(Frame::Request(Request::Hello));
        roundtrip(Frame::Request(Request::Metrics));
        roundtrip(Frame::Request(Request::SeqFence { floor: u64::MAX }));
        roundtrip(Frame::Request(Request::PlacementUpdate { epoch: 3 }));
        roundtrip(Frame::Request(Request::ExportEntry { key: 12 }));
        roundtrip(Frame::Request(Request::ImportEntry {
            key: 12,
            version: 40,
            payload: vec![1.5, -0.25, 0.0, 9.75],
        }));
        roundtrip(Frame::Request(Request::DiscardEntry { key: 12 }));
    }

    #[test]
    fn migration_family_cacheability() {
        // Import/discard mutate entry state → replay-cached; export is a
        // read and the epoch fence ratchets idempotently → neither cached.
        assert!(Request::ImportEntry {
            key: 1,
            version: 0,
            payload: vec![]
        }
        .is_mutating());
        assert!(Request::DiscardEntry { key: 1 }.is_mutating());
        assert!(!Request::ExportEntry { key: 1 }.is_mutating());
        assert!(!Request::PlacementUpdate { epoch: 9 }.is_mutating());
    }

    #[test]
    fn seq_fence_bypasses_the_replay_cache() {
        // The fence itself must never be cached: a replayed stale fence
        // could otherwise shadow a later, higher floor.
        assert!(!Request::SeqFence { floor: 7 }.is_mutating());
    }

    #[test]
    fn response_roundtrips() {
        let mut cost = Cost::new();
        cost.charge(CostKind::PmemRead, 305);
        cost.charge(CostKind::Cpu, 45);
        roundtrip(Frame::Response(Response::Weights {
            weights: vec![1.0, 2.5],
            cost: cost.clone(),
        }));
        roundtrip(Frame::Response(Response::Ack { cost: cost.clone() }));
        roundtrip(Frame::Response(Response::Maintenance {
            entries: 100,
            commits: 1,
            cost,
        }));
        roundtrip(Frame::Response(Response::Committed { batch: 3 }));
        roundtrip(Frame::Response(Response::Stats(StatsSnapshot {
            pulls: 1,
            hits: 2,
            misses: 3,
            new_entries: 4,
            pushes: 5,
            evictions: 6,
            flushes: 7,
            loads: 8,
            ckpt_commits: 9,
            ckpt_entries_written: 10,
            slots_recycled: 11,
        })));
        roundtrip(Frame::Response(Response::MaybeWeights(Some(vec![9.0]))));
        roundtrip(Frame::Response(Response::MaybeWeights(None)));
        roundtrip(Frame::Response(Response::Count(77)));
        roundtrip(Frame::Response(Response::HelloOk {
            dim: 64,
            name: "PMem-OE".into(),
        }));
        roundtrip(Frame::Response(Response::Metrics(
            "# TYPE oe_pulls_total counter\noe_pulls_total 7\n".into(),
        )));
        roundtrip(Frame::Response(Response::Metrics(String::new())));
        roundtrip(Frame::Response(Response::Entry(Some((
            17,
            vec![0.5, -2.0, f32::MAX],
        )))));
        roundtrip(Frame::Response(Response::Entry(None)));
        roundtrip(Frame::Response(Response::Error {
            kind: ErrorKind::Corrupt,
            message: "bad magic".into(),
        }));
    }

    #[test]
    fn idempotence_token_roundtrips() {
        let p = Packet::request(0xDEAD_BEEF, u64::MAX - 1, Request::NumKeys);
        let dec = Packet::decode(p.encode()).unwrap();
        assert_eq!(dec.client, 0xDEAD_BEEF);
        assert_eq!(dec.seq, u64::MAX - 1);
        // Same logical request, same token → byte-identical frames
        // (what the replay cache relies on).
        assert_eq!(p.encode(), dec.encode());
        // A different seq changes the bytes (and the checksum).
        let p2 = Packet::request(0xDEAD_BEEF, 0, Request::NumKeys);
        assert_ne!(p.encode(), p2.encode());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = BytesMut::from(&Packet::request(1, 1, Request::Hello).encode()[..]);
        enc[0] = 0;
        let err = Packet::decode(enc.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut enc = BytesMut::from(&Packet::request(1, 1, Request::Hello).encode()[..]);
        enc[2] = VERSION + 1;
        let err = Packet::decode(enc.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(err.context().contains("version"), "{err}");
    }

    #[test]
    fn truncated_rejected() {
        let enc = Packet::request(
            2,
            5,
            Request::Pull {
                epoch: 0,
                batch: 1,
                keys: vec![1, 2, 3],
            },
        )
        .encode();
        for cut in [0, 4, HEADER_LEN - 1, HEADER_LEN, enc.len() - 1] {
            let t = enc.slice(0..cut);
            let err = Packet::decode(t).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Corrupt, "cut at {cut}");
        }
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        // The checksum catches single bit flips anywhere in the packet —
        // including inside the f32 gradient body, where a flip would
        // otherwise decode cleanly and silently corrupt training.
        let enc = Packet::request(
            1,
            7,
            Request::Push {
                epoch: 0,
                batch: 2,
                keys: vec![10, 11],
                grads: vec![0.25, -0.5, 1.0, 2.0],
            },
        )
        .encode();
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut flipped = BytesMut::from(&enc[..]);
                flipped[byte] ^= 1 << bit;
                let err = Packet::decode(flipped.freeze())
                    .expect_err(&format!("flip {byte}:{bit} must not decode"));
                assert_eq!(err.kind(), ErrorKind::Corrupt, "flip {byte}:{bit}");
            }
        }
    }

    #[test]
    fn unknown_type_rejected() {
        // Rebuild a packet with an unknown msg type and a valid
        // checksum: the type check must still reject it.
        let mut pkt = BytesMut::new();
        pkt.put_u16_le(MAGIC);
        pkt.put_u8(VERSION);
        pkt.put_u8(0x7F);
        pkt.put_u32_le(1);
        pkt.put_u64_le(1);
        pkt.put_u32_le(0);
        let checksum = fnv1a(FNV_OFFSET, &pkt[..]);
        pkt.put_u64_le(checksum);
        let err = Packet::decode(pkt.freeze()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert!(err.context().contains("unknown message type"), "{err}");
    }

    #[test]
    fn cost_survives_the_wire_exactly() {
        let mut cost = Cost::new();
        cost.charge(CostKind::Serialized, 123);
        cost.charge(CostKind::Net, 456);
        cost.charge(CostKind::Net, 1);
        let p = Packet::response(1, 1, Response::Ack { cost: cost.clone() });
        let dec = Packet::decode(p.encode()).unwrap();
        let Frame::Response(Response::Ack { cost: back }) = dec.frame else {
            panic!("wrong frame");
        };
        assert_eq!(back, cost);
        assert_eq!(back.ops(CostKind::Net), 2);
    }
}
