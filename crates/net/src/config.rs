//! Client-side networking configuration: the [`NetCharge`] cost model,
//! the [`RetryPolicy`], and the per-call deadline, consolidated into a
//! [`NetConfig`] builder mirroring `oe_core::NodeConfig` — one
//! `paper_default()` that encodes the testbed (30 Gb intranet,
//! low-overhead RPC) plus fault-tolerance knobs tuned for the
//! fault-injection suite.

use oe_simdevice::{Cost, CostKind};
use std::time::Duration;

/// Per-frame network cost model (client side).
#[derive(Debug, Clone, Copy)]
pub struct NetCharge {
    /// Fixed RPC overhead per round trip (ns).
    pub rpc_overhead_ns: u64,
    /// Link bandwidth, bytes/ns.
    pub bw_bytes_per_ns: f64,
}

impl NetCharge {
    /// The paper's testbed: 30 Gb intranet, low-overhead RPC.
    pub fn paper_default() -> Self {
        Self {
            rpc_overhead_ns: 15_000,
            bw_bytes_per_ns: 3.75,
        }
    }

    /// Charge one round trip of `bytes` total to `cost`.
    pub fn charge(&self, bytes: usize, cost: &mut Cost) {
        cost.charge(
            CostKind::Net,
            self.rpc_overhead_ns + (bytes as f64 / self.bw_bytes_per_ns) as u64,
        );
    }
}

/// Exponential backoff with seeded jitter and a retry budget.
///
/// Retries reuse the request's `(client, seq)` idempotence token, so a
/// retried pull or push applies exactly once server-side no matter how
/// many attempts it takes. Backoff waits are charged to the caller's
/// virtual-time cost sink (`CostKind::Net`), so retry overhead shows up
/// in the discrete-event accounting exactly like extra wire time.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts after the first (0 disables retries).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff_ns << n` (capped).
    pub base_backoff_ns: u64,
    /// Cap on a single backoff wait.
    pub max_backoff_ns: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Paper-shaped default: 8 retries, 50 µs base doubling to a 5 ms
    /// cap — generous against a 5% drop schedule (p(9 consecutive
    /// drops) ≈ 2e-12) while keeping worst-case added virtual time per
    /// call under ~15 ms.
    pub fn paper_default() -> Self {
        Self {
            max_retries: 8,
            base_backoff_ns: 50_000,
            max_backoff_ns: 5_000_000,
            jitter_seed: 0x0E_F417,
        }
    }

    /// No retries: every transport error surfaces immediately.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_backoff_ns: 0,
            max_backoff_ns: 0,
            jitter_seed: 0,
        }
    }

    /// Virtual-time backoff before retry attempt `attempt` (0-based) of
    /// the request with sequence number `seq`: exponential, capped, with
    /// deterministic jitter in `[0, backoff/2)` drawn from
    /// `(jitter_seed, seq, attempt)` — seeded jitter keeps simulated
    /// runs reproducible while still decorrelating concurrent retriers.
    pub fn backoff_ns(&self, attempt: u32, seq: u64) -> u64 {
        let base = self
            .base_backoff_ns
            .saturating_shl(attempt.min(32))
            .min(self.max_backoff_ns.max(self.base_backoff_ns));
        if base == 0 {
            return 0;
        }
        let h = oe_core::init::splitmix64(
            self.jitter_seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ attempt as u64,
        );
        base + h % (base / 2).max(1)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        if by >= 64 {
            if self == 0 {
                0
            } else {
                u64::MAX
            }
        } else {
            self.checked_shl(by).unwrap_or(u64::MAX)
        }
    }
}

/// Everything a [`crate::RemotePs`] needs to know about the wire:
/// cost model, deadline, retry policy.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Virtual-time cost model per round trip.
    pub charge: NetCharge,
    /// Wall-clock bound on a single RPC attempt. `None` blocks forever
    /// (the pre-fault-tolerance behaviour).
    pub deadline: Option<Duration>,
    /// Retry behaviour on retryable failures.
    pub retry: RetryPolicy,
}

impl NetConfig {
    /// The paper's testbed with fault tolerance on: 30 Gb charge model,
    /// 250 ms attempt deadline (generous for an in-process loopback; a
    /// dropped frame is detected in one deadline), 8-retry exponential
    /// backoff.
    pub fn paper_default() -> Self {
        Self {
            charge: NetCharge::paper_default(),
            deadline: Some(Duration::from_millis(250)),
            retry: RetryPolicy::paper_default(),
        }
    }

    /// Builder: replace the cost model.
    pub fn with_charge(mut self, charge: NetCharge) -> Self {
        self.charge = charge;
        self
    }

    /// Builder: replace the per-attempt deadline.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builder: replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::paper_default();
        let b0 = p.backoff_ns(0, 1);
        let b3 = p.backoff_ns(3, 1);
        assert!(b0 >= p.base_backoff_ns && b0 < 2 * p.base_backoff_ns);
        assert!(b3 > b0, "{b0} vs {b3}");
        // Far past the cap: bounded by 1.5 * max.
        let b20 = p.backoff_ns(20, 1);
        assert!(b20 <= p.max_backoff_ns + p.max_backoff_ns / 2 + 1);
    }

    #[test]
    fn jitter_is_deterministic_and_seq_dependent() {
        let p = RetryPolicy::paper_default();
        assert_eq!(p.backoff_ns(2, 7), p.backoff_ns(2, 7));
        // Different seqs decorrelate (overwhelmingly likely for any
        // fixed pair; this pair is part of the golden determinism).
        assert_ne!(p.backoff_ns(2, 7), p.backoff_ns(2, 8));
    }

    #[test]
    fn none_policy_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_ns(0, 1), 0);
    }

    #[test]
    fn builder_chains() {
        let cfg = NetConfig::paper_default()
            .with_deadline(Some(Duration::from_millis(10)))
            .with_retry(RetryPolicy::none());
        assert_eq!(cfg.deadline, Some(Duration::from_millis(10)));
        assert_eq!(cfg.retry.max_retries, 0);
        assert_eq!(
            cfg.charge.rpc_overhead_ns,
            NetCharge::paper_default().rpc_overhead_ns
        );
    }

    #[test]
    fn charge_scales_with_bytes() {
        let c = NetCharge::paper_default();
        let mut small = Cost::new();
        let mut big = Cost::new();
        c.charge(100, &mut small);
        c.charge(1_000_000, &mut big);
        assert!(big.ns(CostKind::Net) > small.ns(CostKind::Net));
    }
}
