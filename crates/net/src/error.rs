//! The unified RPC error type.
//!
//! Everything that can go wrong between a client and a PS server —
//! transport failures, codec corruption, deadline expiry, server-side
//! refusals — is one structured [`Error`]: a [`ErrorKind`] carrying the
//! retryability classification, a human-readable context string, and an
//! optional source chain. This replaces the old `NetError`/`CodecError`
//! split, so callers match on *kind* instead of juggling two error
//! enums, and the retry layer can classify any failure with one call to
//! [`Error::is_retryable`].

/// What went wrong, and — implicitly — whether trying again can help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The deadline expired before a response arrived (dropped request
    /// or response frame, stalled server). Retryable: the request may
    /// never have been seen.
    Timeout,
    /// The server is gone (channel closed, process dead). Not
    /// retryable against the same endpoint — this is the failover
    /// trigger.
    Disconnected,
    /// A frame failed to decode or verify (truncation, bit flips, bad
    /// magic, checksum mismatch, unknown discriminant). Retryable: the
    /// healthy peer will re-serve an uncorrupted copy.
    Corrupt,
    /// The peer is alive but cannot take the request right now
    /// (saturated queue, mid-promotion replica, post-failover
    /// rollback). Retryable after backoff — possibly at a rewound
    /// position.
    Busy,
    /// The server understood the request and refused it (protocol
    /// violation, unsupported operation). Not retryable: the same
    /// request will be refused again.
    Rejected,
}

impl ErrorKind {
    /// Whether a retry of the identical request can succeed.
    pub fn is_retryable(self) -> bool {
        match self {
            ErrorKind::Timeout | ErrorKind::Corrupt | ErrorKind::Busy => true,
            ErrorKind::Disconnected | ErrorKind::Rejected => false,
        }
    }

    /// Stable wire discriminant (carried inside error responses).
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Timeout => 0,
            ErrorKind::Disconnected => 1,
            ErrorKind::Corrupt => 2,
            ErrorKind::Busy => 3,
            ErrorKind::Rejected => 4,
        }
    }

    /// Inverse of [`ErrorKind::code`]; unknown codes collapse to
    /// `Rejected` (a peer speaking a newer protocol refused us in a way
    /// we cannot classify, so we must not blindly retry).
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => ErrorKind::Timeout,
            1 => ErrorKind::Disconnected,
            2 => ErrorKind::Corrupt,
            3 => ErrorKind::Busy,
            _ => ErrorKind::Rejected,
        }
    }

    /// Stable name for telemetry labels and messages.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Timeout => "timeout",
            ErrorKind::Disconnected => "disconnected",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Busy => "busy",
            ErrorKind::Rejected => "rejected",
        }
    }
}

/// A structured RPC failure: kind + context + optional cause chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    kind: ErrorKind,
    context: String,
    source: Option<Box<Error>>,
}

impl Error {
    /// Build an error of `kind` with a context message.
    pub fn new(kind: ErrorKind, context: impl Into<String>) -> Self {
        Self {
            kind,
            context: context.into(),
            source: None,
        }
    }

    /// Shorthand: [`ErrorKind::Timeout`].
    pub fn timeout(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Timeout, context)
    }

    /// Shorthand: [`ErrorKind::Disconnected`].
    pub fn disconnected(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Disconnected, context)
    }

    /// Shorthand: [`ErrorKind::Corrupt`].
    pub fn corrupt(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Corrupt, context)
    }

    /// Shorthand: [`ErrorKind::Busy`].
    pub fn busy(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Busy, context)
    }

    /// Shorthand: [`ErrorKind::Rejected`].
    pub fn rejected(context: impl Into<String>) -> Self {
        Self::new(ErrorKind::Rejected, context)
    }

    /// Attach the error that caused this one (chains display and
    /// [`std::error::Error::source`]).
    pub fn with_source(mut self, source: Error) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// The failure classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The context message (without the cause chain).
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Whether a retry of the identical request can succeed.
    pub fn is_retryable(&self) -> bool {
        self.kind.is_retryable()
    }

    /// Walk to the root cause.
    pub fn root_cause(&self) -> &Error {
        let mut e = self;
        while let Some(s) = &e.source {
            e = s;
        }
        e
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.context)?;
        if let Some(s) = &self.source {
            write!(f, " (caused by: {s})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|s| s.as_ref() as &(dyn std::error::Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        assert!(ErrorKind::Timeout.is_retryable());
        assert!(ErrorKind::Corrupt.is_retryable());
        assert!(ErrorKind::Busy.is_retryable());
        assert!(!ErrorKind::Disconnected.is_retryable());
        assert!(!ErrorKind::Rejected.is_retryable());
    }

    #[test]
    fn codes_roundtrip() {
        for kind in [
            ErrorKind::Timeout,
            ErrorKind::Disconnected,
            ErrorKind::Corrupt,
            ErrorKind::Busy,
            ErrorKind::Rejected,
        ] {
            assert_eq!(ErrorKind::from_code(kind.code()), kind);
        }
        // Unknown codes never classify as retryable.
        assert_eq!(ErrorKind::from_code(0xEE), ErrorKind::Rejected);
    }

    #[test]
    fn source_chain_displays_and_walks() {
        let root = Error::corrupt("checksum mismatch");
        let e = Error::timeout("pull deadline expired").with_source(root.clone());
        let msg = e.to_string();
        assert!(msg.contains("timeout"), "{msg}");
        assert!(msg.contains("caused by"), "{msg}");
        assert!(msg.contains("checksum"), "{msg}");
        assert_eq!(e.root_cause(), &root);
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
