//! Checkpoint-driven failover: standby endpoints that a
//! [`crate::RemotePs`] promotes when the primary dies.
//!
//! The paper's failure story (§V-C, §VI-E) is that a PS node's state
//! lives in PMem, so a replacement restores by *scanning* the committed
//! checkpoint in place instead of replaying a remote checkpoint file —
//! orders of magnitude faster at 500 GB scale (Fig. 14). The same
//! economics drive this module: a [`CheckpointReplica`] holds a handle
//! to the primary's persistent media; on promotion it takes a
//! crash-consistent image, runs `core::recovery::recover_node` (slot
//! scan + index rebuild, discarding post-checkpoint versions), spawns a
//! fresh [`PsServer`] over the recovered node, and reports the virtual
//! recovery time under the paper's contention model so the trainer can
//! charge it on the clock.
//!
//! Failover is deliberately *not* transparent: the promoted node's
//! state is rolled back to the last committed checkpoint, so completing
//! the in-flight call against it would splice a half-applied batch onto
//! a rewound timeline. Instead [`Promotion::resume_batch`] tells the
//! caller where the surviving timeline ends; the trainer rewinds to
//! `resume_batch + 1` and replays — deterministic gradients make the
//! replay bit-identical to a fault-free run.

use crate::error::Error;
use crate::server::{PsServer, ServerHandle};
use crate::transport::{loopback, Transport};
use oe_core::engine::PsEngine;
use oe_core::recovery::recover_node;
use oe_core::{BatchId, NodeConfig};
use oe_simdevice::{ContentionModel, Cost, Media, Nanos};
use parking_lot::Mutex;
use std::sync::Arc;

/// What a completed failover means for the caller's timeline: recorded
/// by the client at promotion, collected by the trainer via
/// `PsClient::failover_resume` to rewind and charge the recovery pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// Batch id the surviving timeline ends at; resume at `+ 1`.
    pub resume_batch: BatchId,
    /// Virtual recovery time to charge on the clock.
    pub recovery_ns: Nanos,
    /// Keys restored from the checkpoint.
    pub recovered_keys: usize,
}

/// Outcome of promoting a standby to primary.
pub struct Promotion {
    /// Transport to the newly promoted server.
    pub transport: Arc<dyn Transport>,
    /// Batch id the surviving timeline ends at (the committed
    /// checkpoint); training resumes at `resume_batch + 1`.
    pub resume_batch: BatchId,
    /// Virtual recovery time (checkpoint scan + index rebuild under
    /// the recovery contention model).
    pub recovery_ns: Nanos,
    /// Keys restored from the checkpoint.
    pub recovered_keys: usize,
}

impl std::fmt::Debug for Promotion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Promotion")
            .field("resume_batch", &self.resume_batch)
            .field("recovery_ns", &self.recovery_ns)
            .field("recovered_keys", &self.recovered_keys)
            .finish_non_exhaustive()
    }
}

/// A standby endpoint that can be promoted to primary.
pub trait Standby: Send + Sync {
    /// Restore state and start serving. Charges nothing to the caller
    /// directly — the virtual recovery time rides in the returned
    /// [`Promotion`].
    fn promote(&self) -> Result<Promotion, Error>;
}

/// A standby backed by the primary's persistent media: restores through
/// `core::recovery` from the last committed checkpoint.
pub struct CheckpointReplica {
    media: Arc<Media>,
    cfg: NodeConfig,
    /// Server worker threads for the promoted node.
    service_threads: usize,
    /// Threads parallelizing the recovery scan (the paper notes
    /// recovery parallelizes by partitioning, §VI-E).
    recovery_threads: u32,
    /// Seed for the crash image's torn-write resolution.
    crash_seed: u64,
    /// Keeps the promoted server's workers alive for the replica's
    /// lifetime.
    handle: Mutex<Option<ServerHandle>>,
}

impl CheckpointReplica {
    /// Build a standby over the primary's media. `cfg` must match the
    /// primary's pool layout (same dim/optimizer), exactly as any
    /// recovery must.
    pub fn new(
        media: Arc<Media>,
        cfg: NodeConfig,
        service_threads: usize,
        recovery_threads: u32,
        crash_seed: u64,
    ) -> Self {
        Self {
            media,
            cfg,
            service_threads,
            recovery_threads,
            crash_seed,
            handle: Mutex::new(None),
        }
    }
}

impl Standby for CheckpointReplica {
    fn promote(&self) -> Result<Promotion, Error> {
        // Crash-consistent image of the dead primary's PMem: pending
        // (un-flushed) lines resolve to torn writes exactly as a real
        // power cut would leave them.
        let image = self.media.crash(self.crash_seed);
        let media = Arc::new(Media::from_crash(image));
        let mut cost = Cost::new();
        let (node, report) = recover_node(media, self.cfg.clone(), &mut cost).ok_or_else(|| {
            Error::rejected("standby media holds no initialized pool (nothing ever flushed)")
        })?;
        let recovery_ns = recovery_burst_ns(&cost, self.recovery_threads);
        let recovered_keys = report.scan.live.len();
        let resume_batch = report.resume_batch;
        let (transport, handle) = spawn_promoted(Arc::new(node), self.service_threads);
        *self.handle.lock() = Some(handle);
        Ok(Promotion {
            transport,
            resume_batch,
            recovery_ns,
            recovered_keys,
        })
    }
}

/// Spin up a freshly recovered engine behind a loopback transport —
/// the serving tail every standby flavour shares (checkpoint replicas
/// here, pool-resident standbys in `oe-pool`). Returns the client-side
/// transport plus the [`ServerHandle`] keeping the workers alive; the
/// standby must hold the handle for its lifetime.
pub fn spawn_promoted(
    engine: Arc<dyn PsEngine>,
    service_threads: usize,
) -> (Arc<dyn Transport>, ServerHandle) {
    let (client_t, server_t) = loopback(32);
    let handle = PsServer::spawn(engine, server_t, service_threads.max(1));
    (Arc::new(client_t), handle)
}

/// Virtual recovery time for a recovery `cost` parallelized over
/// `threads` scan partitions — the same contention treatment
/// `train::failure` applies to in-process crash recovery, shared here
/// so RPC failover and local recovery charge identically.
pub fn recovery_burst_ns(cost: &Cost, threads: u32) -> Nanos {
    ContentionModel::new(threads.max(1), 1).burst_ns(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{OptimizerKind, PsNode};

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    fn step(n: &PsNode, keys: &[u64], b: u64) {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(keys, b, &mut out, &mut cost);
        n.end_pull_phase(b);
        n.push(keys, &vec![0.5; keys.len() * 4], b, &mut cost);
    }

    #[test]
    fn replica_promotes_to_committed_checkpoint() {
        let primary = PsNode::new(cfg());
        let keys: Vec<u64> = (0..16).collect();
        step(&primary, &keys, 1);
        primary.request_checkpoint(1);
        step(&primary, &keys, 2); // commits 1 during maintenance
        step(&primary, &keys, 3); // uncommitted progress, lost on crash
        let replica = CheckpointReplica::new(Arc::clone(primary.pool().media()), cfg(), 2, 4, 99);
        let promo = replica.promote().expect("promotes");
        assert_eq!(promo.resume_batch, 1);
        assert_eq!(promo.recovered_keys, 16);
        assert!(promo.recovery_ns > 0, "recovery charges virtual time");
        // The promoted server answers over its transport with the
        // checkpoint-committed state.
        use crate::codec::{Frame, Packet, Request, Response};
        let resp = Packet::decode(
            promo
                .transport
                .call(Packet::request(1, 1, Request::Committed).encode(), None)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            resp.frame,
            Frame::Response(Response::Committed { batch: 1 })
        );
    }

    #[test]
    fn uninitialized_replica_refuses_promotion() {
        let media = Arc::new(Media::new(oe_simdevice::MediaConfig::pmem(4096)));
        let replica = CheckpointReplica::new(media, cfg(), 1, 1, 0);
        let err = replica.promote().unwrap_err();
        assert!(!err.is_retryable(), "no state to restore: not retryable");
    }

    #[test]
    fn parallel_recovery_is_charged_less() {
        let primary = PsNode::new(cfg());
        let keys: Vec<u64> = (0..300).collect();
        step(&primary, &keys, 1);
        primary.request_checkpoint(1);
        step(&primary, &keys, 2);
        let promote_with = |threads: u32| {
            CheckpointReplica::new(Arc::clone(primary.pool().media()), cfg(), 1, threads, 7)
                .promote()
                .unwrap()
                .recovery_ns
        };
        let serial = promote_with(1);
        let parallel = promote_with(8);
        assert!(parallel < serial, "{parallel} vs {serial}");
    }
}
