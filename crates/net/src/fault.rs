//! Deterministic fault injection at the transport boundary.
//!
//! [`FaultInjector`] wraps any [`Transport`] and, per call, draws from
//! a seeded `splitmix64` stream to decide whether to drop the request,
//! drop the response, deliver the request twice, flip a bit in either
//! direction, delay the call, or kill the server outright. Given the
//! same seed and call order, the schedule is identical run-to-run —
//! the fault-injection suite asserts *bit-identical* final weights
//! against a fault-free run, which is only a meaningful check when the
//! faults themselves are reproducible.
//!
//! Semantics of each fault, chosen to exercise a distinct layer:
//!
//! - **drop request** — the frame never reaches the server; the caller
//!   observes a `Timeout`. Retrying is always safe: nothing executed.
//! - **drop response** — the server *executes* the request but the
//!   reply vanishes; the caller observes the same `Timeout`. Retrying
//!   is only safe because the `(client, seq)` replay cache makes the
//!   re-execution a cache hit — this is the fault that proves
//!   exactly-once.
//! - **duplicate** — the frame is delivered twice (a retransmit racing
//!   a slow ack); the second delivery must hit the replay cache.
//! - **corrupt request / response** — one seeded bit flip; the frame
//!   checksum turns it into a structured `Corrupt` error on whichever
//!   side decodes it.
//! - **delay** — a bounded wall-clock stall, for exercising deadlines.
//! - **kill after N calls** — the inner transport is dropped and every
//!   later call fails `Disconnected`: the failover trigger.

use crate::error::Error;
use crate::transport::Transport;
use bytes::{Bytes, BytesMut};
use oe_core::init::splitmix64;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Probabilities and schedule for one injector. All probabilities are
/// independent per call, in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// P(request frame vanishes before the server sees it).
    pub drop_request: f64,
    /// P(response frame vanishes after the server executed).
    pub drop_response: f64,
    /// P(request delivered twice).
    pub duplicate: f64,
    /// P(one bit flipped in the request frame).
    pub corrupt_request: f64,
    /// P(one bit flipped in the response frame).
    pub corrupt_response: f64,
    /// P(the call is stalled by a wall-clock delay).
    pub delay: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Kill the server permanently once this many calls have been
    /// attempted (the Nth call and all later ones fail
    /// `Disconnected`).
    pub kill_after_calls: Option<u64>,
}

impl FaultSpec {
    /// No faults at all (pass-through; useful as a control arm).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate: 0.0,
            corrupt_request: 0.0,
            corrupt_response: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
            kill_after_calls: None,
        }
    }

    /// Symmetric frame loss at rate `p` (half on each direction).
    pub fn drops(seed: u64, p: f64) -> Self {
        Self {
            drop_request: p / 2.0,
            drop_response: p / 2.0,
            ..Self::none(seed)
        }
    }

    /// The acceptance-criteria schedule: `drop` total frame loss plus
    /// `corrupt` bit-flip rate (split across directions), with
    /// occasional duplicates.
    pub fn lossy(seed: u64, drop: f64, corrupt: f64) -> Self {
        Self {
            drop_request: drop / 2.0,
            drop_response: drop / 2.0,
            corrupt_request: corrupt / 2.0,
            corrupt_response: corrupt / 2.0,
            duplicate: corrupt / 2.0,
            ..Self::none(seed)
        }
    }

    /// Kill the server after `calls` calls; no other faults.
    pub fn kill_after(seed: u64, calls: u64) -> Self {
        Self {
            kill_after_calls: Some(calls),
            ..Self::none(seed)
        }
    }
}

/// Deterministic, seeded fault-injecting wrapper over any transport.
pub struct FaultInjector {
    inner: Mutex<Option<Arc<dyn Transport>>>,
    spec: FaultSpec,
    calls: AtomicU64,
    injected: AtomicU64,
}

// Decision salts: one independent draw per fault class per call.
const SALT_DROP_REQ: u64 = 0x01;
const SALT_DROP_RESP: u64 = 0x02;
const SALT_DUP: u64 = 0x03;
const SALT_CORRUPT_REQ: u64 = 0x04;
const SALT_CORRUPT_RESP: u64 = 0x05;
const SALT_DELAY: u64 = 0x06;
const SALT_BITPOS: u64 = 0x07;

impl FaultInjector {
    /// Wrap `inner` with the fault schedule `spec`.
    pub fn new(inner: Arc<dyn Transport>, spec: FaultSpec) -> Self {
        Self {
            inner: Mutex::new(Some(inner)),
            spec,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Calls attempted through this injector so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far (all classes).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Kill the server now: drops the inner transport (closing the
    /// channel, so server workers drain and exit) and fails every
    /// subsequent call with `Disconnected`. Idempotent.
    pub fn kill(&self) {
        *self.inner.lock() = None;
    }

    /// Deterministic uniform draw in `[0,1)` for call `n`, class `salt`.
    fn draw(&self, n: u64, salt: u64) -> f64 {
        let h = splitmix64(self.spec.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (salt << 56));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn hit(&self, n: u64, salt: u64, p: f64) -> bool {
        p > 0.0 && self.draw(n, salt) < p
    }

    fn flip_one_bit(&self, frame: &Bytes, n: u64, salt: u64) -> Bytes {
        if frame.is_empty() {
            return frame.clone();
        }
        let h = splitmix64(
            self.spec.seed
                ^ n.wrapping_mul(0xD134_2543_DE82_EF95)
                ^ (salt << 48)
                ^ (SALT_BITPOS << 40),
        );
        let bit = (h as usize) % (frame.len() * 8);
        let mut m = BytesMut::from(&frame[..]);
        m[bit / 8] ^= 1 << (bit % 8);
        m.freeze()
    }
}

impl Transport for FaultInjector {
    fn call(&self, request: Bytes, deadline: Option<Duration>) -> Result<Bytes, Error> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if let Some(kill_at) = self.spec.kill_after_calls {
            if n >= kill_at {
                self.kill();
            }
        }
        let inner = match &*self.inner.lock() {
            Some(t) => Arc::clone(t),
            None => {
                return Err(Error::disconnected(
                    "server killed by fault injector".to_string(),
                ))
            }
        };

        if self.hit(n, SALT_DELAY, self.spec.delay) {
            let frac = self.draw(n, SALT_DELAY << 8 | SALT_DELAY);
            let ns = (self.spec.max_delay.as_nanos() as f64 * frac) as u64;
            std::thread::sleep(Duration::from_nanos(ns));
        }

        if self.hit(n, SALT_DROP_REQ, self.spec.drop_request) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            // The frame never reaches the server. The caller's deadline
            // would expire waiting; model that outcome directly so the
            // suite doesn't spend wall-clock time sleeping on it.
            return Err(Error::timeout("request frame dropped by fault injector"));
        }

        let request = if self.hit(n, SALT_CORRUPT_REQ, self.spec.corrupt_request) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.flip_one_bit(&request, n, SALT_CORRUPT_REQ)
        } else {
            request
        };

        if self.hit(n, SALT_DUP, self.spec.duplicate) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            // Retransmit racing a slow ack: deliver twice, use the
            // second reply. The server must treat the duplicate as a
            // replay-cache hit for state to stay exactly-once.
            let _first = inner.call(request.clone(), deadline)?;
        }

        let response = inner.call(request, deadline)?;

        if self.hit(n, SALT_DROP_RESP, self.spec.drop_response) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            // Executed server-side, reply lost in flight.
            return Err(Error::timeout("response frame dropped by fault injector"));
        }

        if self.hit(n, SALT_CORRUPT_RESP, self.spec.corrupt_response) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Ok(self.flip_one_bit(&response, n, SALT_CORRUPT_RESP));
        }

        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;
    use crate::transport::loopback;

    fn echo_server() -> (Arc<dyn Transport>, std::thread::JoinHandle<()>) {
        let (client, server) = loopback(16);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                let _ = reply.send(req);
            }
        });
        (Arc::new(client), h)
    }

    #[test]
    fn passthrough_when_no_faults() {
        let (inner, h) = echo_server();
        let inj = FaultInjector::new(Arc::clone(&inner), FaultSpec::none(1));
        for i in 0..50u8 {
            let r = inj.call(Bytes::copy_from_slice(&[i]), None).unwrap();
            assert_eq!(&r[..], &[i]);
        }
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.calls(), 50);
        drop(inj);
        drop(inner);
        h.join().unwrap();
    }

    #[test]
    fn drop_schedule_is_deterministic() {
        let run = || {
            let (inner, h) = echo_server();
            let inj = FaultInjector::new(Arc::clone(&inner), FaultSpec::drops(42, 0.3));
            let outcomes: Vec<bool> = (0..200u8)
                .map(|i| inj.call(Bytes::copy_from_slice(&[i]), None).is_ok())
                .collect();
            drop(inj);
            drop(inner);
            h.join().unwrap();
            outcomes
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same schedule");
        let drops = a.iter().filter(|ok| !**ok).count();
        assert!((30..90).contains(&drops), "~30% of 200: {drops}");
    }

    #[test]
    fn dropped_calls_surface_as_timeouts() {
        let (inner, h) = echo_server();
        let inj = FaultInjector::new(Arc::clone(&inner), FaultSpec::drops(7, 1.0));
        let err = inj.call(Bytes::from_static(b"x"), None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Timeout);
        assert!(err.is_retryable());
        drop(inj);
        drop(inner);
        h.join().unwrap();
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (inner, h) = echo_server();
        let spec = FaultSpec {
            corrupt_response: 1.0,
            ..FaultSpec::none(3)
        };
        let inj = FaultInjector::new(Arc::clone(&inner), spec);
        let sent = Bytes::from_static(b"hello world");
        let got = inj.call(sent.clone(), None).unwrap();
        let diff: u32 = sent
            .iter()
            .zip(got.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        drop(inj);
        drop(inner);
        h.join().unwrap();
    }

    #[test]
    fn kill_after_n_calls_disconnects_forever() {
        let (inner, h) = echo_server();
        let inj = FaultInjector::new(Arc::clone(&inner), FaultSpec::kill_after(1, 3));
        for i in 0..3u8 {
            assert!(inj.call(Bytes::copy_from_slice(&[i]), None).is_ok());
        }
        for _ in 0..2 {
            let err = inj.call(Bytes::from_static(b"x"), None).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Disconnected);
            assert!(!err.is_retryable());
        }
        // The injector dropped its inner handle; once the test's own
        // handle goes too, the server drains and exits.
        drop(inner);
        h.join().unwrap();
    }

    #[test]
    fn duplicate_delivers_twice() {
        let (client, server) = loopback(16);
        let served = Arc::new(AtomicU64::new(0));
        let served2 = Arc::clone(&served);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                served2.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(req);
            }
        });
        let spec = FaultSpec {
            duplicate: 1.0,
            ..FaultSpec::none(9)
        };
        let client: Arc<dyn Transport> = Arc::new(client);
        let inj = FaultInjector::new(Arc::clone(&client), spec);
        let r = inj.call(Bytes::from_static(b"q"), None).unwrap();
        assert_eq!(&r[..], b"q");
        assert_eq!(served.load(Ordering::Relaxed), 2, "delivered twice");
        drop(inj);
        drop(client);
        h.join().unwrap();
    }
}
