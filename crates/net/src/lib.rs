//! # oe-net
//!
//! The message-passing substrate of the distributed parameter server.
//!
//! The paper's system ships TensorFlow operators that talk to the PS
//! nodes over a low-overhead RPC (RDMA where available, §V-C). This
//! crate provides the equivalent layer for the reproduction:
//!
//! - [`codec`] — a compact binary wire format for every PS message
//!   (pull, push, checkpoint, stats, weight reads), with explicit
//!   framing and versioning;
//! - [`transport`] — a [`transport::Transport`] abstraction with an
//!   in-process loopback implementation (bounded channels carrying
//!   frames), standing in for the testbed's 30 Gb intranet the way the
//!   simulated media stands in for Optane;
//! - [`server`] — a multi-threaded PS server event loop serving any
//!   [`oe_core::engine::PsEngine`];
//! - [`client`] — [`client::RemotePs`], which implements `PsEngine`
//!   *over the wire*, so the trainer, examples, and tests can swap a
//!   local node for a remote one without code changes. Virtual-time
//!   costs charged on the server are carried back in the response and
//!   merged into the caller's cost sink, keeping the discrete-event
//!   accounting exact across the network boundary.

pub mod client;
pub mod codec;
pub mod server;
pub mod transport;

pub use client::RemotePs;
pub use codec::{Frame, Request, Response};
pub use server::{PsServer, ServerHandle};
pub use transport::{loopback, ClientTransport, Transport};
