//! # oe-net
//!
//! The message-passing substrate of the distributed parameter server.
//!
//! The paper's system ships TensorFlow operators that talk to the PS
//! nodes over a low-overhead RPC (RDMA where available, §V-C), and its
//! headline result is surviving failures cheaply (§VI-E). This crate
//! provides both layers for the reproduction:
//!
//! - [`error`] — one structured [`Error`] for everything that can go
//!   wrong between client and server (timeout, disconnect, corruption,
//!   busy, rejection), with a source chain and a retryability
//!   classification;
//! - [`codec`] — a compact binary wire format for every PS message
//!   (pull, push, checkpoint, stats, weight reads), with explicit
//!   framing, versioning, a per-request `(client, seq)` idempotence
//!   token, and a whole-frame checksum that turns in-flight bit flips
//!   into structured errors;
//! - [`transport`] — a deadline-aware [`transport::Transport`]
//!   abstraction with an in-process loopback implementation (bounded
//!   channels carrying frames), standing in for the testbed's 30 Gb
//!   intranet the way the simulated media stands in for Optane;
//! - [`fault`] — a seeded, deterministic [`FaultInjector`] that
//!   composes over any transport (drop, delay, duplicate, corrupt,
//!   kill-server schedules);
//! - [`config`] — [`NetConfig`]: the [`NetCharge`] cost model plus
//!   deadline and [`RetryPolicy`] knobs, one builder mirroring
//!   `NodeConfig`;
//! - [`server`] — a multi-threaded PS server event loop serving any
//!   [`oe_core::engine::PsEngine`], with a replay cache that applies
//!   retried/duplicated requests exactly once;
//! - [`failover`] — [`CheckpointReplica`] standbys that restore
//!   through `core::recovery` from the last committed checkpoint when
//!   promoted, charging the paper's recovery cost in virtual time;
//! - [`client`] — [`client::RemotePs`], which implements both
//!   `PsEngine` and [`PsClient`] *over the wire* with deadlines,
//!   retry/backoff, and failover. Virtual-time costs charged on the
//!   server are carried back in the response and merged into the
//!   caller's cost sink, keeping the discrete-event accounting exact
//!   across the network boundary;
//! - [`api`] — the backend-agnostic [`PsClient`] trait implemented by
//!   `RemotePs` and the in-process `PsNode`, so `train`/`serve` drive
//!   either through one interface.

pub mod api;
pub mod client;
pub mod codec;
pub mod config;
pub mod error;
pub mod failover;
pub mod fault;
pub mod server;
pub mod transport;

pub use api::{EngineClient, PsClient, PullTicket};
pub use client::RemotePs;
pub use codec::{
    validate_frame, F32sView, Frame, FrameMeta, Packet, Request, RequestView, Response,
    ResponseView, U64sView,
};
pub use config::{NetCharge, NetConfig, RetryPolicy};
pub use error::{Error, ErrorKind};
pub use failover::{
    recovery_burst_ns, spawn_promoted, CheckpointReplica, FailoverEvent, Promotion, Standby,
};
pub use fault::{FaultInjector, FaultSpec};
pub use server::{PsServer, ServerHandle};
pub use transport::{loopback, ClientTransport, Transport};
