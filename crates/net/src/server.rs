//! The PS server event loop: N worker threads decode request packets,
//! execute them against any [`PsEngine`], and reply — the reproduction
//! of the paper's "multiple threads pre-allocated to handle the
//! concurrent pull requests coming from the network" (§V-A, Fig. 5) —
//! now with exactly-once semantics for retried and duplicated
//! requests.
//!
//! ## Replay cache
//!
//! Every request carries a `(client, seq)` idempotence token. Mutating
//! requests (pull, push, end-pull, checkpoint) record their encoded
//! response in a bounded replay cache keyed by that token; when a retry
//! or a duplicated frame arrives with a token already present, the
//! server returns the cached bytes without re-executing — a retried
//! push applies its gradients exactly once no matter how many copies of
//! the frame arrive. Reads are naturally idempotent and bypass the
//! cache. The cache is bounded FIFO: tokens are only ever retried
//! within a retry budget of their first attempt, so old entries are
//! safe to evict.
//!
//! ## Sequence fences
//!
//! A freshly promoted standby starts with an *empty* replay cache, so a
//! stale retry minted against the dead primary would re-execute there —
//! on a node that was just rolled back to the committed checkpoint and
//! whose lost batches the trainer is about to replay with fresh tokens.
//! [`Request::SeqFence`] closes that hole: the failing-over client
//! fences its entire pre-failover sequence space, and the server
//! answers any mutating request at or below the recorded floor with a
//! `Rejected` error instead of executing it. Floors only ratchet
//! upward and are tracked per client id.
//!
//! ## Placement epochs
//!
//! Live migration (`oe-cluster`) changes which node owns a key; a
//! client routing under a pre-cutover table would read or write keys
//! that have already moved away. Every pull/push carries the placement
//! epoch it was routed under; the server tracks the cluster epoch
//! ([`Request::PlacementUpdate`], an upward ratchet like the seq fence)
//! and rejects *fresh* bursts from older epochs. The order of checks is
//! load-bearing: the replay cache is consulted **before** the epoch
//! check, so a retry of a mutation that already executed pre-cutover
//! still gets its original cached response — exactly-once survives the
//! epoch bump — while an unexecuted stale burst is refused and the
//! client must re-route under the new table.

use crate::codec::{validate_frame, Packet, Request, RequestView, Response};
use crate::error::ErrorKind;
use crate::transport::ServerTransport;
use bytes::Bytes;
use oe_core::engine::PsEngine;
use oe_core::{ScratchPool, Shape};
use oe_simdevice::Cost;
use oe_telemetry::{Phase, PhaseTimes, Registry};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Replay-cache capacity: far beyond any in-flight retry window (a
/// client retries a token at most `max_retries` times immediately
/// after issuing it).
const REPLAY_CAPACITY: usize = 4096;

/// Bounded FIFO map from idempotence token to the encoded response.
struct ReplayCache {
    map: HashMap<(u32, u64), Bytes>,
    order: VecDeque<(u32, u64)>,
}

impl ReplayCache {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, token: (u32, u64)) -> Option<Bytes> {
        self.map.get(&token).cloned()
    }

    fn insert(&mut self, token: (u32, u64), encoded: Bytes) {
        if self.map.insert(token, encoded).is_none() {
            self.order.push_back(token);
            while self.order.len() > REPLAY_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// A running server; joins its workers on [`ServerHandle::join`].
pub struct ServerHandle {
    workers: Vec<JoinHandle<u64>>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    /// Wait for every worker to exit (they exit when all clients have
    /// disconnected). Returns the total requests served.
    pub fn join(self) -> u64 {
        self.workers
            .into_iter()
            .map(|w| w.join().expect("server worker panicked"))
            .sum()
    }

    /// The server's own telemetry registry (request counters, decode
    /// failures, replay hits, per-request decode/execute wall-clock
    /// latencies).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }
}

/// The PS server.
pub struct PsServer;

impl PsServer {
    /// Spawn `threads` workers serving `engine` from `transport`.
    pub fn spawn(
        engine: Arc<dyn PsEngine>,
        transport: ServerTransport,
        threads: usize,
    ) -> ServerHandle {
        let registry = Arc::new(Registry::new());
        let requests = registry.counter("rpc_requests_total");
        let decode_errors = registry.counter("rpc_decode_errors_total");
        let replay_hits = registry.counter("rpc_replay_hits_total");
        let stale_rejects = registry.counter("rpc_stale_seq_rejections_total");
        let placement_updates = registry.counter("rpc_placement_updates_total");
        let epoch_rejects = registry.counter("rpc_stale_epoch_rejections_total");
        let placement_epoch = Arc::new(AtomicU64::new(0));
        let phases = Arc::new(PhaseTimes::new(
            &registry,
            "rpc",
            &[Phase::RpcDecode, Phase::RpcExecute],
        ));
        let replay = Arc::new(Mutex::new(ReplayCache::new()));
        let seq_floors: Arc<Mutex<HashMap<u32, u64>>> = Arc::new(Mutex::new(HashMap::new()));
        let workers = (0..threads.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rx = transport.clone_receiver();
                let registry = Arc::clone(&registry);
                let requests = requests.clone();
                let decode_errors = decode_errors.clone();
                let replay_hits = replay_hits.clone();
                let stale_rejects = stale_rejects.clone();
                let placement_updates = placement_updates.clone();
                let epoch_rejects = epoch_rejects.clone();
                let placement_epoch = Arc::clone(&placement_epoch);
                let phases = Arc::clone(&phases);
                let replay = Arc::clone(&replay);
                let seq_floors = Arc::clone(&seq_floors);
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    // Per-worker arena pool: a request's keys and grads
                    // are copied once, wire bytes → recycled scratch,
                    // and the steady state allocates nothing per call.
                    let scratch = ScratchPool::new();
                    while let Ok((req, reply)) = rx.recv() {
                        served += 1;
                        requests.inc();
                        // Validate the frame (magic/version/checksum)
                        // and decode the hot-path bursts as borrowed
                        // views over the request bytes; only non-burst
                        // requests materialize owned bodies.
                        let decoded = {
                            let _span = phases.span(Phase::RpcDecode);
                            validate_frame(&req).map(|meta| (meta, RequestView::decode(meta, &req)))
                        };
                        // An undecodable frame still gets a reply: the
                        // client is blocked waiting on this call, and
                        // silence would cost it a full deadline. A
                        // corrupted packet's token is untrustworthy, so
                        // the error reply carries token (0, 0) and is
                        // never cached.
                        let encoded = match decoded {
                            Ok((meta, view)) => {
                                let token = (meta.client, meta.seq);
                                match view {
                                    Ok(RequestView::Other(Request::Metrics)) => {
                                        let mut text = registry.render_text();
                                        text.push_str(&engine.metrics_text());
                                        Packet::response(token.0, token.1, Response::Metrics(text))
                                            .encode()
                                    }
                                    Ok(RequestView::Other(Request::SeqFence { floor })) => {
                                        // Ratchet only upward: a delayed
                                        // duplicate of an older fence must
                                        // not reopen already-fenced seqs.
                                        let mut floors = seq_floors.lock();
                                        let f = floors.entry(token.0).or_insert(0);
                                        *f = (*f).max(floor);
                                        Packet::response(
                                            token.0,
                                            token.1,
                                            Response::Ack { cost: Cost::new() },
                                        )
                                        .encode()
                                    }
                                    Ok(RequestView::Other(Request::PlacementUpdate { epoch })) => {
                                        // Upward ratchet, like the seq
                                        // fence: a replayed stale update
                                        // is a harmless no-op.
                                        placement_epoch.fetch_max(epoch, Ordering::SeqCst);
                                        placement_updates.inc();
                                        Packet::response(
                                            token.0,
                                            token.1,
                                            Response::Ack { cost: Cost::new() },
                                        )
                                        .encode()
                                    }
                                    Ok(view) => {
                                        let fenced = view.is_mutating()
                                            && seq_floors
                                                .lock()
                                                .get(&token.0)
                                                .is_some_and(|&floor| token.1 <= floor);
                                        if fenced {
                                            // Never cached: the reject is
                                            // stateless and the token's
                                            // owner has already moved on.
                                            stale_rejects.inc();
                                            Packet::response(
                                                token.0,
                                                token.1,
                                                Response::Error {
                                                    kind: ErrorKind::Rejected,
                                                    message: format!(
                                                        "seq {} at or below fence floor: \
                                                         token predates a failover",
                                                        token.1
                                                    ),
                                                },
                                            )
                                            .encode()
                                        } else {
                                            let cached = if view.is_mutating() {
                                                replay.lock().get(token)
                                            } else {
                                                None
                                            };
                                            let server_epoch =
                                                placement_epoch.load(Ordering::SeqCst);
                                            match cached {
                                                Some(bytes) => {
                                                    // Cached ⇒ already
                                                    // executed; answer the
                                                    // retry even if the
                                                    // placement epoch has
                                                    // moved on since.
                                                    replay_hits.inc();
                                                    bytes
                                                }
                                                None if view
                                                    .epoch()
                                                    .is_some_and(|e| e < server_epoch) =>
                                                {
                                                    // Never cached: the
                                                    // client re-routes and
                                                    // re-sends under the
                                                    // current table.
                                                    epoch_rejects.inc();
                                                    Packet::response(
                                                        token.0,
                                                        token.1,
                                                        Response::Error {
                                                            kind: ErrorKind::Rejected,
                                                            message:
                                                                "stale placement epoch: burst \
                                                                 routed under a pre-migration \
                                                                 table"
                                                                    .to_string(),
                                                        },
                                                    )
                                                    .encode()
                                                }
                                                None => {
                                                    let mutating = view.is_mutating();
                                                    let bytes = {
                                                        let _span = phases.span(Phase::RpcExecute);
                                                        Self::execute_view(
                                                            engine.as_ref(),
                                                            token,
                                                            view,
                                                            &scratch,
                                                        )
                                                    };
                                                    if mutating {
                                                        replay.lock().insert(token, bytes.clone());
                                                    }
                                                    bytes
                                                }
                                            }
                                        }
                                    }
                                    Err(_) if meta.msg_type >= 0x80 => {
                                        decode_errors.inc();
                                        Packet::response(
                                            token.0,
                                            token.1,
                                            Response::Error {
                                                kind: ErrorKind::Rejected,
                                                message: "unexpected response frame".to_string(),
                                            },
                                        )
                                        .encode()
                                    }
                                    Err(e) => {
                                        decode_errors.inc();
                                        Packet::response(
                                            0,
                                            0,
                                            Response::Error {
                                                kind: e.kind(),
                                                message: e.to_string(),
                                            },
                                        )
                                        .encode()
                                    }
                                }
                            }
                            Err(e) => {
                                decode_errors.inc();
                                Packet::response(
                                    0,
                                    0,
                                    Response::Error {
                                        kind: e.kind(),
                                        message: e.to_string(),
                                    },
                                )
                                .encode()
                            }
                        };
                        // A vanished client is not a server error.
                        let _ = reply.send(encoded);
                    }
                    served
                })
            })
            .collect();
        ServerHandle { workers, registry }
    }

    /// Execute a borrowed request view and encode the reply.
    ///
    /// Pull and push — the two requests that dominate steady-state
    /// traffic — never materialize owned key/grad vectors from the wire
    /// bytes: the length-validated views are copied once into a pooled
    /// [`Scratch`](oe_core::PooledScratch) arena (zero allocations once
    /// the shape has been seen), and the pull reply is borrow-encoded
    /// straight from the scratch weights. Everything else falls through
    /// to the owned-decode [`Self::execute`] path.
    fn execute_view(
        engine: &dyn PsEngine,
        token: (u32, u64),
        view: RequestView<'_>,
        scratch: &ScratchPool,
    ) -> Bytes {
        match view {
            RequestView::Pull {
                epoch: _,
                batch,
                keys,
            } => {
                let dim = engine.dim();
                let mut arena = scratch.acquire(Shape::request(keys.len(), keys.len() * dim));
                let s = &mut *arena;
                keys.extend_into(&mut s.keys);
                s.rows.reserve(s.keys.len() * dim);
                let mut cost = Cost::new();
                engine.pull(&s.keys, batch, &mut s.rows, &mut cost);
                Packet::encode_weights_response(token.0, token.1, &s.rows, &cost)
            }
            RequestView::Push {
                epoch: _,
                batch,
                keys,
                grads,
            } => {
                let dim = engine.dim();
                // A shape mismatch is a malformed request, not a server
                // bug: reject it with a structured error instead of
                // letting the engine's internal invariants trip.
                if grads.len() != keys.len() * dim {
                    return Packet::response(
                        token.0,
                        token.1,
                        Response::Error {
                            kind: ErrorKind::Rejected,
                            message: format!(
                                "push shape mismatch: {} keys at dim {} require {} grads, got {}",
                                keys.len(),
                                dim,
                                keys.len() * dim,
                                grads.len()
                            ),
                        },
                    )
                    .encode();
                }
                let mut arena = scratch.acquire(Shape::request(keys.len(), grads.len()));
                let s = &mut *arena;
                keys.extend_into(&mut s.keys);
                grads.extend_into(&mut s.rows);
                let mut cost = Cost::new();
                engine.push(&s.keys, &s.rows, batch, &mut cost);
                Packet::response(token.0, token.1, Response::Ack { cost }).encode()
            }
            RequestView::Other(r) => {
                Packet::response(token.0, token.1, Self::execute(engine, r)).encode()
            }
        }
    }

    fn execute(engine: &dyn PsEngine, req: Request) -> Response {
        match req {
            Request::Pull {
                epoch: _,
                batch,
                keys,
            } => {
                let mut weights = Vec::with_capacity(keys.len() * engine.dim());
                let mut cost = Cost::new();
                engine.pull(&keys, batch, &mut weights, &mut cost);
                Response::Weights { weights, cost }
            }
            Request::Push {
                epoch: _,
                batch,
                keys,
                grads,
            } => {
                let mut cost = Cost::new();
                engine.push(&keys, &grads, batch, &mut cost);
                Response::Ack { cost }
            }
            Request::EndPullPhase { batch } => {
                let report = engine.end_pull_phase(batch);
                Response::Maintenance {
                    entries: report.entries_processed,
                    commits: report.ckpt_commits,
                    cost: report.cost,
                }
            }
            Request::Checkpoint { batch } => Response::Ack {
                cost: engine.request_checkpoint(batch),
            },
            Request::Committed => Response::Committed {
                batch: engine.committed_checkpoint(),
            },
            Request::Stats => Response::Stats(engine.stats()),
            Request::ReadWeights { key } => Response::MaybeWeights(engine.read_weights(key)),
            Request::NumKeys => Response::Count(engine.num_keys() as u64),
            Request::Hello => Response::HelloOk {
                dim: engine.dim() as u32,
                name: engine.name().to_string(),
            },
            // Normally intercepted in the worker loop (the server
            // prepends its own registry); kept here so `execute` stays
            // total over `Request`.
            Request::Metrics => Response::Metrics(engine.metrics_text()),
            // Also intercepted in the worker loop (floors live beside
            // the replay cache, not in the engine).
            Request::SeqFence { .. } => Response::Ack { cost: Cost::new() },
            // Intercepted in the worker loop too (the epoch lives beside
            // the seq floors, not in the engine).
            Request::PlacementUpdate { .. } => Response::Ack { cost: Cost::new() },
            Request::ExportEntry { key } => {
                let mut cost = Cost::new();
                Response::Entry(engine.export_entry(key, &mut cost))
            }
            Request::ImportEntry {
                key,
                version,
                payload,
            } => {
                let mut cost = Cost::new();
                engine.import_entry(key, version, &payload, &mut cost);
                Response::Ack { cost }
            }
            Request::DiscardEntry { key } => {
                let mut cost = Cost::new();
                engine.discard_entry(key, &mut cost);
                Response::Ack { cost }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Frame;
    use crate::transport::{loopback, Transport};
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn spawn_node() -> (crate::transport::ClientTransport, ServerHandle) {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client, server_t) = loopback(16);
        let handle = PsServer::spawn(engine, server_t, 4);
        (client, handle)
    }

    fn call(client: &crate::transport::ClientTransport, pkt: Packet) -> Packet {
        Packet::decode(client.call(pkt.encode(), None).unwrap()).unwrap()
    }

    #[test]
    fn serves_pull_over_the_wire() {
        let (client, handle) = spawn_node();
        let resp = call(
            &client,
            Packet::request(
                1,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![10, 20],
                },
            ),
        );
        assert_eq!((resp.client, resp.seq), (1, 1), "token echoed");
        match resp.frame {
            Frame::Response(Response::Weights { weights, cost }) => {
                assert_eq!(weights.len(), 8);
                assert!(cost.total_ns() > 0, "server charges travel back");
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        assert!(handle.join() >= 1);
    }

    #[test]
    fn hello_reports_engine_identity() {
        let (client, handle) = spawn_node();
        let resp = call(&client, Packet::request(1, 2, Request::Hello));
        assert_eq!(
            resp.frame,
            Frame::Response(Response::HelloOk {
                dim: 4,
                name: "PMem-OE".into()
            })
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn duplicate_push_applies_exactly_once() {
        let (client, handle) = spawn_node();
        // Establish the key.
        let pull = Packet::request(
            7,
            1,
            Request::Pull {
                epoch: 0,
                batch: 1,
                keys: vec![5],
            },
        );
        call(&client, pull);
        call(
            &client,
            Packet::request(7, 2, Request::EndPullPhase { batch: 1 }),
        );
        let w0 = match call(
            &client,
            Packet::request(7, 3, Request::ReadWeights { key: 5 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        // The same push token delivered three times (retry storm).
        let push = Packet::request(
            7,
            4,
            Request::Push {
                epoch: 0,
                batch: 1,
                keys: vec![5],
                grads: vec![1.0; 4],
            },
        );
        let r1 = call(&client, push.clone());
        let r2 = call(&client, push.clone());
        let r3 = call(&client, push);
        assert_eq!(r1, r2, "replayed response is byte-identical");
        assert_eq!(r1, r3);
        let w1 = match call(
            &client,
            Packet::request(7, 5, Request::ReadWeights { key: 5 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        // SGD lr=1: one application subtracts exactly the gradient.
        for d in 0..4 {
            assert!(
                (w1[d] - (w0[d] - 1.0)).abs() < 1e-6,
                "dim {d}: {} vs {} — gradient must apply exactly once",
                w1[d],
                w0[d] - 1.0
            );
        }
        assert_eq!(
            handle
                .registry()
                .snapshot()
                .counter("rpc_replay_hits_total"),
            Some(2)
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn seq_fence_rejects_stale_mutations_per_client() {
        let (client, handle) = spawn_node();
        // Establish key 3 for client 7.
        call(
            &client,
            Packet::request(
                7,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![3],
                },
            ),
        );
        call(
            &client,
            Packet::request(7, 2, Request::EndPullPhase { batch: 1 }),
        );
        let w0 = match call(
            &client,
            Packet::request(7, 3, Request::ReadWeights { key: 3 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        // Client 7 fences its first 10 seqs (as it would after failover).
        let resp = call(
            &client,
            Packet::request(7, 11, Request::SeqFence { floor: 10 }),
        );
        assert!(matches!(resp.frame, Frame::Response(Response::Ack { .. })));
        // A straggling pre-failover push (seq 4 <= floor) must NOT
        // execute on this server — with an empty replay cache it would
        // double-apply after the trainer's replay.
        let stale = call(
            &client,
            Packet::request(
                7,
                4,
                Request::Push {
                    epoch: 0,
                    batch: 1,
                    keys: vec![3],
                    grads: vec![1.0; 4],
                },
            ),
        );
        match stale.frame {
            Frame::Response(Response::Error { kind, message }) => {
                assert_eq!(kind, ErrorKind::Rejected, "stale seq must not retry");
                assert!(message.contains("fence"), "{message}");
            }
            other => panic!("stale push executed: {other:?}"),
        }
        let w1 = match call(
            &client,
            Packet::request(7, 12, Request::ReadWeights { key: 3 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(w0, w1, "fenced push left weights untouched");
        // Floors are per client: client 8's seq 4 is not fenced.
        call(
            &client,
            Packet::request(
                8,
                4,
                Request::Push {
                    epoch: 0,
                    batch: 1,
                    keys: vec![3],
                    grads: vec![1.0; 4],
                },
            ),
        );
        // Post-fence seqs from client 7 execute normally.
        call(
            &client,
            Packet::request(
                7,
                13,
                Request::Push {
                    epoch: 0,
                    batch: 1,
                    keys: vec![3],
                    grads: vec![1.0; 4],
                },
            ),
        );
        let w2 = match call(
            &client,
            Packet::request(7, 14, Request::ReadWeights { key: 3 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        for d in 0..4 {
            assert!(
                (w2[d] - (w0[d] - 2.0)).abs() < 1e-6,
                "exactly the two unfenced pushes applied"
            );
        }
        // An older duplicate fence must not lower the floor.
        call(
            &client,
            Packet::request(7, 15, Request::SeqFence { floor: 2 }),
        );
        let still = call(
            &client,
            Packet::request(
                7,
                9,
                Request::Push {
                    epoch: 0,
                    batch: 1,
                    keys: vec![3],
                    grads: vec![1.0; 4],
                },
            ),
        );
        assert!(
            matches!(
                still.frame,
                Frame::Response(Response::Error {
                    kind: ErrorKind::Rejected,
                    ..
                })
            ),
            "floor ratchets up only"
        );
        assert_eq!(
            handle
                .registry()
                .snapshot()
                .counter("rpc_stale_seq_rejections_total"),
            Some(2)
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn distinct_clients_do_not_share_tokens() {
        let (client, handle) = spawn_node();
        call(
            &client,
            Packet::request(
                1,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![9],
                },
            ),
        );
        call(
            &client,
            Packet::request(1, 2, Request::EndPullPhase { batch: 1 }),
        );
        // Same seq, different client ids: both pushes must execute.
        for cid in [10u32, 11] {
            call(
                &client,
                Packet::request(
                    cid,
                    100,
                    Request::Push {
                        epoch: 0,
                        batch: 1,
                        keys: vec![9],
                        grads: vec![0.5; 4],
                    },
                ),
            );
        }
        let resp = call(&client, Packet::request(1, 3, Request::Stats));
        let Frame::Response(Response::Stats(s)) = resp.frame else {
            panic!("unexpected {resp:?}");
        };
        assert_eq!(s.pushes, 2, "different clients both applied");
        drop(client);
        handle.join();
    }

    #[test]
    fn garbage_frames_get_a_structured_error_reply() {
        let (client, handle) = spawn_node();
        // A garbage frame must not be dropped silently — the caller is
        // blocked on the reply. It gets a structured error response.
        let resp = Packet::decode(
            client
                .call(bytes::Bytes::from_static(b"\xde\xad\xbe\xef"), None)
                .unwrap(),
        )
        .unwrap();
        match resp.frame {
            Frame::Response(Response::Error { kind, message }) => {
                assert_eq!(kind, ErrorKind::Corrupt);
                assert!(!message.is_empty(), "reason travels back");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The server keeps serving real requests afterwards and has
        // counted the decode failure.
        let resp = call(&client, Packet::request(1, 1, Request::NumKeys));
        assert_eq!(resp.frame, Frame::Response(Response::Count(0)));
        assert_eq!(
            handle
                .registry()
                .snapshot()
                .counter("rpc_decode_errors_total"),
            Some(1)
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn metrics_rpc_renders_server_and_engine_registries() {
        let (client, handle) = spawn_node();
        // Generate some traffic first.
        call(
            &client,
            Packet::request(
                1,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![1, 2, 3],
                },
            ),
        );
        let resp = call(&client, Packet::request(1, 2, Request::Metrics));
        let Frame::Response(Response::Metrics(text)) = resp.frame else {
            panic!("unexpected {resp:?}");
        };
        // Server-side metrics.
        assert!(text.contains("rpc_requests_total"), "text:\n{text}");
        assert!(text.contains("rpc_decode_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rpc_replay_hits_total"), "text:\n{text}");
        // Engine-side metrics (PsNode registry appended).
        assert!(text.contains("oe_pulls_total 3"), "text:\n{text}");
        assert!(text.contains("oe_pull_latency_ns"));
        drop(client);
        handle.join();
    }

    #[test]
    fn epoch_fence_rejects_fresh_but_replays_cached_across_a_bump() {
        let (client, handle) = spawn_node();
        // A push executes under epoch 0 and lands in the replay cache.
        call(
            &client,
            Packet::request(
                3,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![5],
                },
            ),
        );
        call(
            &client,
            Packet::request(3, 2, Request::EndPullPhase { batch: 1 }),
        );
        let push = Packet::request(
            3,
            3,
            Request::Push {
                epoch: 0,
                batch: 1,
                keys: vec![5],
                grads: vec![1.0; 4],
            },
        );
        let first = call(&client, push.clone());
        assert!(matches!(first.frame, Frame::Response(Response::Ack { .. })));
        // Migration cutover: the rebalancer announces epoch 2.
        let resp = call(
            &client,
            Packet::request(3, 4, Request::PlacementUpdate { epoch: 2 }),
        );
        assert!(matches!(resp.frame, Frame::Response(Response::Ack { .. })));
        // A retry of the already-executed token crosses the bump: it
        // must get the cached response, not a reject — and not apply
        // the gradient a second time.
        let retry = call(&client, push);
        assert_eq!(retry, first, "cached bytes answer the retry");
        let w = match call(
            &client,
            Packet::request(3, 5, Request::ReadWeights { key: 5 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        // A FRESH burst still routed under the old table is refused.
        let stale = call(
            &client,
            Packet::request(
                3,
                6,
                Request::Push {
                    epoch: 0,
                    batch: 2,
                    keys: vec![5],
                    grads: vec![1.0; 4],
                },
            ),
        );
        match stale.frame {
            Frame::Response(Response::Error { kind, message }) => {
                assert_eq!(kind, ErrorKind::Rejected);
                assert!(message.contains("placement epoch"), "{message}");
            }
            other => panic!("stale-epoch push executed: {other:?}"),
        }
        let w_after = match call(
            &client,
            Packet::request(3, 7, Request::ReadWeights { key: 5 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(w, w_after, "rejected burst left weights untouched");
        // Re-routed under the current epoch it executes fine.
        let ok = call(
            &client,
            Packet::request(
                3,
                8,
                Request::Push {
                    epoch: 2,
                    batch: 2,
                    keys: vec![5],
                    grads: vec![1.0; 4],
                },
            ),
        );
        assert!(matches!(ok.frame, Frame::Response(Response::Ack { .. })));
        // A delayed duplicate of an older update must not lower the epoch.
        call(
            &client,
            Packet::request(3, 9, Request::PlacementUpdate { epoch: 1 }),
        );
        let still_stale = call(
            &client,
            Packet::request(
                3,
                10,
                Request::Push {
                    epoch: 1,
                    batch: 3,
                    keys: vec![5],
                    grads: vec![1.0; 4],
                },
            ),
        );
        assert!(
            matches!(
                still_stale.frame,
                Frame::Response(Response::Error {
                    kind: ErrorKind::Rejected,
                    ..
                })
            ),
            "epoch ratchets up only"
        );
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter("rpc_stale_epoch_rejections_total"), Some(2));
        assert_eq!(snap.counter("rpc_placement_updates_total"), Some(2));
        assert_eq!(snap.counter("rpc_replay_hits_total"), Some(1));
        drop(client);
        handle.join();
    }

    #[test]
    fn migration_rpcs_move_a_full_entry_over_the_wire() {
        let (client, handle) = spawn_node();
        // Create an entry and train it a little so it has real state.
        call(
            &client,
            Packet::request(
                9,
                1,
                Request::Pull {
                    epoch: 0,
                    batch: 1,
                    keys: vec![77],
                },
            ),
        );
        call(
            &client,
            Packet::request(9, 2, Request::EndPullPhase { batch: 1 }),
        );
        call(
            &client,
            Packet::request(
                9,
                3,
                Request::Push {
                    epoch: 0,
                    batch: 1,
                    keys: vec![77],
                    grads: vec![0.25; 4],
                },
            ),
        );
        // Export the full entry (weights + optimizer state + version).
        let (version, payload) = match call(
            &client,
            Packet::request(9, 4, Request::ExportEntry { key: 77 }),
        )
        .frame
        {
            Frame::Response(Response::Entry(Some(e))) => e,
            other => panic!("unexpected {other:?}"),
        };
        assert!(payload.len() >= 4, "payload carries at least the weights");
        // Exporting a key that was never touched yields None.
        let missing = call(
            &client,
            Packet::request(9, 5, Request::ExportEntry { key: 123_456 }),
        );
        assert_eq!(missing.frame, Frame::Response(Response::Entry(None)));
        // Cutover source side: discard forgets the key…
        call(
            &client,
            Packet::request(9, 6, Request::DiscardEntry { key: 77 }),
        );
        let gone = call(
            &client,
            Packet::request(9, 7, Request::ReadWeights { key: 77 }),
        );
        assert_eq!(gone.frame, Frame::Response(Response::MaybeWeights(None)));
        // …and import (as the destination would) restores it exactly.
        call(
            &client,
            Packet::request(
                9,
                8,
                Request::ImportEntry {
                    key: 77,
                    version,
                    payload: payload.clone(),
                },
            ),
        );
        let back = match call(
            &client,
            Packet::request(9, 9, Request::ReadWeights { key: 77 }),
        )
        .frame
        {
            Frame::Response(Response::MaybeWeights(Some(w))) => w,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&back[..], &payload[..4], "weights survive the round trip");
        drop(client);
        handle.join();
    }
}
