//! The PS server event loop: N worker threads decode request frames,
//! execute them against any [`PsEngine`], and reply — the reproduction
//! of the paper's "multiple threads pre-allocated to handle the
//! concurrent pull requests coming from the network" (§V-A, Fig. 5).

use crate::codec::{Frame, Request, Response};
use crate::transport::ServerTransport;
use oe_core::engine::PsEngine;
use oe_simdevice::Cost;
use oe_telemetry::{Phase, PhaseTimes, Registry};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server; joins its workers on [`ServerHandle::join`].
pub struct ServerHandle {
    workers: Vec<JoinHandle<u64>>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    /// Wait for every worker to exit (they exit when all clients have
    /// disconnected). Returns the total requests served.
    pub fn join(self) -> u64 {
        self.workers
            .into_iter()
            .map(|w| w.join().expect("server worker panicked"))
            .sum()
    }

    /// The server's own telemetry registry (request counters, decode
    /// failures, per-request decode/execute wall-clock latencies).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }
}

/// The PS server.
pub struct PsServer;

impl PsServer {
    /// Spawn `threads` workers serving `engine` from `transport`.
    pub fn spawn(
        engine: Arc<dyn PsEngine>,
        transport: ServerTransport,
        threads: usize,
    ) -> ServerHandle {
        let registry = Arc::new(Registry::new());
        let requests = registry.counter("rpc_requests_total");
        let decode_errors = registry.counter("rpc_decode_errors_total");
        let phases = Arc::new(PhaseTimes::new(
            &registry,
            "rpc",
            &[Phase::RpcDecode, Phase::RpcExecute],
        ));
        let workers = (0..threads.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rx = transport.clone_receiver();
                let registry = Arc::clone(&registry);
                let requests = requests.clone();
                let decode_errors = decode_errors.clone();
                let phases = Arc::clone(&phases);
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while let Ok((req, reply)) = rx.recv() {
                        served += 1;
                        requests.inc();
                        let decoded = {
                            let _span = phases.span(Phase::RpcDecode);
                            Frame::decode(req)
                        };
                        // An undecodable frame still gets a reply: the
                        // client is blocked waiting on this call, and
                        // silence would block it forever.
                        let response = match decoded {
                            Ok(Frame::Request(Request::Metrics)) => {
                                let mut text = registry.render_text();
                                text.push_str(&engine.metrics_text());
                                Response::Metrics(text)
                            }
                            Ok(Frame::Request(r)) => {
                                let _span = phases.span(Phase::RpcExecute);
                                Self::execute(engine.as_ref(), r)
                            }
                            Ok(Frame::Response(_)) => {
                                decode_errors.inc();
                                Response::Error {
                                    message: "unexpected response frame".to_string(),
                                }
                            }
                            Err(e) => {
                                decode_errors.inc();
                                Response::Error {
                                    message: e.to_string(),
                                }
                            }
                        };
                        // A vanished client is not a server error.
                        let _ = reply.send(Frame::Response(response).encode());
                    }
                    served
                })
            })
            .collect();
        ServerHandle { workers, registry }
    }

    fn execute(engine: &dyn PsEngine, req: Request) -> Response {
        match req {
            Request::Pull { batch, keys } => {
                let mut weights = Vec::with_capacity(keys.len() * engine.dim());
                let mut cost = Cost::new();
                engine.pull(&keys, batch, &mut weights, &mut cost);
                Response::Weights { weights, cost }
            }
            Request::Push { batch, keys, grads } => {
                let mut cost = Cost::new();
                engine.push(&keys, &grads, batch, &mut cost);
                Response::Ack { cost }
            }
            Request::EndPullPhase { batch } => {
                let report = engine.end_pull_phase(batch);
                Response::Maintenance {
                    entries: report.entries_processed,
                    commits: report.ckpt_commits,
                    cost: report.cost,
                }
            }
            Request::Checkpoint { batch } => Response::Ack {
                cost: engine.request_checkpoint(batch),
            },
            Request::Committed => Response::Committed {
                batch: engine.committed_checkpoint(),
            },
            Request::Stats => Response::Stats(engine.stats()),
            Request::ReadWeights { key } => Response::MaybeWeights(engine.read_weights(key)),
            Request::NumKeys => Response::Count(engine.num_keys() as u64),
            Request::Hello => Response::HelloOk {
                dim: engine.dim() as u32,
                name: engine.name().to_string(),
            },
            // Normally intercepted in the worker loop (the server
            // prepends its own registry); kept here so `execute` stays
            // total over `Request`.
            Request::Metrics => Response::Metrics(engine.metrics_text()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{loopback, Transport};
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn spawn_node() -> (crate::transport::ClientTransport, ServerHandle) {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client, server_t) = loopback(16);
        let handle = PsServer::spawn(engine, server_t, 4);
        (client, handle)
    }

    #[test]
    fn serves_pull_over_the_wire() {
        let (client, handle) = spawn_node();
        let req = Frame::Request(Request::Pull {
            batch: 1,
            keys: vec![10, 20],
        })
        .encode();
        let resp = Frame::decode(client.call(req).unwrap()).unwrap();
        match resp {
            Frame::Response(Response::Weights { weights, cost }) => {
                assert_eq!(weights.len(), 8);
                assert!(cost.total_ns() > 0, "server charges travel back");
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        assert!(handle.join() >= 1);
    }

    #[test]
    fn hello_reports_engine_identity() {
        let (client, handle) = spawn_node();
        let resp = Frame::decode(
            client
                .call(Frame::Request(Request::Hello).encode())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            resp,
            Frame::Response(Response::HelloOk {
                dim: 4,
                name: "PMem-OE".into()
            })
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn garbage_frames_get_an_error_reply() {
        let (client, handle) = spawn_node();
        // A garbage frame must not be dropped silently — the caller is
        // blocked on the reply. It gets an error response instead.
        let resp = Frame::decode(
            client
                .call(bytes::Bytes::from_static(b"\xde\xad\xbe\xef"))
                .unwrap(),
        )
        .unwrap();
        match resp {
            Frame::Response(Response::Error { message }) => {
                assert!(!message.is_empty(), "reason travels back");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The server keeps serving real requests afterwards and has
        // counted the decode failure.
        let resp = Frame::decode(
            client
                .call(Frame::Request(Request::NumKeys).encode())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(resp, Frame::Response(Response::Count(0)));
        assert_eq!(
            handle
                .registry()
                .snapshot()
                .counter("rpc_decode_errors_total"),
            Some(1)
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn metrics_rpc_renders_server_and_engine_registries() {
        let (client, handle) = spawn_node();
        // Generate some traffic first.
        let pull = Frame::Request(Request::Pull {
            batch: 1,
            keys: vec![1, 2, 3],
        })
        .encode();
        let _ = client.call(pull).unwrap();
        let resp = Frame::decode(
            client
                .call(Frame::Request(Request::Metrics).encode())
                .unwrap(),
        )
        .unwrap();
        let Frame::Response(Response::Metrics(text)) = resp else {
            panic!("unexpected {resp:?}");
        };
        // Server-side metrics.
        assert!(text.contains("rpc_requests_total"), "text:\n{text}");
        assert!(text.contains("rpc_decode_latency_ns{quantile=\"0.99\"}"));
        // Engine-side metrics (PsNode registry appended).
        assert!(text.contains("oe_pulls_total 3"), "text:\n{text}");
        assert!(text.contains("oe_pull_latency_ns"));
        drop(client);
        handle.join();
    }
}
