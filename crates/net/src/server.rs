//! The PS server event loop: N worker threads decode request frames,
//! execute them against any [`PsEngine`], and reply — the reproduction
//! of the paper's "multiple threads pre-allocated to handle the
//! concurrent pull requests coming from the network" (§V-A, Fig. 5).

use crate::codec::{Frame, Request, Response};
use crate::transport::ServerTransport;
use oe_core::engine::PsEngine;
use oe_simdevice::Cost;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server; joins its workers on [`ServerHandle::join`].
pub struct ServerHandle {
    workers: Vec<JoinHandle<u64>>,
}

impl ServerHandle {
    /// Wait for every worker to exit (they exit when all clients have
    /// disconnected). Returns the total requests served.
    pub fn join(self) -> u64 {
        self.workers
            .into_iter()
            .map(|w| w.join().expect("server worker panicked"))
            .sum()
    }
}

/// The PS server.
pub struct PsServer;

impl PsServer {
    /// Spawn `threads` workers serving `engine` from `transport`.
    pub fn spawn(
        engine: Arc<dyn PsEngine>,
        transport: ServerTransport,
        threads: usize,
    ) -> ServerHandle {
        let workers = (0..threads.max(1))
            .map(|_| {
                let engine = Arc::clone(&engine);
                let rx = transport.clone_receiver();
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while let Ok((req, reply)) = rx.recv() {
                        served += 1;
                        let response = match Frame::decode(req) {
                            Ok(Frame::Request(r)) => Self::execute(engine.as_ref(), r),
                            Ok(Frame::Response(_)) | Err(_) => continue, // drop garbage
                        };
                        // A vanished client is not a server error.
                        let _ = reply.send(Frame::Response(response).encode());
                    }
                    served
                })
            })
            .collect();
        ServerHandle { workers }
    }

    fn execute(engine: &dyn PsEngine, req: Request) -> Response {
        match req {
            Request::Pull { batch, keys } => {
                let mut weights = Vec::with_capacity(keys.len() * engine.dim());
                let mut cost = Cost::new();
                engine.pull(&keys, batch, &mut weights, &mut cost);
                Response::Weights { weights, cost }
            }
            Request::Push { batch, keys, grads } => {
                let mut cost = Cost::new();
                engine.push(&keys, &grads, batch, &mut cost);
                Response::Ack { cost }
            }
            Request::EndPullPhase { batch } => {
                let report = engine.end_pull_phase(batch);
                Response::Maintenance {
                    entries: report.entries_processed,
                    commits: report.ckpt_commits,
                    cost: report.cost,
                }
            }
            Request::Checkpoint { batch } => Response::Ack {
                cost: engine.request_checkpoint(batch),
            },
            Request::Committed => Response::Committed {
                batch: engine.committed_checkpoint(),
            },
            Request::Stats => Response::Stats(engine.stats()),
            Request::ReadWeights { key } => Response::MaybeWeights(engine.read_weights(key)),
            Request::NumKeys => Response::Count(engine.num_keys() as u64),
            Request::Hello => Response::HelloOk {
                dim: engine.dim() as u32,
                name: engine.name().to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{loopback, Transport};
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    fn spawn_node() -> (crate::transport::ClientTransport, ServerHandle) {
        let mut cfg = NodeConfig::small(4);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
        let (client, server_t) = loopback(16);
        let handle = PsServer::spawn(engine, server_t, 4);
        (client, handle)
    }

    #[test]
    fn serves_pull_over_the_wire() {
        let (client, handle) = spawn_node();
        let req = Frame::Request(Request::Pull {
            batch: 1,
            keys: vec![10, 20],
        })
        .encode();
        let resp = Frame::decode(client.call(req).unwrap()).unwrap();
        match resp {
            Frame::Response(Response::Weights { weights, cost }) => {
                assert_eq!(weights.len(), 8);
                assert!(cost.total_ns() > 0, "server charges travel back");
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        assert!(handle.join() >= 1);
    }

    #[test]
    fn hello_reports_engine_identity() {
        let (client, handle) = spawn_node();
        let resp = Frame::decode(
            client
                .call(Frame::Request(Request::Hello).encode())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            resp,
            Frame::Response(Response::HelloOk {
                dim: 4,
                name: "PMem-OE".into()
            })
        );
        drop(client);
        handle.join();
    }

    #[test]
    fn garbage_frames_are_dropped_not_fatal() {
        let (client, handle) = spawn_node();
        // A garbage call gets no reply (dropped) — send it fire-and-forget
        // from a scoped thread so the test does not block on it.
        let c2 = client.clone();
        let garbage = std::thread::spawn(move || {
            let _ = c2.call(bytes::Bytes::from_static(b"\xde\xad\xbe\xef"));
        });
        // The server keeps serving real requests afterwards.
        let resp = Frame::decode(
            client
                .call(Frame::Request(Request::NumKeys).encode())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(resp, Frame::Response(Response::Count(0)));
        drop(client);
        handle.join();
        let _ = garbage; // detached caller never gets a reply; don't join
    }
}
