//! Transport abstraction: how request frames reach a PS server.
//!
//! The only implementation here is an in-process loopback (bounded
//! crossbeam channels carrying frames with a per-call reply channel),
//! standing in for the testbed's 30 Gb intranet exactly the way the
//! simulated media stands in for Optane: the *protocol* is real, the
//! physics is modelled (the client charges virtual network time per
//! frame byte). A TCP transport would implement the same trait.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

/// Transport-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The server is gone (channel closed).
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for NetError {}

/// A synchronous request/response transport.
pub trait Transport: Send + Sync {
    /// Send a request frame and wait for the response frame.
    fn call(&self, request: Bytes) -> Result<Bytes, NetError>;
}

/// One in-flight call: the request and where to send the reply.
pub type Envelope = (Bytes, Sender<Bytes>);

/// Client half of the loopback transport. Cheap to clone: clones share
/// the connection (concurrent calls multiplex over the same queue).
#[derive(Clone)]
pub struct ClientTransport {
    tx: Sender<Envelope>,
}

impl Transport for ClientTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, NetError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send((request, reply_tx))
            .map_err(|_| NetError::Disconnected)?;
        reply_rx.recv().map_err(|_| NetError::Disconnected)
    }
}

/// Server half: workers pull envelopes from this queue (MPMC, so any
/// number of service threads can share it).
pub struct ServerTransport {
    rx: Receiver<Envelope>,
}

impl ServerTransport {
    /// Receive the next call; `None` when every client is gone.
    pub fn recv(&self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    /// Clone the receiving end for another worker thread.
    pub fn clone_receiver(&self) -> Receiver<Envelope> {
        self.rx.clone()
    }
}

/// Create a connected loopback pair with the given queue depth
/// (modelling the NIC ring: senders block when the server is saturated,
/// which is exactly the back-pressure a real RPC stack applies).
pub fn loopback(queue_depth: usize) -> (ClientTransport, ServerTransport) {
    let (tx, rx) = bounded(queue_depth.max(1));
    (ClientTransport { tx }, ServerTransport { rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let (client, server) = loopback(4);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                let _ = reply.send(req); // echo
            }
        });
        let resp = client.call(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&resp[..], b"ping");
        drop(client);
        h.join().unwrap();
    }

    #[test]
    fn disconnected_server_errors() {
        let (client, server) = loopback(1);
        drop(server);
        assert_eq!(
            client.call(Bytes::from_static(b"x")),
            Err(NetError::Disconnected)
        );
    }

    #[test]
    fn concurrent_clients_multiplex() {
        let (client, server) = loopback(8);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                let _ = reply.send(req);
            }
        });
        let handles: Vec<_> = (0..8u8)
            .map(|i| {
                let c = client.clone();
                std::thread::spawn(move || {
                    for j in 0..100u8 {
                        let payload = Bytes::copy_from_slice(&[i, j]);
                        let resp = c.call(payload.clone()).unwrap();
                        assert_eq!(resp, payload, "replies route to the right caller");
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        drop(client);
        h.join().unwrap();
    }
}
