//! Transport abstraction: how request frames reach a PS server.
//!
//! The only concrete implementation here is an in-process loopback
//! (bounded crossbeam channels carrying frames with a per-call reply
//! channel), standing in for the testbed's 30 Gb intranet exactly the
//! way the simulated media stands in for Optane: the *protocol* is
//! real, the physics is modelled (the client charges virtual network
//! time per frame byte). A TCP transport would implement the same
//! trait. The [`crate::fault::FaultInjector`] composes over any
//! `Transport` to inject seeded failures between the two halves.
//!
//! Calls take an optional deadline: a request that outlives it — queue
//! saturated on send, or the response frame never arriving — fails
//! with a structured [`Error`] of kind `Timeout` instead of blocking
//! the caller forever, which is what makes retry policies possible.

use crate::error::Error;
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use std::time::{Duration, Instant};

/// A synchronous request/response transport.
pub trait Transport: Send + Sync {
    /// Send a request frame and wait for the response frame. `deadline`
    /// bounds the whole round trip; `None` waits indefinitely.
    fn call(&self, request: Bytes, deadline: Option<Duration>) -> Result<Bytes, Error>;
}

/// One in-flight call: the request and where to send the reply.
pub type Envelope = (Bytes, Sender<Bytes>);

/// Client half of the loopback transport. Cheap to clone: clones share
/// the connection (concurrent calls multiplex over the same queue).
#[derive(Clone)]
pub struct ClientTransport {
    tx: Sender<Envelope>,
}

impl Transport for ClientTransport {
    fn call(&self, request: Bytes, deadline: Option<Duration>) -> Result<Bytes, Error> {
        let (reply_tx, reply_rx) = bounded(1);
        match deadline {
            None => {
                self.tx
                    .send((request, reply_tx))
                    .map_err(|_| Error::disconnected("server channel closed"))?;
                reply_rx
                    .recv()
                    .map_err(|_| Error::disconnected("server dropped the reply channel"))
            }
            Some(limit) => {
                let start = Instant::now();
                match self.tx.send_timeout((request, reply_tx), limit) {
                    Ok(()) => {}
                    Err(SendTimeoutError::Timeout(_)) => {
                        return Err(Error::timeout(format!(
                            "request queue full for {limit:?} (server saturated)"
                        )))
                    }
                    Err(SendTimeoutError::Disconnected(_)) => {
                        return Err(Error::disconnected("server channel closed"))
                    }
                }
                let remaining = limit.saturating_sub(start.elapsed());
                match reply_rx.recv_timeout(remaining) {
                    Ok(reply) => Ok(reply),
                    Err(RecvTimeoutError::Timeout) => Err(Error::timeout(format!(
                        "no response within {limit:?} (frame dropped or server stalled)"
                    ))),
                    Err(RecvTimeoutError::Disconnected) => {
                        Err(Error::disconnected("server dropped the reply channel"))
                    }
                }
            }
        }
    }
}

/// Server half: workers pull envelopes from this queue (MPMC, so any
/// number of service threads can share it).
pub struct ServerTransport {
    rx: Receiver<Envelope>,
}

impl ServerTransport {
    /// Receive the next call; `None` when every client is gone.
    pub fn recv(&self) -> Option<Envelope> {
        self.rx.recv().ok()
    }

    /// Clone the receiving end for another worker thread.
    pub fn clone_receiver(&self) -> Receiver<Envelope> {
        self.rx.clone()
    }
}

/// Create a connected loopback pair with the given queue depth
/// (modelling the NIC ring: senders block when the server is saturated,
/// which is exactly the back-pressure a real RPC stack applies).
pub fn loopback(queue_depth: usize) -> (ClientTransport, ServerTransport) {
    let (tx, rx) = bounded(queue_depth.max(1));
    (ClientTransport { tx }, ServerTransport { rx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn echo_roundtrip() {
        let (client, server) = loopback(4);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                let _ = reply.send(req); // echo
            }
        });
        let resp = client.call(Bytes::from_static(b"ping"), None).unwrap();
        assert_eq!(&resp[..], b"ping");
        drop(client);
        h.join().unwrap();
    }

    #[test]
    fn disconnected_server_errors() {
        let (client, server) = loopback(1);
        drop(server);
        let err = client.call(Bytes::from_static(b"x"), None).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Disconnected);
    }

    #[test]
    fn deadline_expires_when_server_swallows_the_frame() {
        let (client, server) = loopback(4);
        // A server that receives but never replies: the reply channel
        // stays open (envelope kept alive), so only the deadline can
        // unblock the client.
        let h = std::thread::spawn(move || {
            let mut swallowed = Vec::new();
            while let Some(env) = server.recv() {
                swallowed.push(env);
            }
        });
        let err = client
            .call(Bytes::from_static(b"x"), Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Timeout);
        assert!(err.is_retryable());
        drop(client);
        h.join().unwrap();
    }

    #[test]
    fn deadline_expires_on_saturated_queue() {
        let (client, _server) = loopback(1);
        // Fill the queue (nobody serving), then the next send times out.
        let (reply_tx, _reply_rx) = bounded(1);
        client
            .tx
            .send((Bytes::from_static(b"a"), reply_tx))
            .unwrap();
        let err = client
            .call(Bytes::from_static(b"b"), Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Timeout);
    }

    #[test]
    fn concurrent_clients_multiplex() {
        let (client, server) = loopback(8);
        let h = std::thread::spawn(move || {
            while let Some((req, reply)) = server.recv() {
                let _ = reply.send(req);
            }
        });
        let handles: Vec<_> = (0..8u8)
            .map(|i| {
                let c = client.clone();
                std::thread::spawn(move || {
                    for j in 0..100u8 {
                        let payload = Bytes::copy_from_slice(&[i, j]);
                        let resp = c.call(payload.clone(), None).unwrap();
                        assert_eq!(resp, payload, "replies route to the right caller");
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        drop(client);
        h.join().unwrap();
    }
}
