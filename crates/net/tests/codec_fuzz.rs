//! Codec fuzzing: `Packet::decode` must never panic and must classify
//! every malformed input as a structured `Corrupt` error — truncations,
//! bit flips, and arbitrary garbage alike. Seeded proptest keeps the
//! exploration reproducible.

use bytes::{Bytes, BytesMut};
use oe_net::{Error, ErrorKind, Frame, Packet, Request, Response};
use proptest::prelude::*;

fn assert_corrupt(res: Result<Packet, Error>, what: &str) {
    match res {
        Ok(_) => {} // a mutation can cancel out or hit a valid encoding; fine
        Err(e) => assert_eq!(e.kind(), ErrorKind::Corrupt, "{what}: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        rng_algorithm: prop::test_runner::RngAlgorithm::ChaCha,
        ..ProptestConfig::default()
    })]

    /// Arbitrary bytes: decode never panics, never misclassifies.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        assert_corrupt(Packet::decode(Bytes::from(bytes)), "garbage");
    }

    /// Any prefix of a valid frame is a structured Corrupt error.
    #[test]
    fn truncation_is_structured(
        client in any::<u32>(),
        seq in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let enc = Packet::request(client, seq, Request::Pull { epoch: 0, batch: 1, keys }).encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < enc.len());
        let err = Packet::decode(enc.slice(0..cut)).expect_err("truncated must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    /// A single flipped bit anywhere in a Push frame — header, keys, or
    /// the f32 gradient payload — is caught by the frame checksum.
    #[test]
    fn bit_flip_is_corrupt(
        seq in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..16),
        grads in prop::collection::vec(any::<f32>(), 1..64),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let enc = Packet::request(7, seq, Request::Push { epoch: 0, batch: 3, keys, grads }).encode();
        let byte = flip_byte.index(enc.len());
        let mut mutated = BytesMut::from(&enc[..]);
        mutated[byte] ^= 1 << flip_bit;
        let err = Packet::decode(mutated.freeze())
            .expect_err("a flipped bit must not decode cleanly");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    /// The idempotence token round-trips exactly, and re-encoding a
    /// decoded packet reproduces the original bytes — the byte-identity
    /// the server's replay cache relies on for retried requests.
    #[test]
    fn token_and_bytes_roundtrip(
        client in 1u32..,
        seq in any::<u64>(),
        batch in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let p = Packet::request(client, seq, Request::Pull { epoch: 0, batch, keys });
        let enc = p.encode();
        let dec = Packet::decode(enc.clone()).expect("valid frame decodes");
        prop_assert_eq!(dec.client, client);
        prop_assert_eq!(dec.seq, seq);
        prop_assert_eq!(&dec, &p);
        prop_assert_eq!(dec.encode(), enc);
    }

    /// Error responses survive the wire with their kind intact, so
    /// retryability classification crosses the boundary without string
    /// matching.
    #[test]
    fn error_kind_crosses_the_wire(
        code in 0u8..5,
        message in prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
    ) {
        let kind = ErrorKind::from_code(code);
        let p = Packet::response(0, 0, Response::Error { kind, message: message.clone() });
        let dec = Packet::decode(p.encode()).unwrap();
        let Frame::Response(Response::Error { kind: back, message: msg }) = dec.frame else {
            panic!("wrong frame");
        };
        prop_assert_eq!(back, kind);
        prop_assert_eq!(msg, message);
        prop_assert_eq!(back.is_retryable(), kind.is_retryable());
    }
}
