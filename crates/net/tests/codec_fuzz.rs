//! Codec fuzzing: `Packet::decode` must never panic and must classify
//! every malformed input as a structured `Corrupt` error — truncations,
//! bit flips, and arbitrary garbage alike. The zero-copy view decoders
//! (`RequestView`, `ResponseView`) are held to the same bar *and* must
//! agree exactly with the owned decoder on every valid frame. Seeded
//! proptest keeps the exploration reproducible.

use bytes::{Bytes, BytesMut};
use oe_net::{
    validate_frame, Error, ErrorKind, Frame, Packet, Request, RequestView, Response, ResponseView,
};
use proptest::prelude::*;

fn assert_corrupt(res: Result<Packet, Error>, what: &str) {
    match res {
        Ok(_) => {} // a mutation can cancel out or hit a valid encoding; fine
        Err(e) => assert_eq!(e.kind(), ErrorKind::Corrupt, "{what}: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        rng_algorithm: prop::test_runner::RngAlgorithm::ChaCha,
        ..ProptestConfig::default()
    })]

    /// Arbitrary bytes: decode never panics, never misclassifies.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        assert_corrupt(Packet::decode(Bytes::from(bytes)), "garbage");
    }

    /// Any prefix of a valid frame is a structured Corrupt error.
    #[test]
    fn truncation_is_structured(
        client in any::<u32>(),
        seq in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..32),
        cut_frac in 0.0f64..1.0,
    ) {
        let enc = Packet::request(client, seq, Request::Pull { epoch: 0, batch: 1, keys }).encode();
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < enc.len());
        let err = Packet::decode(enc.slice(0..cut)).expect_err("truncated must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    /// A single flipped bit anywhere in a Push frame — header, keys, or
    /// the f32 gradient payload — is caught by the frame checksum.
    #[test]
    fn bit_flip_is_corrupt(
        seq in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..16),
        grads in prop::collection::vec(any::<f32>(), 1..64),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let enc = Packet::request(7, seq, Request::Push { epoch: 0, batch: 3, keys, grads }).encode();
        let byte = flip_byte.index(enc.len());
        let mut mutated = BytesMut::from(&enc[..]);
        mutated[byte] ^= 1 << flip_bit;
        let err = Packet::decode(mutated.freeze())
            .expect_err("a flipped bit must not decode cleanly");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
    }

    /// The idempotence token round-trips exactly, and re-encoding a
    /// decoded packet reproduces the original bytes — the byte-identity
    /// the server's replay cache relies on for retried requests.
    #[test]
    fn token_and_bytes_roundtrip(
        client in 1u32..,
        seq in any::<u64>(),
        batch in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let p = Packet::request(client, seq, Request::Pull { epoch: 0, batch, keys });
        let enc = p.encode();
        let dec = Packet::decode(enc.clone()).expect("valid frame decodes");
        prop_assert_eq!(dec.client, client);
        prop_assert_eq!(dec.seq, seq);
        prop_assert_eq!(&dec, &p);
        prop_assert_eq!(dec.encode(), enc);
    }

    /// Error responses survive the wire with their kind intact, so
    /// retryability classification crosses the boundary without string
    /// matching.
    #[test]
    fn error_kind_crosses_the_wire(
        code in 0u8..5,
        message in prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
    ) {
        let kind = ErrorKind::from_code(code);
        let p = Packet::response(0, 0, Response::Error { kind, message: message.clone() });
        let dec = Packet::decode(p.encode()).unwrap();
        let Frame::Response(Response::Error { kind: back, message: msg }) = dec.frame else {
            panic!("wrong frame");
        };
        prop_assert_eq!(back, kind);
        prop_assert_eq!(msg, message);
        prop_assert_eq!(back.is_retryable(), kind.is_retryable());
    }

    /// Arbitrary bytes through the zero-copy path: frame validation
    /// plus both view decoders never panic and never misclassify.
    #[test]
    fn garbage_never_panics_views(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let buf = Bytes::from(bytes);
        match validate_frame(&buf) {
            Err(e) => prop_assert_eq!(e.kind(), ErrorKind::Corrupt),
            Ok(meta) => {
                if let Err(e) = RequestView::decode(meta, &buf) {
                    prop_assert_eq!(e.kind(), ErrorKind::Corrupt);
                }
                if let Err(e) = ResponseView::decode(meta, &buf) {
                    prop_assert_eq!(e.kind(), ErrorKind::Corrupt);
                }
            }
        }
    }

    /// The borrowed pull/push view and the borrowed encoders agree
    /// exactly with the owned codec: `Packet::encode_pull/encode_push`
    /// emit byte-identical frames, and `RequestView` reads back exactly
    /// the keys and gradients the owned decoder materializes.
    #[test]
    fn views_agree_with_owned_decode(
        client in 1u32..,
        seq in any::<u64>(),
        epoch in any::<u64>(),
        batch in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 0..48),
        grads in prop::collection::vec(any::<f32>(), 0..96),
    ) {
        let owned_pull = Packet::request(client, seq, Request::Pull {
            epoch, batch, keys: keys.clone(),
        }).encode();
        let borrowed_pull = Packet::encode_pull(client, seq, epoch, batch, &keys);
        prop_assert_eq!(&owned_pull, &borrowed_pull, "pull encoders must be byte-identical");

        let meta = validate_frame(&owned_pull).expect("valid frame");
        prop_assert_eq!((meta.client, meta.seq), (client, seq));
        match RequestView::decode(meta, &owned_pull).expect("view decodes") {
            RequestView::Pull { epoch: e, batch: b, keys: kv } => {
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(b, batch);
                prop_assert_eq!(kv.len(), keys.len());
                let mut out = Vec::new();
                kv.extend_into(&mut out);
                prop_assert_eq!(&out, &keys);
            }
            other => prop_assert!(false, "wrong view: {other:?}"),
        }

        let owned_push = Packet::request(client, seq, Request::Push {
            epoch, batch, keys: keys.clone(), grads: grads.clone(),
        }).encode();
        let borrowed_push = Packet::encode_push(client, seq, epoch, batch, &keys, &grads);
        prop_assert_eq!(&owned_push, &borrowed_push, "push encoders must be byte-identical");
        let meta = validate_frame(&owned_push).expect("valid frame");
        match RequestView::decode(meta, &owned_push).expect("view decodes") {
            RequestView::Push { keys: kv, grads: gv, .. } => {
                let collected: Vec<u64> = kv.iter().collect();
                prop_assert_eq!(&collected, &keys);
                let gbits: Vec<u32> = gv.iter().map(f32::to_bits).collect();
                let want: Vec<u32> = grads.iter().map(|g| g.to_bits()).collect();
                prop_assert_eq!(gbits, want, "gradients must survive bit-exactly");
            }
            other => prop_assert!(false, "wrong view: {other:?}"),
        }
    }

    /// The borrowed weights-response encoder and view agree with the
    /// owned codec, cost charges included.
    #[test]
    fn weights_response_view_roundtrips(
        client in 1u32..,
        seq in any::<u64>(),
        weights in prop::collection::vec(any::<f32>(), 0..128),
    ) {
        let cost = oe_simdevice::Cost::new();
        let owned = Packet::response(client, seq, Response::Weights {
            weights: weights.clone(), cost: cost.clone(),
        }).encode();
        let borrowed = Packet::encode_weights_response(client, seq, &weights, &cost);
        prop_assert_eq!(&owned, &borrowed, "weights encoders must be byte-identical");
        let meta = validate_frame(&owned).expect("valid frame");
        match ResponseView::decode(meta, &owned).expect("view decodes") {
            ResponseView::Weights { weights: wv, cost: c } => {
                let wbits: Vec<u32> = wv.iter().map(f32::to_bits).collect();
                let want: Vec<u32> = weights.iter().map(|w| w.to_bits()).collect();
                prop_assert_eq!(wbits, want);
                prop_assert_eq!(c, cost);
            }
            other => prop_assert!(false, "wrong view: {other:?}"),
        }
    }

    /// A corrupted element-count prefix (pointing past the body) is a
    /// structured error from the view decoder, after re-sealing the
    /// checksum so only the length lies.
    #[test]
    fn view_rejects_lying_length_prefixes(
        keys in prop::collection::vec(any::<u64>(), 1..16),
        lie in 64u32..u32::MAX,
    ) {
        let enc = Packet::request(9, 9, Request::Pull {
            epoch: 0, batch: 1, keys,
        }).encode();
        let mut raw = BytesMut::from(&enc[..]);
        // Body layout: epoch u64 | batch u64 | count u32 | keys…;
        // the count sits 16 bytes into the body (header is 28 bytes).
        let count_at = 28 + 16;
        raw[count_at..count_at + 4].copy_from_slice(&lie.to_le_bytes());
        reseal(&mut raw);
        let buf = raw.freeze();
        let meta = validate_frame(&buf).expect("checksum was re-sealed");
        let err = RequestView::decode(meta, &buf).expect_err("lying count must not decode");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
        let err = Packet::decode(buf).expect_err("owned decoder agrees");
        prop_assert_eq!(err.kind(), ErrorKind::Corrupt);
    }
}

/// Recompute and patch the FNV-1a frame checksum after a deliberate
/// body mutation, so tests can target the *structural* validation
/// beneath the checksum.
fn reseal(raw: &mut BytesMut) {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for &b in raw[..20].iter().chain(raw[28..].iter()) {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    raw[20..28].copy_from_slice(&h.to_le_bytes());
}
