//! The framework-integration surface: an embedding layer over any PS
//! engine, mirroring the paper's TensorFlow/Keras operators
//! (`PullWeights`, `PushGradients`, `UpdateWeights`, §V-C).
//!
//! A training framework sees three moments per batch:
//!
//! ```text
//! let act  = layer.forward(batch_id, &batch_keys, &mut cost); // PullWeights
//! /* … model forward/backward produces d_emb … */
//! layer.backward(act, &d_emb, &mut cost);                     // PushGradients
//! ```
//!
//! The layer deduplicates keys per batch, gathers per-sample embedding
//! tensors from the pulled unique weights, scatter-adds the per-sample
//! gradients back per key, and triggers the pipelined maintenance at the
//! pull/compute boundary — all the glue a Keras `Embedding` subclass
//! needs, framework-agnostic.

use oe_core::engine::PsEngine;
use oe_core::{BatchId, Key};
use oe_simdevice::Cost;

/// The activation produced by [`EmbeddingLayer::forward`]: per-sample
/// embedding tensors plus the bookkeeping needed to route gradients back.
pub struct EmbeddingActivation {
    /// Batch these activations belong to.
    pub batch: BatchId,
    /// Deduplicated, sorted keys pulled from the PS.
    pub unique_keys: Vec<Key>,
    /// Pulled weights, `unique_keys.len() × dim`.
    pub unique_weights: Vec<f32>,
    /// Gathered tensor: `samples × fields × dim`.
    pub embeddings: Vec<f32>,
    /// For each (sample, field): index into `unique_keys`.
    gather: Vec<u32>,
    fields: usize,
    dim: usize,
}

impl EmbeddingActivation {
    /// Embedding tensor of one sample (`fields × dim`).
    pub fn sample(&self, i: usize) -> &[f32] {
        let w = self.fields * self.dim;
        &self.embeddings[i * w..(i + 1) * w]
    }

    /// Number of samples gathered.
    pub fn samples(&self) -> usize {
        self.gather.len() / self.fields.max(1)
    }
}

/// An embedding layer bound to a PS engine.
pub struct EmbeddingLayer<'e> {
    engine: &'e dyn PsEngine,
    fields: usize,
    dim: usize,
}

impl<'e> EmbeddingLayer<'e> {
    /// A layer of `fields` sparse features over `engine`.
    pub fn new(engine: &'e dyn PsEngine, fields: usize) -> Self {
        Self {
            dim: engine.dim(),
            engine,
            fields,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// PullWeights + gather: fetch this batch's embeddings. Each sample
    /// contributes `fields` keys. Also runs the engine's deferred
    /// maintenance (the pipeline boundary) so the activation is ready to
    /// train on.
    pub fn forward(
        &self,
        batch: BatchId,
        sample_keys: &[Vec<Key>],
        cost: &mut Cost,
    ) -> EmbeddingActivation {
        let mut unique_keys: Vec<Key> = sample_keys.iter().flatten().copied().collect();
        unique_keys.sort_unstable();
        unique_keys.dedup();

        let mut unique_weights = Vec::with_capacity(unique_keys.len() * self.dim);
        self.engine
            .pull(&unique_keys, batch, &mut unique_weights, cost);
        self.engine.end_pull_phase(batch);

        let mut gather = Vec::with_capacity(sample_keys.len() * self.fields);
        let mut embeddings = Vec::with_capacity(sample_keys.len() * self.fields * self.dim);
        for keys in sample_keys {
            assert_eq!(keys.len(), self.fields, "fields per sample");
            for k in keys {
                let idx = unique_keys.binary_search(k).expect("key pulled") as u32;
                gather.push(idx);
                let s = idx as usize * self.dim;
                embeddings.extend_from_slice(&unique_weights[s..s + self.dim]);
            }
        }
        EmbeddingActivation {
            batch,
            unique_keys,
            unique_weights,
            embeddings,
            gather,
            fields: self.fields,
            dim: self.dim,
        }
    }

    /// PushGradients: scatter-add per-sample embedding gradients
    /// (`samples × fields × dim`, matching [`EmbeddingActivation::embeddings`])
    /// back per unique key and push to the PS, which applies its
    /// optimizer (UpdateWeights).
    pub fn backward(&self, act: &EmbeddingActivation, d_embeddings: &[f32], cost: &mut Cost) {
        assert_eq!(
            d_embeddings.len(),
            act.embeddings.len(),
            "gradient tensor shape"
        );
        let mut grads = vec![0.0f32; act.unique_keys.len() * self.dim];
        for (pos, &idx) in act.gather.iter().enumerate() {
            let src = pos * self.dim;
            let dst = idx as usize * self.dim;
            for d in 0..self.dim {
                grads[dst + d] += d_embeddings[src + d];
            }
        }
        self.engine.push(&act.unique_keys, &grads, act.batch, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    const DIM: usize = 4;

    fn node() -> PsNode {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        PsNode::new(cfg)
    }

    #[test]
    fn forward_gathers_per_sample() {
        let n = node();
        let layer = EmbeddingLayer::new(&n, 2);
        let samples = vec![vec![5u64, 9], vec![9, 5]];
        let mut cost = Cost::new();
        let act = layer.forward(1, &samples, &mut cost);
        assert_eq!(act.unique_keys, vec![5, 9]);
        assert_eq!(act.samples(), 2);
        // Sample 0 = [emb5, emb9]; sample 1 = [emb9, emb5].
        let e5 = &act.unique_weights[0..DIM];
        let e9 = &act.unique_weights[DIM..2 * DIM];
        assert_eq!(&act.sample(0)[..DIM], e5);
        assert_eq!(&act.sample(0)[DIM..], e9);
        assert_eq!(&act.sample(1)[..DIM], e9);
        assert_eq!(&act.sample(1)[DIM..], e5);
    }

    #[test]
    fn backward_aggregates_duplicate_keys() {
        let n = node();
        let layer = EmbeddingLayer::new(&n, 2);
        // Key 7 appears in both samples: its gradients must sum.
        let samples = vec![vec![7u64, 1], vec![7, 2]];
        let mut cost = Cost::new();
        let act = layer.forward(1, &samples, &mut cost);
        let before7 = n.read_weights(7).unwrap();
        // d_emb: 1.0 for key 7 in sample 0, 2.0 for key 7 in sample 1,
        // zeros elsewhere.
        let mut d = vec![0.0f32; act.embeddings.len()];
        d[0..DIM].copy_from_slice(&[1.0; DIM]); // sample 0 field 0 (key 7)
        d[2 * DIM..3 * DIM].copy_from_slice(&[2.0; DIM]); // sample 1 field 0 (key 7)
        layer.backward(&act, &d, &mut cost);
        let after7 = n.read_weights(7).unwrap();
        for i in 0..DIM {
            assert!(
                (after7[i] - (before7[i] - 3.0)).abs() < 1e-6,
                "SGD lr=1 applied the summed gradient once"
            );
        }
        // Untouched-gradient keys moved by zero.
        assert_eq!(n.read_weights(1).unwrap(), {
            let act_idx = act.unique_keys.binary_search(&1).unwrap();
            act.unique_weights[act_idx * DIM..(act_idx + 1) * DIM].to_vec()
        });
    }

    #[test]
    fn layer_matches_manual_engine_calls() {
        // The layer is pure glue: a manual pull/push sequence with the
        // same aggregation must produce identical weights.
        let n1 = node();
        let n2 = node();
        let layer = EmbeddingLayer::new(&n1, 2);
        let samples = vec![vec![1u64, 2], vec![2, 3]];
        let mut cost = Cost::new();
        let act = layer.forward(1, &samples, &mut cost);
        let d = vec![0.5f32; act.embeddings.len()];
        layer.backward(&act, &d, &mut cost);

        // Manual: unique keys [1,2,3]; key 2 referenced twice → grad 1.0.
        let keys = [1u64, 2, 3];
        let mut out = Vec::new();
        n2.pull(&keys, 1, &mut out, &mut cost);
        n2.end_pull_phase(1);
        let mut grads = vec![0.5f32; 3 * DIM];
        for d in 0..DIM {
            grads[DIM + d] = 1.0;
        }
        n2.push(&keys, &grads, 1, &mut cost);
        for k in 1..=3u64 {
            assert_eq!(n1.read_weights(k), n2.read_weights(k), "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "fields per sample")]
    fn wrong_field_count_panics() {
        let n = node();
        let layer = EmbeddingLayer::new(&n, 3);
        let mut cost = Cost::new();
        layer.forward(1, &[vec![1, 2]], &mut cost);
    }
}
