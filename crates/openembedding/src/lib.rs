//! # OpenEmbedding-RS
//!
//! A from-scratch Rust reproduction of **OpenEmbedding** (Chen et al.,
//! ICDE 2023): a distributed parameter server for deep learning
//! recommendation models (DLRM) using persistent memory.
//!
//! ```text
//!  GPU workers ──pull──▶ ┌────────────── PS node ──────────────┐
//!   (DeepFM)   ◀─weights─│ DRAM hash index ── DRAM cache (LRU) │
//!              ──push───▶│        │   pipelined maintenance    │
//!                        │        ▼            ▼               │
//!                        │   PMem pool  ◀─ flush/evict/ckpt    │
//!                        └─────── Checkpointed Batch ID ───────┘
//! ```
//!
//! ## Quick start
//!
//! ```
//! use openembedding::prelude::*;
//!
//! // A PMem-backed PS node with a 1 MiB DRAM cache, dim-8 embeddings.
//! let node = PsNode::new(NodeConfig::small(8));
//! let mut weights = Vec::new();
//! let mut cost = Cost::new();
//!
//! // Batch 1: pull two embeddings (initialized on first touch)…
//! node.pull(&[42, 7], 1, &mut weights, &mut cost);
//! node.end_pull_phase(1); // pipelined cache maintenance
//! // …train… then push the gradients back.
//! let grads = vec![0.01_f32; 2 * 8];
//! node.push(&[42, 7], &grads, 1, &mut cost);
//!
//! // Lightweight batch-aware checkpoint: near-zero cost to request,
//! // committed during the next batch's cache maintenance.
//! node.request_checkpoint(1);
//! node.pull(&[42], 2, &mut weights, &mut cost);
//! node.end_pull_phase(2);
//! assert_eq!(node.committed_checkpoint(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`simdevice`] | simulated DRAM/PMem/SSD: timing models, crash-consistent media |
//! | [`pmem`] | PMDK-style pool: slot allocator, persistent root, recovery scan |
//! | [`cache`] | DRAM cache primitives: arena, tagged pointers, LRU, version chains |
//! | [`core`] | the PS node (Algorithms 1 & 2), checkpointing, recovery, optimizers |
//! | [`cluster`] | skew-aware placement plane: epoch-versioned routing, live shard migration, rebalancing |
//! | [`baselines`] | DRAM-PS, Ori-Cache, PMem-Hash, TF-PS, incremental checkpointing |
//! | [`workload`] | skew models fitted to the paper's trace, Criteo synth, analysis |
//! | [`train`] | synchronous-training simulator, DeepFM, failure injection, cost model |
//! | [`net`] | wire protocol, fault-injecting transports, retry/deadline, checkpoint failover |
//! | [`pool`] | disaggregated PMem: shared remote pool, fabric cost model, pool-resident failover |
//! | [`telemetry`] | lock-free latency histograms, metric registry, phase spans, text exposition |

pub mod layer;

pub use oe_baselines as baselines;
pub use oe_cache as cache;
pub use oe_cluster as cluster;
pub use oe_core as core;
pub use oe_net as net;
pub use oe_pmem as pmem;
pub use oe_pool as pool;
pub use oe_serve as serve;
pub use oe_simdevice as simdevice;
pub use oe_telemetry as telemetry;
pub use oe_train as train;
pub use oe_workload as workload;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use crate::layer::{EmbeddingActivation, EmbeddingLayer};
    pub use oe_baselines::{CkptDevice, DramPs, IncrementalCkpt, OriCache, PmemHash, TfPs};
    pub use oe_cluster::{
        MigrationSpec, NodeClass, PlacedCluster, PlacementTable, RebalanceConfig,
    };
    pub use oe_core::engine::PsEngine;
    pub use oe_core::{
        BatchId, CheckpointScheduler, Cluster, DramStore, Key, LocalPmem, NodeConfig, Optimizer,
        OptimizerKind, PsNode, StorageBackend,
    };
    pub use oe_net::{
        loopback, CheckpointReplica, FaultInjector, FaultSpec, NetConfig, PsClient, PsServer,
        RemotePs, RetryPolicy,
    };
    pub use oe_pool::{FabricConfig, PoolStandby, RemotePool, SharedPool};
    pub use oe_serve::{
        load_image, recall_at_k, save_image, AnnConfig, CheckpointPublisher, ExactScan,
        LshRetriever, Retriever, ServingNode, Snapshot, SnapshotHandle, SnapshotReader,
    };
    pub use oe_simdevice::{Cost, CostKind, DeviceTiming, Media, MediaConfig, VirtualClock};
    pub use oe_telemetry::{Histogram, HistogramSnapshot, Phase, PhaseTimes, Registry};
    pub use oe_train::model::{DeepFm, DeepFmConfig};
    pub use oe_train::{
        CloudCostModel, CoherenceSource, GpuModel, NetModel, PipelineConfig, PipelineReport,
        PipelinedTrainer, PsDeployment, SyncTrainer, TrainMode, TrainReport, TrainerConfig,
    };
    pub use oe_workload::{CriteoSynth, SkewModel, WorkloadGen, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let node = PsNode::new(NodeConfig::small(4));
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&[1], 1, &mut out, &mut cost);
        assert_eq!(out.len(), 4);
        assert_eq!(node.name(), "PMem-OE");
    }
}
