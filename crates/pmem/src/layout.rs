//! On-media layout of the pool: root object and slot headers.
//!
//! ```text
//! offset 0                64                64 + slot_bytes
//! ┌───────────────────┬──────────────────┬──────────────────┬─ ─ ─
//! │ root (1 line)     │ slot 0           │ slot 1           │ ...
//! │ magic,            │ ┌header┐┌payload┐│                  │
//! │ payload_bytes,    │ │ 24 B ││ N*4 B ││                  │
//! │ ckpt_batch_id,    │ └──────┘└───────┘│                  │
//! │ slots_high_water  │ (padded to 64 B) │                  │
//! └───────────────────┴──────────────────┴──────────────────┴─ ─ ─
//! ```
//!
//! Slot header fields are written little-endian; the checksum covers
//! key ‖ version ‖ payload so torn payloads are detectable even if a buggy
//! ordering marked the slot `VALID`.

/// Size of the persistent root object (one cache line).
pub const ROOT_BYTES: u64 = 64;

/// Magic value identifying an initialized pool.
pub const POOL_MAGIC: u64 = 0x4F45_504D_0001_u64; // "OEPM" v1

/// Serialized slot header size in bytes.
pub const HEADER_BYTES: u64 = 24;

/// Offsets within the root line.
pub(crate) mod root_off {
    pub const MAGIC: u64 = 0;
    pub const PAYLOAD_BYTES: u64 = 8;
    pub const CKPT_ID: u64 = 16;
    pub const HIGH_WATER: u64 = 24;
}

/// Lifecycle state of a slot, stored durably in its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SlotState {
    /// Slot is unused (or retired); ignored by recovery.
    Free = 0,
    /// Slot holds a fully persisted entry.
    Valid = 0xA11D,
}

impl SlotState {
    /// Decode from the raw header word; anything unrecognized is `Free`
    /// (a torn header can only produce garbage, which must read as free).
    pub fn from_raw(raw: u32) -> Self {
        if raw == SlotState::Valid as u32 {
            SlotState::Valid
        } else {
            SlotState::Free
        }
    }
}

/// Decoded slot header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotHeader {
    /// Slot lifecycle state.
    pub state: SlotState,
    /// FNV-1a checksum of key ‖ version ‖ payload (truncated to 32 bits).
    pub checksum: u32,
    /// Embedding entry key.
    pub key: u64,
    /// Batch id of the last update reflected in the payload.
    pub version: u64,
}

impl SlotHeader {
    /// Serialize into a 24-byte buffer.
    pub fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut b = [0u8; HEADER_BYTES as usize];
        b[0..4].copy_from_slice(&(self.state as u32).to_le_bytes());
        b[4..8].copy_from_slice(&self.checksum.to_le_bytes());
        b[8..16].copy_from_slice(&self.key.to_le_bytes());
        b[16..24].copy_from_slice(&self.version.to_le_bytes());
        b
    }

    /// Decode from a 24-byte buffer.
    pub fn decode(b: &[u8]) -> Self {
        assert!(b.len() >= HEADER_BYTES as usize);
        Self {
            state: SlotState::from_raw(u32::from_le_bytes(b[0..4].try_into().unwrap())),
            checksum: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            key: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            version: u64::from_le_bytes(b[16..24].try_into().unwrap()),
        }
    }
}

/// FNV-1a over key ‖ version ‖ payload bytes, folded to 32 bits.
pub fn payload_checksum(key: u64, version: u64, payload: &[u8]) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut step = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    };
    for b in key.to_le_bytes() {
        step(b);
    }
    for b in version.to_le_bytes() {
        step(b);
    }
    for &b in payload {
        step(b);
    }
    (h ^ (h >> 32)) as u32
}

/// Convert a payload of `f32` weights to little-endian bytes (into `out`).
pub fn f32s_to_bytes(src: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(src.len() * 4);
    for &v in src {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Convert little-endian bytes back to `f32`s (into `out`).
pub fn bytes_to_f32s(src: &[u8], out: &mut [f32]) {
    assert_eq!(src.len(), out.len() * 4, "payload size mismatch");
    for (i, chunk) in src.chunks_exact(4).enumerate() {
        out[i] = f32::from_le_bytes(chunk.try_into().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = SlotHeader {
            state: SlotState::Valid,
            checksum: 0xDEADBEEF,
            key: 42,
            version: 7,
        };
        let enc = h.encode();
        assert_eq!(SlotHeader::decode(&enc), h);
    }

    #[test]
    fn garbage_state_reads_as_free() {
        assert_eq!(SlotState::from_raw(0), SlotState::Free);
        assert_eq!(SlotState::from_raw(0xA11D), SlotState::Valid);
        assert_eq!(SlotState::from_raw(12345), SlotState::Free);
    }

    #[test]
    fn checksum_sensitive_to_all_inputs() {
        let p = [1u8, 2, 3, 4];
        let base = payload_checksum(1, 1, &p);
        assert_ne!(base, payload_checksum(2, 1, &p));
        assert_ne!(base, payload_checksum(1, 2, &p));
        assert_ne!(base, payload_checksum(1, 1, &[1, 2, 3, 5]));
        assert_eq!(base, payload_checksum(1, 1, &p));
    }

    #[test]
    fn f32_conversion_roundtrip() {
        let vals = [1.5f32, -2.25, 0.0, f32::MIN_POSITIVE, 1e30];
        let mut bytes = Vec::new();
        f32s_to_bytes(&vals, &mut bytes);
        assert_eq!(bytes.len(), 20);
        let mut back = [0f32; 5];
        bytes_to_f32s(&bytes, &mut back);
        assert_eq!(vals, back);
    }
}
