//! # oe-pmem
//!
//! A PMDK-`libpmemobj`-style persistent-memory pool, specialised for DLRM
//! embedding entries, built on the crash-consistent simulated media from
//! [`oe_simdevice`].
//!
//! The paper stores every embedding entry persistently in PMem and relies on
//! the "underlying space manager" for two properties (§V-B/C):
//!
//! 1. **Crash-safe slot writes.** A slot becomes visible to recovery only
//!    after its payload is durably fenced ([`pool::PmemPool::write_slot`]
//!    writes payload → flush → fence → set `VALID` state → flush → fence).
//!    A checksum over (key, version, payload) additionally detects torn
//!    writes from buggy orderings — exercised by the property tests.
//! 2. **Checkpoint-protected versions.** Slots are written out-of-place;
//!    the space of superseded versions is recycled only when the owning
//!    index layer says a checkpoint no longer needs them (the free/alloc
//!    API here, the version-chain pruning policy in `oe-core`).
//!
//! The pool also owns the **persistent root object** holding the
//! *Checkpointed Batch ID* — the single 8-byte value whose atomic durable
//! update commits a batch-aware checkpoint (Algorithm 2, line 25).

pub mod layout;
pub mod pool;
pub mod scan;

pub use layout::{SlotHeader, SlotState, HEADER_BYTES, ROOT_BYTES};
pub use pool::{PmemPool, PoolConfig, SlotId};
pub use scan::{RecoveredSlot, ScanReport};
