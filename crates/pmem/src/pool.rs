//! The persistent pool: space manager + crash-safe slot I/O + root updates.

use crate::layout::{
    bytes_to_f32s, f32s_to_bytes, payload_checksum, root_off, SlotHeader, SlotState, HEADER_BYTES,
    POOL_MAGIC, ROOT_BYTES,
};
use oe_simdevice::{Cost, Media, MediaConfig};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

/// Identifies a slot within a pool (dense index, not a byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u64);

/// Pool creation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Payload size per slot in bytes (embedding dim × 4 × (1 + optimizer
    /// state vectors)).
    pub payload_bytes: usize,
    /// Initial media capacity in bytes.
    pub capacity: usize,
}

impl PoolConfig {
    /// Config for embedding entries of `dim` `f32` weights plus
    /// `opt_slots` optimizer state vectors of the same dim.
    pub fn for_embedding(dim: usize, opt_slots: usize, capacity: usize) -> Self {
        Self {
            payload_bytes: dim * 4 * (1 + opt_slots),
            capacity,
        }
    }
}

/// How many slots of high-water headroom to persist at a time; amortizes
/// the root update that bounds the recovery scan.
const HIGH_WATER_CHUNK: u64 = 1024;

struct AllocState {
    free: Vec<SlotId>,
    next: u64,
    /// Durably recorded scan bound (`next` rounded up to the chunk).
    persisted_high_water: u64,
}

/// A persistent-memory pool of fixed-size embedding slots. See crate docs
/// for the crash-safety protocol.
pub struct PmemPool {
    media: Arc<Media>,
    payload_bytes: usize,
    slot_bytes: u64,
    alloc: Mutex<AllocState>,
}

thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

impl PmemPool {
    /// Create and initialize a fresh pool on new PMem media.
    pub fn create(cfg: PoolConfig, cost: &mut Cost) -> Self {
        let media = Arc::new(Media::new(MediaConfig::pmem(cfg.capacity)));
        Self::create_on(media, cfg.payload_bytes, cost)
    }

    /// Create a pool on existing (empty) media.
    pub fn create_on(media: Arc<Media>, payload_bytes: usize, cost: &mut Cost) -> Self {
        let slot_bytes = (HEADER_BYTES + payload_bytes as u64).div_ceil(64) * 64;
        let mut root = [0u8; ROOT_BYTES as usize];
        root[root_off::MAGIC as usize..][..8].copy_from_slice(&POOL_MAGIC.to_le_bytes());
        root[root_off::PAYLOAD_BYTES as usize..][..8]
            .copy_from_slice(&(payload_bytes as u64).to_le_bytes());
        root[root_off::CKPT_ID as usize..][..8].copy_from_slice(&0u64.to_le_bytes());
        root[root_off::HIGH_WATER as usize..][..8].copy_from_slice(&0u64.to_le_bytes());
        media.write(0, &root, cost);
        media.persist(0, ROOT_BYTES, cost);
        Self {
            media,
            payload_bytes,
            slot_bytes,
            alloc: Mutex::new(AllocState {
                free: Vec::new(),
                next: 0,
                persisted_high_water: 0,
            }),
        }
    }

    /// The underlying media (to crash it in tests / hand to recovery).
    pub fn media(&self) -> &Arc<Media> {
        &self.media
    }

    /// Payload size per slot in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Payload size per slot in `f32`s.
    pub fn payload_f32s(&self) -> usize {
        self.payload_bytes / 4
    }

    /// Total on-media footprint of one slot, including header and padding.
    pub fn slot_bytes(&self) -> u64 {
        self.slot_bytes
    }

    /// Number of slot positions ever allocated (scan bound).
    pub fn high_water(&self) -> u64 {
        self.alloc.lock().next
    }

    /// Number of slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.alloc.lock().free.len()
    }

    /// Number of live (allocated, not freed) slots.
    pub fn live_slots(&self) -> u64 {
        let g = self.alloc.lock();
        g.next - g.free.len() as u64
    }

    pub(crate) fn slot_offset(&self, id: SlotId) -> u64 {
        ROOT_BYTES + id.0 * self.slot_bytes
    }

    /// Allocate a slot (reuses freed space first). Volatile bookkeeping,
    /// except when the high-water mark must be durably extended.
    pub fn alloc(&self, cost: &mut Cost) -> SlotId {
        let mut g = self.alloc.lock();
        if let Some(id) = g.free.pop() {
            return id;
        }
        let id = SlotId(g.next);
        g.next += 1;
        if g.next > g.persisted_high_water {
            g.persisted_high_water = (g.next).div_ceil(HIGH_WATER_CHUNK) * HIGH_WATER_CHUNK;
            let hw = g.persisted_high_water;
            drop(g);
            self.media
                .write(root_off::HIGH_WATER, &hw.to_le_bytes(), cost);
            self.media.persist(root_off::HIGH_WATER, 8, cost);
        }
        id
    }

    /// Return a slot to the free list, durably marking it `Free` so a
    /// recovery scan cannot resurrect stale contents.
    pub fn free(&self, id: SlotId, cost: &mut Cost) {
        let off = self.slot_offset(id);
        self.media
            .write(off, &(SlotState::Free as u32).to_le_bytes(), cost);
        self.media.persist(off, 4, cost);
        self.alloc.lock().free.push(id);
    }

    /// Crash-safe full-slot write:
    /// 1. header (state `Free`) + payload → flush → fence,
    /// 2. state `Valid` → flush → fence.
    ///
    /// After step 2 the slot is recoverable; a crash before it leaves the
    /// slot invisible (state reads `Free` or checksum mismatches).
    pub fn write_slot(&self, id: SlotId, key: u64, version: u64, payload: &[f32], cost: &mut Cost) {
        assert_eq!(
            payload.len() * 4,
            self.payload_bytes,
            "payload size mismatch for pool"
        );
        let off = self.slot_offset(id);
        SCRATCH.with(|s| {
            let mut buf = s.borrow_mut();
            f32s_to_bytes(payload, &mut buf);
            let checksum = payload_checksum(key, version, &buf);
            let header = SlotHeader {
                state: SlotState::Free, // not yet visible
                checksum,
                key,
                version,
            };
            // Single contiguous write of header + payload.
            let mut rec = Vec::with_capacity(HEADER_BYTES as usize + buf.len());
            rec.extend_from_slice(&header.encode());
            rec.extend_from_slice(&buf);
            self.media.write(off, &rec, cost);
            self.media.persist(off, rec.len() as u64, cost);
            // Commit: flip the state word.
            self.media
                .write(off, &(SlotState::Valid as u32).to_le_bytes(), cost);
            self.media.persist(off, 4, cost);
        });
    }

    /// Read a slot header.
    pub fn read_header(&self, id: SlotId, cost: &mut Cost) -> SlotHeader {
        let mut buf = [0u8; HEADER_BYTES as usize];
        self.media.read(self.slot_offset(id), &mut buf, cost);
        SlotHeader::decode(&buf)
    }

    /// Read a slot's payload into `out` (must be `payload_f32s` long),
    /// verifying state and checksum. Returns the header on success.
    pub fn read_slot(&self, id: SlotId, out: &mut [f32], cost: &mut Cost) -> Option<SlotHeader> {
        assert_eq!(out.len(), self.payload_f32s());
        let off = self.slot_offset(id);
        SCRATCH.with(|s| {
            let mut buf = s.borrow_mut();
            buf.clear();
            buf.resize(HEADER_BYTES as usize + self.payload_bytes, 0);
            self.media.read(off, &mut buf, cost);
            let header = SlotHeader::decode(&buf);
            if header.state != SlotState::Valid {
                return None;
            }
            let payload = &buf[HEADER_BYTES as usize..];
            if payload_checksum(header.key, header.version, payload) != header.checksum {
                return None;
            }
            bytes_to_f32s(payload, out);
            Some(header)
        })
    }

    /// Durably read the Checkpointed Batch ID from the root.
    pub fn checkpoint_id(&self, cost: &mut Cost) -> u64 {
        let mut b = [0u8; 8];
        self.media.read(root_off::CKPT_ID, &mut b, cost);
        u64::from_le_bytes(b)
    }

    /// Atomically (8-byte, single-line) persist a new Checkpointed Batch
    /// ID — the commit point of a batch-aware checkpoint (Algorithm 2,
    /// line 25).
    pub fn set_checkpoint_id(&self, id: u64, cost: &mut Cost) {
        self.media.write(root_off::CKPT_ID, &id.to_le_bytes(), cost);
        self.media.persist(root_off::CKPT_ID, 8, cost);
    }

    /// Reconstruct pool handles over recovered media (after
    /// [`oe_simdevice::Media::crash`] + [`oe_simdevice::Media::from_crash`]).
    /// Reads the root; the caller then runs [`crate::scan::scan`] to
    /// rebuild the free list and index. Returns `None` if the magic is
    /// absent (media never initialized / root lost).
    pub fn open(media: Arc<Media>, cost: &mut Cost) -> Option<Self> {
        let mut root = [0u8; ROOT_BYTES as usize];
        if media.len() < ROOT_BYTES as usize {
            return None;
        }
        media.read(0, &mut root, cost);
        let magic = u64::from_le_bytes(root[root_off::MAGIC as usize..][..8].try_into().unwrap());
        if magic != POOL_MAGIC {
            return None;
        }
        let payload_bytes = u64::from_le_bytes(
            root[root_off::PAYLOAD_BYTES as usize..][..8]
                .try_into()
                .unwrap(),
        ) as usize;
        let high_water = u64::from_le_bytes(
            root[root_off::HIGH_WATER as usize..][..8]
                .try_into()
                .unwrap(),
        );
        let slot_bytes = (HEADER_BYTES + payload_bytes as u64).div_ceil(64) * 64;
        Some(Self {
            media,
            payload_bytes,
            slot_bytes,
            alloc: Mutex::new(AllocState {
                free: Vec::new(),
                next: high_water,
                persisted_high_water: high_water,
            }),
        })
    }

    /// Install the free list discovered by a recovery scan.
    pub(crate) fn install_free_list(&self, free: Vec<SlotId>) {
        self.alloc.lock().free = free;
    }

    /// Snapshot of the current free list (slot accounting checks: the
    /// crash-point harness asserts free ∪ live partitions `0..high_water`
    /// with no duplicates after every recovery).
    pub fn free_list_ids(&self) -> Vec<SlotId> {
        self.alloc.lock().free.clone()
    }

    /// Scan bound for recovery: persisted high water mark.
    pub(crate) fn persisted_high_water(&self) -> u64 {
        self.alloc.lock().persisted_high_water
    }

    /// Bytes of media the recovery scan must stream through.
    pub fn scan_bytes(&self) -> u64 {
        ROOT_BYTES + self.persisted_high_water() * self.slot_bytes
    }

    /// A layout-derived description of this pool, used in reports.
    pub fn describe(&self) -> String {
        format!(
            "PmemPool {{ payload: {} B ({} f32), slot: {} B, high_water: {}, free: {} }}",
            self.payload_bytes,
            self.payload_f32s(),
            self.slot_bytes,
            self.high_water(),
            self.free_slots()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::CostKind;

    fn pool(dim: usize) -> (PmemPool, Cost) {
        let mut cost = Cost::new();
        let p = PmemPool::create(PoolConfig::for_embedding(dim, 1, 1 << 20), &mut cost);
        (p, cost)
    }

    #[test]
    fn slot_layout_geometry() {
        let (p, _) = pool(64);
        // 24 header + 64*4*2 payload = 536 → 576 (9 lines).
        assert_eq!(p.payload_bytes(), 512);
        assert_eq!(p.slot_bytes(), 576);
        assert_eq!(p.slot_offset(SlotId(0)), 64);
        assert_eq!(p.slot_offset(SlotId(2)), 64 + 2 * 576);
    }

    #[test]
    fn write_read_roundtrip() {
        let (p, mut cost) = pool(4);
        let id = p.alloc(&mut cost);
        let payload: Vec<f32> = (0..8).map(|i| i as f32 * 0.5).collect();
        p.write_slot(id, 99, 7, &payload, &mut cost);
        let mut out = vec![0f32; 8];
        let h = p.read_slot(id, &mut out, &mut cost).expect("valid");
        assert_eq!(h.key, 99);
        assert_eq!(h.version, 7);
        assert_eq!(out, payload);
        assert!(cost.ns(CostKind::PmemWrite) > 0);
    }

    #[test]
    fn alloc_reuses_freed_slots() {
        let (p, mut cost) = pool(4);
        let a = p.alloc(&mut cost);
        let b = p.alloc(&mut cost);
        assert_ne!(a, b);
        p.free(a, &mut cost);
        let c = p.alloc(&mut cost);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(p.high_water(), 2);
    }

    #[test]
    fn freed_slot_is_invisible() {
        let (p, mut cost) = pool(4);
        let id = p.alloc(&mut cost);
        p.write_slot(id, 1, 1, &[1.0; 8], &mut cost);
        p.free(id, &mut cost);
        let mut out = vec![0f32; 8];
        assert!(p.read_slot(id, &mut out, &mut cost).is_none());
    }

    #[test]
    fn checkpoint_id_roundtrip_and_persistence() {
        let (p, mut cost) = pool(4);
        assert_eq!(p.checkpoint_id(&mut cost), 0);
        p.set_checkpoint_id(41, &mut cost);
        assert_eq!(p.checkpoint_id(&mut cost), 41);
        // Survives a crash (fully fenced).
        let media = Arc::new(Media::from_crash(p.media().crash(5)));
        let p2 = PmemPool::open(media, &mut cost).expect("magic ok");
        assert_eq!(p2.checkpoint_id(&mut cost), 41);
    }

    #[test]
    fn open_rejects_uninitialized_media() {
        let mut cost = Cost::new();
        let media = Arc::new(Media::new(MediaConfig::pmem(1024)));
        assert!(PmemPool::open(media, &mut cost).is_none());
    }

    #[test]
    fn committed_slot_survives_crash() {
        let (p, mut cost) = pool(4);
        let id = p.alloc(&mut cost);
        let payload = [3.25f32; 8];
        p.write_slot(id, 5, 2, &payload, &mut cost);
        for seed in 0..8 {
            let media = Arc::new(Media::from_crash(p.media().crash(seed)));
            let p2 = PmemPool::open(media, &mut cost).unwrap();
            let mut out = vec![0f32; 8];
            let h = p2.read_slot(id, &mut out, &mut cost).expect("survives");
            assert_eq!(h.key, 5);
            assert_eq!(out, payload);
        }
    }

    #[test]
    fn high_water_persisted_in_chunks() {
        let (p, mut cost) = pool(4);
        for _ in 0..3 {
            p.alloc(&mut cost);
        }
        let media = Arc::new(Media::from_crash(p.media().crash(1)));
        let p2 = PmemPool::open(media, &mut cost).unwrap();
        // Recovered high water is the chunk bound, covering all allocations.
        assert!(p2.high_water() >= 3);
        assert_eq!(p2.high_water() % HIGH_WATER_CHUNK, 0);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn wrong_payload_size_panics() {
        let (p, mut cost) = pool(4);
        let id = p.alloc(&mut cost);
        p.write_slot(id, 1, 1, &[0.0; 3], &mut cost);
    }

    #[test]
    fn concurrent_alloc_unique() {
        use std::collections::HashSet;
        let (p, _) = pool(4);
        let p = Arc::new(p);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                let mut cost = Cost::new();
                (0..500).map(|_| p.alloc(&mut cost)).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate slot {id:?}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }
}
