//! Recovery scan (paper §V-C):
//!
//! 1. stream through every slot up to the persisted high-water mark,
//! 2. discard slots whose version exceeds the durable Checkpointed Batch
//!    ID (updates from batches after the last committed checkpoint),
//! 3. for each key keep the *newest surviving* version (older superseded
//!    versions whose space had not been recycled yet are freed),
//! 4. hand the survivors to the caller to rebuild the DRAM hash index.
//!
//! The recovery cost model matches the paper's description ("dominated by
//! the scanning of data in PMem and reconstruction of the hash index"):
//! one sequential pass over the used region at PMem bandwidth plus
//! per-entry CPU work, with *no* payload copy — entries stay in PMem.

use crate::layout::SlotState;
use crate::pool::{PmemPool, SlotId};
use oe_simdevice::{Cost, CostKind, DeviceTiming, Media};
use std::collections::HashMap;
use std::sync::Arc;

/// One live entry discovered by the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredSlot {
    /// Where the entry lives (still in PMem).
    pub id: SlotId,
    /// Embedding key.
    pub key: u64,
    /// Batch version (≤ recovered checkpoint id).
    pub version: u64,
}

/// Outcome of a recovery scan.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Live entries (one per key: newest version ≤ checkpoint id).
    pub live: Vec<RecoveredSlot>,
    /// Slots discarded because their version was newer than the
    /// checkpointed batch id (uncommitted training progress).
    pub discarded_future: u64,
    /// Valid but superseded older versions, freed.
    pub discarded_stale: u64,
    /// Slots with `Valid` state but checksum mismatch (torn writes from
    /// incorrect flush ordering — zero when the write protocol is obeyed).
    pub corrupt: u64,
    /// Total slot positions examined.
    pub scanned_slots: u64,
    /// Bytes streamed from PMem.
    pub scan_bytes: u64,
    /// Checkpoint id recovered from the root.
    pub checkpoint_id: u64,
}

/// Per-recovered-entry CPU cost: hash-index insert during rebuild.
const INDEX_REBUILD_NS_PER_ENTRY: u64 = 120;
/// Per-slot CPU cost of header decode + checksum verify during the scan.
const SCAN_CPU_NS_PER_SLOT: u64 = 40;

/// Scan the pool, prune per-key to the newest checkpointed version, free
/// everything else, and charge the recovery cost. The pool's free list is
/// installed as a side effect.
pub fn scan(pool: &PmemPool, cost: &mut Cost) -> ScanReport {
    // Functional reads use a throwaway sink: we charge one aggregate
    // *sequential* streaming cost instead of per-slot random-read costs.
    let mut scratch_cost = Cost::new();
    let ckpt = pool.checkpoint_id(&mut scratch_cost);
    // The persisted high-water mark bounds the scan after a crash.
    // Deriving it as `scan_bytes() / slot_bytes` counted the 64 B root
    // line as a slot whenever `slot_bytes == 64`, conjuring a phantom
    // `SlotId(high_water)` into the recovered free list; see the
    // `recovered_free_list_has_no_phantom_slot` regression below.
    let hw = pool.persisted_high_water();

    let mut best: HashMap<u64, (SlotId, u64)> = HashMap::new();
    let mut report = ScanReport {
        checkpoint_id: ckpt,
        ..Default::default()
    };
    let mut to_free: Vec<SlotId> = Vec::new();
    let mut free_list: Vec<SlotId> = Vec::new();
    let mut payload = vec![0f32; pool.payload_f32s()];

    for i in 0..hw {
        let id = SlotId(i);
        report.scanned_slots += 1;
        let header = pool.read_header(id, &mut scratch_cost);
        if header.state != SlotState::Valid {
            free_list.push(id);
            continue;
        }
        // Verify payload integrity (detects torn writes).
        if pool
            .read_slot(id, &mut payload, &mut scratch_cost)
            .is_none()
        {
            report.corrupt += 1;
            to_free.push(id);
            continue;
        }
        if header.version > ckpt {
            report.discarded_future += 1;
            to_free.push(id);
            continue;
        }
        match best.entry(header.key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((id, header.version));
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let (old_id, old_ver) = *o.get();
                if header.version > old_ver {
                    o.insert((id, header.version));
                    report.discarded_stale += 1;
                    to_free.push(old_id);
                } else {
                    report.discarded_stale += 1;
                    to_free.push(id);
                }
            }
        }
    }

    for id in to_free {
        pool.free_no_list(id, &mut scratch_cost);
        free_list.push(id);
    }

    report.live = best
        .into_iter()
        .map(|(key, (id, version))| RecoveredSlot { id, key, version })
        .collect();
    report.live.sort_by_key(|r| r.id);
    report.scan_bytes = pool.scan_bytes();

    pool.install_free_list(free_list);

    // Aggregate recovery cost: sequential stream + rebuild CPU.
    let pmem = DeviceTiming::pmem();
    let stream_ns = (report.scan_bytes as f64 / pmem.read_bw_bytes_per_ns) as u64;
    cost.charge(CostKind::PmemRead, pmem.read_lat_ns + stream_ns);
    cost.charge(
        CostKind::Cpu,
        report.scanned_slots * SCAN_CPU_NS_PER_SLOT
            + report.live.len() as u64 * INDEX_REBUILD_NS_PER_ENTRY,
    );
    report
}

/// Open crashed media and scan it: the full recovery entry point.
pub fn recover(media: Arc<Media>, cost: &mut Cost) -> Option<(PmemPool, ScanReport)> {
    let pool = PmemPool::open(media, cost)?;
    let report = scan(&pool, cost);
    Some((pool, report))
}

impl PmemPool {
    /// Durably mark a slot free without touching the in-memory free list
    /// (the scan rebuilds the free list wholesale).
    pub(crate) fn free_no_list(&self, id: SlotId, cost: &mut Cost) {
        let off = self.slot_offset(id);
        self.media()
            .write(off, &(SlotState::Free as u32).to_le_bytes(), cost);
        self.media().persist(off, 4, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use oe_simdevice::Media;

    fn crash_and_recover(pool: &PmemPool, seed: u64) -> (PmemPool, ScanReport) {
        let media = Arc::new(Media::from_crash(pool.media().crash(seed)));
        let mut cost = Cost::new();
        recover(media, &mut cost).expect("pool recoverable")
    }

    fn new_pool() -> (PmemPool, Cost) {
        let mut cost = Cost::new();
        let p = PmemPool::create(PoolConfig::for_embedding(4, 0, 1 << 20), &mut cost);
        (p, cost)
    }

    #[test]
    fn scan_recovers_committed_entries() {
        let (p, mut cost) = new_pool();
        for k in 0..10u64 {
            let id = p.alloc(&mut cost);
            p.write_slot(id, k, 3, &[k as f32; 4], &mut cost);
        }
        p.set_checkpoint_id(3, &mut cost);
        let (p2, report) = crash_and_recover(&p, 7);
        assert_eq!(report.live.len(), 10);
        assert_eq!(report.checkpoint_id, 3);
        assert_eq!(report.corrupt, 0);
        let mut out = vec![0f32; 4];
        for r in &report.live {
            let h = p2.read_slot(r.id, &mut out, &mut cost).unwrap();
            assert_eq!(out, [h.key as f32; 4]);
        }
    }

    #[test]
    fn scan_discards_versions_beyond_checkpoint() {
        let (p, mut cost) = new_pool();
        // key 1 at version 2 (checkpointed), key 2 at version 9 (future).
        let a = p.alloc(&mut cost);
        p.write_slot(a, 1, 2, &[1.0; 4], &mut cost);
        let b = p.alloc(&mut cost);
        p.write_slot(b, 2, 9, &[2.0; 4], &mut cost);
        p.set_checkpoint_id(5, &mut cost);
        let (_p2, report) = crash_and_recover(&p, 1);
        assert_eq!(report.live.len(), 1);
        assert_eq!(report.live[0].key, 1);
        assert_eq!(report.discarded_future, 1);
    }

    #[test]
    fn scan_keeps_newest_version_per_key() {
        let (p, mut cost) = new_pool();
        // Three versions of key 7: 1, 4, 9. Checkpoint at 5 → keep 4.
        for (ver, val) in [(1u64, 10.0f32), (4, 40.0), (9, 90.0)] {
            let id = p.alloc(&mut cost);
            p.write_slot(id, 7, ver, &[val; 4], &mut cost);
        }
        p.set_checkpoint_id(5, &mut cost);
        let (p2, report) = crash_and_recover(&p, 2);
        assert_eq!(report.live.len(), 1);
        assert_eq!(report.live[0].version, 4);
        assert_eq!(report.discarded_future, 1);
        assert_eq!(report.discarded_stale, 1);
        let mut out = vec![0f32; 4];
        p2.read_slot(report.live[0].id, &mut out, &mut cost)
            .unwrap();
        assert_eq!(out, [40.0; 4]);
    }

    #[test]
    fn freed_slots_are_reusable_after_recovery() {
        let (p, mut cost) = new_pool();
        let a = p.alloc(&mut cost);
        p.write_slot(a, 1, 1, &[1.0; 4], &mut cost);
        p.set_checkpoint_id(1, &mut cost);
        let (p2, report) = crash_and_recover(&p, 3);
        assert_eq!(report.live.len(), 1);
        // All non-live slot positions up to high water are free.
        assert!(p2.free_slots() > 0);
        let mut c = Cost::new();
        let reused = p2.alloc(&mut c);
        assert_ne!(reused, report.live[0].id);
    }

    #[test]
    fn recovery_cost_scales_with_footprint() {
        let (small, mut cost) = new_pool();
        let id = small.alloc(&mut cost);
        small.write_slot(id, 1, 1, &[0.0; 4], &mut cost);
        small.set_checkpoint_id(1, &mut cost);

        let (big, _) = new_pool();
        let mut cost_b = Cost::new();
        for k in 0..3000u64 {
            let id = big.alloc(&mut cost_b);
            big.write_slot(id, k, 1, &[0.0; 4], &mut cost_b);
        }
        big.set_checkpoint_id(1, &mut cost_b);

        let mut c_small = Cost::new();
        let m = Arc::new(Media::from_crash(small.media().crash(1)));
        recover(m, &mut c_small).unwrap();
        let mut c_big = Cost::new();
        let m = Arc::new(Media::from_crash(big.media().crash(1)));
        recover(m, &mut c_big).unwrap();
        assert!(
            c_big.total_ns() > c_small.total_ns(),
            "bigger pool, longer recovery: {} vs {}",
            c_big.total_ns(),
            c_small.total_ns()
        );
    }

    #[test]
    fn recovered_free_list_has_no_phantom_slot() {
        // Regression (crashmc sweep): the scan bound used to be computed
        // as `scan_bytes() / slot_bytes`, which counts the 64 B root line
        // as a slot whenever `slot_bytes == 64`, so the never-allocated
        // `SlotId(high_water)` entered the recovered free list. A
        // free-list pop and the bump allocator (`next == high_water`)
        // would then hand out the same slot twice, cross-linking two
        // keys. First exposed at crash-event index 9 of the minimal
        // one-slot run (the torn checkpoint-id fence); any index
        // reproduces it.
        use oe_simdevice::CrashPlan;
        let (p, mut cost) = new_pool();
        assert_eq!(p.slot_bytes(), 64, "layout the bug depends on");
        p.media().arm_crash_plan(CrashPlan {
            at_event: 9,
            seed: 3,
        });
        let id = p.alloc(&mut cost); // events 2-3 (high-water persist)
        p.write_slot(id, 1, 1, &[1.0; 4], &mut cost); // events 4-7
        p.set_checkpoint_id(1, &mut cost); // events 8-9: torn commit
        let image = p.media().take_crash_capture().expect("event 9 reached");
        let mut rcost = Cost::new();
        let (p2, report) =
            recover(Arc::new(Media::from_crash(image)), &mut rcost).expect("recoverable");
        let hw = p2.high_water();
        let free = p2.free_list_ids();
        assert!(
            free.iter().all(|s| s.0 < hw),
            "phantom slot at/beyond high water {hw} in recovered free list"
        );
        let mut dedup = free.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), free.len(), "duplicate ids in free list");
        // free ∪ live partitions 0..hw exactly (no leaks, no overlap).
        assert_eq!(free.len() as u64 + report.live.len() as u64, hw);
        for r in &report.live {
            assert!(!free.contains(&r.id), "live slot {:?} also free", r.id);
        }
        // Draining the free list then bump-allocating must never repeat.
        let mut seen = std::collections::HashSet::new();
        for r in &report.live {
            seen.insert(r.id);
        }
        let mut c = Cost::new();
        for _ in 0..=hw.min(1100) {
            assert!(seen.insert(p2.alloc(&mut c)), "slot handed out twice");
        }
    }

    #[test]
    fn torn_unfenced_write_is_never_recovered_as_valid() {
        // Write a slot with the full protocol, then start overwriting a
        // second slot but crash before the commit fence. Recovery must
        // either see the slot as free or detect corruption — never return
        // a half-written payload as live.
        for seed in 0..32 {
            let (p, mut cost) = new_pool();
            let a = p.alloc(&mut cost);
            p.write_slot(a, 1, 1, &[1.0; 4], &mut cost);
            p.set_checkpoint_id(1, &mut cost);
            // Simulate a buggy partial write: payload without fence, then
            // VALID state without fence.
            let b = p.alloc(&mut cost);
            let off = p.slot_offset(b);
            let hdr = crate::layout::SlotHeader {
                state: SlotState::Valid,
                checksum: 0xBAD, // wrong on purpose: torn write
                key: 2,
                version: 1,
            };
            p.media().write(off, &hdr.encode(), &mut cost);
            p.media().flush(off, 24, &mut cost); // no fence!

            let (_p2, report) = crash_and_recover(&p, seed);
            assert_eq!(report.live.len(), 1, "seed {seed}");
            assert_eq!(report.live[0].key, 1);
        }
    }
}
