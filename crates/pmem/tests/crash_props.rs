//! Property tests: the pool's crash-safety protocol guarantees that after
//! an arbitrary crash, recovery reconstructs exactly the newest
//! checkpoint-consistent version of every key.

use oe_pmem::{pool::PoolConfig, scan::recover, PmemPool};
use oe_simdevice::{Cost, Media};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Write key at version with a value derived from (key, version).
    Write { key: u64, version: u64 },
    /// Persist a new checkpoint id.
    Checkpoint { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..16, 1u64..32).prop_map(|(key, version)| Op::Write { key, version }),
        1 => (1u64..32).prop_map(|id| Op::Checkpoint { id }),
    ]
}

fn payload_for(key: u64, version: u64) -> Vec<f32> {
    (0..4)
        .map(|i| (key * 100 + version * 10 + i) as f32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any op sequence and any crash seed:
    /// - the recovered checkpoint id equals the last fenced checkpoint,
    /// - every key's recovered version is the maximum written version that
    ///   is ≤ the recovered checkpoint id,
    /// - recovered payloads are bit-exact,
    /// - no corrupt slots are reported (the protocol always fences).
    #[test]
    fn recovery_is_checkpoint_consistent(ops in prop::collection::vec(op_strategy(), 1..60), seed in 0u64..1000) {
        let mut cost = Cost::new();
        let pool = PmemPool::create(PoolConfig::for_embedding(4, 0, 1 << 20), &mut cost);

        // The model: committed checkpoint id and, per key, all written versions.
        let mut model_ckpt = 0u64;
        let mut writes: HashMap<u64, Vec<u64>> = HashMap::new();
        // Track a slot per (key, version): overwrites of the same version
        // replace content deterministically so payload is derivable.
        let mut slot_of: HashMap<(u64, u64), oe_pmem::SlotId> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Write { key, version } => {
                    let id = *slot_of.entry((key, version)).or_insert_with(|| pool.alloc(&mut cost));
                    pool.write_slot(id, key, version, &payload_for(key, version), &mut cost);
                    let vs = writes.entry(key).or_default();
                    if !vs.contains(&version) { vs.push(version); }
                }
                Op::Checkpoint { id } => {
                    // Checkpoints only move forward in real use.
                    if id > model_ckpt {
                        pool.set_checkpoint_id(id, &mut cost);
                        model_ckpt = id;
                    }
                }
            }
        }

        let media = Arc::new(Media::from_crash(pool.media().crash(seed)));
        let mut rcost = Cost::new();
        let (rpool, report) = recover(media, &mut rcost).expect("pool always recoverable");

        prop_assert_eq!(report.corrupt, 0, "fenced protocol never tears");
        prop_assert_eq!(report.checkpoint_id, model_ckpt);

        // Expected survivors.
        let mut expect: HashMap<u64, u64> = HashMap::new();
        for (key, versions) in &writes {
            if let Some(&v) = versions.iter().filter(|&&v| v <= model_ckpt).max() {
                expect.insert(*key, v);
            }
        }
        let recovered: HashMap<u64, u64> = report.live.iter().map(|r| (r.key, r.version)).collect();
        prop_assert_eq!(&recovered, &expect);

        // Payload integrity.
        let mut out = vec![0f32; 4];
        for r in &report.live {
            let h = rpool.read_slot(r.id, &mut out, &mut rcost).expect("live slot readable");
            prop_assert_eq!(h.key, r.key);
            prop_assert_eq!(out.clone(), payload_for(r.key, r.version));
        }
    }

    /// Allocator safety under arbitrary alloc/free interleavings: no
    /// double allocation of a live slot.
    #[test]
    fn allocator_never_double_allocates(script in prop::collection::vec(prop::bool::ANY, 1..200)) {
        let mut cost = Cost::new();
        let pool = PmemPool::create(PoolConfig::for_embedding(2, 0, 1 << 16), &mut cost);
        let mut live = Vec::new();
        for do_alloc in script {
            if do_alloc || live.is_empty() {
                let id = pool.alloc(&mut cost);
                prop_assert!(!live.contains(&id), "slot {:?} double-allocated", id);
                live.push(id);
            } else {
                let id = live.swap_remove(live.len() / 2);
                pool.free(id, &mut cost);
            }
        }
    }
}
