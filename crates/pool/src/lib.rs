//! # oe-pool — disaggregated PMem behind a CXL-style fabric
//!
//! The TrainingCXL direction (PAPERS.md): instead of each parameter
//! server owning local Optane DIMMs, persistent memory lives in a
//! *shared remote pool* reached over a load/store fabric. Three things
//! change relative to the paper's local topology, and this crate models
//! all of them on the simulated clock:
//!
//! 1. **Every slot operation pays the fabric.** [`RemotePool`]
//!    implements `oe_core`'s [`StorageBackend`] seam by delegating to
//!    the ordinary [`PmemPool`] slot protocol (so the durable layout
//!    and persistence-event stream are *identical* to the local arm)
//!    and then charging [`CostKind::FabricTransfer`] time for the bytes
//!    that crossed the link — latency + bandwidth from
//!    [`DeviceTiming::cxl_fabric`], inflated by link congestion as more
//!    nodes attach to the same [`SharedPool`].
//! 2. **Checkpoint decode runs near the pool.** Recovery does not drag
//!    every slot across the fabric: the scan + index rebuild execute on
//!    compute adjacent to the pool ([`FabricConfig::near_pool_threads`])
//!    and only the rebuilt index summary ships to the promoted node.
//! 3. **A dead PS's state survives in the pool.** [`PoolStandby`]
//!    implements `oe_net`'s `Standby`: on node death it resolves the
//!    partition's in-flight fabric writes exactly like a power cut
//!    (torn-line semantics), recovers near the pool, re-attaches the
//!    partition, and spawns the promoted server — no crash image is
//!    ever shipped, which is the disaggregated recovery win the bench
//!    (`oe-bench --bin pool`) quantifies against [`CheckpointReplica`].
//!
//! [`StorageBackend`]: oe_core::StorageBackend
//! [`PmemPool`]: oe_pmem::PmemPool
//! [`CostKind::FabricTransfer`]: oe_simdevice::CostKind
//! [`DeviceTiming::cxl_fabric`]: oe_simdevice::DeviceTiming::cxl_fabric
//! [`CheckpointReplica`]: oe_net::CheckpointReplica

pub mod remote;
pub mod standby;

pub use remote::{FabricConfig, RemotePool, SharedPool};
pub use standby::PoolStandby;
